// Command qosplan does capacity planning: given a profile set (or just a
// user profile) and a target satisfaction, it reports the bandwidth the
// delivery path must provide, and — when a network is given — which links
// fall short.
//
// Usage:
//
//	qospath -example | qosplan -target 0.9
//	qosplan -in profiles.json -target 0.8
//	qosplan -in profiles.json -sweep          # table over targets
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
)

func main() {
	in := flag.String("in", "-", "profile set JSON file ('-' for stdin)")
	target := flag.Float64("target", 0.9, "target user satisfaction in (0,1]")
	sweep := flag.Bool("sweep", false, "print required bandwidth across satisfaction targets")
	contact := flag.String("contact", "", "contact class for per-contact preferences")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	set, err := profile.DecodeSet(r)
	if err != nil {
		fatal(err)
	}
	prof, err := set.User.SatisfactionProfile(profile.ContactClass(*contact))
	if err != nil {
		fatal(err)
	}

	// The bitrate model comes from the first content variant (or the
	// default 100 kbps/fps model).
	var model media.BitrateModel
	if len(set.Content.Variants) > 0 && set.Content.Variants[0].Bitrate != nil {
		model = set.Content.Variants[0].Bitrate
	}

	if *sweep {
		tb := metrics.NewTable("target satisfaction", "required kbps")
		for _, tgt := range []float64{0.25, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
			kbps, ok := satisfaction.RequiredBandwidth(prof, model, tgt)
			if !ok {
				tb.AddRow(tgt, "(unreachable)")
				continue
			}
			tb.AddRow(tgt, fmt.Sprintf("%.0f", kbps))
		}
		tb.Render(os.Stdout)
		return
	}

	if *target <= 0 || *target > 1 {
		fatal(fmt.Errorf("target %v outside (0,1]", *target))
	}
	kbps, ok := satisfaction.RequiredBandwidth(prof, model, *target)
	if !ok {
		fatal(fmt.Errorf("satisfaction %.2f is unreachable for user %s even unconstrained", *target, set.User.Name))
	}
	fmt.Printf("user %s needs %.0f kbps end-to-end for satisfaction %.2f\n",
		set.User.Name, kbps, *target)

	// Grade each declared link against the requirement.
	if len(set.Network.Links) > 0 {
		tb := metrics.NewTable("link", "kbps", "verdict")
		short := 0
		for _, l := range set.Network.Links {
			verdict := "ok"
			if l.BandwidthKbps < kbps-1e-9 {
				verdict = fmt.Sprintf("short by %.0f kbps", math.Ceil(kbps-l.BandwidthKbps))
				short++
			}
			tb.AddRow(l.From+" -> "+l.To, fmt.Sprintf("%.0f", l.BandwidthKbps), verdict)
		}
		tb.Render(os.Stdout)
		if short > 0 {
			fmt.Printf("%d link(s) cannot carry the target quality\n", short)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qosplan:", err)
	os.Exit(1)
}
