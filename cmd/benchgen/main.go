// Command benchgen regenerates every table and figure of the paper's
// evaluation, plus the extension experiments documented in EXPERIMENTS.md.
//
// Usage:
//
//	benchgen -exp all        # everything
//	benchgen -exp table1     # the 15-round selection trace (Table 1)
//	benchgen -exp fig1       # satisfaction function samples (Figure 1)
//	benchgen -exp fig2       # multi-link service (Figure 2)
//	benchgen -exp fig3       # construction example (Figure 3, DOT)
//	benchgen -exp fig5       # greedy vs exhaustive optimality (Figure 5)
//	benchgen -exp fig6       # with/without-T7 ablation (Figure 6)
//	benchgen -exp gap        # EXT-B greedy/exhaustive gap sweep
//	benchgen -exp scale      # EXT-A scalability sweep
//	benchgen -exp recompose  # EXT-C re-composition under fluctuation
//	benchgen -exp pipeline   # EXT-D pipeline throughput
//	benchgen -exp multicast  # EXT-E shared group composition
//	benchgen -exp admission  # EXT-F sequential admission with reservations
//	benchgen -exp churn      # EXT-G session churn: arrivals, departures, upgrades
//	benchgen -exp bundle     # EXT-H multi-stream (audio+video) bundles
//	benchgen -exp diurnal    # EXT-I a day on a shared network
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"qoschain/internal/baseline"
	"qoschain/internal/bundle"
	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/multicast"
	"qoschain/internal/overlay"
	"qoschain/internal/paperexample"
	"qoschain/internal/pipeline"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
	"qoschain/internal/session"
	"qoschain/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig1, fig2, fig3, fig5, fig6, gap, scale, recompose, pipeline, multicast)")
	seed := flag.Int64("seed", 42, "random seed for the extension experiments")
	flag.Parse()

	runners := map[string]func(int64) error{
		"table1":    func(int64) error { return runTable1() },
		"fig1":      func(int64) error { return runFig1() },
		"fig2":      func(int64) error { return runFig2() },
		"fig3":      func(int64) error { return runFig3() },
		"fig5":      runFig5,
		"fig6":      func(int64) error { return runFig6() },
		"gap":       runGap,
		"scale":     runScale,
		"recompose": runRecompose,
		"pipeline":  func(int64) error { return runPipeline() },
		"multicast": func(int64) error { return runMulticast() },
		"admission": func(int64) error { return runAdmission() },
		"churn":     func(int64) error { return runChurn() },
		"bundle":    func(int64) error { return runBundle() },
		"diurnal":   runDiurnal,
	}
	order := []string{"fig1", "fig2", "fig3", "table1", "fig5", "fig6", "gap", "scale", "recompose", "pipeline", "multicast", "admission", "churn", "bundle", "diurnal"}

	var toRun []string
	if *exp == "all" {
		toRun = order
	} else if _, ok := runners[*exp]; ok {
		toRun = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	for _, name := range toRun {
		fmt.Printf("==== %s ====\n", name)
		if err := runners[name](*seed); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// runTable1 reproduces the paper's Table 1 round by round.
func runTable1() error {
	res, err := paperexample.RunTable1(true)
	if err != nil {
		return err
	}
	fmt.Println("Table 1: results for each step of the path selection algorithm")
	fmt.Print(res.TraceTable())
	fmt.Printf("\nFinal: %s\n", res.Summary())
	return nil
}

// runFig1 samples the Figure 1 satisfaction function.
func runFig1() error {
	fmt.Println("Figure 1: satisfaction function for the frame rate (min=5, ideal=20)")
	tb := metrics.NewTable("fps", "satisfaction")
	for _, s := range paperexample.Figure1Samples() {
		tb.AddRow(int(s[0]), s[1])
	}
	tb.Render(os.Stdout)
	return nil
}

// runFig2 prints the multi-link service of Figure 2.
func runFig2() error {
	s := paperexample.Figure2Service()
	fmt.Println("Figure 2: trans-coding service with multiple input and output links")
	fmt.Printf("  %s\n", s)
	return nil
}

// runFig3 prints the Figure 3 construction example as DOT.
func runFig3() error {
	g, err := paperexample.Figure3Graph()
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: directed trans-coding graph (DOT)")
	return g.WriteDOT(os.Stdout, "figure3")
}

// runFig5 certifies the greedy-optimality argument of Figure 5 on random
// scenarios.
func runFig5(seed int64) error {
	fmt.Println("Figure 5: greedy selection equals the exhaustive optimum (monotone quality)")
	const trials = 200
	matches := 0
	for i := int64(0); i < trials; i++ {
		sc := workload.Generate(rand.New(rand.NewSource(seed+i)), workload.Spec{Services: 8})
		greedy, err := core.Select(sc.Graph, sc.Config)
		if err != nil {
			return err
		}
		exact, _ := baseline.Exhaustive(sc.Graph, sc.Config, 0)
		if exact.Found && greedy.Satisfaction >= exact.Satisfaction-1e-9 {
			matches++
		}
	}
	fmt.Printf("  greedy == exhaustive on %d/%d random scenarios\n", matches, trials)
	return nil
}

// runFig6 contrasts the selected path with and without T7.
func runFig6() error {
	with, err := paperexample.RunTable1(true)
	if err != nil {
		return err
	}
	without, err := paperexample.RunTable1(false)
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: selected path with and without trans-coding service T7")
	tb := metrics.NewTable("variant", "selected path", "fps", "satisfaction")
	tb.AddRow("with T7", core.PathString(with.Path),
		core.DisplayFPS(with.Params.Get(media.ParamFrameRate)), core.DisplaySat(with.Satisfaction))
	tb.AddRow("without T7", core.PathString(without.Path),
		core.DisplayFPS(without.Params.Get(media.ParamFrameRate)), core.DisplaySat(without.Satisfaction))
	tb.Render(os.Stdout)
	return nil
}

// runGap sweeps the greedy/exhaustive satisfaction gap (EXT-B).
func runGap(seed int64) error {
	fmt.Println("EXT-B: greedy vs exhaustive satisfaction over 500 random scenarios")
	var gaps []float64
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		sc := workload.Generate(rng, workload.Spec{Services: 8})
		greedy, err := core.Select(sc.Graph, sc.Config)
		if err != nil {
			return err
		}
		exact, _ := baseline.Exhaustive(sc.Graph, sc.Config, 0)
		if exact.Found {
			gaps = append(gaps, exact.Satisfaction-greedy.Satisfaction)
		}
	}
	s := metrics.Summarize(gaps)
	fmt.Printf("  scenarios=%d mean gap=%.6f max gap=%.6f (0 everywhere = greedy optimal)\n",
		s.Count, s.Mean, s.Max)
	return nil
}

// runScale measures selection runtime across graph sizes (EXT-A).
func runScale(seed int64) error {
	fmt.Println("EXT-A: selection runtime and satisfaction vs graph size")
	tb := metrics.NewTable("services", "edges", "runtime", "satisfaction", "expanded")
	for _, n := range []int{10, 50, 100, 500, 1000, 2000} {
		sc := workload.Generate(rand.New(rand.NewSource(seed)), workload.Spec{Services: n})
		start := time.Now()
		res, err := core.Select(sc.Graph, sc.Config)
		if err != nil {
			return err
		}
		tb.AddRow(n, sc.Graph.EdgeCount(), time.Since(start).Round(time.Microsecond).String(),
			res.Satisfaction, res.Expanded)
	}
	tb.Render(os.Stdout)
	return nil
}

// runRecompose drives a session through a bandwidth trace (EXT-C).
func runRecompose(seed int64) error {
	fmt.Println("EXT-C: re-composition under bandwidth fluctuation")
	g, err := paperexample.Table1Graph(true)
	if err != nil {
		return err
	}
	_ = g // the session rebuilds its own graph from the live network
	net := paperexample.Table1Network()
	sess, err := session.New(session.Config{
		Content:      paperexample.Table1Content(),
		Device:       paperexample.Table1Device(),
		Services:     paperexample.Table1Services(true),
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "receiver",
		Select:       paperexample.Table1Config(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("  t=0  chain=%s sat=%s\n", core.PathString(sess.Result().Path), core.DisplaySat(sess.Result().Satisfaction))
	trace := overlay.NewTrace(net, []overlay.TraceEvent{
		{AtStep: 1, From: "p7", To: "receiver", BandwidthKbps: 400}, // cripple the active exit
		{AtStep: 3, From: "p7", To: "receiver", BandwidthKbps: 1985},
	})
	step := 0
	for !trace.Done() {
		trace.Step()
		step++
		changed, err := sess.Reevaluate()
		if err != nil {
			return err
		}
		marker := ""
		if changed {
			marker = "  <- recomposed"
		}
		fmt.Printf("  t=%d  chain=%s sat=%s%s\n", step,
			core.PathString(sess.Result().Path), core.DisplaySat(sess.Result().Satisfaction), marker)
	}
	fmt.Printf("  recompositions=%d\n", sess.Recompositions())
	_ = seed
	return nil
}

// runPipeline measures streaming throughput over the Table 1 chain
// (EXT-D).
func runPipeline() error {
	fmt.Println("EXT-D: streaming pipeline over the Table 1 chain (900 source frames)")
	g, err := paperexample.Table1Graph(true)
	if err != nil {
		return err
	}
	res, err := core.Select(g, paperexample.Table1Config())
	if err != nil {
		return err
	}
	p, err := pipeline.FromResult(g, res, pipeline.Options{})
	if err != nil {
		return err
	}
	stats := p.Run(900)
	fmt.Printf("  frames in=%d out=%d delivered fps=%.2f (negotiated %.2f) bytes=%d\n",
		stats.FramesIn, stats.FramesOut, stats.DeliveredFPS,
		res.Params.Get(media.ParamFrameRate), stats.BytesOut)
	tb := metrics.NewTable("stage", "consumed", "emitted", "dropped")
	for _, st := range stats.Stages {
		tb.AddRow(st.ID, st.Consumed, st.Emitted, st.Dropped)
	}
	tb.Render(os.Stdout)
	return nil
}

// runMulticast contrasts independent and shared group composition
// (EXT-E).
func runMulticast() error {
	fmt.Println("EXT-E: shared group composition (services funded once)")
	premium := service.FormatConverter("premium", media.VideoMPEG1, media.VideoH263)
	premium.Cost = 6
	premium.Host = "gateway"
	economy := service.FormatConverter("economy", media.VideoMPEG1, media.VideoH263)
	economy.Cost = 1
	economy.Caps = media.Params{media.ParamFrameRate: 12}
	economy.Host = "gateway"

	cfg := func(budget float64) core.Config {
		return core.Config{
			Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
				media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
			}),
			Budget: budget,
		}
	}
	device := func(id string) *profile.Device {
		return &profile.Device{ID: id, Class: profile.ClassPhone,
			Software: profile.Software{Decoders: []media.Format{media.VideoH263}}}
	}
	receivers := []multicast.Receiver{
		{ID: "m1", Device: device("m1"), Config: cfg(10)},
		{ID: "m2", Device: device("m2"), Config: cfg(2)},
		{ID: "m3", Device: device("m3"), Config: cfg(1)},
	}
	net := overlay.New()
	net.AddLink("sender", "gateway", 4000, 8, 0)
	multicast.ReuseNetwork(net, "gateway", 3200, 5, receivers)
	group := multicast.Group{
		Content: &profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Services:   []*service.Service{premium, economy},
		Net:        net,
		SenderHost: "sender",
	}
	res, err := multicast.Compose(group, receivers)
	if err != nil {
		return err
	}
	fmt.Printf("  served=%d mean satisfaction=%.2f shared cost=%.0f independent cost=%.0f saving=%.0f shared=%v\n",
		res.Served(), res.MeanSatisfaction, res.SharedCost, res.IndependentCost, res.Savings(), res.Shared)
	return nil
}

// runAdmission admits sessions one by one onto the Figure 6 network with
// bandwidth reservation (EXT-F): each new arrival composes around the
// capacity earlier sessions hold.
func runAdmission() error {
	fmt.Println("EXT-F: sequential session admission with bandwidth reservation")
	net := paperexample.Table1Network()
	var sessions []*session.Session
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	tb := metrics.NewTable("arrival", "chain", "fps", "satisfaction")
	for i := 1; i <= 4; i++ {
		sess, err := session.New(session.Config{
			Content:          paperexample.Table1Content(),
			Device:           paperexample.Table1Device(),
			Services:         paperexample.Table1Services(true),
			Net:              net,
			SenderHost:       "sender",
			ReceiverHost:     "receiver",
			Select:           paperexample.Table1Config(),
			ReserveBandwidth: true,
		})
		if err != nil {
			tb.AddRow(i, "(rejected)", "-", "-")
			continue
		}
		sessions = append(sessions, sess)
		res := sess.Result()
		tb.AddRow(i, core.PathString(res.Path),
			core.DisplayFPS(res.Params.Get(media.ParamFrameRate)),
			core.DisplaySat(res.Satisfaction))
	}
	tb.Render(os.Stdout)
	return nil
}

// runChurn drives a deterministic arrival/departure schedule over the
// Figure 6 network with bandwidth reservation (EXT-G): departures free
// capacity and the surviving sessions upgrade on their next
// re-evaluation.
func runChurn() error {
	fmt.Println("EXT-G: session churn with reservations (A=arrive, D=depart oldest)")
	net := paperexample.Table1Network()
	newSession := func() (*session.Session, error) {
		return session.New(session.Config{
			Content:          paperexample.Table1Content(),
			Device:           paperexample.Table1Device(),
			Services:         paperexample.Table1Services(true),
			Net:              net,
			SenderHost:       "sender",
			ReceiverHost:     "receiver",
			Select:           paperexample.Table1Config(),
			ReserveBandwidth: true,
		})
	}
	schedule := []string{"A", "A", "A", "-", "D", "D", "A", "-"}
	var active []*session.Session
	defer func() {
		for _, s := range active {
			s.Close()
		}
	}()
	tb := metrics.NewTable("step", "event", "active", "mean satisfaction", "recomposed")
	for step, ev := range schedule {
		switch ev {
		case "A":
			s, err := newSession()
			if err != nil {
				return err
			}
			active = append(active, s)
		case "D":
			if len(active) > 0 {
				active[0].Close()
				active = active[1:]
			}
		}
		recomposed := 0
		satSum := 0.0
		for _, s := range active {
			changed, err := s.Reevaluate()
			if err != nil {
				return err
			}
			if changed {
				recomposed++
			}
			satSum += s.Result().Satisfaction
		}
		mean := 0.0
		if len(active) > 0 {
			mean = satSum / float64(len(active))
		}
		tb.AddRow(step+1, ev, len(active), mean, recomposed)
	}
	tb.Render(os.Stdout)
	return nil
}

// runBundle composes audio+video bundles with one combined satisfaction
// (EXT-H).
func runBundle() error {
	fmt.Println("EXT-H: multi-stream bundle — one satisfaction over audio and video")
	build := func(withAudioConv bool, exitKbps float64) (bundle.Request, error) {
		vconv := service.FormatConverter("vconv", media.VideoMPEG1, media.VideoH263)
		vconv.Host = "proxy"
		aconv := service.FormatConverter("aconv", media.AudioPCM, media.AudioGSM)
		aconv.Host = "proxy"
		services := []*service.Service{vconv}
		if withAudioConv {
			services = append(services, aconv)
		}
		net := overlay.New()
		net.AddLink("sender", "proxy", 6000, 10, 0)
		net.AddLink("proxy", "dev", exitKbps, 15, 0)
		bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
			media.ParamFrameRate: 100,
			media.ParamAudioRate: 10,
		}}
		return bundle.Request{
			Content: &profile.Content{ID: "lecture", Variants: []media.Descriptor{
				{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}, Bitrate: bitrate},
				{Format: media.AudioPCM, Params: media.Params{media.ParamAudioRate: 44.1}, Bitrate: bitrate},
			}},
			Device: &profile.Device{ID: "dev", Software: profile.Software{
				Decoders: []media.Format{media.VideoH263, media.AudioGSM},
			}},
			Services: services, Net: net,
			SenderHost: "sender", ReceiverHost: "dev",
			Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
				media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
				media.ParamAudioRate: satisfaction.Linear{M: 0, I: 44.1},
			}),
			Bitrate: bitrate,
		}, nil
	}
	tb := metrics.NewTable("variant", "video fps", "audio kHz", "combined satisfaction")
	for _, c := range []struct {
		label string
		audio bool
		kbps  float64
	}{
		{"full capacity", true, 4000},
		{"narrow exit (1.5 Mbps)", true, 1500},
		{"no audio converter", false, 4000},
	} {
		req, err := build(c.audio, c.kbps)
		if err != nil {
			return err
		}
		res, err := bundle.Compose(req)
		if err != nil {
			return err
		}
		tb.AddRow(c.label,
			fmt.Sprintf("%.1f", res.Params.Get(media.ParamFrameRate)),
			fmt.Sprintf("%.1f", res.Params.Get(media.ParamAudioRate)),
			res.Combined)
	}
	tb.Render(os.Stdout)
	fmt.Println("  (the geometric mean of Equation 1 zeroes the whole session when audio is undeliverable)")
	return nil
}

// runDiurnal tracks one session across a simulated day on a shared
// network (EXT-I): capacity dips at the busy hour and the session adapts.
func runDiurnal(seed int64) error {
	fmt.Println("EXT-I: one session across a diurnal load cycle (12 steps = 1 day)")
	net := paperexample.Table1Network()
	sess, err := session.New(session.Config{
		Content:      paperexample.Table1Content(),
		Device:       paperexample.Table1Device(),
		Services:     paperexample.Table1Services(true),
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "receiver",
		Select:       paperexample.Table1Config(),
	})
	if err != nil {
		return err
	}
	day, err := overlay.NewDiurnal(net, rand.New(rand.NewSource(seed)), 12, 0.5, 0.02)
	if err != nil {
		return err
	}
	tb := metrics.NewTable("hour", "load factor", "chain", "satisfaction", "recomposed")
	for h := 1; h <= 12; h++ {
		factor := day.Step()
		changed, err := sess.Reevaluate()
		if err != nil {
			return err
		}
		mark := ""
		if changed {
			mark = "yes"
		}
		tb.AddRow(h*2, fmt.Sprintf("%.2f", factor),
			core.PathString(sess.Result().Path),
			core.DisplaySat(sess.Result().Satisfaction), mark)
	}
	tb.Render(os.Stdout)
	return nil
}
