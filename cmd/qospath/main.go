// Command qospath composes an adaptation chain from a JSON profile set.
//
// Usage:
//
//	qospath -in profiles.json            # compose and print the chain
//	qospath -in profiles.json -trace     # include the Table 1 style trace
//	qospath -in profiles.json -dot       # print the adaptation graph (DOT)
//	qospath -example > profiles.json     # emit a ready-to-edit example set
//	cat profiles.json | qospath          # read from stdin
//	qospath -seed-store ./profiles       # write the example set into a store
//	qospath -store ./profiles -user alice -content clip-1 -device phone-1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qoschain"
	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/store"
)

func main() {
	in := flag.String("in", "-", "profile set JSON file ('-' for stdin)")
	trace := flag.Bool("trace", false, "print the per-round selection trace")
	dot := flag.Bool("dot", false, "print the adaptation graph in DOT form")
	prune := flag.Bool("prune", false, "prune useless vertices before selection")
	contact := flag.String("contact", "", "contact class for per-contact preferences")
	example := flag.Bool("example", false, "print an example profile set and exit")
	storeDir := flag.String("store", "", "assemble the profile set from this store directory")
	seedStore := flag.String("seed-store", "", "write the example profiles into this store directory and exit")
	user := flag.String("user", "", "user name to assemble from the store")
	content := flag.String("content", "", "content ID to assemble from the store")
	device := flag.String("device", "", "device ID to assemble from the store")
	flag.Parse()

	if *example {
		if err := exampleSet().Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *seedStore != "" {
		if err := seedExampleStore(*seedStore); err != nil {
			fatal(err)
		}
		fmt.Printf("seeded example profiles into %s\n", *seedStore)
		return
	}

	var set *profile.Set
	if *storeDir != "" {
		if *user == "" || *content == "" || *device == "" {
			fatal(fmt.Errorf("-store requires -user, -content and -device"))
		}
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		set, err = st.Assemble(*user, *content, *device)
		if err != nil {
			fatal(err)
		}
	} else {
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		var err error
		set, err = profile.DecodeSet(r)
		if err != nil {
			fatal(err)
		}
	}

	comp, err := qoschain.Compose(set, qoschain.Options{
		Trace:   *trace,
		Prune:   *prune,
		Contact: profile.ContactClass(*contact),
	})
	if err != nil {
		fatal(err)
	}
	if *dot {
		if err := comp.Graph.WriteDOTHighlight(os.Stdout, "adaptation",
			comp.Result.Path, comp.Result.Formats); err != nil {
			fatal(err)
		}
		return
	}
	if *trace {
		fmt.Print(comp.Result.TraceTable())
		fmt.Println()
	}
	fmt.Println(comp.Result.Summary())
	fmt.Println("per-parameter satisfaction:")
	for name, sat := range comp.Explain() {
		fmt.Printf("  %-12s %.3f\n", name, sat)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qospath:", err)
	os.Exit(1)
}

// seedExampleStore persists the example profiles into a store directory.
func seedExampleStore(dir string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	set := exampleSet()
	if err := st.PutUser(&set.User); err != nil {
		return err
	}
	if err := st.PutContent(&set.Content); err != nil {
		return err
	}
	if err := st.PutDevice(&set.Device); err != nil {
		return err
	}
	if err := st.PutNetwork(&set.Network); err != nil {
		return err
	}
	for i := range set.Intermediaries {
		if err := st.PutIntermediary(&set.Intermediaries[i]); err != nil {
			return err
		}
	}
	return nil
}

// exampleSet is a ready-to-edit profile set: a phone pulling an MPEG-1
// clip through one proxy.
func exampleSet() *profile.Set {
	return &profile.Set{
		User: profile.User{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
			Budget: 100,
		},
		Content: profile.Content{
			ID:    "clip-1",
			Title: "example clip",
			Variants: []media.Descriptor{
				{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
			},
		},
		Device: profile.Device{
			ID:    "phone-1",
			Class: profile.ClassPhone,
			Hardware: profile.Hardware{
				CPUMips: 200, MemoryMB: 32,
				ScreenWidth: 176, ScreenHeight: 144, ColorDepth: 12, Speakers: 1,
			},
			Software: profile.Software{OS: "symbian", Decoders: []media.Format{media.VideoH263}},
		},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "p1", BandwidthKbps: 2400, DelayMs: 20},
			{From: "p1", To: "phone-1", BandwidthKbps: 1800, DelayMs: 40},
		}},
		Intermediaries: []profile.Intermediary{{
			Host: "p1", CPUMips: 2000, MemoryMB: 256,
			Services: []*service.Service{
				service.FormatConverter("conv1", media.VideoMPEG1, media.VideoH263),
			},
		}},
	}
}
