// Command registryd serves the trans-coding service registry over TCP —
// the SLP-like discovery daemon the paper's intermediary profiles assume.
// It also has client sub-modes for registering and querying services.
//
// Usage:
//
//	registryd -listen 127.0.0.1:7007                    # run the daemon
//	registryd -addr 127.0.0.1:7007 -register svc.json   # advertise a service
//	registryd -addr 127.0.0.1:7007 -byinput video/mpeg1 # query by input format
//	registryd -addr 127.0.0.1:7007 -all                 # list everything
//
// With -debug-addr the daemon additionally serves pprof (mutex and
// block profiling enabled), /debug/vars, and a /metrics exposition of
// the lease-sweep counters on a private HTTP listener.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qoschain/internal/debugz"
	"qoschain/internal/httpapi"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/registry"
	"qoschain/internal/service"
	"qoschain/internal/trace"
)

func main() {
	listen := flag.String("listen", "", "serve the registry on this address")
	addr := flag.String("addr", "127.0.0.1:7007", "registry address for client modes")
	registerFile := flag.String("register", "", "register the service description in this JSON file")
	lease := flag.Duration("lease", time.Hour, "lease duration for -register")
	byInput := flag.String("byinput", "", "query services accepting this format")
	byOutput := flag.String("byoutput", "", "query services producing this format")
	all := flag.Bool("all", false, "list all registered services")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "close connections idle for this long (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "per-response write deadline (0 disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "drain window before in-flight connections are force-closed")
	debugAddr := flag.String("debug-addr", "", "private diagnostics listener (pprof with mutex/block profiling, /debug/vars, /metrics, /debug/traces)")
	accessLog := flag.String("access-log", "", "append one line per wire request to this file (\"-\" for stderr)")
	flag.Parse()

	if *listen != "" {
		serve(*listen, registry.ServeOptions{
			IdleTimeout:  *idleTimeout,
			WriteTimeout: *writeTimeout,
		}, *shutdownGrace, *debugAddr, *accessLog)
		return
	}

	client, err := registry.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	switch {
	case *registerFile != "":
		data, err := os.ReadFile(*registerFile)
		if err != nil {
			fatal(err)
		}
		var svc service.Service
		if err := json.Unmarshal(data, &svc); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *registerFile, err))
		}
		if err := client.Register(&svc, *lease); err != nil {
			fatal(err)
		}
		fmt.Printf("registered %s (lease %s)\n", svc.ID, *lease)
	case *byInput != "":
		f, err := media.ParseFormat(*byInput)
		if err != nil {
			fatal(err)
		}
		svcs, err := client.ByInput(f)
		if err != nil {
			fatal(err)
		}
		printServices(svcs)
	case *byOutput != "":
		f, err := media.ParseFormat(*byOutput)
		if err != nil {
			fatal(err)
		}
		svcs, err := client.ByOutput(f)
		if err != nil {
			fatal(err)
		}
		printServices(svcs)
	case *all:
		svcs, err := client.All()
		if err != nil {
			fatal(err)
		}
		printServices(svcs)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func serve(listenAddr string, opts registry.ServeOptions, grace time.Duration, debugAddr, accessLog string) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fatal(err)
	}
	reg := registry.New()

	// Observability: per-op metrics and traces on every wire request —
	// lease traffic (register/renew) and cluster membership
	// (join/mrenew/leave/members) alike — served from the diagnostics
	// listener, plus an optional access log.
	mreg := metrics.NewRegistry()
	mreg.Add("registry.sweeps", 0)
	mreg.Add("registry.swept_leases", 0)
	tracer := trace.NewTracer(256)
	opts.Metrics = mreg
	opts.Tracer = tracer
	switch accessLog {
	case "":
	case "-":
		opts.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.AccessLog = f
	}

	srv := registry.ServeOpts(reg, ln, opts)
	fmt.Printf("registryd: serving on %s\n", srv.Addr())

	if debugAddr != "" {
		debugz.EnableProfiling()
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("registryd: diagnostics on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			// The same observability middleware the API daemons use wraps
			// the diagnostics mux, so even debug traffic carries trace IDs
			// and lands in the access log.
			h := httpapi.WithObservability(debugz.Handler(mreg, tracer), httpapi.ObsConfig{
				Registry:  mreg,
				Tracer:    tracer,
				AccessLog: opts.AccessLog,
			})
			dsrv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "registryd: debug listener:", err)
			}
		}()
	}

	// Sweep expired leases periodically; SIGINT/SIGTERM stops accepting
	// and drains in-flight connections before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			mreg.Inc("registry.sweeps")
			if n := reg.Sweep(); n > 0 {
				mreg.Add("registry.swept_leases", int64(n))
				fmt.Printf("registryd: swept %d expired leases\n", n)
			}
		case <-ctx.Done():
			stop()
			fmt.Println("registryd: shutting down")
			shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
			defer cancel()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				fatal(err)
			}
			return
		}
	}
}

func printServices(svcs []*service.Service) {
	if len(svcs) == 0 {
		fmt.Println("(none)")
		return
	}
	for _, s := range svcs {
		host := s.Host
		if host == "" {
			host = "-"
		}
		fmt.Printf("%-12s host=%-10s %s\n", s.ID, host, s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "registryd:", err)
	os.Exit(1)
}
