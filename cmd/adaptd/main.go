// Command adaptd serves the composition framework over HTTP: content
// servers and proxies POST a profile set and receive the selected
// adaptation chain.
//
// Usage:
//
//	adaptd -listen 127.0.0.1:8080
//
// Overload protection (see internal/admission) is opt-in:
//
//	adaptd -max-inflight 64 -request-timeout 2s -rate 50
//
// Durable session state (see internal/journal) is opt-in: with
// -state-dir every session command is journaled through a checksummed
// write-ahead log and replayed on the next start, so a crash (even a
// SIGKILL mid-write) loses nothing that was acknowledged. Recovery
// re-applies bandwidth reservations, reconciles holds whose links died,
// and reports what it rebuilt on /healthz.
//
//	adaptd -state-dir /var/lib/adaptd -snapshot-every 64
//
// Observability is always on: every response carries an X-Trace-Id
// header, GET /metrics serves the Prometheus text exposition, and
// GET /debug/traces returns the last completed request traces. An
// access log (-access-log) and a private pprof/expvar listener with
// mutex and block profiling (-debug-addr) are opt-in:
//
//	adaptd -access-log - -debug-addr 127.0.0.1:8081
//
// Replicated operation (see internal/cluster) is opt-in: with
// -cluster-id the daemon joins a cluster through a registryd membership
// lease, ships its session journal to the rendezvous-elected follower,
// and mirrors the followers that elect it. A router (or any peer) can
// then promote a dead node's replica and adopt its sessions.
//
//	adaptd -state-dir /var/lib/adaptd -cluster-id n1 \
//	    -cluster-registry 127.0.0.1:7600 -overlay-host p1
//
// Endpoints: GET /healthz, GET /v1/formats, POST /v1/compose,
// POST /v1/composeBatch, POST /v1/graph — see internal/httpapi for the
// contract. Cluster nodes additionally serve POST /v1/cluster/ship,
// POST /v1/cluster/promote and GET /v1/cluster/status. Example:
//
//	qospath -example | curl -s -X POST --data-binary @- \
//	    'http://127.0.0.1:8080/v1/compose?trace=1'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qoschain/internal/cluster"
	"qoschain/internal/debugz"
	"qoschain/internal/httpapi"
	"qoschain/internal/metrics"
	"qoschain/internal/registry"
	"qoschain/internal/session"
	"qoschain/internal/store"
	"qoschain/internal/storm"
	"qoschain/internal/trace"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	storeDir := flag.String("store", "", "profile store directory (enables /v1/profiles and /v1/compose/byref)")
	maxInFlight := flag.Int("max-inflight", 0, "cap on concurrently served requests (0 disables the limiter)")
	maxQueue := flag.Int("max-queue", 0, "requests allowed to wait for a slot (default 4x -max-inflight; -1 for none)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline propagated into the planner (0 unbounded)")
	rate := flag.Float64("rate", 0, "per-client requests per second (0 disables rate limiting)")
	burst := flag.Float64("burst", 0, "per-client token-bucket depth (default 2x -rate)")
	stateDir := flag.String("state-dir", "", "session state directory (enables the write-ahead journal and crash recovery)")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal commands between compacting snapshots (0 = default 64)")
	debugAddr := flag.String("debug-addr", "", "private diagnostics listener (pprof with mutex/block profiling, /debug/vars, /metrics, /debug/traces)")
	accessLog := flag.String("access-log", "", "write one structured line per request to this file (\"-\" for stdout)")
	traceKeep := flag.Int("trace-keep", trace.DefaultKeep, "completed request traces kept for /debug/traces")
	clusterID := flag.String("cluster-id", "", "node ID in a replicated composition tier (requires -state-dir and -cluster-registry)")
	clusterRegistry := flag.String("cluster-registry", "", "registryd address holding the cluster's membership leases")
	advertise := flag.String("advertise", "", "address other nodes reach this one at (default: the bound listen address)")
	overlayHost := flag.String("overlay-host", "", "overlay host this node represents; injected as a host crash when a peer promotes our replica")
	clusterLease := flag.Duration("cluster-lease", 10*time.Second, "membership lease TTL; a node silent past this is declared dead")
	shipInterval := flag.Duration("ship-interval", time.Second, "how often the journal is shipped to the follower (also the heartbeat cadence)")
	stormAttach := flag.Bool("storm-attach", false, "attach /v1/sessions to the storm controller: sessions fold into fingerprint-keyed equivalence classes on shared region overlays and faults re-compose class-at-a-time (with -cluster-id the class state replicates in the shipped WAL)")
	flag.Parse()

	if *clusterID != "" && (*stateDir == "" || *clusterRegistry == "") {
		fmt.Fprintln(os.Stderr, "adaptd: -cluster-id requires -state-dir and -cluster-registry")
		os.Exit(1)
	}

	// One registry and tracer observe the whole process: every handler
	// layer writes into them, /metrics and /debug/traces read from them,
	// and expvar mirrors the registry for stock tooling.
	reg := metrics.NewRegistry()
	metrics.RegisterWellKnown(reg)
	metrics.PublishExpvar("qoschain", reg)
	tracer := trace.NewTracer(*traceKeep)

	var opts httpapi.Options
	opts.Metrics = reg
	if !*stormAttach {
		// The standalone storm controller owns mass re-composition state.
		// The daemon's overlay regions attach at runtime; even before any
		// do, /healthz carries the storm section and /metrics the storm.*
		// counters. With -storm-attach the session manager embeds the
		// controller instead, and /healthz reports that one.
		storms, err := storm.Open(storm.Config{Counters: metrics.CountersOn(reg)}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd: storm controller:", err)
			os.Exit(1)
		}
		defer storms.Close()
		opts.Storm = storms
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		opts.Store = st
	}
	var sessions *session.Manager
	var node *cluster.Node
	if *stateDir != "" {
		if *clusterID != "" {
			var err error
			node, err = cluster.NewNode(cluster.NodeConfig{
				ID:            *clusterID,
				StateDir:      *stateDir,
				Host:          *overlayHost,
				SnapshotEvery: *snapshotEvery,
				Counters:      metrics.CountersOn(reg),
				Storm:         *stormAttach,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptd: recovering cluster state:", err)
				os.Exit(1)
			}
			sessions = node.Manager()
			opts.Sessions = node
		} else {
			var err error
			sessions, err = session.NewManager(session.ManagerConfig{
				StateDir:      *stateDir,
				SnapshotEvery: *snapshotEvery,
				Counters:      metrics.CountersOn(reg),
				Storm:         *stormAttach,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptd: recovering state:", err)
				os.Exit(1)
			}
			opts.Sessions = sessions
		}
		rec := sessions.Recovery()
		if rec.Sessions > 0 || rec.JournalRecords > 0 || rec.TruncatedBytes > 0 {
			fmt.Printf("adaptd: recovered %d sessions (snapshot seq %d, %d journal records, %d torn bytes truncated)\n",
				rec.Sessions, rec.SnapshotSeq, rec.JournalRecords, rec.TruncatedBytes)
		}
		for _, msg := range rec.ReplayErrors {
			fmt.Fprintln(os.Stderr, "adaptd: replay:", msg)
		}
		// Release or re-compose around holds whose links died with the
		// previous process. In storm-attached mode this also finishes any
		// storm the journal left open (begin without end).
		if rep := sessions.Reconcile(); rep.Recomposed > 0 {
			fmt.Printf("adaptd: reconciled %d sessions, released %.0f kbps of stale holds\n",
				rep.Recomposed, rep.ReleasedKbps)
		}
	} else if *stormAttach {
		// No journal: class state dies with the process, but the live
		// path — shared regions, class-at-a-time re-composition — is the
		// same.
		var err error
		sessions, err = session.NewManager(session.ManagerConfig{
			Storm:    true,
			Counters: metrics.CountersOn(reg),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		opts.Sessions = sessions
	}
	if *stormAttach {
		// /healthz reports the embedded controller.
		opts.Storm = sessions.StormController()
	}
	handler := httpapi.HandlerWithOptions(opts)
	handler = httpapi.WithAdmission(handler, httpapi.AdmissionConfig{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *requestTimeout,
		Rate:           *rate,
		Burst:          *burst,
		Metrics:        metrics.CountersOn(reg),
	})
	// Cluster endpoints (ship/promote/status) mount outside admission —
	// replication must not be shed with client traffic — but inside the
	// observability layer, so they are traced and counted.
	if node != nil {
		handler = node.Handler(handler)
	}
	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		defer f.Close()
		accessW = f
	}
	// Observability is the outermost layer so shed and rate-limited
	// requests are still traced, logged and counted, and so /metrics and
	// /debug/traces answer while the API is refusing work.
	handler = httpapi.WithObservability(handler, httpapi.ObsConfig{
		Registry:  reg,
		Tracer:    tracer,
		AccessLog: accessW,
	})

	if *debugAddr != "" {
		debugz.EnableProfiling()
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		fmt.Printf("adaptd: diagnostics on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			dsrv := &http.Server{Handler: debugz.Handler(reg, tracer), ReadHeaderTimeout: 5 * time.Second}
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "adaptd: debug listener:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptd:", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	fmt.Printf("adaptd: serving on http://%s\n", ln.Addr())

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
	// drains in-flight requests before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cluster heartbeat: keep the membership lease alive (self-healing
	// across registryd restarts), learn the membership, and ship the
	// journal suffix to the rendezvous-elected follower. One loop does
	// all three so a node is exactly as alive as its replication stream.
	if node != nil {
		addr := *advertise
		if addr == "" {
			addr = ln.Addr().String()
		}
		// The registry speaks a plain TCP protocol; forgive a pasted URL.
		regAddr := strings.TrimPrefix(strings.TrimPrefix(*clusterRegistry, "http://"), "https://")
		registrar := registry.NewRegistrar(registry.RegistrarConfig{
			Addr:    regAddr,
			Lease:   *clusterLease,
			Timeout: 5 * time.Second,
			Member:  &registry.Member{ID: *clusterID, Addr: addr, Host: *overlayHost},
		})
		defer registrar.Close()
		fmt.Printf("adaptd: cluster node %s advertising %s (registry %s, lease %v)\n",
			*clusterID, addr, *clusterRegistry, *clusterLease)
		go func() {
			tick := time.NewTicker(*shipInterval)
			defer tick.Stop()
			var lastErr string
			report := func(err error) {
				// Log state transitions, not every failing tick; the
				// live stream state is on /healthz.
				msg := ""
				if err != nil {
					msg = err.Error()
				}
				if msg != lastErr && msg != "" {
					fmt.Fprintln(os.Stderr, "adaptd: cluster:", msg)
				}
				lastErr = msg
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				hctx, cancel := context.WithTimeout(ctx, *shipInterval+5*time.Second)
				err := registrar.Heartbeat(hctx)
				if err == nil {
					var members []registry.Member
					if members, err = registrar.Members(hctx); err == nil {
						if follower, ok := cluster.FollowerOf(members, *clusterID); ok {
							node.Shipper().SetPeer(follower)
							_, err = node.Shipper().Ship(hctx)
						}
					}
				}
				cancel()
				report(err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("adaptd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "adaptd: shutdown:", err)
			os.Exit(1)
		}
		// A clean exit snapshots the session state, compacting the
		// journal to exactly the live sessions (and, on a cluster node,
		// every replica's mirror).
		switch {
		case node != nil:
			if err := node.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "adaptd: closing state:", err)
				os.Exit(1)
			}
		case sessions != nil:
			if err := sessions.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "adaptd: closing state:", err)
				os.Exit(1)
			}
		}
	}
}
