// Command adaptd serves the composition framework over HTTP: content
// servers and proxies POST a profile set and receive the selected
// adaptation chain.
//
// Usage:
//
//	adaptd -listen 127.0.0.1:8080
//
// Overload protection (see internal/admission) is opt-in:
//
//	adaptd -max-inflight 64 -request-timeout 2s -rate 50
//
// Durable session state (see internal/journal) is opt-in: with
// -state-dir every session command is journaled through a checksummed
// write-ahead log and replayed on the next start, so a crash (even a
// SIGKILL mid-write) loses nothing that was acknowledged. Recovery
// re-applies bandwidth reservations, reconciles holds whose links died,
// and reports what it rebuilt on /healthz.
//
//	adaptd -state-dir /var/lib/adaptd -snapshot-every 64
//
// Observability is always on: every response carries an X-Trace-Id
// header, GET /metrics serves the Prometheus text exposition, and
// GET /debug/traces returns the last completed request traces. An
// access log (-access-log) and a private pprof/expvar listener with
// mutex and block profiling (-debug-addr) are opt-in:
//
//	adaptd -access-log - -debug-addr 127.0.0.1:8081
//
// Endpoints: GET /healthz, GET /v1/formats, POST /v1/compose,
// POST /v1/composeBatch, POST /v1/graph — see internal/httpapi for the
// contract. Example:
//
//	qospath -example | curl -s -X POST --data-binary @- \
//	    'http://127.0.0.1:8080/v1/compose?trace=1'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qoschain/internal/debugz"
	"qoschain/internal/httpapi"
	"qoschain/internal/metrics"
	"qoschain/internal/session"
	"qoschain/internal/store"
	"qoschain/internal/trace"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	storeDir := flag.String("store", "", "profile store directory (enables /v1/profiles and /v1/compose/byref)")
	maxInFlight := flag.Int("max-inflight", 0, "cap on concurrently served requests (0 disables the limiter)")
	maxQueue := flag.Int("max-queue", 0, "requests allowed to wait for a slot (default 4x -max-inflight; -1 for none)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline propagated into the planner (0 unbounded)")
	rate := flag.Float64("rate", 0, "per-client requests per second (0 disables rate limiting)")
	burst := flag.Float64("burst", 0, "per-client token-bucket depth (default 2x -rate)")
	stateDir := flag.String("state-dir", "", "session state directory (enables the write-ahead journal and crash recovery)")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal commands between compacting snapshots (0 = default 64)")
	debugAddr := flag.String("debug-addr", "", "private diagnostics listener (pprof with mutex/block profiling, /debug/vars, /metrics, /debug/traces)")
	accessLog := flag.String("access-log", "", "write one structured line per request to this file (\"-\" for stdout)")
	traceKeep := flag.Int("trace-keep", trace.DefaultKeep, "completed request traces kept for /debug/traces")
	flag.Parse()

	// One registry and tracer observe the whole process: every handler
	// layer writes into them, /metrics and /debug/traces read from them,
	// and expvar mirrors the registry for stock tooling.
	reg := metrics.NewRegistry()
	metrics.RegisterWellKnown(reg)
	metrics.PublishExpvar("qoschain", reg)
	tracer := trace.NewTracer(*traceKeep)

	var opts httpapi.Options
	opts.Metrics = reg
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		opts.Store = st
	}
	var sessions *session.Manager
	if *stateDir != "" {
		var err error
		sessions, err = session.NewManager(session.ManagerConfig{
			StateDir:      *stateDir,
			SnapshotEvery: *snapshotEvery,
			Counters:      metrics.CountersOn(reg),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd: recovering state:", err)
			os.Exit(1)
		}
		rec := sessions.Recovery()
		if rec.Sessions > 0 || rec.JournalRecords > 0 || rec.TruncatedBytes > 0 {
			fmt.Printf("adaptd: recovered %d sessions (snapshot seq %d, %d journal records, %d torn bytes truncated)\n",
				rec.Sessions, rec.SnapshotSeq, rec.JournalRecords, rec.TruncatedBytes)
		}
		for _, msg := range rec.ReplayErrors {
			fmt.Fprintln(os.Stderr, "adaptd: replay:", msg)
		}
		// Release or re-compose around holds whose links died with the
		// previous process.
		if rep := sessions.Reconcile(); rep.Recomposed > 0 {
			fmt.Printf("adaptd: reconciled %d sessions, released %.0f kbps of stale holds\n",
				rep.Recomposed, rep.ReleasedKbps)
		}
		opts.Sessions = sessions
	}
	handler := httpapi.HandlerWithOptions(opts)
	handler = httpapi.WithAdmission(handler, httpapi.AdmissionConfig{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *requestTimeout,
		Rate:           *rate,
		Burst:          *burst,
		Metrics:        metrics.CountersOn(reg),
	})
	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		defer f.Close()
		accessW = f
	}
	// Observability is the outermost layer so shed and rate-limited
	// requests are still traced, logged and counted, and so /metrics and
	// /debug/traces answer while the API is refusing work.
	handler = httpapi.WithObservability(handler, httpapi.ObsConfig{
		Registry:  reg,
		Tracer:    tracer,
		AccessLog: accessW,
	})

	if *debugAddr != "" {
		debugz.EnableProfiling()
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		fmt.Printf("adaptd: diagnostics on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			dsrv := &http.Server{Handler: debugz.Handler(reg, tracer), ReadHeaderTimeout: 5 * time.Second}
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "adaptd: debug listener:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptd:", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	fmt.Printf("adaptd: serving on http://%s\n", ln.Addr())

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
	// drains in-flight requests before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("adaptd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "adaptd: shutdown:", err)
			os.Exit(1)
		}
		// A clean exit snapshots the session state, compacting the
		// journal to exactly the live sessions.
		if sessions != nil {
			if err := sessions.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "adaptd: closing state:", err)
				os.Exit(1)
			}
		}
	}
}
