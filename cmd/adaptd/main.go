// Command adaptd serves the composition framework over HTTP: content
// servers and proxies POST a profile set and receive the selected
// adaptation chain.
//
// Usage:
//
//	adaptd -listen 127.0.0.1:8080
//
// Overload protection (see internal/admission) is opt-in:
//
//	adaptd -max-inflight 64 -request-timeout 2s -rate 50
//
// Endpoints: GET /healthz, GET /v1/formats, POST /v1/compose,
// POST /v1/composeBatch, POST /v1/graph — see internal/httpapi for the
// contract. Example:
//
//	qospath -example | curl -s -X POST --data-binary @- \
//	    'http://127.0.0.1:8080/v1/compose?trace=1'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qoschain/internal/httpapi"
	"qoschain/internal/store"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	storeDir := flag.String("store", "", "profile store directory (enables /v1/profiles and /v1/compose/byref)")
	maxInFlight := flag.Int("max-inflight", 0, "cap on concurrently served requests (0 disables the limiter)")
	maxQueue := flag.Int("max-queue", 0, "requests allowed to wait for a slot (default 4x -max-inflight; -1 for none)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline propagated into the planner (0 unbounded)")
	rate := flag.Float64("rate", 0, "per-client requests per second (0 disables rate limiting)")
	burst := flag.Float64("burst", 0, "per-client token-bucket depth (default 2x -rate)")
	flag.Parse()

	handler := httpapi.Handler()
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
		handler = httpapi.HandlerWithStore(st)
	}
	handler = httpapi.WithAdmission(handler, httpapi.AdmissionConfig{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *requestTimeout,
		Rate:           *rate,
		Burst:          *burst,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptd:", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	fmt.Printf("adaptd: serving on http://%s\n", ln.Addr())

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
	// drains in-flight requests before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "adaptd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("adaptd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "adaptd: shutdown:", err)
			os.Exit(1)
		}
	}
}
