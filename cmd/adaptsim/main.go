// Command adaptsim runs an end-to-end adaptation simulation: it generates
// a random overlay of proxies and trans-coding services, composes a chain
// for a heterogeneous device population, streams synthetic media through
// the selected pipelines, and (optionally) drives a bandwidth random walk
// that forces the sessions to re-compose.
//
// Usage:
//
//	adaptsim -services 40 -devices 5 -steps 10 -seed 7
//	adaptsim -services 40 -batch 64                # parallel batch planning
//	adaptsim -scenario docs/scenarios/churn.json   # declarative simulation
//
// Every mode accepts -metrics-out <file> to dump the final metrics
// registry snapshot as JSON next to the human-readable stdout tables.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/fault"
	"qoschain/internal/journal"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/paperexample"
	"qoschain/internal/pipeline"
	"qoschain/internal/satisfaction"
	"qoschain/internal/session"
	"qoschain/internal/sim"
	"qoschain/internal/trace"
	"qoschain/internal/workload"
)

// metricsOutPath is the -metrics-out destination: every mode dumps its
// final metrics registry there as JSON on completion, as the
// machine-readable companion of the stdout tables. Empty disables it.
var metricsOutPath string

// dumpMetrics writes the counters' registry snapshot as indented JSON
// to the -metrics-out file. The stdout tables are unaffected.
func dumpMetrics(c *metrics.Counters) {
	if metricsOutPath == "" {
		return
	}
	if c == nil {
		c = metrics.NewCounters()
	}
	data, err := json.MarshalIndent(c.Registry().Snapshot(), "", "  ")
	if err == nil {
		err = os.WriteFile(metricsOutPath, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim: writing -metrics-out:", err)
		os.Exit(1)
	}
}

// renderSpanStats prints the tracer's per-span aggregate — the trace
// summary the failure harnesses end their reports with.
func renderSpanStats(tracer *trace.Tracer) {
	stats := tracer.SpanStats()
	if len(stats) == 0 {
		return
	}
	fmt.Println("\n-- trace summary (spans over kept traces) --")
	tb := metrics.NewTable("span", "count", "total ms", "mean ms", "max ms")
	for _, st := range stats {
		tb.AddRow(st.Name, st.Count,
			fmt.Sprintf("%.2f", st.TotalMs), fmt.Sprintf("%.3f", st.MeanMs), fmt.Sprintf("%.3f", st.MaxMs))
	}
	tb.Render(os.Stdout)
}

func main() {
	services := flag.Int("services", 20, "number of trans-coding services in the random scenario")
	devices := flag.Int("devices", 3, "number of receiving devices to compose for")
	steps := flag.Int("steps", 5, "fluctuation steps to simulate")
	frames := flag.Int("frames", 300, "source frames per streamed session")
	seed := flag.Int64("seed", 42, "random seed")
	scenarioFile := flag.String("scenario", "", "run a declarative JSON scenario instead")
	markdown := flag.Bool("markdown", false, "with -scenario: emit the report as Markdown")
	batch := flag.Int("batch", 0, "plan this many receiver profiles against one shared graph and exit")
	chaos := flag.Bool("chaos", false, "inject a seeded fault schedule against the Figure 6 deployment and report availability")
	crash := flag.Bool("crash", false, "kill a durable Figure 6 deployment at every journal failpoint under the seed and verify byte-identical recovery with zero leaked bandwidth")
	overload := flag.Bool("overload", false, "drive a seeded 10x burst through the admission layers under a virtual clock and report the admitted/queued/shed breakdown")
	clusterFlag := flag.Bool("cluster", false, "run a 3-replica Figure 6 deployment with WAL shipping, kill a node mid-run, and verify byte-identical failover with zero leaked bandwidth")
	trials := flag.Int("trials", 5, "with -cluster: how many seeded kill scenarios to run")
	stormFlag := flag.Bool("storm", false, "inject a seeded correlated backbone event over a scaled Figure 6 deployment and mass re-compose by equivalence class, verifying sub-linear Select cost, zero leaked bandwidth, and per-session plan equivalence")
	stormSessions := flag.Int("storm-sessions", 100000, "with -storm: total session count")
	stormRegions := flag.Int("storm-regions", 4, "with -storm: number of network regions")
	stormClasses := flag.Int("storm-classes", 8, "with -storm: equivalence classes per region")
	stormVerify := flag.Bool("storm-verify", true, "with -storm: run the naive per-session Select equivalence check")
	stormCluster := flag.Bool("storm-cluster", false, "drive live /v1/sessions against a storm-attached replicated pair, kill the primary mid-storm, and verify the promoted follower resumes the open storm to the byte-identical fingerprint with zero leaked bandwidth")
	metricsOut := flag.String("metrics-out", "", "dump the final metrics registry snapshot as JSON to this file (tables stay on stdout)")
	flag.Parse()
	metricsOutPath = *metricsOut

	if *scenarioFile != "" {
		runScenario(*scenarioFile, *markdown)
		return
	}
	if *chaos {
		runChaos(*seed, *steps, *frames)
		return
	}
	if *crash {
		runCrash(*seed)
		return
	}
	if *overload {
		runOverload(*seed)
		return
	}
	if *clusterFlag {
		runCluster(*seed, *trials)
		return
	}
	if *stormFlag {
		runStorm(*seed, *stormSessions, *stormRegions, *stormClasses, *stormVerify)
		return
	}
	if *stormCluster {
		runStormCluster(*seed, *trials)
		return
	}
	if *batch > 0 {
		runBatch(rand.New(rand.NewSource(*seed)), *services, *batch)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	counters := metrics.NewCounters()

	fmt.Printf("adaptsim: %d services, %d devices, %d fluctuation steps (seed %d)\n\n",
		*services, *devices, *steps, *seed)

	// Part 1: compose and stream for a random scenario per device. All
	// chains share one executor worker pool — the deployment shape a
	// daemon would use — instead of goroutines-per-stage-per-device.
	fmt.Println("-- composition and streaming --")
	ex := pipeline.NewExecutor(0)
	type streamed struct {
		device string
		chain  string
		fps    float64
		handle *pipeline.Handle
	}
	var runs []streamed
	for d := 0; d < *devices; d++ {
		sc := workload.Generate(rng, workload.Spec{Services: *services})
		res, err := core.Select(sc.Graph, sc.Config)
		if err != nil {
			fmt.Fprintf(os.Stderr, "device %d: %v\n", d, err)
			continue
		}
		p, err := pipeline.FromResult(sc.Graph, res, pipeline.Options{Metrics: counters})
		if err != nil {
			fmt.Fprintf(os.Stderr, "device %d: %v\n", d, err)
			continue
		}
		h, err := ex.Submit(p, *frames)
		if err != nil {
			fmt.Fprintf(os.Stderr, "device %d: %v\n", d, err)
			continue
		}
		runs = append(runs, streamed{
			device: fmt.Sprintf("dev-%d", d),
			chain:  core.PathString(res.Path),
			fps:    res.Params.Get(media.ParamFrameRate),
			handle: h,
		})
	}
	tb := metrics.NewTable("device", "chain", "negotiated fps", "delivered fps", "frames out")
	for _, r := range runs {
		stats := r.handle.Wait()
		tb.AddRow(r.device, r.chain, r.fps, stats.DeliveredFPS, stats.FramesOut)
	}
	ex.Close()
	tb.Render(os.Stdout)

	// Part 2: a live session over the paper's Figure 6 network with a
	// bandwidth random walk.
	fmt.Println("\n-- session under fluctuation (Figure 6 network) --")
	net := paperexample.Table1Network()
	sess, err := session.New(session.Config{
		Content:      paperexample.Table1Content(),
		Device:       paperexample.Table1Device(),
		Services:     paperexample.Table1Services(true),
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "receiver",
		Select:       paperexample.Table1Config(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "session:", err)
		os.Exit(1)
	}
	walk, err := overlay.NewRandomWalk(net, rng, 0.4, 200, 4000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "walk:", err)
		os.Exit(1)
	}
	fmt.Printf("t=0  chain=%s sat=%s\n",
		core.PathString(sess.Result().Path), core.DisplaySat(sess.Result().Satisfaction))
	for t := 1; t <= *steps; t++ {
		walk.Step()
		changed, err := sess.Reevaluate()
		if err != nil {
			fmt.Fprintln(os.Stderr, "reevaluate:", err)
			os.Exit(1)
		}
		marker := ""
		if changed {
			marker = "  <- recomposed"
		}
		fmt.Printf("t=%d  chain=%s sat=%s%s\n", t,
			core.PathString(sess.Result().Path), core.DisplaySat(sess.Result().Satisfaction), marker)
	}
	fmt.Printf("recompositions: %d\n", sess.Recompositions())
	counters.Add("session.recompositions", int64(sess.Recompositions()))
	counters.Observe(metrics.SampleQoSSatisfaction, sess.Result().Satisfaction)
	dumpMetrics(counters)
}

// runChaos drives one failover session over the paper's Figure 6
// deployment while a seeded fault schedule crashes hosts, flaps links,
// collapses bandwidth, and churns services. Everything is derived from
// the seed, so a run is exactly reproducible; the summary reports the
// availability (steps with a healthy chain), failover and recovery
// counts, and the mean time to recover.
func runChaos(seed int64, steps, frames int) {
	net := paperexample.Table1Network()
	svcs := paperexample.Table1Services(true)
	pool := fault.NewServiceSet(svcs)
	counters := metrics.NewCounters()
	tracer := trace.NewTracer(steps + 1)

	setupTr := tracer.Start("chaos.setup")
	sess, err := session.NewCtx(trace.NewContext(context.Background(), setupTr), session.Config{
		Content:      paperexample.Table1Content(),
		Device:       paperexample.Table1Device(),
		Services:     svcs,
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "receiver",
		Select:       paperexample.Table1Config(),
		Pool:         pool,
		Failover: session.FailoverConfig{
			Enabled:           true,
			SatisfactionFloor: 0.3,
			JitterSeed:        seed,
			Sleep:             func(time.Duration) {}, // virtual time
			Metrics:           counters,
		},
	})
	setupTr.Finish()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos session:", err)
		os.Exit(1)
	}

	schedule := fault.RandomSchedule(fault.ChaosSpec{
		Seed:                  seed,
		Steps:                 steps,
		HostCrashRate:         0.15,
		LinkFlapRate:          0.10,
		BandwidthCollapseRate: 0.10,
		ServiceChurnRate:      0.10,
		LossSpikeRate:         0.05,
		Protected:             []string{"sender", "receiver"},
	}, net, svcs)
	inj, err := fault.NewInjector(net, pool, schedule)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos schedule:", err)
		os.Exit(1)
	}

	fmt.Printf("adaptsim: chaos over Figure 6 — %d steps, %d scheduled faults (seed %d)\n\n",
		steps, len(schedule), seed)
	fmt.Printf("t=0   chain=%s sat=%s\n",
		core.PathString(sess.Result().Path), core.DisplaySat(sess.Result().Satisfaction))

	healthy := 0
	for t := 1; t <= steps; t++ {
		fired := inj.Step()
		sess.Tick()
		stepTr := tracer.Start(fmt.Sprintf("chaos.step-%d", t))
		changed, rerr := sess.ReevaluateCtx(trace.NewContext(context.Background(), stepTr))
		stepTr.Finish()
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "reevaluate:", rerr)
			os.Exit(1)
		}
		if !sess.Degraded() {
			healthy++
		}
		if len(fired) > 0 || changed {
			marker := ""
			if changed {
				marker = "  <- recomposed"
			}
			if sess.Degraded() {
				marker += "  [degraded]"
			}
			faults := ""
			for _, f := range fired {
				faults += " " + f.String()
			}
			fmt.Printf("t=%-3d chain=%s sat=%s%s%s\n", t,
				core.PathString(sess.Result().Path),
				core.DisplaySat(sess.Result().Satisfaction), marker, faults)
		}
	}

	fmt.Printf("\navailability: %d/%d steps healthy (%.1f%%)\n",
		healthy, steps, 100*float64(healthy)/float64(steps))
	fmt.Printf("recompositions: %d, final chain: %s\n",
		sess.Recompositions(), core.PathString(sess.Result().Path))

	// Data plane: push frames through the surviving chain on the shared
	// batched executor, folding pipeline.* series into the chaos report.
	if !sess.Degraded() {
		ex := pipeline.NewExecutor(0)
		streamTr := tracer.Start("chaos.stream")
		stats, serr := sess.StreamOn(ex, frames, pipeline.Options{Metrics: counters})
		streamTr.Finish()
		ex.Close()
		if serr != nil {
			fmt.Fprintln(os.Stderr, "stream:", serr)
			os.Exit(1)
		}
		fmt.Printf("data plane: %d/%d frames delivered at %.1f fps over the final chain\n",
			stats.FramesOut, stats.FramesIn, stats.DeliveredFPS)
	}
	fmt.Println()
	counters.Render(os.Stdout)
	renderSpanStats(tracer)
	dumpMetrics(counters)
	if st := sess.FailoverStatus(); st.Degraded {
		fmt.Printf("\nsession ended DEGRADED: %s\n", st.LastError)
	}
}

// runOverload drives the deterministic overload experiment: a seeded
// 10x burst against the admission layers under a virtual clock (exact
// replayable breakdown), then capacity admission over the paper's
// Figure 6 network — sessions reserve their chain's bitrate on the
// overlay links until a composition no longer fits and is rejected
// before activation.
func runOverload(seed int64) {
	rep := sim.RunOverload(sim.OverloadSpec{Seed: seed})
	sp := rep.Spec
	fmt.Printf("adaptsim: overload — %d requests (%dx capacity %d, queue %d) over %v, service %v, deadline %v (seed %d)\n\n",
		rep.Requests, sp.BurstFactor, sp.Capacity, sp.MaxQueue, sp.Spread, sp.ServiceTime, sp.Deadline, seed)

	tb := metrics.NewTable("t (ms)", "arrivals", "rate-limited", "in flight", "queued", "completed", "expired")
	for _, t := range rep.Timeline {
		tb.AddRow(t.AtMs, t.Arrivals, t.RateLimited, t.InFlight, t.QueueLen, t.Completed, t.Expired)
	}
	tb.Render(os.Stdout)

	fmt.Printf("\nbreakdown: admitted %d (%d direct, %d after queueing), rate-limited %d, shed %d (queue full %d, deadline %d)\n",
		rep.Admitted, rep.AdmittedDirect, rep.Admitted-rep.AdmittedDirect,
		rep.RateLimited, rep.ShedQueueFull+rep.ShedExpired, rep.ShedQueueFull, rep.ShedExpired)
	fmt.Printf("completed %d/%d admitted over %d virtual ticks; accounted: %v\n",
		rep.Completed, rep.Admitted, rep.Ticks, rep.Accounted())
	fmt.Println()
	ctb := metrics.NewTable("counter", "value")
	keys := make([]string, 0, len(rep.Counters))
	for k := range rep.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ctb.AddRow(k, rep.Counters[k])
	}
	ctb.Render(os.Stdout)
	if qw := rep.QueueWait; qw.Count > 0 {
		fmt.Printf("\nqueue wait (virtual ms): n=%d mean=%.1f p50=%.1f p90=%.1f max=%.1f\n",
			qw.Count, qw.Mean, qw.P50, qw.P90, qw.Max)
	}

	// Part 2: capacity admission. Sessions over one shared Figure 6
	// overlay reserve their chain's bitrate before activation; the first
	// composition that no longer fits the free capacity is rejected with
	// the typed overlay error instead of oversubscribing a link.
	fmt.Println("\n-- capacity admission (Figure 6 network) --")
	net := paperexample.Table1Network()
	admitted := 0
	for i := 1; ; i++ {
		sess, err := session.New(session.Config{
			Content:          paperexample.Table1Content(),
			Device:           paperexample.Table1Device(),
			Services:         paperexample.Table1Services(true),
			Net:              net,
			SenderHost:       "sender",
			ReceiverHost:     "receiver",
			Select:           paperexample.Table1Config(),
			ReserveBandwidth: true,
		})
		if err != nil {
			// Saturation surfaces one of two ways: the reservation
			// check refuses an oversubscribing chain outright, or the
			// planner — which sees only unreserved headroom — finds no
			// feasible chain at all. Either way nothing was activated.
			switch {
			case errors.Is(err, overlay.ErrInsufficientCapacity):
				fmt.Printf("session %d REJECTED before activation (capacity): %v\n", i, err)
			case errors.Is(err, core.ErrNoChain):
				fmt.Printf("session %d REJECTED before activation (no chain fits the unreserved headroom): %v\n", i, err)
			default:
				fmt.Fprintln(os.Stderr, "overload session:", err)
				os.Exit(1)
			}
			break
		}
		var held float64
		for _, kbps := range sess.Reserved() {
			held += kbps
		}
		fmt.Printf("session %d admitted: chain=%s holding %.0f kbit/s across %d links (network total %.0f)\n",
			i, core.PathString(sess.Result().Path), held, len(sess.Reserved()), net.TotalReservedKbps())
		admitted++
		if admitted > 64 { // the Figure 6 links must saturate long before this
			fmt.Fprintln(os.Stderr, "overload: capacity never saturated")
			os.Exit(1)
		}
	}
	fmt.Printf("admitted %d sessions before saturation\n", admitted)

	// -metrics-out: fold the virtual-clock breakdown (delivered as a
	// plain map in the report) and the capacity outcome into one registry.
	out := metrics.NewCounters()
	for k, v := range rep.Counters {
		out.Add(k, v)
	}
	out.Add("overload.capacity_admitted", int64(admitted))
	dumpMetrics(out)
}

// runBatch builds one random adaptation graph and plans many receiver
// profiles against it with the GOMAXPROCS-bounded batch planner,
// comparing wall-clock time against planning the same profiles one by
// one.
func runBatch(rng *rand.Rand, services, receivers int) {
	sc := workload.Generate(rng, workload.Spec{Services: services})
	fmt.Printf("adaptsim: planning %d receiver profiles over one %d-service graph\n\n",
		receivers, services)

	// Each receiver wants a different ideal frame rate — heterogeneous
	// satisfaction profiles over one shared deployment.
	cfgs := make([]core.Config, receivers)
	ideals := make([]float64, receivers)
	for i := range cfgs {
		ideals[i] = 5 + 25*rng.Float64()
		cfgs[i] = core.Config{
			Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
				media.ParamFrameRate: satisfaction.Linear{M: 0, I: ideals[i]},
			}),
		}
	}

	seqStart := time.Now()
	for i := range cfgs {
		_, _ = core.Select(sc.Graph, cfgs[i])
	}
	seqDur := time.Since(seqStart)

	batchStart := time.Now()
	results := core.SelectBatch(sc.Graph, cfgs)
	batchDur := time.Since(batchStart)

	tb := metrics.NewTable("receiver", "ideal fps", "chain", "satisfaction")
	shown := receivers
	if shown > 10 {
		shown = 10
	}
	planned := 0
	for i, br := range results {
		if br.Err == nil {
			planned++
		}
		if i >= shown {
			continue
		}
		chain, sat := "(no chain)", "-"
		if br.Err == nil {
			chain = core.PathString(br.Result.Path)
			sat = core.DisplaySat(br.Result.Satisfaction)
		}
		tb.AddRow(fmt.Sprintf("recv-%d", i), fmt.Sprintf("%.1f", ideals[i]), chain, sat)
	}
	tb.Render(os.Stdout)
	if shown < receivers {
		fmt.Printf("... (%d more)\n", receivers-shown)
	}
	fmt.Printf("\nplanned %d/%d receivers\n", planned, receivers)
	fmt.Printf("sequential: %v   batch (%d workers): %v   speedup: %.2fx\n",
		seqDur, runtime.GOMAXPROCS(0), batchDur, float64(seqDur)/float64(batchDur))

	out := metrics.NewCounters()
	out.Add("batch.receivers", int64(receivers))
	out.Add("batch.planned", int64(planned))
	for _, br := range results {
		if br.Err == nil {
			out.Observe(metrics.HistSelectRounds, float64(br.Result.Expanded))
		}
	}
	dumpMetrics(out)
}

// runScenario executes a declarative sim scenario and prints its report.
func runScenario(path string, markdown bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim:", err)
		os.Exit(1)
	}
	defer f.Close()
	sc, err := sim.LoadScenario(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim:", err)
		os.Exit(1)
	}
	rep, err := sim.Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim:", err)
		os.Exit(1)
	}
	if markdown {
		if err := rep.RenderMarkdown(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
		out := metrics.NewCounters()
		out.Add("scenario.steps", int64(len(rep.Steps)))
		out.Add("scenario.sessions", int64(len(rep.Sessions)))
		out.Add("scenario.rejections", int64(rep.TotalRejections()))
		out.SetGauge("scenario.mean_satisfaction", rep.MeanSatisfaction())
		dumpMetrics(out)
		return
	}
	fmt.Printf("scenario %q: %d steps\n\n", rep.Name, len(rep.Steps))
	tb := metrics.NewTable("step", "arrivals", "departures", "active", "mean sat", "recomposed", "rejected")
	for _, s := range rep.Steps {
		tb.AddRow(s.Step, s.Arrivals, s.Departures, s.Active, s.MeanSat, s.Recompositions, s.Rejections)
	}
	tb.Render(os.Stdout)
	fmt.Println()
	st := metrics.NewTable("session", "user", "device", "arrived", "departed", "final chain", "final sat")
	for _, sess := range rep.Sessions {
		depart := "-"
		if sess.DepartStep > 0 {
			depart = fmt.Sprintf("%d", sess.DepartStep)
		}
		chain := sess.FinalPath
		if sess.Rejected {
			chain = "(rejected)"
		}
		st.AddRow(sess.ID, sess.User, sess.Device, sess.ArriveStep, depart, chain, sess.FinalSat)
	}
	st.Render(os.Stdout)
	fmt.Printf("\noverall mean satisfaction %.2f, rejections %d\n",
		rep.MeanSatisfaction(), rep.TotalRejections())

	out := metrics.NewCounters()
	out.Add("scenario.steps", int64(len(rep.Steps)))
	out.Add("scenario.sessions", int64(len(rep.Sessions)))
	out.Add("scenario.rejections", int64(rep.TotalRejections()))
	out.SetGauge("scenario.mean_satisfaction", rep.MeanSatisfaction())
	dumpMetrics(out)
}

// runCluster runs the replicated-tier failover scenario under several
// seeds: each trial stands up a 3-node cluster over real sockets,
// creates Figure 6 sessions through the routing tier while WAL batches
// ship to rendezvous-elected followers, kills a seeded victim node, and
// verifies the promoted replica is byte-identical with zero leaked
// bandwidth and a fenced zombie. Any violation exits nonzero, so the
// run doubles as the CI cluster smoke check.
func runCluster(seed int64, trials int) {
	if trials <= 0 {
		trials = 1
	}
	fmt.Printf("adaptsim: cluster failover over Figure 6 — %d trials (seeds %d..%d)\n\n",
		trials, seed, seed+int64(trials)-1)
	// One counter sink across every trial, so the closing distributions
	// aggregate the sweep.
	counters := metrics.NewCounters()
	tb := metrics.NewTable("seed", "victim", "adopter", "shipped", "adopted",
		"identical", "recomposed", "leak kbps", "fenced", "served", "recovery ms")
	failed := false
	for i := 0; i < trials; i++ {
		dir, err := os.MkdirTemp("", "adaptsim-cluster-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		rep, err := sim.RunCluster(sim.ClusterSpec{
			StateRoot: dir, Seed: seed + int64(i), Counters: counters,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptsim: seed %d: %v\n", seed+int64(i), err)
			os.Exit(1)
		}
		tb.AddRow(rep.Seed, rep.Victim, rep.Adopter, rep.ShippedRecords, rep.Adopted,
			rep.HashesIdentical, rep.Recomposed, rep.LeakKbps, rep.ZombieFenced,
			rep.ServedAfterFailover, fmt.Sprintf("%.2f", rep.RecoveryMs))
		if !rep.OK() {
			failed = true
			fmt.Fprintf(os.Stderr, "adaptsim: seed %d: %s\n", rep.Seed, rep.Err)
		}
	}
	tb.Render(os.Stdout)
	fmt.Println()
	counters.Render(os.Stdout)
	if rl := counters.SampleSummary(metrics.SampleClusterRecoveryMs); rl.Count > 0 {
		fmt.Printf("\nrecovery latency (ms): n=%d mean=%.2f p50=%.2f p90=%.2f max=%.2f\n",
			rl.Count, rl.Mean, rl.P50, rl.P90, rl.Max)
	}
	if lag := counters.SampleSummary(metrics.SampleReplicationLag); lag.Count > 0 {
		fmt.Printf("replication lag (records behind at ship): n=%d mean=%.2f p50=%.2f p90=%.2f max=%.2f\n",
			lag.Count, lag.Mean, lag.P50, lag.P90, lag.Max)
	}
	dumpMetrics(counters)
	if failed {
		fmt.Println("\ncluster failover: FAIL")
		os.Exit(1)
	}
	fmt.Println("\ncluster failover: every adopted session byte-identical, zero leaked kbps, zombies fenced")
}

// runCrash kills a durable Figure 6 deployment at every journal
// failpoint under one seed and verifies the recovery contract: the
// journal replays to the last committed command, the rebuilt session
// state is byte-identical to the state recorded at that sequence, and
// after reconciliation no reserved bandwidth leaks. Any violation exits
// nonzero, so the run doubles as the CI crash-recovery smoke check.
func runCrash(seed int64) {
	fmt.Printf("adaptsim: crash-recovery over Figure 6 — %d failpoints (seed %d)\n\n",
		len(journal.AllFailPoints), seed)
	tb := metrics.NewTable("failpoint", "committed seq", "recovered seq", "sessions",
		"torn bytes", "identical", "reconciled", "leak kbps")
	// One counter set and tracer span every failpoint scenario, so the
	// closing tables aggregate the whole sweep.
	counters := metrics.NewCounters()
	tracer := trace.NewTracer(len(journal.AllFailPoints) * 64)
	failed := false
	for _, point := range journal.AllFailPoints {
		dir, err := os.MkdirTemp("", "adaptsim-crash-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		rep, err := sim.RunCrash(sim.CrashSpec{
			StateDir: dir, Seed: seed, Point: point,
			Counters: counters, Tracer: tracer,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptsim: %s: %v\n", point, err)
			os.Exit(1)
		}
		tb.AddRow(string(point), rep.CommittedSeq, rep.RecoveredSeq, rep.Sessions,
			rep.TruncatedBytes, rep.Identical, rep.Reconciled, rep.LeakKbps)
		if !rep.OK() {
			failed = true
			fmt.Fprintf(os.Stderr, "adaptsim: %s: %s\n", point, rep.Err)
		}
	}
	tb.Render(os.Stdout)
	fmt.Println()
	counters.Render(os.Stdout)
	renderSpanStats(tracer)
	dumpMetrics(counters)
	if failed {
		fmt.Println("\ncrash recovery: FAIL")
		os.Exit(1)
	}
	fmt.Println("\ncrash recovery: every committed session recovered byte-identical, zero leaked kbps")
}

// runStormCluster drives the storm-safe live-path scenario under
// several seeds: live /v1/sessions creates against a storm-attached
// primary whose WAL ships to a follower, a correlated backbone fault
// that kills the primary after its first class fan-out, and a
// promotion that must resume the open storm to the reference run's
// byte-identical fingerprint with zero leaked bandwidth. Any violation
// exits nonzero, so the run doubles as the CI storm-cluster smoke
// check.
func runStormCluster(seed int64, trials int) {
	if trials <= 0 {
		trials = 1
	}
	fmt.Printf("adaptsim: storm-safe live path — %d trials (seeds %d..%d)\n\n",
		trials, seed, seed+int64(trials)-1)
	counters := metrics.NewCounters()
	tb := metrics.NewTable("seed", "classes", "sessions", "selects", "mismatches",
		"shipped", "halted", "resumed", "identical", "leak kbps", "recovery ms",
		"trace nodes", "1 storm id", "fed series")
	failed := false
	for i := 0; i < trials; i++ {
		dir, err := os.MkdirTemp("", "adaptsim-storm-cluster-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptsim:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		rep, err := sim.RunStormCluster(sim.StormClusterSpec{
			StateRoot: dir, Seed: seed + int64(i), Counters: counters,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptsim: seed %d: %v\n", seed+int64(i), err)
			os.Exit(1)
		}
		tb.AddRow(rep.Seed, rep.Classes, rep.Sessions, rep.RefSelectCalls,
			rep.RefMismatches, rep.ShippedRecords, rep.Halted, rep.ResumedClasses,
			rep.FingerprintsIdentical, fmt.Sprintf("%.3f", rep.LeakKbps),
			fmt.Sprintf("%.2f", rep.RecoveryMs),
			rep.TraceNodes, rep.FlightSingleID, rep.FederatedSeries)
		if !rep.OK() {
			failed = true
			fmt.Fprintf(os.Stderr, "adaptsim: seed %d: %s\n", rep.Seed, rep.Err)
		}
	}
	tb.Render(os.Stdout)
	fmt.Println()
	counters.Render(os.Stdout)
	dumpMetrics(counters)
	if failed {
		fmt.Println("\nstorm-safe live path: FAIL")
		os.Exit(1)
	}
	fmt.Println("\nstorm-safe live path: mid-storm failover resumed byte-identical, zero leaked kbps")
}

// runStorm injects a seeded correlated backbone event over a scaled
// multi-region Figure 6 deployment and mass re-composes every affected
// session by equivalence class. The run verifies the storm contract —
// sub-linear Select cost (≤ 0.05 calls per affected session), zero
// leaked bandwidth, and (with -storm-verify) byte-identical chains
// against the naive per-session re-evaluation — and exits nonzero on
// any violation, so it doubles as the CI storm smoke check.
func runStorm(seed int64, sessions, regions, classes int, verify bool) {
	fmt.Printf("adaptsim: backbone storm — %d sessions, %d regions × %d classes (seed %d, verify %v)\n\n",
		sessions, regions, classes, seed, verify)
	counters := metrics.NewCounters()
	rep, err := sim.RunStorm(sim.StormSpec{
		Seed:             seed,
		Sessions:         sessions,
		Regions:          regions,
		ClassesPerRegion: classes,
		Verify:           verify,
		Counters:         counters,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim:", err)
		os.Exit(1)
	}
	tb := metrics.NewTable("sessions", "classes", "backbone links", "affected classes",
		"affected sessions", "select calls", "selects/affected", "replanned",
		"degraded", "swap failed", "leak kbps")
	tb.AddRow(rep.Sessions, rep.Classes, rep.BackboneLinks, rep.AffectedClasses,
		rep.AffectedSessions, rep.SelectCalls, fmt.Sprintf("%.4f", rep.SelectsPerAff),
		rep.Replanned, rep.DegradedSessions, rep.SwapFailed,
		fmt.Sprintf("%.3f", rep.LeakKbps))
	tb.Render(os.Stdout)
	fmt.Printf("\ngraph cache: %d incremental repairs, %d full rebuilds\n",
		rep.CacheRepairs, rep.CacheRebuilds)
	if verify {
		fmt.Printf("equivalence: %d naive per-session checks, %d mismatches\n",
			rep.NaiveChecks, rep.Mismatches)
	}
	fmt.Printf("recovery: %.2f ms wall-clock for %d sessions\n", rep.RecoveryMs, rep.AffectedSessions)
	fmt.Println()
	counters.Render(os.Stdout)
	if qd := counters.SampleSummary(metrics.SampleStormQueueDepth); qd.Count > 0 {
		fmt.Printf("\nstorm queue depth: n=%d mean=%.2f p90=%.2f max=%.2f\n",
			qd.Count, qd.Mean, qd.P90, qd.Max)
	}
	dumpMetrics(counters)
	if !rep.OK() {
		if rep.Err != "" {
			fmt.Fprintln(os.Stderr, "adaptsim:", rep.Err)
		}
		fmt.Println("\nbackbone storm: FAIL")
		os.Exit(1)
	}
	fmt.Println("\nbackbone storm: sub-linear re-composition, zero leaked kbps, chains equivalent")
}
