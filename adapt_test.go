package qoschain

import (
	"math"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// newsSet builds a complete profile set: a phone user pulling an MPEG-1
// news clip through a proxy hosting an MPEG-1→H.263 converter.
func newsSet() *profile.Set {
	conv := service.FormatConverter("conv1", media.VideoMPEG1, media.VideoH263)
	return &profile.Set{
		User: profile.User{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
			Budget: 100,
		},
		Content: profile.Content{
			ID: "news-1",
			Variants: []media.Descriptor{
				{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
			},
		},
		Device: profile.Device{
			ID:    "phone-1",
			Class: profile.ClassPhone,
			Hardware: profile.Hardware{
				CPUMips: 200, MemoryMB: 32,
				ScreenWidth: 176, ScreenHeight: 144, ColorDepth: 12,
			},
			Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
		},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "p1", BandwidthKbps: 2400, DelayMs: 20},
			{From: "p1", To: "phone-1", BandwidthKbps: 1800, DelayMs: 40},
		}},
		Intermediaries: []profile.Intermediary{{
			Host: "p1", CPUMips: 2000, MemoryMB: 256,
			Services: []*service.Service{conv},
		}},
	}
}

func TestComposeEndToEnd(t *testing.T) {
	comp, err := Compose(newsSet(), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := comp.Result
	if !res.Found {
		t.Fatal("composition must find a chain")
	}
	if len(res.Path) != 3 || string(res.Path[1]) != "conv1" {
		t.Errorf("path = %v", res.Path)
	}
	// Bottleneck 1800 kbps → 18 fps → satisfaction 0.6.
	if math.Abs(res.Params.Get(media.ParamFrameRate)-18) > 1e-6 {
		t.Errorf("fps = %v, want 18", res.Params.Get(media.ParamFrameRate))
	}
	if math.Abs(res.Satisfaction-0.6) > 1e-6 {
		t.Errorf("satisfaction = %v, want 0.6", res.Satisfaction)
	}
	if len(res.Rounds) == 0 {
		t.Error("Trace option should record rounds")
	}
}

func TestComposeRespectsBudget(t *testing.T) {
	set := newsSet()
	set.User.Budget = 0.5 // below conv1's cost of 1
	_, err := Compose(set, Options{})
	if err == nil {
		t.Error("budget below every chain must fail composition")
	}
}

func TestComposeNilAndInvalidSet(t *testing.T) {
	if _, err := Compose(nil, Options{}); err == nil {
		t.Error("nil set must fail")
	}
	bad := newsSet()
	bad.User.Name = ""
	if _, err := Compose(bad, Options{}); err == nil {
		t.Error("invalid set must fail")
	}
}

func TestComposeWithPrune(t *testing.T) {
	set := newsSet()
	// Add a dead-end service that pruning should remove.
	set.Intermediaries[0].Services = append(set.Intermediaries[0].Services,
		service.FormatConverter("dead", media.VideoMPEG1, media.VideoMJPEG))
	comp, err := Compose(set, Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := comp.Graph.Node("dead"); ok {
		t.Error("prune should remove the dead-end converter")
	}
	if !comp.Result.Found {
		t.Error("pruned composition must still succeed")
	}
}

func TestComposeStream(t *testing.T) {
	comp, err := Compose(newsSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := comp.Stream(300)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FramesOut == 0 {
		t.Fatal("stream must deliver frames")
	}
	// Delivered rate tracks the negotiated 18 fps.
	if math.Abs(stats.DeliveredFPS-18) > 1.5 {
		t.Errorf("DeliveredFPS = %v, want ~18", stats.DeliveredFPS)
	}
}

func TestComposeExplain(t *testing.T) {
	comp, err := Compose(newsSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	each := comp.Explain()
	if len(each) != 1 {
		t.Fatalf("Explain = %v", each)
	}
	if math.Abs(each["framerate"]-0.6) > 1e-6 {
		t.Errorf("framerate satisfaction = %v", each["framerate"])
	}
}

func TestComposeContactOverride(t *testing.T) {
	set := newsSet()
	set.User.ContactPreferences = map[profile.ContactClass]map[media.Param]profile.FuncSpec{
		profile.ContactClient: {media.ParamFrameRate: profile.LinearSpec(15, 30)},
	}
	normal, err := Compose(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Compose(set, Options{Contact: profile.ContactClient})
	if err != nil {
		t.Fatal(err)
	}
	// 18 fps scores 0.6 by default but only 0.2 against the stricter
	// client-class expectations.
	if client.Result.Satisfaction >= normal.Result.Satisfaction {
		t.Errorf("client contact should be harder to satisfy: %v vs %v",
			client.Result.Satisfaction, normal.Result.Satisfaction)
	}
}

func TestSatisfactionReExport(t *testing.T) {
	if got := Satisfaction([]float64{0.25, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Satisfaction = %v", got)
	}
}

func TestComposeUseContext(t *testing.T) {
	set := newsSet()
	// Score both a visual and an audio parameter; the content only
	// carries video, so audio satisfaction is 0.
	set.User.Preferences[media.ParamAudioRate] = profile.LinearSpec(0, 44.1)
	set.Context = profile.Context{Activity: "meeting"}

	plain, err := Compose(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Result.Satisfaction != 0 {
		t.Fatalf("without context the missing audio should zero satisfaction, got %v",
			plain.Result.Satisfaction)
	}
	ctxAware, err := Compose(set, Options{UseContext: true})
	if err != nil {
		t.Fatal(err)
	}
	if ctxAware.Result.Satisfaction <= 0.5 {
		t.Errorf("meeting context should ignore audio: satisfaction = %v",
			ctxAware.Result.Satisfaction)
	}
}

func TestComposeHostResourcesEnforced(t *testing.T) {
	set := newsSet()
	// The converter demands 2 MIPS/kbps; the proxy's 2000 MIPS then
	// carry at most 1000 kbps → 10 fps, below the 18 fps the network
	// would allow.
	set.Intermediaries[0].Services[0].CPUPerKbps = 2
	comp, err := Compose(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.Result.Params.Get(media.ParamFrameRate); math.Abs(got-10) > 0.01 {
		t.Errorf("CPU-capped fps = %v, want 10", got)
	}
}
