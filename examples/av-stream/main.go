// Audio+video bundle (extension EXT-H): a talk travels as two elementary
// streams — MPEG-1 video and PCM audio — each through its own
// trans-coding chain, scored by ONE satisfaction over both (Equation 1
// spans all parameters: perfect video with dead audio is worth nothing).
//
// The example squeezes the shared exit link step by step and shows how
// the bundle composer rebalances: audio (cheap, high-impact) is protected
// while video absorbs the loss.
//
// Run with: go run ./examples/av-stream
package main

import (
	"fmt"
	"os"

	"qoschain/internal/bundle"
	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

func request(exitKbps float64) bundle.Request {
	vconv := service.FormatConverter("vconv", media.VideoMPEG1, media.VideoH263)
	vconv.Host = "proxy"
	aconv := service.FormatConverter("aconv", media.AudioPCM, media.AudioGSM)
	aconv.Host = "proxy"

	net := overlay.New()
	net.AddLink("sender", "proxy", 6000, 10, 0)
	net.AddLink("proxy", "listener", exitKbps, 20, 0)

	bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate: 100, // kbps per fps
		media.ParamAudioRate: 10,  // kbps per kHz
	}}
	return bundle.Request{
		Content: &profile.Content{ID: "talk", Title: "keynote", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}, Bitrate: bitrate},
			{Format: media.AudioPCM, Params: media.Params{media.ParamAudioRate: 44.1}, Bitrate: bitrate},
		}},
		Device: &profile.Device{ID: "listener", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263, media.AudioGSM},
		}},
		Services:     []*service.Service{vconv, aconv},
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "listener",
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
			media.ParamAudioRate: satisfaction.Linear{M: 0, I: 44.1},
		}),
		Bitrate: bitrate,
	}
}

func main() {
	tb := metrics.NewTable("exit link kbps", "video chain", "fps", "audio chain", "kHz", "combined sat")
	for _, kbps := range []float64{4000, 2500, 1500, 800, 500} {
		res, err := bundle.Compose(request(kbps))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		videoChain, audioChain := "-", "-"
		if res.Video != nil && res.Video.Found {
			videoChain = core.PathString(res.Video.Path)
		}
		if res.Audio != nil && res.Audio.Found {
			audioChain = core.PathString(res.Audio.Path)
		}
		tb.AddRow(int(kbps), videoChain,
			fmt.Sprintf("%.1f", res.Params.Get(media.ParamFrameRate)),
			audioChain,
			fmt.Sprintf("%.1f", res.Params.Get(media.ParamAudioRate)),
			res.Combined)
	}
	tb.Render(os.Stdout)
	fmt.Println("\nAs the shared link shrinks, audio keeps its 44.1 kHz while the")
	fmt.Println("video frame rate absorbs the squeeze — the geometric mean of")
	fmt.Println("Equation 1 makes a balanced bundle worth more than a lopsided one.")
}
