// Quickstart: compose an adaptation chain for a phone pulling an MPEG-1
// clip through a proxy, print the selection trace, and stream synthetic
// frames through the selected pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qoschain"
	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

func main() {
	// 1. Describe the six profiles of the paper's Section 3.
	set := &profile.Set{
		// Who is watching, and what do they care about? Satisfaction
		// rises linearly from 0 fps (useless) to 30 fps (ideal).
		User: profile.User{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
			Budget: 10,
		},
		// What is being delivered: one stored MPEG-1 variant at 30 fps.
		Content: profile.Content{
			ID:    "news-clip",
			Title: "evening news",
			Variants: []media.Descriptor{
				{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
			},
		},
		// The receiving device decodes only H.263.
		Device: profile.Device{
			ID:    "phone-1",
			Class: profile.ClassPhone,
			Hardware: profile.Hardware{
				CPUMips: 200, MemoryMB: 32,
				ScreenWidth: 176, ScreenHeight: 144, ColorDepth: 12, Speakers: 1,
			},
			Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
		},
		// The network: sender → proxy → phone.
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "proxy-1", BandwidthKbps: 2400, DelayMs: 20},
			{From: "proxy-1", To: "phone-1", BandwidthKbps: 1800, DelayMs: 40},
		}},
		// The intermediary hosts one MPEG-1 → H.263 trans-coder.
		Intermediaries: []profile.Intermediary{{
			Host: "proxy-1", CPUMips: 2000, MemoryMB: 256,
			Services: []*service.Service{
				service.FormatConverter("mpeg2h263", media.VideoMPEG1, media.VideoH263),
			},
		}},
	}

	// 2. Compose: build the adaptation graph and run the QoS selection
	// algorithm (Figure 4 of the paper).
	comp, err := qoschain.Compose(set, qoschain.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selection trace:")
	fmt.Print(comp.Result.TraceTable())
	fmt.Println()
	fmt.Println("selected chain:", comp.Result.Summary())

	// 3. Stream 10 seconds of synthetic video through the chain.
	stats, err := comp.Stream(300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed: %d/%d frames delivered at %.1f fps (%d bytes)\n",
		stats.FramesOut, stats.FramesIn, stats.DeliveredFPS, stats.BytesOut)
}
