// Group viewing (extension EXT-E): several members of a household watch
// the same movie on different devices. Composed independently, each
// member pays for the trans-coding services their chain uses; composed as
// a group, a service funded by one member is free for the others — so a
// member whose budget is too small for the premium transcoder alone still
// gets the premium chain once someone else funds it.
//
// Run with: go run ./examples/group-viewing
package main

import (
	"fmt"
	"os"

	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/multicast"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

func memberConfig(budget float64) core.Config {
	return core.Config{
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
		}),
		Budget: budget,
	}
}

func h263Phone(id string) *profile.Device {
	return &profile.Device{
		ID:       id,
		Class:    profile.ClassPhone,
		Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
	}
}

func main() {
	// Two converters on the home gateway: a premium one (full rate,
	// cost 6) and an economy one (capped at 12 fps, cost 1).
	premium := service.FormatConverter("premium", media.VideoMPEG1, media.VideoH263)
	premium.Cost = 6
	premium.Host = "gateway"
	economy := service.FormatConverter("economy", media.VideoMPEG1, media.VideoH263)
	economy.Cost = 1
	economy.Caps = media.Params{media.ParamFrameRate: 12}
	economy.Host = "gateway"

	receivers := []multicast.Receiver{
		{ID: "tablet", Device: h263Phone("tablet"), Config: memberConfig(10)},
		{ID: "phone-kid", Device: h263Phone("phone-kid"), Config: memberConfig(2)},
		{ID: "phone-guest", Device: h263Phone("phone-guest"), Config: memberConfig(1)},
	}

	net := overlay.New()
	net.AddLink("sender", "gateway", 4000, 8, 0)
	multicast.ReuseNetwork(net, "gateway", 3200, 5, receivers)

	group := multicast.Group{
		Content: &profile.Content{ID: "movie-1", Title: "family movie", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Services:   []*service.Service{premium, economy},
		Net:        net,
		SenderHost: "sender",
	}

	// Independent composition: every member pays separately (simulated
	// by composing single-member groups).
	fmt.Println("-- independent composition (everyone pays alone) --")
	indep := metrics.NewTable("member", "chain", "satisfaction", "cost")
	for _, r := range receivers {
		res, err := multicast.Compose(group, []multicast.Receiver{r})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := res.Members[0]
		indep.AddRow(m.Receiver, core.PathString(m.Result.Path), m.Result.Satisfaction, m.Result.Cost)
	}
	indep.Render(os.Stdout)

	// Shared composition: the premium transcoder is funded once.
	fmt.Println("\n-- group composition (services funded once) --")
	res, err := multicast.Compose(group, receivers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	shared := metrics.NewTable("member", "chain", "satisfaction", "marginal cost")
	for _, m := range res.Members {
		shared.AddRow(m.Receiver, core.PathString(m.Result.Path), m.Result.Satisfaction, m.Result.Cost)
	}
	shared.Render(os.Stdout)
	fmt.Printf("\ngroup cost %.0f vs independent %.0f — saving %.0f; shared services: %v\n",
		res.SharedCost, res.IndependentCost, res.Savings(), res.Shared)
	fmt.Printf("mean satisfaction: %.2f\n", res.MeanSatisfaction)
}
