// Classroom broadcast: one lecture stream, many heterogeneous receivers —
// the Section 1 scenario where content formatted for PCs "cannot be
// rendered directly on all types of client devices". A desktop, a PDA, a
// WAP phone, an audio-only player and a text pager all join; each gets
// its own composed chain through a shared pool of trans-coding services
// (video re-encoders, a frame-rate reducer, a keyframe extractor, speech
// to text, an audio downsampler).
//
// Run with: go run ./examples/classroom-broadcast
package main

import (
	"fmt"
	"os"

	"qoschain"
	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/workload"
)

// sharedServices is the campus proxy's adaptation service pool.
func sharedServices() []*service.Service {
	return []*service.Service{
		service.FormatConverter("v-mpeg2h263", media.VideoMPEG1, media.VideoH263),
		service.FrameRateReducer("v-fps", media.VideoMPEG1, 12),
		service.FormatConverter("v-low2qcif", media.Format{Kind: media.KindVideo, Encoding: "mpeg1", Profile: "lowfps"}, media.VideoH263QCIF),
		service.KeyframeExtractor("v-keyframes", media.VideoMPEG1),
		service.FormatConverter("a-pcm2mp3", media.AudioPCM, media.AudioMP3),
		service.AudioDownsampler("a-down", media.AudioPCM, media.AudioPCM8K, 8, 8),
		service.SpeechToText("a-stt", media.AudioPCM),
		service.FormatConverter("i-kf2gif", media.VideoKeyframes, media.ImageGIF),
		service.TextSummarizer("t-sum"),
	}
}

// lecture offers a video variant and an audio variant of the same talk.
func lecture() profile.Content {
	return profile.Content{
		ID:    "lecture-7",
		Title: "distributed systems, week 7",
		Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
			{Format: media.AudioPCM, Params: media.Params{media.ParamFrameRate: 30}},
		},
		DurationSec: 3000,
	}
}

func main() {
	classes := []profile.DeviceClass{
		profile.ClassDesktop,
		profile.ClassPDA,
		profile.ClassPhone,
		profile.ClassAudioOnly,
		profile.ClassTextPager,
	}

	tb := metrics.NewTable("device", "decoders", "chain", "satisfaction")
	hist := metrics.NewHistogram(0, 1, 5)

	for _, class := range classes {
		device := workload.DeviceOfClass(class, string(class))
		set := &profile.Set{
			User: profile.User{
				Name: "student-" + string(class),
				Preferences: map[media.Param]profile.FuncSpec{
					media.ParamFrameRate: profile.LinearSpec(0, 30),
				},
			},
			Content: lecture(),
			Device:  device,
			Network: profile.Network{Links: []profile.Link{
				{From: "sender", To: "campus-proxy", BandwidthKbps: 4000, DelayMs: 5},
				{From: "campus-proxy", To: device.ID, BandwidthKbps: accessKbps(class), DelayMs: 20},
			}},
			Intermediaries: []profile.Intermediary{{
				Host: "campus-proxy", CPUMips: 8000, MemoryMB: 2048,
				Services: sharedServices(),
			}},
		}
		comp, err := qoschain.Compose(set, qoschain.Options{Prune: true})
		if err != nil {
			tb.AddRow(string(class), decoders(device), "(no chain)", "-")
			continue
		}
		tb.AddRow(string(class), decoders(device),
			core.PathString(comp.Result.Path), comp.Result.Satisfaction)
		hist.Observe(comp.Result.Satisfaction)
	}

	fmt.Println("per-device composition for the shared lecture stream:")
	tb.Render(os.Stdout)
	fmt.Println("\nsatisfaction distribution across the class:")
	hist.Render(os.Stdout)
}

// accessKbps models each device class's last-hop connectivity.
func accessKbps(class profile.DeviceClass) float64 {
	switch class {
	case profile.ClassDesktop:
		return 4000
	case profile.ClassPDA:
		return 800
	case profile.ClassPhone:
		return 400
	case profile.ClassAudioOnly:
		return 128
	default: // pager
		return 16
	}
}

func decoders(d profile.Device) string {
	s := ""
	for i, f := range d.Software.Decoders {
		if i > 0 {
			s += " "
		}
		s += f.String()
	}
	return s
}
