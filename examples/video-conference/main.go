// Video conference with per-contact preferences: Section 3's motivating
// example — a customer-service representative wants high-resolution video
// and CD audio when talking to a client, but telephony-grade audio and
// low-resolution video suffice for a colleague.
//
// The example scores both contact classes over the same network and shows
// how the selected configuration (not just the path) changes with the
// satisfaction profile. It uses a two-parameter satisfaction combined per
// Equation 1 and the multiplicative video bitrate model.
//
// Run with: go run ./examples/video-conference
package main

import (
	"fmt"
	"log"

	"qoschain"
	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

func conferenceSet() *profile.Set {
	// One trans-coder re-encodes the camera feed for the desktop
	// client; it can scale frame rate and resolution continuously.
	reencoder := &service.Service{
		ID:      "reenc",
		Name:    "conference re-encoder",
		Inputs:  []media.Format{media.VideoMPEG4},
		Outputs: []media.Format{media.VideoH263},
		Cost:    1,
	}
	return &profile.Set{
		User: profile.User{
			Name: "rep",
			// Defaults: colleague-grade expectations.
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate:  profile.LinearSpec(0, 15),
				media.ParamResolution: profile.LinearSpec(0, 25), // QCIF-ish kpx
			},
			// Client calls expect much more.
			ContactPreferences: map[profile.ContactClass]map[media.Param]profile.FuncSpec{
				profile.ContactClient: {
					media.ParamFrameRate:  profile.LinearSpec(10, 30),
					media.ParamResolution: profile.LinearSpec(25, 101), // up to CIF
				},
			},
		},
		Content: profile.Content{
			ID: "camera-feed",
			Variants: []media.Descriptor{
				{
					Format: media.VideoMPEG4,
					Params: media.Params{
						media.ParamFrameRate:  30,
						media.ParamResolution: 101,
					},
					// Frame rate and resolution share the link: the
					// optimizer must trade them against each other.
					Bitrate: media.LinearBitrate{PerUnit: map[media.Param]float64{
						media.ParamFrameRate:  40,
						media.ParamResolution: 15,
					}},
				},
			},
		},
		Device: profile.Device{
			ID:    "peer-desktop",
			Class: profile.ClassDesktop,
			Hardware: profile.Hardware{
				CPUMips: 3000, MemoryMB: 1024,
				ScreenWidth: 1280, ScreenHeight: 1024, ColorDepth: 32, Speakers: 2,
			},
			Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
		},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "conf-proxy", BandwidthKbps: 2500, DelayMs: 10},
			{From: "conf-proxy", To: "peer-desktop", BandwidthKbps: 2000, DelayMs: 15},
		}},
		Intermediaries: []profile.Intermediary{{
			Host: "conf-proxy", CPUMips: 4000, MemoryMB: 512,
			Services: []*service.Service{reencoder},
		}},
	}
}

func main() {
	set := conferenceSet()
	// The optimizer's bitrate model comes from the content variant.
	bitrate := set.Content.Variants[0].Bitrate

	for _, contact := range []profile.ContactClass{profile.ContactAny, profile.ContactClient} {
		comp, err := qoschain.Compose(set, qoschain.Options{Contact: contact, Bitrate: bitrate})
		if err != nil {
			log.Fatal(err)
		}
		res := comp.Result
		label := "colleague (defaults)"
		if contact == profile.ContactClient {
			label = "client (stricter)"
		}
		fmt.Printf("%-22s path=%-28s fps=%5.1f res=%5.1f kpx satisfaction=%.3f\n",
			label, core.PathString(res.Path),
			res.Params.Get(media.ParamFrameRate),
			res.Params.Get(media.ParamResolution),
			res.Satisfaction)
		for name, sat := range comp.Explain() {
			fmt.Printf("    %-12s %.3f\n", name, sat)
		}
	}

	fmt.Println("\nThe same 2 Mbps bottleneck satisfies a colleague call almost")
	fmt.Println("fully, but the client-grade expectations expose the link as the")
	fmt.Println("limiting factor — exactly the per-contact behaviour the user")
	fmt.Println("profile of Section 3 calls for.")
}
