// Mobile news-on-demand (after Hafid & Bochmann [9], the paper's static-
// adaptation contrast): a news service stores several variants of each
// story; a WAP-era phone requests one over a two-proxy overlay. The
// example contrasts three compositions:
//
//  1. unconstrained — the best chain money can buy,
//  2. on a budget — the user will only pay 3 units,
//  3. degraded network — the fast proxy's uplink collapses.
//
// Run with: go run ./examples/mobile-news
package main

import (
	"fmt"
	"log"

	"qoschain"
	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

func newsSet() *profile.Set {
	// The premium trans-coder converts straight to the phone's H.263
	// and costs 5; the economy pair (MPEG1→MJPEG→H.263) costs 1+1 but
	// runs on a slower path.
	premium := service.FormatConverter("premium", media.VideoMPEG1, media.VideoH263)
	premium.Cost = 5
	econ1 := service.FormatConverter("econ1", media.VideoMPEG1, media.VideoMJPEG)
	econ1.Cost = 1
	econ2 := service.FormatConverter("econ2", media.VideoMJPEG, media.VideoH263)
	econ2.Cost = 1

	return &profile.Set{
		User: profile.User{
			Name: "bob",
			Preferences: map[media.Param]profile.FuncSpec{
				// An S-curve after Figure 1: below 5 fps the clip is
				// unwatchable; 20 fps is as good as it needs to be.
				media.ParamFrameRate: profile.SCurveSpec(5, 20),
			},
		},
		Content: profile.Content{
			ID:    "story-42",
			Title: "markets roundup",
			Variants: []media.Descriptor{
				{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
			},
			DurationSec: 90,
		},
		Device: profile.Device{
			ID:    "wap-phone",
			Class: profile.ClassPhone,
			Hardware: profile.Hardware{
				CPUMips: 150, MemoryMB: 16,
				ScreenWidth: 176, ScreenHeight: 144, ColorDepth: 12, Speakers: 1,
			},
			Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
		},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "fast-proxy", BandwidthKbps: 2600, DelayMs: 15},
			{From: "fast-proxy", To: "wap-phone", BandwidthKbps: 2100, DelayMs: 30},
			{From: "sender", To: "slow-proxy", BandwidthKbps: 1400, DelayMs: 25},
			{From: "slow-proxy", To: "slow-proxy-2", BandwidthKbps: 1300, DelayMs: 10},
			{From: "slow-proxy-2", To: "wap-phone", BandwidthKbps: 1200, DelayMs: 35},
		}},
		Intermediaries: []profile.Intermediary{
			{Host: "fast-proxy", CPUMips: 4000, MemoryMB: 512,
				Services: []*service.Service{premium}},
			{Host: "slow-proxy", CPUMips: 1000, MemoryMB: 128,
				Services: []*service.Service{econ1}},
			{Host: "slow-proxy-2", CPUMips: 1000, MemoryMB: 128,
				Services: []*service.Service{econ2}},
		},
	}
}

func compose(label string, set *profile.Set) {
	comp, err := qoschain.Compose(set, qoschain.Options{})
	if err != nil {
		fmt.Printf("%-22s no chain: %v\n", label, err)
		return
	}
	res := comp.Result
	fmt.Printf("%-22s %s  (%.1f fps, cost %.0f)\n", label, res.Summary(),
		res.Params.Get(media.ParamFrameRate), res.Cost)
}

func main() {
	// 1. Unconstrained: the premium chain wins on quality.
	compose("unconstrained:", newsSet())

	// 2. On a budget: 3 units only afford the economy pair.
	budget := newsSet()
	budget.User.Budget = 3
	compose("budget=3:", budget)

	// 3. Degraded network: the fast proxy's uplink collapses to
	// 600 kbps, so even without a budget the economy chain is better.
	degraded := newsSet()
	for i, l := range degraded.Network.Links {
		if l.From == "sender" && l.To == "fast-proxy" {
			degraded.Network.Links[i].BandwidthKbps = 600
		}
	}
	compose("degraded fast path:", degraded)

	// 4. Stream the budget chain to show it actually flows.
	comp, err := qoschain.Compose(budget, qoschain.Options{})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := comp.Stream(450)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbudget chain streamed: %d/%d frames, %.1f fps delivered\n",
		stats.FramesOut, stats.FramesIn, stats.DeliveredFPS)
	for _, st := range stats.Stages {
		fmt.Printf("  %-28s consumed=%-4d emitted=%-4d dropped=%d\n",
			st.ID, st.Consumed, st.Emitted, st.Dropped)
	}
}
