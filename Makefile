GO ?= go

.PHONY: all build test vet race race-all race-obs race-obs-cluster race-cluster race-storm cluster-smoke storm-smoke storm-cluster-smoke bench bench-select bench-pipeline pipeline-guard trace-overhead lint check ci

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-all folds every targeted race lane into one target: the
# observability surfaces, the replicated tier, the storm tier, the
# data plane, and the durable session layer the storm-attached daemon
# path runs on. CI runs this instead of the individual race-* targets.
race-all:
	$(GO) test -race -count=1 \
		./internal/metrics/ ./internal/trace/ ./internal/httpapi/ \
		./internal/cluster/ ./internal/registry/ \
		./internal/storm/ ./internal/graph/ ./internal/overlay/ \
		./internal/pipeline/ ./internal/transcode/ \
		./internal/journal/ ./internal/session/ ./internal/sim/

# race-obs races the observability surfaces specifically: the metrics
# registry, the tracer, and the HTTP middleware that drives both.
race-obs:
	$(GO) test -race -count=1 ./internal/metrics/ ./internal/trace/ ./internal/httpapi/

# race-obs-cluster races the cluster-wide observability path: metrics
# federation and trace stitching on the router, cross-node header
# propagation through WAL shipping, the storm flight recorder, and the
# sim harness that drives the whole mid-storm-kill scenario under -race.
# Folded into race-all (its packages are a subset of that matrix); kept
# as its own lane so the cluster-observability surface can be raced in
# isolation while iterating.
race-obs-cluster:
	$(GO) test -race -count=1 \
		./internal/metrics/ ./internal/trace/ ./internal/httpapi/ \
		./internal/cluster/ ./internal/storm/ ./internal/sim/

# race-cluster races the replicated tier: WAL shipping, promotion,
# routing, and the membership/lease machinery they depend on.
race-cluster:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/registry/

# cluster-smoke runs seeded node-kill scenarios against a 3-replica
# Figure 6 deployment: WAL shipping over real sockets, lease-expiry
# death detection, follower promotion. Fails unless every adopted
# session is byte-identical with zero leaked bandwidth and the dead
# node's shipper is fenced.
cluster-smoke:
	$(GO) run ./cmd/adaptsim -cluster -trials 5 -seed 7

# race-storm races the mass re-composition tier: the storm controller's
# concurrent class fan-out and the incremental graph repair it drives.
race-storm:
	$(GO) test -race -count=1 ./internal/storm/ ./internal/graph/ ./internal/overlay/

# storm-smoke runs a seeded correlated backbone event over a scaled
# multi-region deployment and mass re-composes by equivalence class.
# Fails unless Select cost is sub-linear in the affected sessions
# (≤ 0.05 calls/session), no bandwidth leaks, and every member chain
# matches the naive per-session re-evaluation byte-for-byte.
storm-smoke:
	$(GO) run ./cmd/adaptsim -storm -storm-sessions 4000 -seed 7

# storm-cluster-smoke runs the storm-safe live path end to end: live
# /v1/sessions creates attach to equivalence classes on a replicated
# pair, a backbone loss spike storms the classes, the primary is
# killed after one fan-out, and the promoted follower must resume the
# open storm to the byte-identical controller fingerprint with zero
# leaked bandwidth (EXPERIMENTS.md EXT-P).
storm-cluster-smoke:
	$(GO) run ./cmd/adaptsim -storm-cluster -trials 2 -seed 7

# trace-overhead runs the instrumentation-overhead guards: BenchmarkSelect
# traced vs plain, and the session hot path with full QoS SLO tracking vs
# a nil counter sink. Both must stay within a 5% budget.
trace-overhead:
	TRACE_OVERHEAD_GUARD=1 $(GO) test -run 'TestTracingOverheadGuard|TestSLOOverheadGuard' -count=1 -v ./

# bench-select runs the selection hot-path benchmarks with allocation
# reporting, repeated for benchstat-comparable output. Compare against
# the records in BENCH_selection.json.
bench-select:
	$(GO) test -run 'TestNone' -bench 'Select' -benchmem -count=5 ./

# bench-pipeline runs the data-plane throughput benchmarks (seed
# protocol vs batched executor) with allocation reporting, repeated for
# benchstat-comparable output. Compare against BENCH_pipeline.json.
bench-pipeline:
	$(GO) test -run 'TestNone' -bench 'DataPlane' -benchmem -count=5 ./

# pipeline-guard runs the data-plane regression guard: the batched Run
# must stay >= 9.9x faster than the seed-protocol reference (11x
# recorded minus a 10% budget) at < 1 alloc/frame.
pipeline-guard:
	PIPELINE_PERF_GUARD=1 $(GO) test -run TestPipelinePerfGuard -count=1 -v ./

# bench runs the full benchmark suite once (every table/figure of the
# paper plus the extension experiments).
bench:
	$(GO) test -run 'TestNone' -bench . -benchmem ./

# lint runs staticcheck and govulncheck when they are installed, and
# skips each gracefully when not (CI installs both; local machines may
# not have them).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

check: vet build test

ci: vet build race
