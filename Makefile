GO ?= go

.PHONY: all build test vet race bench bench-select check ci

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench-select runs the selection hot-path benchmarks with allocation
# reporting, repeated for benchstat-comparable output. Compare against
# the records in BENCH_selection.json.
bench-select:
	$(GO) test -run 'TestNone' -bench 'Select' -benchmem -count=5 ./

# bench runs the full benchmark suite once (every table/figure of the
# paper plus the extension experiments).
bench:
	$(GO) test -run 'TestNone' -bench . -benchmem ./

check: vet build test

ci: vet build race
