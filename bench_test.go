// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem`), plus the extension experiments and
// design-choice ablations DESIGN.md calls out. Each Benchmark maps to an
// experiment id in EXPERIMENTS.md.
package qoschain

import (
	"fmt"
	"math/rand"
	"testing"

	"qoschain/internal/baseline"
	"qoschain/internal/bundle"
	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/multicast"
	"qoschain/internal/overlay"
	"qoschain/internal/paperexample"
	"qoschain/internal/pipeline"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
	"qoschain/internal/session"
	"qoschain/internal/workload"
)

// --- TAB1: the 15-round selection trace -------------------------------

// BenchmarkTable1SelectionTrace runs the full Figure 6 selection with the
// per-round trace enabled — the computation whose output is Table 1.
func BenchmarkTable1SelectionTrace(b *testing.B) {
	g, err := paperexample.Table1Graph(true)
	if err != nil {
		b.Fatal(err)
	}
	cfg := paperexample.Table1Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Select(g, cfg)
		if err != nil || !res.Found {
			b.Fatal("Table 1 selection failed")
		}
	}
}

// --- FIG1: the satisfaction function ----------------------------------

// BenchmarkFigure1SatisfactionEval evaluates the Figure 1 S-curve across
// its domain (the figure's plotted series).
func BenchmarkFigure1SatisfactionEval(b *testing.B) {
	fn := paperexample.Figure1Function()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for fps := 0.0; fps <= 25; fps++ {
			_ = fn.Eval(fps)
		}
	}
}

// --- FIG2/FIG3: graph construction ------------------------------------

// BenchmarkFigure3GraphConstruction rebuilds the Figure 3 adaptation
// graph from profiles (the Section 4.2 construction procedure).
func BenchmarkFigure3GraphConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperexample.Figure3Graph(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1GraphConstruction rebuilds the full 20-service Figure 6
// graph including overlay bandwidth queries.
func BenchmarkTable1GraphConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperexample.Table1Graph(true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- FIG5: greedy optimality ------------------------------------------

// BenchmarkFigure5GreedyVsExhaustive compares the greedy algorithm with
// the exhaustive optimum on one random 8-service scenario.
func BenchmarkFigure5GreedyVsExhaustive(b *testing.B) {
	sc := workload.Generate(rand.New(rand.NewSource(5)), workload.Spec{Services: 8})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res, _ := baseline.Exhaustive(sc.Graph, sc.Config, 0); !res.Found {
				b.Fatal("exhaustive found nothing")
			}
		}
	})
}

// --- FIG6: the with/without-T7 ablation --------------------------------

// BenchmarkFigure6Ablation selects over both Figure 6 variants.
func BenchmarkFigure6Ablation(b *testing.B) {
	for _, withT7 := range []bool{true, false} {
		name := "withT7"
		if !withT7 {
			name = "withoutT7"
		}
		g, err := paperexample.Table1Graph(withT7)
		if err != nil {
			b.Fatal(err)
		}
		cfg := paperexample.Table1Config()
		cfg.Trace = false
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Select(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- EXT-A: scalability -------------------------------------------------

// BenchmarkSelectionScaling measures selection across graph sizes.
func BenchmarkSelectionScaling(b *testing.B) {
	for _, n := range []int{10, 50, 100, 500, 1000} {
		sc := workload.Generate(rand.New(rand.NewSource(7)), workload.Spec{Services: n})
		b.Run(fmt.Sprintf("services=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Select(sc.Graph, sc.Config); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselines compares every baseline on one mid-size scenario.
func BenchmarkBaselines(b *testing.B) {
	sc := workload.Generate(rand.New(rand.NewSource(9)), workload.Spec{Services: 100})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shortest-hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := baseline.ShortestHop(sc.Graph, sc.Config); !res.Found {
				b.Fatal("no chain")
			}
		}
	})
	b.Run("widest-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := baseline.WidestPath(sc.Graph, sc.Config); !res.Found {
				b.Fatal("no chain")
			}
		}
	})
	b.Run("min-cost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := baseline.MinCost(sc.Graph, sc.Config); !res.Found {
				b.Fatal("no chain")
			}
		}
	})
	rng := rand.New(rand.NewSource(11))
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := baseline.Random(sc.Graph, sc.Config, rng, 32); !res.Found {
				b.Fatal("no chain")
			}
		}
	})
}

// --- EXT-C: re-composition ----------------------------------------------

// BenchmarkRecomposition measures a session reacting to a degradation of
// its active exit link and the subsequent recovery.
func BenchmarkRecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := paperexample.Table1Network()
		sess, err := session.New(session.Config{
			Content:      paperexample.Table1Content(),
			Device:       paperexample.Table1Device(),
			Services:     paperexample.Table1Services(true),
			Net:          net,
			SenderHost:   "sender",
			ReceiverHost: "receiver",
			Select:       paperexample.Table1Config(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := net.SetBandwidth("p7", "receiver", 400); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Reevaluate(); err != nil {
			b.Fatal(err)
		}
		if err := net.SetBandwidth("p7", "receiver", 1985); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Reevaluate(); err != nil {
			b.Fatal(err)
		}
		if sess.Recompositions() != 2 {
			b.Fatalf("recompositions = %d", sess.Recompositions())
		}
	}
}

// --- EXT-D: pipeline throughput ------------------------------------------

// BenchmarkPipelineThroughput streams synthetic frames through chains of
// increasing length (reports frames/op over 300 source frames).
func BenchmarkPipelineThroughput(b *testing.B) {
	for _, stages := range []int{1, 2, 4, 6} {
		sc := lineScenario(stages)
		res, err := core.Select(sc.Graph, sc.Config)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("stages=%d", stages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := pipeline.FromResult(sc.Graph, res, pipeline.Options{})
				if err != nil {
					b.Fatal(err)
				}
				stats := p.Run(300)
				if stats.FramesOut == 0 {
					b.Fatal("no frames delivered")
				}
			}
		})
	}
}

// lineScenario builds a backbone-only chain of exactly n services.
func lineScenario(n int) workload.Scenario {
	return workload.Generate(rand.New(rand.NewSource(3)), workload.Spec{
		Services: n,
		Backbone: n,
		MinKbps:  2000,
		MaxKbps:  4000,
	})
}

// --- Ablations (DESIGN.md §6) ---------------------------------------------

// BenchmarkSelectionHeapVsScan contrasts the paper's linear candidate
// scan with the priority-queue variant on a large graph.
func BenchmarkSelectionHeapVsScan(b *testing.B) {
	sc := workload.Generate(rand.New(rand.NewSource(13)), workload.Spec{Services: 1000})
	for _, useHeap := range []bool{false, true} {
		name := "scan"
		if useHeap {
			name = "heap"
		}
		cfg := sc.Config
		cfg.Scan = !useHeap
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Select(sc.Graph, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPruneAblation measures graph pruning cost and the selection
// speedup it buys on a large random graph.
func BenchmarkPruneAblation(b *testing.B) {
	b.Run("select-unpruned", func(b *testing.B) {
		sc := workload.Generate(rand.New(rand.NewSource(17)), workload.Spec{Services: 500})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prune-then-select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sc := workload.Generate(rand.New(rand.NewSource(17)), workload.Spec{Services: 500})
			b.StartTimer()
			sc.Graph.Prune()
			if _, err := core.Select(sc.Graph, sc.Config); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOptimizer measures the per-candidate parameter optimization in
// its single-parameter (exact binary search) and two-parameter (greedy
// descent + refinement) forms.
func BenchmarkOptimizer(b *testing.B) {
	single := satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})
	double := satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate:  satisfaction.Linear{M: 0, I: 30},
		media.ParamResolution: satisfaction.SCurve{M: 0, I: 300},
	})
	bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate:  100,
		media.ParamResolution: 5,
	}}
	b.Run("single-param", func(b *testing.B) {
		req := satisfaction.Request{
			Caps:      media.Params{media.ParamFrameRate: 30},
			Bandwidth: 1985,
		}
		for i := 0; i < b.N; i++ {
			if _, _, ok := single.Optimize(req); !ok {
				b.Fatal("infeasible")
			}
		}
	})
	b.Run("two-param", func(b *testing.B) {
		req := satisfaction.Request{
			Caps:      media.Params{media.ParamFrameRate: 30, media.ParamResolution: 300},
			Bitrate:   bitrate,
			Bandwidth: 2500,
		}
		for i := 0; i < b.N; i++ {
			if _, _, ok := double.Optimize(req); !ok {
				b.Fatal("infeasible")
			}
		}
	})
}

// BenchmarkOverlayWidestPath measures the routed-bandwidth query used
// when chained services are not directly linked.
func BenchmarkOverlayWidestPath(b *testing.B) {
	net := overlay.Random(50, 4, overlay.DefaultLinkSpec, rand.New(rand.NewSource(19)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.WidestBandwidth("sender", "receiver") <= 0 {
			b.Fatal("disconnected")
		}
	}
}

// BenchmarkComposeEndToEnd measures the full facade path: validate
// profiles, build the graph, select the chain. The warm-cache variant
// serves the graph from a graph.Cache, the amortization a deployment
// composing many requests over one stable service topology sees.
func BenchmarkComposeEndToEnd(b *testing.B) {
	set := newsSet() // shared with adapt_test.go
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compose(set, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		cache := graph.NewCache(0)
		if _, err := Compose(set, Options{Cache: cache}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Compose(set, Options{Cache: cache}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelectBitset measures the optimized selection hot path
// (interned-format bitsets, label arena, scratch-reusing evaluator, heap
// candidate queue) on the largest scaling workload; compare against
// BenchmarkSelectionHeapVsScan/scan for the ablation and against the
// BENCH_selection.json baseline record for the seed implementation.
func BenchmarkSelectBitset(b *testing.B) {
	sc := workload.Generate(rand.New(rand.NewSource(7)), workload.Spec{Services: 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(sc.Graph, sc.Config); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphCacheHit contrasts building the adaptation graph from
// profiles with serving it from a warm graph.Cache.
func BenchmarkGraphCacheHit(b *testing.B) {
	set := newsSet()
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.BuildFromSet(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		cache := graph.NewCache(0)
		if _, err := cache.BuildFromSet(set); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.BuildFromSet(set); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchPlanner plans 32 heterogeneous receiver profiles against
// one shared 200-service graph, sequentially and with the
// GOMAXPROCS-bounded batch planner.
func BenchmarkBatchPlanner(b *testing.B) {
	sc := workload.Generate(rand.New(rand.NewSource(21)), workload.Spec{Services: 200})
	cfgs := make([]core.Config, 32)
	for i := range cfgs {
		cfgs[i] = core.Config{
			Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
				media.ParamFrameRate: satisfaction.Linear{M: 0, I: 5 + float64(i)},
			}),
		}
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range cfgs {
				if _, err := core.Select(sc.Graph, cfgs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, br := range core.SelectBatch(sc.Graph, cfgs) {
				if br.Err != nil {
					b.Fatal(br.Err)
				}
			}
		}
	})
}

// BenchmarkMulticastSharing composes a 5-member group with shared
// service funding (EXT-E).
func BenchmarkMulticastSharing(b *testing.B) {
	premium := service.FormatConverter("premium", media.VideoMPEG1, media.VideoH263)
	premium.Cost = 6
	premium.Host = "gateway"
	cfg := core.Config{
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
		}),
		Budget: 10,
	}
	var receivers []multicast.Receiver
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("m%d", i)
		receivers = append(receivers, multicast.Receiver{
			ID: id,
			Device: &profile.Device{ID: id, Software: profile.Software{
				Decoders: []media.Format{media.VideoH263},
			}},
			Config: cfg,
		})
	}
	net := overlay.New()
	net.AddLink("sender", "gateway", 4000, 8, 0)
	multicast.ReuseNetwork(net, "gateway", 3200, 5, receivers)
	group := multicast.Group{
		Content: &profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Services:   []*service.Service{premium},
		Net:        net,
		SenderHost: "sender",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := multicast.Compose(group, receivers)
		if err != nil || res.Served() != 5 {
			b.Fatalf("compose failed: %v served=%d", err, res.Served())
		}
	}
}

// BenchmarkSessionAdmission measures admitting and closing four
// reserving sessions on the Figure 6 network (EXT-F).
func BenchmarkSessionAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := paperexample.Table1Network()
		var sessions []*session.Session
		for j := 0; j < 4; j++ {
			sess, err := session.New(session.Config{
				Content:          paperexample.Table1Content(),
				Device:           paperexample.Table1Device(),
				Services:         paperexample.Table1Services(true),
				Net:              net,
				SenderHost:       "sender",
				ReceiverHost:     "receiver",
				Select:           paperexample.Table1Config(),
				ReserveBandwidth: true,
			})
			if err != nil {
				b.Fatalf("arrival %d rejected: %v", j, err)
			}
			sessions = append(sessions, sess)
		}
		for _, s := range sessions {
			s.Close()
		}
	}
}

// BenchmarkBundleCompose measures the order-searching audio+video bundle
// composition on a shared bottleneck (EXT-H).
func BenchmarkBundleCompose(b *testing.B) {
	vconv := service.FormatConverter("vconv", media.VideoMPEG1, media.VideoH263)
	vconv.Host = "proxy"
	aconv := service.FormatConverter("aconv", media.AudioPCM, media.AudioGSM)
	aconv.Host = "proxy"
	net := overlay.New()
	net.AddLink("sender", "proxy", 6000, 10, 0)
	net.AddLink("proxy", "dev", 1500, 15, 0)
	bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate: 100,
		media.ParamAudioRate: 10,
	}}
	req := bundle.Request{
		Content: &profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}, Bitrate: bitrate},
			{Format: media.AudioPCM, Params: media.Params{media.ParamAudioRate: 44.1}, Bitrate: bitrate},
		}},
		Device: &profile.Device{ID: "dev", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263, media.AudioGSM},
		}},
		Services:   []*service.Service{vconv, aconv},
		Net:        net,
		SenderHost: "sender", ReceiverHost: "dev",
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
			media.ParamAudioRate: satisfaction.Linear{M: 0, I: 44.1},
		}),
		Bitrate: bitrate,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bundle.Compose(req)
		if err != nil || res.Combined <= 0 {
			b.Fatalf("bundle failed: %v", err)
		}
	}
}
