// Data-plane regression guard: the batched pooled Run must stay at
// least 9.9x faster than the seed-protocol reference on the 5-stage
// chain — the 11x recorded in BENCH_pipeline.json minus a 10%
// regression budget — and must allocate less than one heap object per
// source frame in steady state. Opt-in via PIPELINE_PERF_GUARD=1 (CI
// runs it in a dedicated step) because micro-benchmark timing is too
// noisy for the default test matrix.
package qoschain

import (
	"fmt"
	"os"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/pipeline"
)

// Floors derived from BENCH_pipeline.json: recorded speedup 11x (the
// conservative end of measured 11-12x), guarded at 90% of it.
const (
	guardSpeedupFloor    = 9.9
	guardAllocsPerFrame  = 1.0
	guardFramesPerStream = 2000
)

func TestPipelinePerfGuard(t *testing.T) {
	if os.Getenv("PIPELINE_PERF_GUARD") == "" {
		t.Skip("set PIPELINE_PERF_GUARD=1 to run the data-plane regression guard")
	}
	sc := lineScenario(5)
	res, err := core.Select(sc.Graph, sc.Config)
	if err != nil || !res.Found {
		t.Fatal("5-stage selection failed")
	}
	refBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := pipeline.FromResult(sc.Graph, res, pipeline.Options{NoPool: true})
			if err != nil {
				b.Fatal(err)
			}
			if p.RunReference(guardFramesPerStream).FramesOut == 0 {
				b.Fatal("no frames delivered")
			}
		}
	}
	batchBench := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := pipeline.FromResult(sc.Graph, res, pipeline.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if p.Run(guardFramesPerStream).FramesOut == 0 {
				b.Fatal("no frames delivered")
			}
		}
	}

	// Interleave several runs of each variant and compare the per-variant
	// minimums — the least scheduler-disturbed measurement of each — so
	// the ratio reflects the protocols, not which run drew the noisier
	// time slice. The allocation count comes from the batched runs (it is
	// deterministic across them).
	const runs = 5
	var refNs, batchNs int64
	var batchAllocs int64
	for i := 0; i < runs; i++ {
		if ns := testing.Benchmark(refBench).NsPerOp(); refNs == 0 || ns < refNs {
			refNs = ns
		}
		r := testing.Benchmark(batchBench)
		if ns := r.NsPerOp(); batchNs == 0 || ns < batchNs {
			batchNs = ns
		}
		batchAllocs = r.AllocsPerOp()
	}

	speedup := float64(refNs) / float64(batchNs)
	perFrame := float64(batchAllocs) / float64(guardFramesPerStream)
	msg := fmt.Sprintf("reference %d ns/op, batched %d ns/op, speedup %.2fx, %.3f allocs/frame",
		refNs, batchNs, speedup, perFrame)
	if speedup < guardSpeedupFloor {
		t.Fatalf("data-plane speedup below the %.1fx floor: %s", guardSpeedupFloor, msg)
	}
	if perFrame >= guardAllocsPerFrame {
		t.Fatalf("steady-state allocations at or above % .0f/frame: %s", guardAllocsPerFrame, msg)
	}
	t.Log(msg)
}
