package overlay

import (
	"fmt"
	"math/rand"
	"sort"
)

// Fluctuation drives bandwidth changes over *virtual time*: the caller
// advances time explicitly with Step, which keeps experiments
// deterministic and free of wall-clock dependencies. This substitutes for
// the paper's real, fluctuating transport networks (Section 3, network
// profile) in the re-composition experiments.

// TraceEvent is one scheduled bandwidth change.
type TraceEvent struct {
	// AtStep is the virtual time step at which the change applies.
	AtStep int
	// From/To identify the link.
	From, To string
	// BandwidthKbps is the new bandwidth; negative means "remove link".
	BandwidthKbps float64
}

// Trace replays a fixed schedule of bandwidth changes.
type Trace struct {
	net    *Network
	events []TraceEvent
	step   int
	next   int
}

// NewTrace builds a trace over the network. Events are applied in AtStep
// order (stable for equal steps).
func NewTrace(net *Network, events []TraceEvent) *Trace {
	sorted := append([]TraceEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtStep < sorted[j].AtStep })
	return &Trace{net: net, events: sorted}
}

// Step advances virtual time by one step, applying every due event. It
// returns the events applied at this step.
func (t *Trace) Step() []TraceEvent {
	t.step++
	var applied []TraceEvent
	for t.next < len(t.events) && t.events[t.next].AtStep <= t.step {
		ev := t.events[t.next]
		t.next++
		if ev.BandwidthKbps < 0 {
			t.net.RemoveLink(ev.From, ev.To)
		} else {
			// Ignore unknown links: traces may be written against
			// generated topologies where some links were pruned.
			_ = t.net.SetBandwidth(ev.From, ev.To, ev.BandwidthKbps)
		}
		applied = append(applied, ev)
	}
	return applied
}

// Done reports whether all events have been applied.
func (t *Trace) Done() bool { return t.next >= len(t.events) }

// CurrentStep returns the virtual time.
func (t *Trace) CurrentStep() int { return t.step }

// RandomWalk perturbs every link's bandwidth multiplicatively each step:
// bw *= 1 + U(-amplitude, +amplitude), clamped to [floorKbps, capKbps].
// It models the "fluctuating network resources" of Section 3 without a
// fixed script.
type RandomWalk struct {
	net       *Network
	rng       *rand.Rand
	amplitude float64
	floorKbps float64
	capKbps   float64
}

// NewRandomWalk builds a random-walk fluctuator. Amplitude must be in
// (0,1); floor and cap bound the walk.
func NewRandomWalk(net *Network, rng *rand.Rand, amplitude, floorKbps, capKbps float64) (*RandomWalk, error) {
	if amplitude <= 0 || amplitude >= 1 {
		return nil, fmt.Errorf("overlay: random-walk amplitude %v outside (0,1)", amplitude)
	}
	if floorKbps < 0 || capKbps <= floorKbps {
		return nil, fmt.Errorf("overlay: random-walk bounds [%v,%v] invalid", floorKbps, capKbps)
	}
	return &RandomWalk{net: net, rng: rng, amplitude: amplitude, floorKbps: floorKbps, capKbps: capKbps}, nil
}

// Step perturbs every link once.
func (w *RandomWalk) Step() {
	snap := w.net.Snapshot()
	for _, l := range snap.Links {
		factor := 1 + (w.rng.Float64()*2-1)*w.amplitude
		bw := l.BandwidthKbps * factor
		if bw < w.floorKbps {
			bw = w.floorKbps
		}
		if bw > w.capKbps {
			bw = w.capKbps
		}
		_ = w.net.SetBandwidth(l.From, l.To, bw)
	}
}
