package overlay

import (
	"fmt"
	"math"
	"math/rand"
)

// Diurnal models the daily load pattern of a shared network: capacity
// available to the session dips during the busy hours and recovers at
// night, with small random noise on top. One full day spans Period
// virtual-time steps.
type Diurnal struct {
	net    *Network
	period int
	depth  float64
	noise  float64
	rng    *rand.Rand

	step int
	base map[[2]string]float64
}

// NewDiurnal captures the current link capacities as the off-peak
// baseline. depth in (0,1) is the busy-hour reduction (0.4 = links lose
// 40% at the peak); noise in [0,1) adds a uniform per-step perturbation.
func NewDiurnal(net *Network, rng *rand.Rand, period int, depth, noise float64) (*Diurnal, error) {
	if period < 2 {
		return nil, fmt.Errorf("overlay: diurnal period %d too short", period)
	}
	if depth <= 0 || depth >= 1 {
		return nil, fmt.Errorf("overlay: diurnal depth %v outside (0,1)", depth)
	}
	if noise < 0 || noise >= 1 {
		return nil, fmt.Errorf("overlay: diurnal noise %v outside [0,1)", noise)
	}
	base := make(map[[2]string]float64)
	for _, l := range net.Snapshot().Links {
		base[[2]string{l.From, l.To}] = l.BandwidthKbps
	}
	return &Diurnal{net: net, period: period, depth: depth, noise: noise, rng: rng, base: base}, nil
}

// Step advances one virtual-time step, rescaling every link; it returns
// the busy-hour factor applied (1 = off-peak baseline).
func (d *Diurnal) Step() float64 {
	d.step++
	phase := 2 * math.Pi * float64(d.step%d.period) / float64(d.period)
	// Peak load (deepest dip) at mid-period.
	factor := 1 - d.depth*(0.5-0.5*math.Cos(phase))
	for key, kbps := range d.base {
		f := factor
		if d.noise > 0 {
			f *= 1 + (d.rng.Float64()*2-1)*d.noise
		}
		_ = d.net.SetBandwidth(key[0], key[1], kbps*f)
	}
	return factor
}

// CurrentStep returns the virtual time.
func (d *Diurnal) CurrentStep() int { return d.step }

// PreferentialAttachment grows a scale-free overlay: it starts from a
// small ring over sender/receiver/first proxies and attaches every
// further proxy with m duplex links to existing hosts sampled
// proportionally to their degree — the hub-and-spoke shape real proxy
// infrastructures converge to.
func PreferentialAttachment(n, m int, spec LinkSpec, rng *rand.Rand) *Network {
	if m < 1 {
		m = 1
	}
	net := New()
	hosts := []string{"sender", "receiver"}
	for i := 0; i < n; i++ {
		hosts = append(hosts, ProxyName(i))
	}
	seed := 3
	if len(hosts) < seed {
		seed = len(hosts)
	}
	// Degree-weighted sampling list: each endpoint appears once per
	// incident duplex link.
	var degreeList []string
	connect := func(a, b string) {
		kbps, delay := spec.draw(rng)
		net.AddDuplexLink(a, b, kbps, delay, 0)
		degreeList = append(degreeList, a, b)
	}
	// Seed ring.
	for i := 0; i < seed; i++ {
		connect(hosts[i], hosts[(i+1)%seed])
	}
	for i := seed; i < len(hosts); i++ {
		attached := map[string]bool{}
		for len(attached) < m && len(attached) < i {
			target := degreeList[rng.Intn(len(degreeList))]
			if target == hosts[i] || attached[target] {
				continue
			}
			attached[target] = true
			connect(hosts[i], target)
		}
	}
	return net
}
