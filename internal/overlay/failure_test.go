package overlay

import (
	"math"
	"testing"
)

func failoverNet() *Network {
	n := New()
	n.AddLink("s", "a", 1000, 5, 0)
	n.AddLink("a", "r", 1000, 5, 0)
	n.AddLink("s", "b", 500, 5, 0)
	n.AddLink("b", "r", 500, 5, 0)
	return n
}

func TestFailHostHidesLinks(t *testing.T) {
	n := failoverNet()
	if err := n.FailHost("a"); err != nil {
		t.Fatal(err)
	}
	if !n.HostDown("a") {
		t.Error("a should be down")
	}
	if _, _, _, ok := n.Link("s", "a"); ok {
		t.Error("link to a down host must not be usable")
	}
	if bw := n.AvailableBandwidth("s", "a"); bw != 0 {
		t.Errorf("bandwidth to down host = %v", bw)
	}
	// Routing around the crash still works via b.
	if bw := n.AvailableBandwidth("s", "r"); bw != 500 {
		t.Errorf("routed bandwidth = %v, want 500 via b", bw)
	}
	if hops := n.HopCount("s", "a"); hops != -1 {
		t.Errorf("hop count to down host = %d", hops)
	}
	if _, _, ok := n.MinDelayPath("s", "a"); ok {
		t.Error("min-delay path to down host must fail")
	}
}

func TestRecoverHostRestoresState(t *testing.T) {
	n := failoverNet()
	if err := n.Reserve("s", "a", 200); err != nil {
		t.Fatal(err)
	}
	if err := n.FailHost("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.RecoverHost("a"); err != nil {
		t.Fatal(err)
	}
	bw, delay, _, ok := n.Link("s", "a")
	if !ok || bw != 800 || delay != 5 {
		t.Errorf("recovered link = %v/%v/%v, want 800 kbps, 5 ms", bw, delay, ok)
	}
}

func TestFailHostEvents(t *testing.T) {
	n := failoverNet()
	events, cancel := n.Watch(8)
	defer cancel()
	if err := n.FailHost("a"); err != nil {
		t.Fatal(err)
	}
	seen := map[string]float64{}
	for i := 0; i < 2; i++ {
		ev := <-events
		seen[ev.From+"->"+ev.To] = ev.BandwidthKbps
	}
	if v, ok := seen["s->a"]; !ok || v != 0 {
		t.Errorf("expected zero-bandwidth event for s->a, got %v", seen)
	}
	if v, ok := seen["a->r"]; !ok || v != 0 {
		t.Errorf("expected zero-bandwidth event for a->r, got %v", seen)
	}
}

func TestFailHostErrors(t *testing.T) {
	n := failoverNet()
	if err := n.FailHost("nope"); err == nil {
		t.Error("unknown host must error")
	}
	if err := n.RecoverHost("a"); err == nil {
		t.Error("recovering a healthy host must error")
	}
	if err := n.FailHost("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.FailHost("a"); err == nil {
		t.Error("double crash must error")
	}
}

func TestFailLinkFlap(t *testing.T) {
	n := failoverNet()
	if err := n.FailLink("s", "a"); err != nil {
		t.Fatal(err)
	}
	if !n.LinkDown("s", "a") {
		t.Error("link should be down")
	}
	if _, _, _, ok := n.Link("s", "a"); ok {
		t.Error("down link must not be usable")
	}
	if err := n.Reserve("s", "a", 100); err == nil {
		t.Error("reserving a down link must fail")
	}
	// The host itself is fine; a->r still works.
	if _, _, _, ok := n.Link("a", "r"); !ok {
		t.Error("sibling link must stay up")
	}
	if err := n.RecoverLink("s", "a"); err != nil {
		t.Fatal(err)
	}
	bw, _, _, ok := n.Link("s", "a")
	if !ok || bw != 1000 {
		t.Errorf("recovered link = %v (%v), want 1000", bw, ok)
	}
}

func TestSetLossAndDelay(t *testing.T) {
	n := failoverNet()
	if err := n.SetLoss("s", "a", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := n.SetDelay("s", "a", 90); err != nil {
		t.Fatal(err)
	}
	_, delay, loss, ok := n.Link("s", "a")
	if !ok || loss != 0.25 || delay != 90 {
		t.Errorf("link after spikes = delay %v loss %v (%v)", delay, loss, ok)
	}
	if err := n.SetLoss("s", "a", 1.5); err == nil {
		t.Error("loss above 1 must error")
	}
	if err := n.SetDelay("s", "a", -1); err == nil {
		t.Error("negative delay must error")
	}
	if err := n.SetLoss("x", "y", 0.1); err == nil {
		t.Error("unknown link must error")
	}
}

func TestSnapshotExcludesDown(t *testing.T) {
	n := failoverNet()
	if err := n.FailHost("b"); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	for _, l := range snap.Links {
		if l.From == "b" || l.To == "b" {
			t.Errorf("snapshot leaked down-host link %s->%s", l.From, l.To)
		}
	}
	if len(snap.Links) != 2 {
		t.Errorf("snapshot links = %d, want 2", len(snap.Links))
	}
}

func TestGenerationBumpsOnFailure(t *testing.T) {
	n := failoverNet()
	g0 := n.Generation()
	if err := n.FailHost("a"); err != nil {
		t.Fatal(err)
	}
	if n.Generation() == g0 {
		t.Error("FailHost must bump the generation")
	}
	g1 := n.Generation()
	if err := n.RecoverHost("a"); err != nil {
		t.Fatal(err)
	}
	if n.Generation() == g1 {
		t.Error("RecoverHost must bump the generation")
	}
}

func TestWidestAvoidsDownHost(t *testing.T) {
	n := New()
	n.AddLink("s", "a", 9000, 1, 0)
	n.AddLink("a", "r", 9000, 1, 0)
	n.AddLink("s", "b", 300, 1, 0)
	n.AddLink("b", "r", 300, 1, 0)
	if bw := n.WidestBandwidth("s", "r"); bw != 9000 {
		t.Fatalf("widest = %v, want 9000", bw)
	}
	if err := n.FailHost("a"); err != nil {
		t.Fatal(err)
	}
	if bw := n.WidestBandwidth("s", "r"); bw != 300 {
		t.Errorf("widest after crash = %v, want 300 via b", bw)
	}
	if err := n.FailHost("b"); err != nil {
		t.Fatal(err)
	}
	if bw := n.WidestBandwidth("s", "r"); bw != 0 {
		t.Errorf("widest after total crash = %v, want 0", bw)
	}
	if bw := n.AvailableBandwidth("s", "s"); !math.IsInf(bw, 1) {
		t.Errorf("co-located bandwidth = %v, want +Inf", bw)
	}
}
