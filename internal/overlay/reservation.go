package overlay

import (
	"errors"
	"fmt"
)

// Capacity admission: before a composed chain is activated, its
// bandwidth is reserved on every inter-host link it crosses —
// atomically, so two concurrent admissions can never each pass a check
// the other invalidates. A chain that would oversubscribe any live
// reservation is rejected whole, with no partial holds to unwind.
// Co-located services (From == To) need no reservation, per the paper's
// model of infinite intra-host bandwidth.

// ErrInsufficientCapacity is the typed rejection of a chain admission:
// at least one link lacks the unreserved bandwidth the chain needs.
var ErrInsufficientCapacity = errors.New("overlay: insufficient link capacity")

// CapacityError reports the first link that could not take a chain's
// reservation. It wraps ErrInsufficientCapacity.
type CapacityError struct {
	From, To                string
	AvailableKbps, NeedKbps float64
	// Down marks a link (or endpoint) that is failed rather than
	// merely full.
	Down bool
}

// Error implements error.
func (e *CapacityError) Error() string {
	if e.Down {
		return fmt.Sprintf("overlay: link %s->%s is down", e.From, e.To)
	}
	return fmt.Sprintf("overlay: link %s->%s has %.1f kbps available, need %.1f",
		e.From, e.To, e.AvailableKbps, e.NeedKbps)
}

// Unwrap ties the error to ErrInsufficientCapacity for errors.Is.
func (e *CapacityError) Unwrap() error { return ErrInsufficientCapacity }

// Reservation is one directed-link share of a chain admission.
type Reservation struct {
	From, To string
	Kbps     float64
}

// ReserveChain atomically admits every reservation or none: all links
// are checked under one lock before any is mutated, so a rejected chain
// leaves the overlay untouched and a concurrent admission can never
// interleave between check and commit. Reservations on the same link
// are summed before checking (a chain may cross a link twice);
// co-located pairs (From == To) and non-positive shares are skipped.
// On failure it returns a *CapacityError naming the first offending
// link in chain order.
func (n *Network) ReserveChain(rs []Reservation) error {
	n.mu.Lock()
	// Aggregate per link, preserving first-touch order for stable
	// error attribution.
	need := make(map[edge]float64, len(rs))
	order := make([]edge, 0, len(rs))
	for _, r := range rs {
		if r.From == r.To || r.Kbps <= 0 {
			continue
		}
		e := edge{r.From, r.To}
		if _, seen := need[e]; !seen {
			order = append(order, e)
		}
		need[e] += r.Kbps
	}
	// Check phase: nothing is mutated until every link clears.
	for _, e := range order {
		l, ok := n.links[e]
		if !ok {
			n.mu.Unlock()
			return &CapacityError{From: e.from, To: e.to, NeedKbps: need[e], Down: true}
		}
		if !n.usableLocked(e, l) {
			n.mu.Unlock()
			return &CapacityError{From: e.from, To: e.to, NeedKbps: need[e], Down: true}
		}
		if l.available() < need[e]-1e-9 {
			err := &CapacityError{From: e.from, To: e.to, AvailableKbps: l.available(), NeedKbps: need[e]}
			n.mu.Unlock()
			return err
		}
	}
	// Commit phase.
	events := make([]Event, 0, len(order))
	for _, e := range order {
		l := n.links[e]
		l.reservedKbps += need[e]
		events = append(events, Event{From: e.from, To: e.to, BandwidthKbps: l.available()})
	}
	if len(order) > 0 {
		n.gen++
	}
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	for _, ev := range events {
		notify(subs, ev)
	}
	return nil
}

// ReleaseChain returns a chain's reservations in one mutation,
// clamping each link's reservation at zero. Unknown links and
// co-located pairs are ignored.
func (n *Network) ReleaseChain(rs []Reservation) {
	n.mu.Lock()
	events := make([]Event, 0, len(rs))
	changed := false
	for _, r := range rs {
		if r.From == r.To || r.Kbps <= 0 {
			continue
		}
		l, ok := n.links[edge{r.From, r.To}]
		if !ok {
			continue
		}
		l.reservedKbps -= r.Kbps
		if l.reservedKbps < 0 {
			l.reservedKbps = 0
		}
		changed = true
		events = append(events, Event{From: r.From, To: r.To, BandwidthKbps: l.available()})
	}
	if changed {
		n.gen++
	}
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	for _, ev := range events {
		notify(subs, ev)
	}
}

// SwapChain atomically moves a session from one chain hold to another:
// the old reservations are released and the new ones acquired under one
// lock, so a concurrent admission can never observe the session holding
// both chains, half a chain, or neither. The release is visible to the
// acquire check, which is what lets a storm re-plan succeed on links
// that are full only because of the holds being replaced. On failure
// every touched reservation is restored to its exact prior value and a
// *CapacityError names the first offending link — the session keeps its
// old hold untouched.
func (n *Network) SwapChain(release, acquire []Reservation) error {
	n.mu.Lock()
	// Remember the prior reservation of every link we mutate so a failed
	// acquire can restore the overlay byte-for-byte.
	saved := make(map[edge]float64, len(release)+len(acquire))
	touched := make([]edge, 0, len(release)+len(acquire))
	touch := func(e edge, l *linkState) {
		if _, ok := saved[e]; !ok {
			saved[e] = l.reservedKbps
			touched = append(touched, e)
		}
	}
	// Release phase: same semantics as ReleaseChain (unknown links and
	// co-located pairs ignored, clamped at zero).
	for _, r := range release {
		if r.From == r.To || r.Kbps <= 0 {
			continue
		}
		e := edge{r.From, r.To}
		l, ok := n.links[e]
		if !ok {
			continue
		}
		touch(e, l)
		l.reservedKbps -= r.Kbps
		if l.reservedKbps < 0 {
			l.reservedKbps = 0
		}
	}
	// Aggregate the acquire per link, preserving first-touch order for
	// stable error attribution (a chain may cross a link twice).
	need := make(map[edge]float64, len(acquire))
	order := make([]edge, 0, len(acquire))
	for _, r := range acquire {
		if r.From == r.To || r.Kbps <= 0 {
			continue
		}
		e := edge{r.From, r.To}
		if _, seen := need[e]; !seen {
			order = append(order, e)
		}
		need[e] += r.Kbps
	}
	// Check phase: nothing further is mutated until every link clears.
	for _, e := range order {
		l, ok := n.links[e]
		if !ok || !n.usableLocked(e, l) {
			for _, t := range touched {
				n.links[t].reservedKbps = saved[t]
			}
			n.mu.Unlock()
			return &CapacityError{From: e.from, To: e.to, NeedKbps: need[e], Down: true}
		}
		if l.available() < need[e]-1e-9 {
			err := &CapacityError{From: e.from, To: e.to, AvailableKbps: l.available(), NeedKbps: need[e]}
			for _, t := range touched {
				n.links[t].reservedKbps = saved[t]
			}
			n.mu.Unlock()
			return err
		}
	}
	// Commit phase.
	for _, e := range order {
		l := n.links[e]
		touch(e, l)
		l.reservedKbps += need[e]
	}
	events := make([]Event, 0, len(touched))
	for _, e := range touched {
		events = append(events, Event{From: e.from, To: e.to, BandwidthKbps: n.links[e].available()})
	}
	if len(touched) > 0 {
		n.gen++
	}
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	for _, ev := range events {
		notify(subs, ev)
	}
	return nil
}

// TotalReservedKbps sums the live reservations across all links — the
// admission layer's "how much of the overlay is spoken for" gauge.
func (n *Network) TotalReservedKbps() float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := 0.0
	for _, l := range n.links {
		total += l.reservedKbps
	}
	return total
}
