package overlay

import (
	"errors"
	"sync"
	"testing"
)

func TestReserveChainAllOrNothing(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	n.AddLink("b", "c", 300, 0, 0)
	err := n.ReserveChain([]Reservation{
		{From: "a", To: "b", Kbps: 500},
		{From: "b", To: "c", Kbps: 500}, // exceeds b->c
	})
	if !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("err = %v, want ErrInsufficientCapacity", err)
	}
	var ce *CapacityError
	if !errors.As(err, &ce) || ce.From != "b" || ce.To != "c" || ce.AvailableKbps != 300 || ce.NeedKbps != 500 {
		t.Errorf("CapacityError = %+v", ce)
	}
	// The rejection left nothing held: the first link is untouched.
	if got := n.AvailableBandwidth("a", "b"); got != 1000 {
		t.Errorf("a->b available after rejected chain = %v, want 1000 (no partial hold)", got)
	}
	if n.TotalReservedKbps() != 0 {
		t.Errorf("total reserved = %v, want 0", n.TotalReservedKbps())
	}
}

func TestReserveChainCommitsAtomically(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	n.AddLink("b", "c", 1000, 0, 0)
	rs := []Reservation{
		{From: "a", To: "b", Kbps: 400},
		{From: "b", To: "c", Kbps: 400},
	}
	if err := n.ReserveChain(rs); err != nil {
		t.Fatal(err)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 600 {
		t.Errorf("a->b available = %v", got)
	}
	if n.TotalReservedKbps() != 800 {
		t.Errorf("total reserved = %v, want 800", n.TotalReservedKbps())
	}
	n.ReleaseChain(rs)
	if n.TotalReservedKbps() != 0 {
		t.Errorf("total after release = %v", n.TotalReservedKbps())
	}
}

func TestReserveChainAggregatesRepeatedLinks(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	// A chain crossing the same link twice needs the summed share — two
	// 600s on a 1000 link must be rejected even though each fits alone.
	err := n.ReserveChain([]Reservation{
		{From: "a", To: "b", Kbps: 600},
		{From: "a", To: "b", Kbps: 600},
	})
	if !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("aggregated oversubscription must be rejected, got %v", err)
	}
	if err := n.ReserveChain([]Reservation{
		{From: "a", To: "b", Kbps: 400},
		{From: "a", To: "b", Kbps: 400},
	}); err != nil {
		t.Fatal(err)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 200 {
		t.Errorf("available = %v, want 200", got)
	}
}

func TestReserveChainSkipsColocatedAndNonPositive(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 100, 0, 0)
	if err := n.ReserveChain([]Reservation{
		{From: "h", To: "h", Kbps: 1e9}, // co-located: infinite intra-host bandwidth
		{From: "a", To: "b", Kbps: 0},
		{From: "a", To: "b", Kbps: -5},
	}); err != nil {
		t.Fatalf("co-located and non-positive shares must be ignored: %v", err)
	}
	if n.TotalReservedKbps() != 0 {
		t.Errorf("nothing should be held, got %v", n.TotalReservedKbps())
	}
}

func TestReserveChainRejectsDownAndMissingLinks(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	err := n.ReserveChain([]Reservation{{From: "x", To: "y", Kbps: 10}})
	var ce *CapacityError
	if !errors.As(err, &ce) || !ce.Down {
		t.Fatalf("missing link must reject with Down, got %v", err)
	}
	if err := n.FailLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	err = n.ReserveChain([]Reservation{{From: "a", To: "b", Kbps: 10}})
	if !errors.As(err, &ce) || !ce.Down || !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("failed link must reject with Down, got %v", err)
	}
}

func TestReserveChainNotifiesWatchersAndBumpsGeneration(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	before := n.Generation()
	ch, cancel := n.Watch(4)
	defer cancel()
	rs := []Reservation{{From: "a", To: "b", Kbps: 250}}
	if err := n.ReserveChain(rs); err != nil {
		t.Fatal(err)
	}
	if ev := <-ch; ev.BandwidthKbps != 750 {
		t.Errorf("reserve event bandwidth = %v, want 750", ev.BandwidthKbps)
	}
	if n.Generation() == before {
		t.Error("reserve must bump the generation (graph caches must invalidate)")
	}
	n.ReleaseChain(rs)
	if ev := <-ch; ev.BandwidthKbps != 1000 {
		t.Errorf("release event bandwidth = %v, want 1000", ev.BandwidthKbps)
	}
}

// TestReserveChainConcurrentAdmission races two chains over a shared
// bottleneck that can hold only one of them: exactly one must win, and
// the loser must leave no partial holds.
func TestReserveChainConcurrentAdmission(t *testing.T) {
	for round := 0; round < 50; round++ {
		n := New()
		n.AddLink("a", "b", 1000, 0, 0)
		n.AddLink("b", "c", 600, 0, 0)
		chain := []Reservation{
			{From: "a", To: "b", Kbps: 500},
			{From: "b", To: "c", Kbps: 500},
		}
		var wg sync.WaitGroup
		results := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = n.ReserveChain(chain)
			}(i)
		}
		wg.Wait()
		wins := 0
		for _, err := range results {
			if err == nil {
				wins++
			} else if !errors.Is(err, ErrInsufficientCapacity) {
				t.Fatalf("loser error = %v", err)
			}
		}
		if wins != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, wins)
		}
		if n.TotalReservedKbps() != 1000 {
			t.Fatalf("round %d: total reserved = %v, want 1000 (one full chain)", round, n.TotalReservedKbps())
		}
	}
}
