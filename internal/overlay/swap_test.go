package overlay

import (
	"errors"
	"sync"
	"testing"
)

// swapNet is a sender with two disjoint two-hop paths to recv.
func swapNet() *Network {
	net := New()
	net.AddLink("s", "a", 1000, 5, 0)
	net.AddLink("a", "r", 1000, 5, 0)
	net.AddLink("s", "b", 1000, 5, 0)
	net.AddLink("b", "r", 1000, 5, 0)
	return net
}

func TestSwapChainMovesHoldAtomically(t *testing.T) {
	net := swapNet()
	old := []Reservation{{From: "s", To: "a", Kbps: 600}, {From: "a", To: "r", Kbps: 600}}
	if err := net.ReserveChain(old); err != nil {
		t.Fatal(err)
	}
	next := []Reservation{{From: "s", To: "b", Kbps: 600}, {From: "b", To: "r", Kbps: 600}}
	if err := net.SwapChain(old, next); err != nil {
		t.Fatalf("SwapChain: %v", err)
	}
	if _, reserved, _ := net.Capacity("s", "a"); reserved != 0 {
		t.Fatalf("old path still reserves %.0f kbps", reserved)
	}
	if _, reserved, _ := net.Capacity("s", "b"); reserved != 600 {
		t.Fatalf("new path reserves %.0f kbps, want 600", reserved)
	}
	if total := net.TotalReservedKbps(); total != 1200 {
		t.Fatalf("TotalReservedKbps = %.0f, want 1200", total)
	}
}

func TestSwapChainReleaseVisibleToAcquire(t *testing.T) {
	// The new chain shares a full link with the old one: the swap only
	// succeeds because the release happens before the acquire check,
	// under the same lock. This is the exact shape of a storm re-plan
	// that keeps a session on one of its current links.
	net := swapNet()
	old := []Reservation{{From: "s", To: "a", Kbps: 900}, {From: "a", To: "r", Kbps: 900}}
	if err := net.ReserveChain(old); err != nil {
		t.Fatal(err)
	}
	next := []Reservation{{From: "s", To: "a", Kbps: 800}, {From: "a", To: "r", Kbps: 800}}
	if err := net.SwapChain(old, next); err != nil {
		t.Fatalf("SwapChain on shared full link: %v", err)
	}
	if _, reserved, _ := net.Capacity("s", "a"); reserved != 800 {
		t.Fatalf("shared link reserves %.0f kbps, want 800", reserved)
	}
}

func TestSwapChainFailureRestoresExactly(t *testing.T) {
	net := swapNet()
	old := []Reservation{{From: "s", To: "a", Kbps: 600}, {From: "a", To: "r", Kbps: 600}}
	if err := net.ReserveChain(old); err != nil {
		t.Fatal(err)
	}
	// A competitor fills the b path, so the swap's acquire must fail.
	if err := net.ReserveChain([]Reservation{{From: "s", To: "b", Kbps: 700}}); err != nil {
		t.Fatal(err)
	}
	next := []Reservation{{From: "s", To: "b", Kbps: 600}, {From: "b", To: "r", Kbps: 600}}
	err := net.SwapChain(old, next)
	if err == nil {
		t.Fatal("SwapChain succeeded over a full link")
	}
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v, want *CapacityError", err)
	}
	// The failed swap must restore every touched link byte-for-byte:
	// the old hold intact, the competitor intact, nothing acquired.
	if _, reserved, _ := net.Capacity("s", "a"); reserved != 600 {
		t.Fatalf("old hold damaged: s->a reserves %.0f kbps, want 600", reserved)
	}
	if _, reserved, _ := net.Capacity("a", "r"); reserved != 600 {
		t.Fatalf("old hold damaged: a->r reserves %.0f kbps, want 600", reserved)
	}
	if _, reserved, _ := net.Capacity("s", "b"); reserved != 700 {
		t.Fatalf("competitor damaged: s->b reserves %.0f kbps, want 700", reserved)
	}
	if _, reserved, _ := net.Capacity("b", "r"); reserved != 0 {
		t.Fatalf("partial acquire leaked: b->r reserves %.0f kbps, want 0", reserved)
	}
}

// TestSwapChainConcurrent swaps two sessions back and forth between the
// two paths from many goroutines; the invariant is that the total
// reservation never drifts — no observer can see half a swap.
func TestSwapChainConcurrent(t *testing.T) {
	net := swapNet()
	pathA := []Reservation{{From: "s", To: "a", Kbps: 100}, {From: "a", To: "r", Kbps: 100}}
	pathB := []Reservation{{From: "s", To: "b", Kbps: 100}, {From: "b", To: "r", Kbps: 100}}

	const sessions = 4
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		if err := net.ReserveChain(pathA); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur, next := pathA, pathB
			for j := 0; j < 500; j++ {
				if err := net.SwapChain(cur, next); err == nil {
					cur, next = next, cur
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Auditor: the sum of reservations is constant through every swap.
	for {
		select {
		case <-done:
			if total := net.TotalReservedKbps(); total != sessions*200 {
				t.Fatalf("TotalReservedKbps = %.0f after swaps, want %d", total, sessions*200)
			}
			return
		default:
		}
		if total := net.TotalReservedKbps(); total != sessions*200 {
			t.Fatalf("observed torn swap: TotalReservedKbps = %.0f, want %d", total, sessions*200)
		}
	}
}
