package overlay

import "sort"

// LinkRef names one directed link. It is the unit of change the fault →
// overlay → storm-controller event path carries: a fault that degrades
// link L is reported as the set of LinkRefs it touched, and graph repair
// patches only edges riding those links.
type LinkRef struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// LinksOf returns every directed link touching the host (as source or
// destination), sorted. Fault handlers use it to expand a host-level
// event into the link set it degrades.
func (n *Network) LinksOf(host string) []LinkRef {
	n.mu.RLock()
	refs := make([]LinkRef, 0, 4)
	for e := range n.links {
		if e.from == host || e.to == host {
			refs = append(refs, LinkRef{From: e.from, To: e.to})
		}
	}
	n.mu.RUnlock()
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].From != refs[j].From {
			return refs[i].From < refs[j].From
		}
		return refs[i].To < refs[j].To
	})
	return refs
}

// HasUsableLink reports whether a direct, currently usable link from→to
// exists — the same test the graph annotator applies when deciding
// between the direct-link QoS and the widest-path fallback. Graph
// repair relies on it: an
// edge between directly linked hosts is exact as long as that one link
// is unchanged, while a routed edge must be re-queried after any change.
func (n *Network) HasUsableLink(from, to string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[edge{from, to}]
	return ok && n.usableLocked(edge{from, to}, l)
}
