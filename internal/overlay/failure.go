package overlay

import "fmt"

// Failure states: fault injection marks hosts and links as down without
// destroying their configuration, so a recovery restores the exact
// pre-failure characteristics (capacity, delay, loss, reservations). A
// down host or link is invisible to every query — Link, bandwidth,
// routing, Snapshot — and Reserve refuses it, but Release still works so
// sessions can withdraw cleanly from a crashed chain.

// FailHost marks a host as crashed. Every link touching it stops carrying
// traffic and watchers receive a zero-bandwidth event per affected link.
// Failing an unknown or already-down host is an error.
func (n *Network) FailHost(id string) error {
	n.mu.Lock()
	if !n.nodes[id] {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no host %s", id)
	}
	if n.down[id] {
		n.mu.Unlock()
		return fmt.Errorf("overlay: host %s is already down", id)
	}
	// Collect the links that were usable and now go dark.
	var affected []edge
	for e, l := range n.links {
		if (e.from == id || e.to == id) && n.usableLocked(e, l) {
			affected = append(affected, e)
		}
	}
	n.down[id] = true
	n.gen++
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	for _, e := range affected {
		notify(subs, Event{From: e.from, To: e.to, BandwidthKbps: 0})
	}
	return nil
}

// RecoverHost brings a crashed host back. Links to still-healthy
// neighbors resume at their retained characteristics and watchers receive
// the restored bandwidth per link.
func (n *Network) RecoverHost(id string) error {
	n.mu.Lock()
	if !n.nodes[id] {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no host %s", id)
	}
	if !n.down[id] {
		n.mu.Unlock()
		return fmt.Errorf("overlay: host %s is not down", id)
	}
	delete(n.down, id)
	n.gen++
	type restored struct {
		e    edge
		kbps float64
	}
	var affected []restored
	for e, l := range n.links {
		if (e.from == id || e.to == id) && n.usableLocked(e, l) {
			affected = append(affected, restored{e, l.available()})
		}
	}
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	for _, r := range affected {
		notify(subs, Event{From: r.e.from, To: r.e.to, BandwidthKbps: r.kbps})
	}
	return nil
}

// HostDown reports whether the host is currently crashed.
func (n *Network) HostDown(id string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[id]
}

// DownHosts returns the currently crashed hosts (unsorted count is small;
// callers sort if they need determinism).
func (n *Network) DownHosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.down))
	for id := range n.down {
		out = append(out, id)
	}
	return out
}

// FailLink marks the directed link as down, retaining its configuration
// for recovery. Watchers receive a zero-bandwidth event.
func (n *Network) FailLink(from, to string) error {
	n.mu.Lock()
	l, ok := n.links[edge{from, to}]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no link %s->%s", from, to)
	}
	if l.down {
		n.mu.Unlock()
		return fmt.Errorf("overlay: link %s->%s is already down", from, to)
	}
	l.down = true
	n.gen++
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	notify(subs, Event{From: from, To: to, BandwidthKbps: 0})
	return nil
}

// RecoverLink brings a failed link back at its retained characteristics.
func (n *Network) RecoverLink(from, to string) error {
	n.mu.Lock()
	l, ok := n.links[edge{from, to}]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no link %s->%s", from, to)
	}
	if !l.down {
		n.mu.Unlock()
		return fmt.Errorf("overlay: link %s->%s is not down", from, to)
	}
	l.down = false
	n.gen++
	subs := append([]chan Event(nil), n.subs...)
	avail := 0.0
	if n.usableLocked(edge{from, to}, l) {
		avail = l.available()
	}
	n.mu.Unlock()
	notify(subs, Event{From: from, To: to, BandwidthKbps: avail})
	return nil
}

// LinkDown reports whether the directed link itself is failed (host
// crashes are reported separately by HostDown).
func (n *Network) LinkDown(from, to string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[edge{from, to}]
	return ok && l.down
}

// Usable reports whether the directed link exists and currently carries
// traffic: the link itself is up and neither endpoint host is crashed.
// Recovery uses it to decide whether a re-applied bandwidth hold still
// sits on a live link.
func (n *Network) Usable(from, to string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e := edge{from, to}
	l, ok := n.links[e]
	return ok && n.usableLocked(e, l)
}

// SetLoss updates an existing link's loss rate — a loss spike. Watchers
// receive an event carrying the link's current bandwidth so that sessions
// whose chain crosses the link re-evaluate.
func (n *Network) SetLoss(from, to string, rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("overlay: loss rate %v outside [0,1]", rate)
	}
	n.mu.Lock()
	l, ok := n.links[edge{from, to}]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no link %s->%s", from, to)
	}
	l.lossRate = rate
	n.gen++
	subs := append([]chan Event(nil), n.subs...)
	avail := 0.0
	if n.usableLocked(edge{from, to}, l) {
		avail = l.available()
	}
	n.mu.Unlock()
	notify(subs, Event{From: from, To: to, BandwidthKbps: avail})
	return nil
}

// SetDelay updates an existing link's one-way delay — a latency spike.
func (n *Network) SetDelay(from, to string, delayMs float64) error {
	if delayMs < 0 {
		return fmt.Errorf("overlay: negative delay %v", delayMs)
	}
	n.mu.Lock()
	l, ok := n.links[edge{from, to}]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no link %s->%s", from, to)
	}
	l.delayMs = delayMs
	n.gen++
	subs := append([]chan Event(nil), n.subs...)
	avail := 0.0
	if n.usableLocked(edge{from, to}, l) {
		avail = l.available()
	}
	n.mu.Unlock()
	notify(subs, Event{From: from, To: to, BandwidthKbps: avail})
	return nil
}
