package overlay

import (
	"fmt"
	"math/rand"
)

// Topology generators. All generators are deterministic given the same
// *rand.Rand seed and produce duplex links, with the sender at host
// "sender" and receiver at host "receiver" where applicable.

// LinkSpec bounds the characteristics a generator assigns to links.
type LinkSpec struct {
	// MinKbps/MaxKbps bound the uniform bandwidth draw.
	MinKbps, MaxKbps float64
	// MinDelayMs/MaxDelayMs bound the uniform delay draw.
	MinDelayMs, MaxDelayMs float64
}

// DefaultLinkSpec is a broadband-era profile: 500 kbps – 5 Mbps links
// with 5–50 ms delay.
var DefaultLinkSpec = LinkSpec{MinKbps: 500, MaxKbps: 5000, MinDelayMs: 5, MaxDelayMs: 50}

func (s LinkSpec) draw(rng *rand.Rand) (kbps, delay float64) {
	kbps = s.MinKbps + rng.Float64()*(s.MaxKbps-s.MinKbps)
	delay = s.MinDelayMs + rng.Float64()*(s.MaxDelayMs-s.MinDelayMs)
	return kbps, delay
}

// ProxyName returns the canonical name of the i-th proxy host.
func ProxyName(i int) string { return fmt.Sprintf("proxy-%d", i) }

// Line builds sender → proxy-0 → … → proxy-(n-1) → receiver with duplex
// links.
func Line(n int, spec LinkSpec, rng *rand.Rand) *Network {
	net := New()
	prev := "sender"
	for i := 0; i < n; i++ {
		host := ProxyName(i)
		kbps, delay := spec.draw(rng)
		net.AddDuplexLink(prev, host, kbps, delay, 0)
		prev = host
	}
	kbps, delay := spec.draw(rng)
	net.AddDuplexLink(prev, "receiver", kbps, delay, 0)
	return net
}

// Star connects every proxy (and the receiver) directly to the sender's
// access point "hub", with sender attached to the hub too.
func Star(n int, spec LinkSpec, rng *rand.Rand) *Network {
	net := New()
	kbps, delay := spec.draw(rng)
	net.AddDuplexLink("sender", "hub", kbps, delay, 0)
	for i := 0; i < n; i++ {
		k, d := spec.draw(rng)
		net.AddDuplexLink("hub", ProxyName(i), k, d, 0)
	}
	kbps, delay = spec.draw(rng)
	net.AddDuplexLink("hub", "receiver", kbps, delay, 0)
	return net
}

// Random builds a connected random overlay: a ring over
// sender, proxies, receiver (guaranteeing connectivity) plus extra random
// chords until the average out-degree reaches degree.
func Random(n int, degree float64, spec LinkSpec, rng *rand.Rand) *Network {
	net := New()
	hosts := make([]string, 0, n+2)
	hosts = append(hosts, "sender")
	for i := 0; i < n; i++ {
		hosts = append(hosts, ProxyName(i))
	}
	hosts = append(hosts, "receiver")
	for i := range hosts {
		next := hosts[(i+1)%len(hosts)]
		kbps, delay := spec.draw(rng)
		net.AddDuplexLink(hosts[i], next, kbps, delay, 0)
	}
	want := int(degree * float64(len(hosts)))
	for net.LinkCount() < want*2 { // duplex counts both directions
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		if a == b {
			continue
		}
		if _, _, _, exists := net.Link(a, b); exists {
			continue
		}
		kbps, delay := spec.draw(rng)
		net.AddDuplexLink(a, b, kbps, delay, 0)
	}
	return net
}

// FullMesh links every pair of the n proxies plus sender and receiver.
func FullMesh(n int, spec LinkSpec, rng *rand.Rand) *Network {
	net := New()
	hosts := []string{"sender"}
	for i := 0; i < n; i++ {
		hosts = append(hosts, ProxyName(i))
	}
	hosts = append(hosts, "receiver")
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			kbps, delay := spec.draw(rng)
			net.AddDuplexLink(hosts[i], hosts[j], kbps, delay, 0)
		}
	}
	return net
}
