package overlay

import (
	"math"
	"math/rand"
	"testing"

	"qoschain/internal/profile"
)

func TestAddLinkAndLookup(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 10, 0.01)
	bw, delay, loss, ok := n.Link("a", "b")
	if !ok || bw != 1000 || delay != 10 || loss != 0.01 {
		t.Fatalf("Link = %v %v %v %v", bw, delay, loss, ok)
	}
	if _, _, _, ok := n.Link("b", "a"); ok {
		t.Error("AddLink must be directed")
	}
	if !n.HasNode("a") || !n.HasNode("b") {
		t.Error("link endpoints should become nodes")
	}
}

func TestAddDuplexLink(t *testing.T) {
	n := New()
	n.AddDuplexLink("a", "b", 500, 5, 0)
	for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}} {
		if bw, _, _, ok := n.Link(pair[0], pair[1]); !ok || bw != 500 {
			t.Errorf("duplex link %v missing", pair)
		}
	}
}

func TestAvailableBandwidth(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	n.AddLink("b", "c", 400, 0, 0)
	if got := n.AvailableBandwidth("a", "a"); !math.IsInf(got, 1) {
		t.Errorf("co-located bandwidth should be +Inf, got %v", got)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 1000 {
		t.Errorf("direct link = %v, want 1000", got)
	}
	if got := n.AvailableBandwidth("a", "c"); got != 400 {
		t.Errorf("routed bottleneck = %v, want 400", got)
	}
	if got := n.AvailableBandwidth("c", "a"); got != 0 {
		t.Errorf("unreachable = %v, want 0", got)
	}
	if got := n.AvailableBandwidth("a", "nowhere"); got != 0 {
		t.Errorf("unknown host = %v, want 0", got)
	}
}

func TestWidestBandwidthPrefersFatPath(t *testing.T) {
	n := New()
	// Thin direct-ish path a->b->d (min 100), fat path a->c->d (min 800).
	n.AddLink("a", "b", 100, 0, 0)
	n.AddLink("b", "d", 2000, 0, 0)
	n.AddLink("a", "c", 900, 0, 0)
	n.AddLink("c", "d", 800, 0, 0)
	if got := n.WidestBandwidth("a", "d"); got != 800 {
		t.Errorf("widest = %v, want 800", got)
	}
}

func TestSetBandwidthAndWatch(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	ch, cancel := n.Watch(4)
	defer cancel()
	if err := n.SetBandwidth("a", "b", 250); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	if ev.From != "a" || ev.To != "b" || ev.BandwidthKbps != 250 {
		t.Errorf("event = %+v", ev)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 250 {
		t.Errorf("bandwidth after set = %v", got)
	}
	if err := n.SetBandwidth("x", "y", 1); err == nil {
		t.Error("setting unknown link should fail")
	}
}

func TestWatchCancelStopsDelivery(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	ch, cancel := n.Watch(1)
	cancel()
	_ = n.SetBandwidth("a", "b", 100)
	select {
	case _, open := <-ch:
		if open {
			t.Error("cancelled watcher should receive nothing")
		}
	default:
		// nothing delivered: correct
	}
}

func TestScaleBandwidth(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	if err := n.ScaleBandwidth("a", "b", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 500 {
		t.Errorf("scaled bandwidth = %v", got)
	}
	if err := n.ScaleBandwidth("x", "y", 2); err == nil {
		t.Error("scaling unknown link should fail")
	}
}

func TestRemoveLinkNotifies(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	ch, cancel := n.Watch(1)
	defer cancel()
	n.RemoveLink("a", "b")
	ev := <-ch
	if ev.BandwidthKbps != 0 {
		t.Errorf("remove event should carry zero bandwidth, got %v", ev.BandwidthKbps)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 0 {
		t.Errorf("bandwidth after removal = %v", got)
	}
	// Removing again is a no-op without an event.
	n.RemoveLink("a", "b")
	select {
	case <-ch:
		t.Error("second removal should not notify")
	default:
	}
}

func TestHopCount(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1, 0, 0)
	n.AddLink("b", "c", 1, 0, 0)
	n.AddLink("a", "c", 1, 0, 0)
	if got := n.HopCount("a", "c"); got != 1 {
		t.Errorf("HopCount(a,c) = %d, want 1", got)
	}
	if got := n.HopCount("a", "a"); got != 0 {
		t.Errorf("HopCount(a,a) = %d, want 0", got)
	}
	if got := n.HopCount("c", "a"); got != -1 {
		t.Errorf("HopCount(c,a) = %d, want -1", got)
	}
}

func TestMinDelayPath(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1, 10, 0)
	n.AddLink("b", "c", 1, 10, 0)
	n.AddLink("a", "c", 1, 50, 0)
	path, delay, ok := n.MinDelayPath("a", "c")
	if !ok {
		t.Fatal("path should exist")
	}
	if delay != 20 {
		t.Errorf("delay = %v, want 20 (via b)", delay)
	}
	if len(path) != 3 || path[0] != "a" || path[1] != "b" || path[2] != "c" {
		t.Errorf("path = %v", path)
	}
	if _, _, ok := n.MinDelayPath("c", "a"); ok {
		t.Error("reverse path should not exist")
	}
	self, d, ok := n.MinDelayPath("a", "a")
	if !ok || d != 0 || len(self) != 1 {
		t.Errorf("self path = %v %v %v", self, d, ok)
	}
}

func TestFromProfileAndSnapshotRoundTrip(t *testing.T) {
	p := profile.Network{Links: []profile.Link{
		{From: "a", To: "b", BandwidthKbps: 1000, DelayMs: 10, LossRate: 0.01},
		{From: "b", To: "c", BandwidthKbps: 500},
	}}
	n, err := FromProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if len(snap.Links) != 2 {
		t.Fatalf("snapshot links = %d", len(snap.Links))
	}
	if snap.Links[0].From != "a" || snap.Links[0].BandwidthKbps != 1000 {
		t.Errorf("snapshot[0] = %+v", snap.Links[0])
	}
	if _, err := FromProfile(profile.Network{Links: []profile.Link{{From: "a", To: "a", BandwidthKbps: 1}}}); err == nil {
		t.Error("invalid profile should be rejected")
	}
}

func TestTopologyGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spec := DefaultLinkSpec
	line := Line(3, spec, rng)
	if got := line.HopCount("sender", "receiver"); got != 4 {
		t.Errorf("line hop count = %d, want 4", got)
	}
	star := Star(5, spec, rng)
	if got := star.HopCount("sender", ProxyName(3)); got != 2 {
		t.Errorf("star hop count = %d, want 2", got)
	}
	random := Random(10, 3, spec, rng)
	if got := random.HopCount("sender", "receiver"); got < 1 {
		t.Errorf("random topology must connect sender to receiver, hops=%d", got)
	}
	mesh := FullMesh(4, spec, rng)
	if got := mesh.HopCount("sender", "receiver"); got != 1 {
		t.Errorf("mesh hop count = %d, want 1", got)
	}
	// Determinism: same seed, same topology.
	a := Random(6, 2.5, spec, rand.New(rand.NewSource(7)))
	b := Random(6, 2.5, spec, rand.New(rand.NewSource(7)))
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa.Links) != len(sb.Links) {
		t.Fatal("same seed must give same link count")
	}
	for i := range sa.Links {
		if sa.Links[i] != sb.Links[i] {
			t.Fatalf("same seed must give identical links: %+v vs %+v", sa.Links[i], sb.Links[i])
		}
	}
}

func TestTraceAppliesInOrder(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	tr := NewTrace(n, []TraceEvent{
		{AtStep: 2, From: "a", To: "b", BandwidthKbps: 500},
		{AtStep: 1, From: "a", To: "b", BandwidthKbps: 800},
		{AtStep: 3, From: "a", To: "b", BandwidthKbps: -1},
	})
	if applied := tr.Step(); len(applied) != 1 || applied[0].BandwidthKbps != 800 {
		t.Fatalf("step 1 applied %v", applied)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 800 {
		t.Errorf("after step 1 bandwidth = %v", got)
	}
	tr.Step()
	if got := n.AvailableBandwidth("a", "b"); got != 500 {
		t.Errorf("after step 2 bandwidth = %v", got)
	}
	if tr.Done() {
		t.Error("trace should not be done before last event")
	}
	tr.Step()
	if got := n.AvailableBandwidth("a", "b"); got != 0 {
		t.Errorf("after removal bandwidth = %v", got)
	}
	if !tr.Done() || tr.CurrentStep() != 3 {
		t.Errorf("trace should be done at step 3, step=%d", tr.CurrentStep())
	}
}

func TestTraceIgnoresUnknownLinks(t *testing.T) {
	n := New()
	tr := NewTrace(n, []TraceEvent{{AtStep: 1, From: "x", To: "y", BandwidthKbps: 10}})
	if applied := tr.Step(); len(applied) != 1 {
		t.Error("event should still be reported as applied")
	}
}

func TestRandomWalkBounds(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	w, err := NewRandomWalk(n, rand.New(rand.NewSource(1)), 0.5, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		w.Step()
		bw := n.AvailableBandwidth("a", "b")
		if bw < 200 || bw > 2000 {
			t.Fatalf("walk escaped bounds: %v", bw)
		}
	}
	if _, err := NewRandomWalk(n, rand.New(rand.NewSource(1)), 1.5, 0, 1); err == nil {
		t.Error("amplitude >= 1 should fail")
	}
	if _, err := NewRandomWalk(n, rand.New(rand.NewSource(1)), 0.5, 10, 5); err == nil {
		t.Error("cap below floor should fail")
	}
}

func TestNodesSorted(t *testing.T) {
	n := New()
	n.AddNode("zeta")
	n.AddLink("alpha", "mid", 1, 0, 0)
	nodes := n.Nodes()
	if len(nodes) != 3 || nodes[0] != "alpha" || nodes[1] != "mid" || nodes[2] != "zeta" {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestReserveAndRelease(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	if err := n.Reserve("a", "b", 600); err != nil {
		t.Fatal(err)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 400 {
		t.Errorf("available after reserve = %v, want 400", got)
	}
	cap, reserved, ok := n.Capacity("a", "b")
	if !ok || cap != 1000 || reserved != 600 {
		t.Errorf("Capacity = %v/%v/%v", cap, reserved, ok)
	}
	if err := n.Reserve("a", "b", 500); err == nil {
		t.Error("over-reservation must fail")
	}
	n.Release("a", "b", 600)
	if got := n.AvailableBandwidth("a", "b"); got != 1000 {
		t.Errorf("available after release = %v, want 1000", got)
	}
}

func TestReserveErrors(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	if err := n.Reserve("a", "b", -1); err == nil {
		t.Error("non-positive reservation must fail")
	}
	if err := n.Reserve("x", "y", 10); err == nil {
		t.Error("unknown link must fail")
	}
	// Over-release clamps at zero rather than going negative.
	n.Release("a", "b", 500)
	if got := n.AvailableBandwidth("a", "b"); got != 1000 {
		t.Errorf("over-release should clamp, available = %v", got)
	}
	n.Release("x", "y", 1) // unknown link: no panic
}

func TestReserveSurvivesFluctuation(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	if err := n.Reserve("a", "b", 800); err != nil {
		t.Fatal(err)
	}
	// Capacity collapses below the reservation: available clamps to 0.
	if err := n.SetBandwidth("a", "b", 500); err != nil {
		t.Fatal(err)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 0 {
		t.Errorf("available = %v, want 0 (capacity below reservation)", got)
	}
	// Recovery restores the remainder.
	if err := n.SetBandwidth("a", "b", 1000); err != nil {
		t.Fatal(err)
	}
	if got := n.AvailableBandwidth("a", "b"); got != 200 {
		t.Errorf("available = %v, want 200", got)
	}
}

func TestReserveNotifiesWatchers(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	ch, cancel := n.Watch(2)
	defer cancel()
	if err := n.Reserve("a", "b", 250); err != nil {
		t.Fatal(err)
	}
	if ev := <-ch; ev.BandwidthKbps != 750 {
		t.Errorf("reserve event bandwidth = %v, want 750", ev.BandwidthKbps)
	}
	n.Release("a", "b", 250)
	if ev := <-ch; ev.BandwidthKbps != 1000 {
		t.Errorf("release event bandwidth = %v, want 1000", ev.BandwidthKbps)
	}
}

func TestWidestPathRespectsReservations(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	n.AddLink("b", "c", 1000, 0, 0)
	if err := n.Reserve("b", "c", 700); err != nil {
		t.Fatal(err)
	}
	if got := n.WidestBandwidth("a", "c"); got != 300 {
		t.Errorf("widest = %v, want 300 after reservation", got)
	}
}

func TestDiurnalCycle(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	d, err := NewDiurnal(n, rand.New(rand.NewSource(1)), 8, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]float64, 0, 8)
	for i := 0; i < 8; i++ {
		d.Step()
		seen = append(seen, n.AvailableBandwidth("a", "b"))
	}
	// The dip bottoms out mid-period at base*(1-depth) = 600.
	min := seen[0]
	for _, v := range seen {
		if v < min {
			min = v
		}
	}
	if math.Abs(min-600) > 1 {
		t.Errorf("busy-hour floor = %v, want ~600", min)
	}
	// End of the period returns to the baseline.
	if math.Abs(seen[7]-1000) > 1 {
		t.Errorf("off-peak = %v, want ~1000", seen[7])
	}
	if d.CurrentStep() != 8 {
		t.Errorf("step = %d", d.CurrentStep())
	}
}

func TestDiurnalNoiseBounded(t *testing.T) {
	n := New()
	n.AddLink("a", "b", 1000, 0, 0)
	d, err := NewDiurnal(n, rand.New(rand.NewSource(2)), 10, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Step()
		bw := n.AvailableBandwidth("a", "b")
		if bw < 1000*0.7*0.95-1 || bw > 1000*1.05+1 {
			t.Fatalf("noise escaped bounds: %v", bw)
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	n := New()
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDiurnal(n, rng, 1, 0.4, 0); err == nil {
		t.Error("period < 2 should fail")
	}
	if _, err := NewDiurnal(n, rng, 8, 1.5, 0); err == nil {
		t.Error("depth >= 1 should fail")
	}
	if _, err := NewDiurnal(n, rng, 8, 0.4, 1.5); err == nil {
		t.Error("noise >= 1 should fail")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := PreferentialAttachment(20, 2, DefaultLinkSpec, rng)
	if !net.HasNode("sender") || !net.HasNode("receiver") {
		t.Fatal("endpoints must exist")
	}
	if got := net.HopCount("sender", "receiver"); got < 1 {
		t.Errorf("sender must reach receiver, hops = %d", got)
	}
	// Scale-free shape: the maximum degree should clearly exceed the
	// attachment parameter m.
	degree := map[string]int{}
	for _, l := range net.Snapshot().Links {
		degree[l.From]++
	}
	max := 0
	for _, d := range degree {
		if d > max {
			max = d
		}
	}
	if max < 5 {
		t.Errorf("expected a hub with degree >= 5, max = %d", max)
	}
	// Determinism.
	a := PreferentialAttachment(10, 2, DefaultLinkSpec, rand.New(rand.NewSource(3)))
	b := PreferentialAttachment(10, 2, DefaultLinkSpec, rand.New(rand.NewSource(3)))
	if a.LinkCount() != b.LinkCount() {
		t.Error("same seed must give the same topology")
	}
}
