// Package overlay simulates the delivery network the paper assumes: the
// sender, the receiver and the intermediaries (proxies) hosting
// trans-coding services, connected by links with available bandwidth,
// delay and loss.
//
// The paper's selection algorithm consumes exactly one quantity from the
// network: the available bandwidth between the hosts of two chained
// services (Section 4.3), with co-located services seeing unlimited
// bandwidth. The simulator supplies that quantity, supports dynamic
// fluctuation for the re-composition experiments, and offers topology
// generators for scalability workloads.
package overlay

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"qoschain/internal/profile"
)

// Network is a mutable, concurrency-safe directed overlay network.
type Network struct {
	mu    sync.RWMutex
	nodes map[string]bool
	down  map[string]bool // crashed hosts (fault injection)
	links map[edge]*linkState
	subs  []chan Event
	gen   uint64 // bumped on every mutation; see Generation
}

type edge struct{ from, to string }

type linkState struct {
	bandwidthKbps float64 // capacity
	reservedKbps  float64 // held by admitted sessions
	delayMs       float64
	lossRate      float64
	down          bool // failed link (fault injection); state retained for recovery
}

// available returns the unreserved capacity, clamped at zero when
// fluctuation pushed capacity below the reservations.
func (l *linkState) available() float64 {
	a := l.bandwidthKbps - l.reservedKbps
	if a < 0 {
		return 0
	}
	return a
}

// Event describes a change to the overlay, delivered to watchers.
type Event struct {
	// From/To identify the changed link.
	From, To string
	// BandwidthKbps is the new available bandwidth.
	BandwidthKbps float64
}

// New returns an empty overlay network.
func New() *Network {
	return &Network{
		nodes: make(map[string]bool),
		down:  make(map[string]bool),
		links: make(map[edge]*linkState),
	}
}

// usableLocked reports whether a link currently carries traffic: neither
// the link itself nor either endpoint may be failed. Callers must hold at
// least a read lock.
func (n *Network) usableLocked(e edge, l *linkState) bool {
	return !l.down && !n.down[e.from] && !n.down[e.to]
}

// FromProfile builds an overlay from a static network profile.
func FromProfile(p profile.Network) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := New()
	for _, l := range p.Links {
		n.AddLink(l.From, l.To, l.BandwidthKbps, l.DelayMs, l.LossRate)
	}
	return n, nil
}

// AddNode declares a host. Adding a link declares its endpoints
// implicitly; AddNode matters only for isolated hosts.
func (n *Network) AddNode(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[id] = true
	n.gen++
}

// Generation returns a counter that increases on every mutation of the
// network (nodes, links, bandwidth, reservations). Consumers such as
// graph.Cache use it to detect that a network is unchanged without
// diffing its state.
func (n *Network) Generation() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.gen
}

// AddLink installs (or replaces) the directed link from→to.
func (n *Network) AddLink(from, to string, bandwidthKbps, delayMs, lossRate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[from] = true
	n.nodes[to] = true
	n.gen++
	n.links[edge{from, to}] = &linkState{
		bandwidthKbps: bandwidthKbps,
		delayMs:       delayMs,
		lossRate:      lossRate,
	}
}

// AddDuplexLink installs the link in both directions with identical
// characteristics.
func (n *Network) AddDuplexLink(a, b string, bandwidthKbps, delayMs, lossRate float64) {
	n.AddLink(a, b, bandwidthKbps, delayMs, lossRate)
	n.AddLink(b, a, bandwidthKbps, delayMs, lossRate)
}

// RemoveLink deletes the directed link and notifies watchers with zero
// bandwidth.
func (n *Network) RemoveLink(from, to string) {
	n.mu.Lock()
	_, existed := n.links[edge{from, to}]
	delete(n.links, edge{from, to})
	if existed {
		n.gen++
	}
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	if existed {
		notify(subs, Event{From: from, To: to, BandwidthKbps: 0})
	}
}

// HasNode reports whether the host exists.
func (n *Network) HasNode(id string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.nodes[id]
}

// Nodes returns the sorted host IDs.
func (n *Network) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// LinkCount returns the number of directed links.
func (n *Network) LinkCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.links)
}

// Link returns the directed link's characteristics. The bandwidth
// reported is the *available* (capacity minus reserved) bandwidth. A
// failed link, or one touching a failed host, reports ok == false.
func (n *Network) Link(from, to string) (bandwidthKbps, delayMs, lossRate float64, ok bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[edge{from, to}]
	if !ok || !n.usableLocked(edge{from, to}, l) {
		return 0, 0, 0, false
	}
	return l.available(), l.delayMs, l.lossRate, true
}

// Capacity returns the link's raw capacity and current reservation.
func (n *Network) Capacity(from, to string) (capacityKbps, reservedKbps float64, ok bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[edge{from, to}]
	if !ok {
		return 0, 0, false
	}
	return l.bandwidthKbps, l.reservedKbps, true
}

// Reserve admits kbps of traffic on the directed link, reducing the
// bandwidth later queries observe. It fails when the link is unknown or
// the unreserved capacity is insufficient.
func (n *Network) Reserve(from, to string, kbps float64) error {
	if kbps <= 0 {
		return fmt.Errorf("overlay: reservation must be positive, got %v", kbps)
	}
	n.mu.Lock()
	l, ok := n.links[edge{from, to}]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no link %s->%s", from, to)
	}
	if !n.usableLocked(edge{from, to}, l) {
		n.mu.Unlock()
		return fmt.Errorf("overlay: link %s->%s is down", from, to)
	}
	if l.available() < kbps-1e-9 {
		avail := l.available()
		n.mu.Unlock()
		return fmt.Errorf("overlay: link %s->%s has %.1f kbps available, need %.1f", from, to, avail, kbps)
	}
	l.reservedKbps += kbps
	n.gen++
	subs := append([]chan Event(nil), n.subs...)
	avail := l.available()
	n.mu.Unlock()
	notify(subs, Event{From: from, To: to, BandwidthKbps: avail})
	return nil
}

// Release returns previously reserved bandwidth. Over-releasing clamps
// the reservation at zero.
func (n *Network) Release(from, to string, kbps float64) {
	n.mu.Lock()
	l, ok := n.links[edge{from, to}]
	if ok {
		l.reservedKbps -= kbps
		if l.reservedKbps < 0 {
			l.reservedKbps = 0
		}
		n.gen++
	}
	var subs []chan Event
	var avail float64
	if ok {
		subs = append([]chan Event(nil), n.subs...)
		avail = l.available()
	}
	n.mu.Unlock()
	if ok {
		notify(subs, Event{From: from, To: to, BandwidthKbps: avail})
	}
}

// SetBandwidth updates the available bandwidth of an existing link and
// notifies watchers. It returns an error for unknown links.
func (n *Network) SetBandwidth(from, to string, kbps float64) error {
	n.mu.Lock()
	l, ok := n.links[edge{from, to}]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no link %s->%s", from, to)
	}
	l.bandwidthKbps = kbps
	n.gen++
	subs := append([]chan Event(nil), n.subs...)
	n.mu.Unlock()
	notify(subs, Event{From: from, To: to, BandwidthKbps: kbps})
	return nil
}

// ScaleBandwidth multiplies an existing link's bandwidth by factor.
func (n *Network) ScaleBandwidth(from, to string, factor float64) error {
	n.mu.RLock()
	l, ok := n.links[edge{from, to}]
	var kbps float64
	if ok {
		kbps = l.bandwidthKbps * factor
	}
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("overlay: no link %s->%s", from, to)
	}
	return n.SetBandwidth(from, to, kbps)
}

// AvailableBandwidth returns the bandwidth usable between two hosts per
// the paper's model: unlimited (+Inf) for co-located hosts, the link
// bandwidth for directly connected hosts, and otherwise the best
// bottleneck over any routed path (widest path). Returns 0 when the hosts
// are not connected at all.
func (n *Network) AvailableBandwidth(from, to string) float64 {
	if from == to {
		return math.Inf(1)
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down[from] || n.down[to] {
		return 0
	}
	if l, ok := n.links[edge{from, to}]; ok && n.usableLocked(edge{from, to}, l) {
		return l.available()
	}
	return n.widestLocked(from, to)
}

// Watch registers a watcher channel that receives every subsequent
// bandwidth change. The channel has the given buffer; events to a full
// channel are dropped (watchers are advisory, never blocking the
// simulator). Call the returned cancel function to unsubscribe.
func (n *Network) Watch(buffer int) (<-chan Event, func()) {
	ch := make(chan Event, buffer)
	n.mu.Lock()
	n.subs = append(n.subs, ch)
	n.mu.Unlock()
	cancel := func() {
		n.mu.Lock()
		for i, c := range n.subs {
			if c == ch {
				n.subs = append(n.subs[:i], n.subs[i+1:]...)
				break
			}
		}
		n.mu.Unlock()
	}
	return ch, cancel
}

func notify(subs []chan Event, ev Event) {
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Snapshot exports the current state as a static network profile. Failed
// links and links touching failed hosts are excluded — they carry no
// traffic until recovered.
func (n *Network) Snapshot() profile.Network {
	n.mu.RLock()
	defer n.mu.RUnlock()
	links := make([]profile.Link, 0, len(n.links))
	for e, l := range n.links {
		if !n.usableLocked(e, l) {
			continue
		}
		links = append(links, profile.Link{
			From: e.from, To: e.to,
			BandwidthKbps: l.available(),
			DelayMs:       l.delayMs,
			LossRate:      l.lossRate,
		})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return profile.Network{Links: links}
}
