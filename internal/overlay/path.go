package overlay

import (
	"container/heap"
	"math"
)

// This file implements the routing queries the framework needs from the
// overlay: widest-path bottleneck bandwidth (used as the paper's
// "available bandwidth between intermediate servers" when hosts are not
// directly linked), hop counts, and minimum-delay paths.

// widestLocked computes the maximum-bottleneck bandwidth from src to dst.
// Callers must hold at least a read lock.
func (n *Network) widestLocked(src, dst string) float64 {
	if !n.nodes[src] || !n.nodes[dst] || n.down[src] || n.down[dst] {
		return 0
	}
	// Dijkstra variant maximizing min-link bandwidth.
	best := map[string]float64{src: math.Inf(1)}
	pq := &widthHeap{{src, math.Inf(1)}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(widthItem)
		if cur.node == dst {
			return cur.width
		}
		if cur.width < best[cur.node] {
			continue
		}
		for e, l := range n.links {
			if e.from != cur.node || !n.usableLocked(e, l) {
				continue
			}
			w := math.Min(cur.width, l.available())
			if w > best[e.to] {
				best[e.to] = w
				heap.Push(pq, widthItem{e.to, w})
			}
		}
	}
	return 0
}

// WidestBandwidth returns the maximum bottleneck bandwidth between two
// distinct hosts over any path (0 when unreachable).
func (n *Network) WidestBandwidth(src, dst string) float64 {
	if src == dst {
		return math.Inf(1)
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.widestLocked(src, dst)
}

// HopCount returns the minimum number of links between two hosts, or -1
// when unreachable. A host is 0 hops from itself.
func (n *Network) HopCount(src, dst string) int {
	if src == dst {
		return 0
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down[src] || n.down[dst] {
		return -1
	}
	dist := map[string]int{src: 0}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for e, l := range n.links {
			if e.from != cur || !n.usableLocked(e, l) {
				continue
			}
			if _, seen := dist[e.to]; seen {
				continue
			}
			dist[e.to] = dist[cur] + 1
			if e.to == dst {
				return dist[e.to]
			}
			queue = append(queue, e.to)
		}
	}
	return -1
}

// MinDelayPath returns the host sequence of the minimum-total-delay path
// from src to dst (inclusive) and its delay in ms; ok is false when
// unreachable.
func (n *Network) MinDelayPath(src, dst string) (path []string, delayMs float64, ok bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.nodes[src] || !n.nodes[dst] || n.down[src] || n.down[dst] {
		return nil, 0, false
	}
	if src == dst {
		return []string{src}, 0, true
	}
	dist := map[string]float64{src: 0}
	prev := map[string]string{}
	pq := &delayHeap{{src, 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(delayItem)
		if cur.node == dst {
			break
		}
		if cur.delay > dist[cur.node] {
			continue
		}
		for e, l := range n.links {
			if e.from != cur.node || !n.usableLocked(e, l) {
				continue
			}
			d := cur.delay + l.delayMs
			old, seen := dist[e.to]
			if !seen || d < old {
				dist[e.to] = d
				prev[e.to] = cur.node
				heap.Push(pq, delayItem{e.to, d})
			}
		}
	}
	total, reached := dist[dst]
	if !reached {
		return nil, 0, false
	}
	for at := dst; ; at = prev[at] {
		path = append([]string{at}, path...)
		if at == src {
			break
		}
	}
	return path, total, true
}

// widthHeap is a max-heap on bottleneck width.
type widthItem struct {
	node  string
	width float64
}
type widthHeap []widthItem

func (h widthHeap) Len() int            { return len(h) }
func (h widthHeap) Less(i, j int) bool  { return h[i].width > h[j].width }
func (h widthHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *widthHeap) Push(x interface{}) { *h = append(*h, x.(widthItem)) }
func (h *widthHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// delayHeap is a min-heap on accumulated delay.
type delayItem struct {
	node  string
	delay float64
}
type delayHeap []delayItem

func (h delayHeap) Len() int            { return len(h) }
func (h delayHeap) Less(i, j int) bool  { return h[i].delay < h[j].delay }
func (h delayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x interface{}) { *h = append(*h, x.(delayItem)) }
func (h *delayHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
