package registry

// registrar.go fixes the brittle half of the lease protocol. A client
// that only ever calls Renew is betting the registry never restarts:
// after a registryd restart the lease table is empty, every renewal
// fails with "no live registration", and the advertisement silently
// ages out of the cluster until a human intervenes. The Registrar makes
// renewal self-healing — when a heartbeat fails for any reason (dead
// connection, restarted registry, expired lease), it re-dials and
// re-registers from scratch instead of propagating the error, so one
// surviving heartbeat tick restores the advertisement.

import (
	"context"
	"sync"
	"time"

	"qoschain/internal/service"
)

// RegistrarConfig assembles a Registrar. At least one of Service and
// Member must be set; a replica that both advertises its services and
// participates in cluster membership sets both and heartbeats once.
type RegistrarConfig struct {
	// Addr is the registry server's TCP address.
	Addr string
	// Lease is the advertisement lease; each heartbeat extends it.
	Lease time.Duration
	// Timeout bounds each dial and round trip (0 = unbounded).
	Timeout time.Duration
	// Service is the service advertisement to keep alive, if any.
	Service *service.Service
	// Member is the cluster-membership advertisement to keep alive, if
	// any.
	Member *Member
}

// Registrar keeps advertisements alive across registry restarts.
// Methods are safe for concurrent use.
type Registrar struct {
	cfg RegistrarConfig

	mu     sync.Mutex
	client *Client
	// live tracks whether the current connection has a registration the
	// registry acknowledged — only then is Renew meaningful.
	live bool
}

// NewRegistrar builds a Registrar; nothing is sent until the first
// Heartbeat.
func NewRegistrar(cfg RegistrarConfig) *Registrar {
	return &Registrar{cfg: cfg}
}

// Heartbeat renews the advertisements, re-registering from scratch when
// renewal fails. It returns an error only when re-registration itself
// failed — the registry is actually unreachable, not merely restarted.
func (r *Registrar) Heartbeat(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil && r.live {
		if err := r.renewLocked(ctx); err == nil {
			return nil
		}
		// Renewal failed: the connection may be dead or the registry may
		// have lost the lease table. Either way the cure is the same.
		r.resetLocked()
	}
	return r.registerLocked(ctx)
}

// renewLocked extends both leases over the current connection.
func (r *Registrar) renewLocked(ctx context.Context) error {
	if r.cfg.Service != nil {
		if err := r.client.RenewContext(ctx, r.cfg.Service.ID, r.cfg.Lease); err != nil {
			return err
		}
	}
	if r.cfg.Member != nil {
		if err := r.client.RenewMemberContext(ctx, r.cfg.Member.ID, r.cfg.Lease); err != nil {
			return err
		}
	}
	return nil
}

// registerLocked (re)dials if needed and registers both advertisements.
func (r *Registrar) registerLocked(ctx context.Context) error {
	if r.client == nil {
		c, err := DialTimeout(r.cfg.Addr, r.cfg.Timeout)
		if err != nil {
			return err
		}
		r.client = c
	}
	if r.cfg.Service != nil {
		if err := r.client.RegisterContext(ctx, r.cfg.Service, r.cfg.Lease); err != nil {
			r.resetLocked()
			return err
		}
	}
	if r.cfg.Member != nil {
		if err := r.client.JoinContext(ctx, *r.cfg.Member, r.cfg.Lease); err != nil {
			r.resetLocked()
			return err
		}
	}
	r.live = true
	return nil
}

// resetLocked drops the connection so the next attempt redials.
func (r *Registrar) resetLocked() {
	if r.client != nil {
		r.client.Close()
		r.client = nil
	}
	r.live = false
}

// Members polls the live cluster membership over the Registrar's
// connection, redialing once on failure — routers and replicas share
// the Registrar's self-healing transport instead of managing their own.
func (r *Registrar) Members(ctx context.Context) ([]Member, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		c, err := DialTimeout(r.cfg.Addr, r.cfg.Timeout)
		if err != nil {
			return nil, err
		}
		r.client = c
	}
	ms, err := r.client.MembersContext(ctx)
	if err == nil {
		return ms, nil
	}
	r.resetLocked()
	c, derr := DialTimeout(r.cfg.Addr, r.cfg.Timeout)
	if derr != nil {
		return nil, err
	}
	r.client = c
	return r.client.MembersContext(ctx)
}

// Close withdraws the advertisements best-effort and drops the
// connection.
func (r *Registrar) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil && r.live {
		if r.cfg.Service != nil {
			r.client.Deregister(r.cfg.Service.ID) //nolint:errcheck // best-effort withdrawal
		}
		if r.cfg.Member != nil {
			r.client.Leave(r.cfg.Member.ID) //nolint:errcheck // best-effort withdrawal
		}
	}
	r.resetLocked()
	return nil
}
