package registry

// observe.go instruments the wire server's dispatch path: one trace,
// one labeled request count, one latency sample, and one access-log
// line per request. The registry speaks newline-delimited JSON over
// TCP, not HTTP, so it cannot reuse the httpapi middleware — this is
// the TCP-shaped equivalent, sharing the same tracer and metrics
// registry the daemon exposes on its diagnostics listener. All three
// sinks are optional and nil-safe; the zero ServeOptions dispatches
// exactly as before.

import (
	"fmt"
	"time"

	"qoschain/internal/metrics"
	"qoschain/internal/trace"
)

// observe runs one dispatch under the server's observability.
func (s *Server) observe(remote string, req request) response {
	op := req.Op
	if op == "" {
		op = "unknown"
	}
	var tr *trace.Trace
	var span *trace.Span
	if s.opts.Tracer != nil {
		tr = s.opts.Tracer.Start("registry." + op)
		span = tr.StartSpan("dispatch", trace.Str("op", op), trace.Str("remote", remote))
	}
	start := time.Now()
	resp := s.dispatch(req)
	took := time.Since(start)
	outcome := "ok"
	if !resp.OK {
		outcome = "error"
	}
	if reg := s.opts.Metrics; reg != nil {
		reg.Inc("registry.requests", metrics.L("op", op), metrics.L("outcome", outcome))
		reg.ObserveDuration("registry.latency_ms", took, metrics.L("op", op))
	}
	traceID := ""
	if tr != nil {
		span.End(trace.Str("outcome", outcome))
		tr.Finish()
		traceID = tr.ID()
	}
	if w := s.opts.AccessLog; w != nil {
		line := fmt.Sprintf("%s remote=%s op=%s outcome=%s took=%.3fms trace=%s\n",
			time.Now().UTC().Format(time.RFC3339Nano), remote, op, outcome,
			float64(took)/float64(time.Millisecond), traceID)
		s.logMu.Lock()
		fmt.Fprint(w, line) //nolint:errcheck // diagnostics are best-effort
		s.logMu.Unlock()
	}
	return resp
}
