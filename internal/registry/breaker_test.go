package registry

import (
	"net"
	"testing"
	"time"

	"qoschain/internal/admission"
	"qoschain/internal/media"
	"qoschain/internal/service"
)

// TestRemoteSourceBreakerOpenServesStale is the acceptance scenario: a
// remote registry answers once, then dies; the breaker trips, and while
// it is open queries are served from the last-known-good directory
// without touching the network at all.
func TestRemoteSourceBreakerOpenServesStale(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := New()
	_ = reg.Register(service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF), 0)
	srv := Serve(reg, ln)
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetTimeout(time.Second)

	clock := admission.NewVirtualClock(time.Time{})
	breaker := admission.NewBreaker(admission.BreakerConfig{
		FailureThreshold: 2,
		OpenTimeout:      time.Minute,
		Clock:            clock,
	})
	src := NewRemoteSourceOpts(client, RemoteSourceOptions{Breaker: breaker})

	// Healthy round trip populates the last-known-good cache.
	if got := src.ByInput(media.ImageJPEG); len(got) != 1 || got[0].ID != "c1" {
		t.Fatalf("healthy query = %v", got)
	}
	if src.Stale() {
		t.Fatal("fresh answer must not be stale")
	}

	// Kill the remote: the next queries fail and trip the breaker.
	srv.Close()
	for i := 0; i < 2; i++ {
		if got := src.ByInput(media.ImageJPEG); len(got) != 1 {
			t.Fatalf("failure %d: stale cache lost, got %v", i, got)
		}
	}
	if breaker.State() != admission.Open {
		t.Fatalf("breaker state = %v, want open after 2 failures", breaker.State())
	}

	// Open breaker: served from cache with no network I/O. Closing the
	// client connection proves nothing touches the wire.
	client.Close()
	got := src.ByInput(media.ImageJPEG)
	if len(got) != 1 || got[0].ID != "c1" {
		t.Fatalf("open-breaker query = %v, want the last-known-good directory", got)
	}
	if !src.Stale() {
		t.Error("open-breaker answer must be marked stale")
	}
	if breaker.Allow() { // still within cool-down
		t.Error("breaker must stay open inside the cool-down")
	}

	// A query the cache never saw degrades to empty rather than blocking.
	if got := src.ByOutput(media.ImageGIF); got != nil {
		t.Errorf("uncached open-breaker query = %v, want nil", got)
	}
}

// TestRemoteSourceTimeoutBoundsQuery verifies the per-query budget: a
// hung remote costs at most the configured timeout.
func TestRemoteSourceTimeoutBoundsQuery(t *testing.T) {
	// A listener that accepts and never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	src := NewRemoteSourceOpts(client, RemoteSourceOptions{Timeout: 50 * time.Millisecond})
	start := time.Now()
	if got := src.All(); got != nil {
		t.Errorf("hung remote should answer nil, got %v", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("query took %v, the 50ms budget did not bind", elapsed)
	}
	if src.LastError() == nil {
		t.Error("timeout must be recorded as the last error")
	}
}
