package registry

// membership.go promotes the registry to cluster-membership authority
// for the replicated composition tier: adaptd replicas join under a
// lease exactly like service advertisements, and the router derives the
// shard map (rendezvous hashing — see internal/cluster) from the live
// member list. A replica that stops renewing expires out of the list,
// which is the cluster's only failure detector: lease expiry, observed
// identically by every router polling the same registry, triggers
// follower promotion.

import (
	"fmt"
	"sort"
	"time"
)

// Member is one composition-tier replica registered with the
// membership authority.
type Member struct {
	// ID is the replica's stable node name (also its session-ID prefix).
	ID string `json:"id"`
	// Addr is the HTTP base address peers and routers reach it at.
	Addr string `json:"addr"`
	// Host is the overlay host the replica fronts in the deployment
	// topology; when the member dies, promotion faults this host in
	// adopted sessions so reconciliation releases its links.
	Host string `json:"host,omitempty"`
}

type memberEntry struct {
	m       Member
	expires time.Time
}

// Join registers a replica under a lease (0 = no expiry). Rejoining an
// existing ID replaces the previous advertisement — the restart path.
func (r *Registry) Join(m Member, lease time.Duration) error {
	if m.ID == "" || m.Addr == "" {
		return fmt.Errorf("registry: member needs id and addr")
	}
	var expires time.Time
	if lease > 0 {
		expires = r.clock.Now().Add(lease)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members == nil {
		r.members = make(map[string]*memberEntry)
	}
	r.members[m.ID] = &memberEntry{m: m, expires: expires}
	return nil
}

// RenewMember extends a member's lease; like service Renew it fails for
// unknown or already-expired members, so a replica that outlived its
// lease must rejoin.
func (r *Registry) RenewMember(id string, lease time.Duration) error {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.members[id]
	if !ok || (!e.expires.IsZero() && now.After(e.expires)) {
		return fmt.Errorf("registry: no live member %s", id)
	}
	if lease > 0 {
		e.expires = now.Add(lease)
	} else {
		e.expires = time.Time{}
	}
	return nil
}

// Leave removes a member immediately (graceful shutdown).
func (r *Registry) Leave(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return fmt.Errorf("registry: unknown member %s", id)
	}
	delete(r.members, id)
	return nil
}

// Members returns the live membership, sorted by ID — the input every
// router feeds the shard map.
func (r *Registry) Members() []Member {
	now := r.clock.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.members))
	for _, e := range r.members {
		if e.expires.IsZero() || !now.After(e.expires) {
			out = append(out, e.m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// sweepMembersLocked drops expired members; called from Sweep.
func (r *Registry) sweepMembersLocked(now time.Time) int {
	n := 0
	for id, e := range r.members {
		if !e.expires.IsZero() && now.After(e.expires) {
			delete(r.members, id)
			n++
		}
	}
	return n
}
