package registry

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/service"
	"qoschain/internal/trace"
)

// This file implements a small newline-delimited-JSON wire protocol so a
// registry can be served over TCP — the stand-in for the SLP daemon a
// real deployment would run. One request per line, one response per line.

// request is the wire form of a registry operation.
type request struct {
	// Op is one of "register", "deregister", "renew", "lookup",
	// "byinput", "byoutput", "all", "len" — or, for cluster membership,
	// "join", "mrenew", "leave", "members".
	Op string `json:"op"`
	// Service carries the advertisement for register.
	Service *service.Service `json:"service,omitempty"`
	// ID names the target for deregister/renew/lookup.
	ID service.ID `json:"id,omitempty"`
	// LeaseMs is the lease duration for register/renew/join/mrenew.
	LeaseMs int64 `json:"leaseMs,omitempty"`
	// Format is the query format for byinput/byoutput.
	Format string `json:"format,omitempty"`
	// Member carries the replica advertisement for join.
	Member *Member `json:"member,omitempty"`
	// MemberID names the target for mrenew/leave.
	MemberID string `json:"memberId,omitempty"`
}

// response is the wire form of a registry reply.
type response struct {
	OK       bool               `json:"ok"`
	Error    string             `json:"error,omitempty"`
	Services []*service.Service `json:"services,omitempty"`
	Count    int                `json:"count,omitempty"`
	Members  []Member           `json:"members,omitempty"`
}

// Server exposes a Registry over TCP.
type Server struct {
	reg  *Registry
	ln   net.Listener
	opts ServeOptions

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	// logMu serializes access-log lines across connection goroutines.
	logMu sync.Mutex
}

// ServeOptions bounds a Server's per-connection I/O — the TCP analogue
// of http.Server's Read/WriteTimeout — and wires its observability.
// The zero value disables everything, preserving the historical
// behavior.
type ServeOptions struct {
	// IdleTimeout closes a connection that sends no request for this
	// long. 0 disables the bound.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response. 0 disables the bound.
	WriteTimeout time.Duration
	// Metrics, when set, receives per-op request counters and latency
	// samples: registry.requests{op=,outcome=} and
	// registry.latency_ms{op=}. Lease traffic (register/renew/join/
	// mrenew/leave) is the interesting load — it shows up per-op.
	Metrics *metrics.Registry
	// Tracer, when set, retains one trace per wire request, named
	// "registry.<op>", so lease churn is inspectable on the daemon's
	// /debug/traces listener.
	Tracer *trace.Tracer
	// AccessLog, when set, receives one line per request: remote
	// address, op, outcome, latency, and trace ID.
	AccessLog io.Writer
}

// Serve starts serving the registry on the given listener with no I/O
// bounds; it returns immediately and handles connections until Close.
func Serve(reg *Registry, ln net.Listener) *Server {
	return ServeOpts(reg, ln, ServeOptions{})
}

// ServeOpts is Serve with per-connection I/O bounds.
func ServeOpts(reg *Registry, ln net.Listener, opts ServeOptions) *Server {
	s := &Server{reg: reg, ln: ln, opts: opts, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes every live connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// connections to drain. When the context expires first, the remaining
// connections are force-closed (mirroring http.Server.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	enc := json.NewEncoder(conn)
	for {
		if s.opts.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if !scanner.Scan() {
			return
		}
		var req request
		var resp response
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp = response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.observe(conn.RemoteAddr().String(), req)
		}
		if s.opts.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "register":
		if req.Service == nil {
			return response{Error: "register without service"}
		}
		if err := s.reg.Register(req.Service, time.Duration(req.LeaseMs)*time.Millisecond); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "deregister":
		if err := s.reg.Deregister(req.ID); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "renew":
		if err := s.reg.Renew(req.ID, time.Duration(req.LeaseMs)*time.Millisecond); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "lookup":
		svc, ok := s.reg.Lookup(req.ID)
		if !ok {
			return response{Error: fmt.Sprintf("unknown service %s", req.ID)}
		}
		return response{OK: true, Services: []*service.Service{svc}}
	case "byinput", "byoutput":
		f, err := media.ParseFormat(req.Format)
		if err != nil {
			return response{Error: err.Error()}
		}
		var svcs []*service.Service
		if req.Op == "byinput" {
			svcs = s.reg.ByInput(f)
		} else {
			svcs = s.reg.ByOutput(f)
		}
		return response{OK: true, Services: svcs, Count: len(svcs)}
	case "all":
		svcs := s.reg.All()
		return response{OK: true, Services: svcs, Count: len(svcs)}
	case "len":
		return response{OK: true, Count: s.reg.Len()}
	case "join":
		if req.Member == nil {
			return response{Error: "join without member"}
		}
		if err := s.reg.Join(*req.Member, time.Duration(req.LeaseMs)*time.Millisecond); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "mrenew":
		if err := s.reg.RenewMember(req.MemberID, time.Duration(req.LeaseMs)*time.Millisecond); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "leave":
		if err := s.reg.Leave(req.MemberID); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true}
	case "members":
		ms := s.reg.Members()
		return response{OK: true, Members: ms, Count: len(ms)}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client talks to a registry Server over TCP. It is safe for sequential
// use; guard with a mutex for concurrent callers.
type Client struct {
	conn    net.Conn
	enc     *json.Encoder
	sc      *bufio.Scanner
	timeout time.Duration
}

// Dial connects to a registry server with no I/O timeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects with a bound on both the connection attempt and
// every subsequent request/response round trip. A slow or hung registry
// then fails fast instead of stalling its caller. timeout 0 disables
// the bound.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("registry: dialing %s: %w", addr, err)
	}
	return newClient(conn, timeout), nil
}

// DialContext connects under a context: cancellation or deadline expiry
// aborts the connection attempt. The context does not bound later round
// trips — use SetTimeout or the *Context query variants for that.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("registry: dialing %s: %w", addr, err)
	}
	return newClient(conn, 0), nil
}

func newClient(conn net.Conn, timeout time.Duration) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc, timeout: timeout}
}

// SetTimeout changes the per-round-trip I/O bound (0 disables it).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip performs one request/response exchange under the client's
// timeout and the context's deadline/cancellation, whichever is sooner.
func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	if err := ctx.Err(); err != nil {
		return response{}, fmt.Errorf("registry: %w", err)
	}
	deadline, bounded := ctx.Deadline()
	if c.timeout > 0 {
		if t := time.Now().Add(c.timeout); !bounded || t.Before(deadline) {
			deadline, bounded = t, true
		}
	}
	if bounded {
		_ = c.conn.SetDeadline(deadline)
		defer c.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	if done := ctx.Done(); done != nil {
		// Interrupt in-flight I/O on cancellation by expiring the
		// connection deadline immediately.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				_ = c.conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
	}

	resp, err := c.exchange(req)
	if err != nil && ctx.Err() != nil {
		return resp, fmt.Errorf("registry: %w", ctx.Err())
	}
	return resp, err
}

func (c *Client) exchange(req request) (response, error) {
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("registry: sending request: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return response{}, fmt.Errorf("registry: reading response: %w", err)
		}
		return response{}, fmt.Errorf("registry: connection closed: %w", io.EOF)
	}
	var resp response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return response{}, fmt.Errorf("registry: decoding response: %w", err)
	}
	if !resp.OK {
		return resp, errors.New("registry: " + resp.Error)
	}
	return resp, nil
}

// Register advertises a service with a lease.
func (c *Client) Register(s *service.Service, lease time.Duration) error {
	return c.RegisterContext(context.Background(), s, lease)
}

// RegisterContext is Register under a context.
func (c *Client) RegisterContext(ctx context.Context, s *service.Service, lease time.Duration) error {
	_, err := c.roundTrip(ctx, request{Op: "register", Service: s, LeaseMs: lease.Milliseconds()})
	return err
}

// Deregister withdraws a service.
func (c *Client) Deregister(id service.ID) error {
	_, err := c.roundTrip(context.Background(), request{Op: "deregister", ID: id})
	return err
}

// Renew extends a lease.
func (c *Client) Renew(id service.ID, lease time.Duration) error {
	return c.RenewContext(context.Background(), id, lease)
}

// RenewContext is Renew under a context.
func (c *Client) RenewContext(ctx context.Context, id service.ID, lease time.Duration) error {
	_, err := c.roundTrip(ctx, request{Op: "renew", ID: id, LeaseMs: lease.Milliseconds()})
	return err
}

// Lookup fetches one advertisement.
func (c *Client) Lookup(id service.ID) (*service.Service, error) {
	return c.LookupContext(context.Background(), id)
}

// LookupContext is Lookup under a context.
func (c *Client) LookupContext(ctx context.Context, id service.ID) (*service.Service, error) {
	resp, err := c.roundTrip(ctx, request{Op: "lookup", ID: id})
	if err != nil {
		return nil, err
	}
	if len(resp.Services) == 0 {
		return nil, fmt.Errorf("registry: empty lookup response for %s", id)
	}
	return resp.Services[0], nil
}

// ByInput queries services accepting a format.
func (c *Client) ByInput(f media.Format) ([]*service.Service, error) {
	return c.ByInputContext(context.Background(), f)
}

// ByInputContext is ByInput under a context.
func (c *Client) ByInputContext(ctx context.Context, f media.Format) ([]*service.Service, error) {
	resp, err := c.roundTrip(ctx, request{Op: "byinput", Format: f.String()})
	if err != nil {
		return nil, err
	}
	return resp.Services, nil
}

// ByOutput queries services producing a format.
func (c *Client) ByOutput(f media.Format) ([]*service.Service, error) {
	return c.ByOutputContext(context.Background(), f)
}

// ByOutputContext is ByOutput under a context.
func (c *Client) ByOutputContext(ctx context.Context, f media.Format) ([]*service.Service, error) {
	resp, err := c.roundTrip(ctx, request{Op: "byoutput", Format: f.String()})
	if err != nil {
		return nil, err
	}
	return resp.Services, nil
}

// All lists every live advertisement.
func (c *Client) All() ([]*service.Service, error) {
	return c.AllContext(context.Background())
}

// AllContext is All under a context.
func (c *Client) AllContext(ctx context.Context) ([]*service.Service, error) {
	resp, err := c.roundTrip(ctx, request{Op: "all"})
	if err != nil {
		return nil, err
	}
	return resp.Services, nil
}

// Len returns the number of live advertisements.
func (c *Client) Len() (int, error) {
	resp, err := c.roundTrip(context.Background(), request{Op: "len"})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Join advertises a cluster member under a lease.
func (c *Client) Join(m Member, lease time.Duration) error {
	return c.JoinContext(context.Background(), m, lease)
}

// JoinContext is Join under a context.
func (c *Client) JoinContext(ctx context.Context, m Member, lease time.Duration) error {
	_, err := c.roundTrip(ctx, request{Op: "join", Member: &m, LeaseMs: lease.Milliseconds()})
	return err
}

// RenewMember extends a member's lease.
func (c *Client) RenewMember(id string, lease time.Duration) error {
	return c.RenewMemberContext(context.Background(), id, lease)
}

// RenewMemberContext is RenewMember under a context.
func (c *Client) RenewMemberContext(ctx context.Context, id string, lease time.Duration) error {
	_, err := c.roundTrip(ctx, request{Op: "mrenew", MemberID: id, LeaseMs: lease.Milliseconds()})
	return err
}

// Leave withdraws a member.
func (c *Client) Leave(id string) error {
	_, err := c.roundTrip(context.Background(), request{Op: "leave", MemberID: id})
	return err
}

// Members lists the live cluster membership.
func (c *Client) Members() ([]Member, error) {
	return c.MembersContext(context.Background())
}

// MembersContext is Members under a context.
func (c *Client) MembersContext(ctx context.Context) ([]Member, error) {
	resp, err := c.roundTrip(ctx, request{Op: "members"})
	if err != nil {
		return nil, err
	}
	return resp.Members, nil
}
