package registry

import (
	"context"
	"net"
	"testing"
	"time"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(New(), ln)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestWireRegisterLookup(t *testing.T) {
	_, c := startServer(t)
	s := service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF)
	if err := c.Register(s, time.Minute); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("c1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "c1" || !got.Accepts(media.ImageJPEG) || !got.Produces(media.ImageGIF) {
		t.Errorf("lookup = %v", got)
	}
}

func TestWireLookupUnknown(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Lookup("ghost"); err == nil {
		t.Error("lookup of unknown service should fail")
	}
}

func TestWireQueries(t *testing.T) {
	_, c := startServer(t)
	_ = c.Register(service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF), 0)
	_ = c.Register(service.FormatConverter("c2", media.ImageJPEG, media.ImagePNG), 0)
	_ = c.Register(service.HTMLToWML("h1"), 0)

	in, err := c.ByInput(media.ImageJPEG)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 2 {
		t.Errorf("ByInput = %d services, want 2", len(in))
	}
	out, err := c.ByOutput(media.TextWML)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != "h1" {
		t.Errorf("ByOutput = %v", out)
	}
	all, err := c.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("All = %d, want 3", len(all))
	}
	n, err := c.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Len = %d, want 3", n)
	}
}

func TestWireDeregisterRenew(t *testing.T) {
	_, c := startServer(t)
	_ = c.Register(service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF), time.Minute)
	if err := c.Renew("c1", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister("c1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister("c1"); err == nil {
		t.Error("double deregister over the wire should fail")
	}
}

func TestWireRegisterInvalid(t *testing.T) {
	_, c := startServer(t)
	if err := c.Register(&service.Service{ID: "bad"}, 0); err == nil {
		t.Error("invalid service should be rejected over the wire")
	}
}

func TestWireMultipleClients(t *testing.T) {
	srv, c1 := startServer(t)
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c1.Register(service.HTMLToWML("h1"), 0); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Lookup("h1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "h1" {
		t.Error("second client should see first client's registration")
	}
}

func TestWireServerClose(t *testing.T) {
	srv, c := startServer(t)
	if err := srv.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if err := c.Register(service.HTMLToWML("h1"), 0); err == nil {
		// The first write may still land in the OS buffer; a
		// round-trip must eventually fail.
		if _, err := c.All(); err == nil {
			t.Error("requests after server close should fail")
		}
	}
}

func TestWireBadRequestLine(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(New(), ln)
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("server should answer bad requests with an error response")
	}
}

func TestWireUnknownOp(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.roundTrip(context.Background(), request{Op: "explode"}); err == nil {
		t.Error("unknown op should fail")
	}
}
