package registry

import (
	"net"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

func TestFederationMergesAndDedups(t *testing.T) {
	a, b := New(), New()
	_ = a.Register(service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF), 0)
	_ = a.Register(service.FormatConverter("c2", media.ImageJPEG, media.ImagePNG), 0)
	_ = b.Register(service.FormatConverter("c2", media.ImageJPEG, media.ImageBMP), 0) // same ID, different body
	_ = b.Register(service.FormatConverter("c3", media.ImageJPEG, media.ImageGIF), 0)

	fed := NewFederation(a, b)
	got := fed.ByInput(media.ImageJPEG)
	if len(got) != 3 {
		t.Fatalf("federated ByInput = %d services, want 3", len(got))
	}
	if got[0].ID != "c1" || got[1].ID != "c2" || got[2].ID != "c3" {
		t.Errorf("order = %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
	// Earlier member wins ID conflicts: c2 from registry a produces PNG.
	if !got[1].Produces(media.ImagePNG) {
		t.Error("first federation member should win duplicate IDs")
	}
	if n := len(fed.All()); n != 3 {
		t.Errorf("All = %d, want 3", n)
	}
	if n := len(fed.ByOutput(media.ImageGIF)); n != 2 {
		t.Errorf("ByOutput(gif) = %d, want 2", n)
	}
}

func TestFederationAdd(t *testing.T) {
	a := New()
	_ = a.Register(service.HTMLToWML("h1"), 0)
	fed := NewFederation()
	if len(fed.All()) != 0 {
		t.Error("empty federation should answer nothing")
	}
	fed.Add(a)
	if len(fed.All()) != 1 {
		t.Error("added member should be queried")
	}
}

func TestRemoteSource(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := New()
	_ = reg.Register(service.FormatConverter("c1", media.ImageJPEG, media.ImageGIF), 0)
	srv := Serve(reg, ln)
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	src := NewRemoteSource(client)
	if got := src.ByInput(media.ImageJPEG); len(got) != 1 || got[0].ID != "c1" {
		t.Errorf("remote ByInput = %v", got)
	}
	if got := src.ByOutput(media.ImageGIF); len(got) != 1 {
		t.Errorf("remote ByOutput = %v", got)
	}
	if got := src.All(); len(got) != 1 {
		t.Errorf("remote All = %v", got)
	}
}

func TestRemoteSourceDegradesOnFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(New(), ln)
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // kill the server under the client
	src := NewRemoteSource(client)
	if got := src.ByInput(media.ImageJPEG); got != nil {
		t.Errorf("dead remote should answer nil, got %v", got)
	}
	if got := src.All(); got != nil {
		t.Errorf("dead remote All should be nil, got %v", got)
	}
}

func TestFederationWithRemoteMember(t *testing.T) {
	local := New()
	_ = local.Register(service.FormatConverter("local1", media.ImageJPEG, media.ImageGIF), 0)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remoteReg := New()
	_ = remoteReg.Register(service.FormatConverter("remote1", media.ImageJPEG, media.ImagePNG), 0)
	srv := Serve(remoteReg, ln)
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	fed := NewFederation(local, NewRemoteSource(client))
	got := fed.ByInput(media.ImageJPEG)
	if len(got) != 2 {
		t.Fatalf("federated local+remote = %d, want 2", len(got))
	}
}
