package registry

import (
	"sort"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// Source is a read-only service directory: the query surface shared by a
// local Registry, a remote registry reached over the wire protocol, and a
// Federation of either. It is what graph discovery consumes.
type Source interface {
	// ByInput returns live services accepting the format, sorted by ID.
	ByInput(media.Format) []*service.Service
	// ByOutput returns live services producing the format, sorted by ID.
	ByOutput(media.Format) []*service.Service
	// All returns every live service, sorted by ID.
	All() []*service.Service
}

// Registry implements Source directly; assert it.
var _ Source = (*Registry)(nil)

// Federation aggregates several directories — the SLP "directory agent
// mesh" a multi-domain deployment runs. Queries union the members'
// answers; when two members advertise the same service ID the earlier
// member wins.
type Federation struct {
	sources []Source
}

// NewFederation builds a federation over the given members.
func NewFederation(sources ...Source) *Federation {
	return &Federation{sources: sources}
}

// Add appends another member.
func (f *Federation) Add(src Source) { f.sources = append(f.sources, src) }

// ByInput implements Source.
func (f *Federation) ByInput(format media.Format) []*service.Service {
	return f.merge(func(s Source) []*service.Service { return s.ByInput(format) })
}

// ByOutput implements Source.
func (f *Federation) ByOutput(format media.Format) []*service.Service {
	return f.merge(func(s Source) []*service.Service { return s.ByOutput(format) })
}

// All implements Source.
func (f *Federation) All() []*service.Service {
	return f.merge(func(s Source) []*service.Service { return s.All() })
}

func (f *Federation) merge(query func(Source) []*service.Service) []*service.Service {
	seen := make(map[service.ID]bool)
	var out []*service.Service
	for _, src := range f.sources {
		for _, svc := range query(src) {
			if seen[svc.ID] {
				continue
			}
			seen[svc.ID] = true
			out = append(out, svc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemoteSource adapts a wire Client into a Source. Network errors
// degrade to empty answers — a federation member being down must not
// fail composition, merely shrink the discovered service pool.
type RemoteSource struct {
	client *Client
}

// NewRemoteSource wraps a connected client.
func NewRemoteSource(c *Client) *RemoteSource { return &RemoteSource{client: c} }

// ByInput implements Source.
func (r *RemoteSource) ByInput(f media.Format) []*service.Service {
	svcs, err := r.client.ByInput(f)
	if err != nil {
		return nil
	}
	return svcs
}

// ByOutput implements Source.
func (r *RemoteSource) ByOutput(f media.Format) []*service.Service {
	svcs, err := r.client.ByOutput(f)
	if err != nil {
		return nil
	}
	return svcs
}

// All implements Source.
func (r *RemoteSource) All() []*service.Service {
	svcs, err := r.client.All()
	if err != nil {
		return nil
	}
	return svcs
}
