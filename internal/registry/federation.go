package registry

import (
	"context"
	"sort"
	"sync"
	"time"

	"qoschain/internal/admission"
	"qoschain/internal/media"
	"qoschain/internal/service"
)

// Source is a read-only service directory: the query surface shared by a
// local Registry, a remote registry reached over the wire protocol, and a
// Federation of either. It is what graph discovery consumes.
type Source interface {
	// ByInput returns live services accepting the format, sorted by ID.
	ByInput(media.Format) []*service.Service
	// ByOutput returns live services producing the format, sorted by ID.
	ByOutput(media.Format) []*service.Service
	// All returns every live service, sorted by ID.
	All() []*service.Service
}

// Registry implements Source directly; assert it.
var _ Source = (*Registry)(nil)

// Federation aggregates several directories — the SLP "directory agent
// mesh" a multi-domain deployment runs. Queries union the members'
// answers; when two members advertise the same service ID the earlier
// member wins.
type Federation struct {
	sources []Source
}

// NewFederation builds a federation over the given members.
func NewFederation(sources ...Source) *Federation {
	return &Federation{sources: sources}
}

// Add appends another member.
func (f *Federation) Add(src Source) { f.sources = append(f.sources, src) }

// ContextSource is the deadline-aware query surface: a Source whose
// round trips observe a context. RemoteSource and Federation implement
// it; a plain in-memory Registry needs no deadline and is queried
// directly.
type ContextSource interface {
	Source
	ByInputContext(context.Context, media.Format) []*service.Service
	ByOutputContext(context.Context, media.Format) []*service.Service
	AllContext(context.Context) []*service.Service
}

// Federation implements ContextSource; assert it.
var _ ContextSource = (*Federation)(nil)

// ByInput implements Source.
func (f *Federation) ByInput(format media.Format) []*service.Service {
	return f.ByInputContext(context.Background(), format)
}

// ByOutput implements Source.
func (f *Federation) ByOutput(format media.Format) []*service.Service {
	return f.ByOutputContext(context.Background(), format)
}

// All implements Source.
func (f *Federation) All() []*service.Service {
	return f.AllContext(context.Background())
}

// ByInputContext queries every member under the context, giving each
// remaining member a fair share of the remaining budget.
func (f *Federation) ByInputContext(ctx context.Context, format media.Format) []*service.Service {
	return f.merge(ctx, func(ctx context.Context, s Source) []*service.Service {
		if cs, ok := s.(ContextSource); ok {
			return cs.ByInputContext(ctx, format)
		}
		return s.ByInput(format)
	})
}

// ByOutputContext is ByInputContext for the output index.
func (f *Federation) ByOutputContext(ctx context.Context, format media.Format) []*service.Service {
	return f.merge(ctx, func(ctx context.Context, s Source) []*service.Service {
		if cs, ok := s.(ContextSource); ok {
			return cs.ByOutputContext(ctx, format)
		}
		return s.ByOutput(format)
	})
}

// AllContext lists every member's directory under the context.
func (f *Federation) AllContext(ctx context.Context) []*service.Service {
	return f.merge(ctx, func(ctx context.Context, s Source) []*service.Service {
		if cs, ok := s.(ContextSource); ok {
			return cs.AllContext(ctx)
		}
		return s.All()
	})
}

// merge unions the members' answers under per-member sub-deadlines:
// with k members left and a deadline on ctx, the next member gets 1/k
// of the remaining budget, so one hung remote cannot eat the slices of
// the members queried after it.
func (f *Federation) merge(ctx context.Context, query func(context.Context, Source) []*service.Service) []*service.Service {
	seen := make(map[service.ID]bool)
	var out []*service.Service
	for i, src := range f.sources {
		stage, cancel := admission.SubDeadline(ctx, 1/float64(len(f.sources)-i))
		svcs := query(stage, src)
		cancel()
		for _, svc := range svcs {
			if seen[svc.ID] {
				continue
			}
			seen[svc.ID] = true
			out = append(out, svc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemoteSource adapts a wire Client into a Source. On a network error it
// serves the last known good answer for the query (marking itself stale)
// instead of silently shrinking the discovered pool to nothing — a
// transiently unreachable federation member keeps its most recent
// directory visible until it answers again. A query that never succeeded
// degrades to an empty answer.
//
// Two admission-layer guards compose with the stale cache:
//
//   - a per-query Timeout bounds each round trip (the per-stage
//     sub-deadline of a composition that consults the federation), and
//   - an optional circuit Breaker sheds queries outright while the
//     remote is failing: an open breaker serves the last-known-good
//     directory without touching the network at all, so a dead remote
//     costs nothing after the first few failures instead of a timeout
//     per query.
type RemoteSource struct {
	client *Client

	timeout time.Duration
	breaker *admission.Breaker

	mu      sync.Mutex
	cache   map[string][]*service.Service
	stale   bool
	lastErr error
}

// RemoteSource implements ContextSource; assert it.
var _ ContextSource = (*RemoteSource)(nil)

// RemoteSourceOptions tunes a RemoteSource's admission guards; the zero
// value disables both.
type RemoteSourceOptions struct {
	// Timeout bounds every query round trip; 0 leaves only the
	// caller's context deadline (if any).
	Timeout time.Duration
	// Breaker, when set, guards the remote: while open, queries are
	// served from the last-known-good cache without any network I/O.
	Breaker *admission.Breaker
}

// NewRemoteSource wraps a connected client with no guards.
func NewRemoteSource(c *Client) *RemoteSource {
	return NewRemoteSourceOpts(c, RemoteSourceOptions{})
}

// NewRemoteSourceOpts wraps a connected client with the given guards.
func NewRemoteSourceOpts(c *Client, opts RemoteSourceOptions) *RemoteSource {
	return &RemoteSource{
		client:  c,
		timeout: opts.Timeout,
		breaker: opts.Breaker,
		cache:   make(map[string][]*service.Service),
	}
}

// Breaker returns the guarding breaker (nil when unguarded), for
// status reporting.
func (r *RemoteSource) Breaker() *admission.Breaker { return r.breaker }

// Stale reports whether the most recent query was served from cache
// because the remote registry did not answer.
func (r *RemoteSource) Stale() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stale
}

// LastError returns the most recent remote failure (nil after a
// successful query).
func (r *RemoteSource) LastError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// serve records a fresh answer or falls back to the cached one.
func (r *RemoteSource) serve(key string, svcs []*service.Service, err error) []*service.Service {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err == nil {
		r.cache[key] = svcs
		r.stale = false
		r.lastErr = nil
		return svcs
	}
	r.stale = true
	r.lastErr = err
	return r.cache[key]
}

// query runs one guarded round trip: breaker first (an open breaker
// serves stale without network I/O), then the per-query timeout on top
// of the caller's context.
func (r *RemoteSource) query(ctx context.Context, key string, fn func(context.Context) ([]*service.Service, error)) []*service.Service {
	if r.breaker != nil && !r.breaker.Allow() {
		return r.serve(key, nil, admission.ErrBreakerOpen)
	}
	qctx, cancel := admission.WithBudget(ctx, r.timeout)
	svcs, err := fn(qctx)
	cancel()
	if r.breaker != nil {
		r.breaker.Record(err == nil)
	}
	return r.serve(key, svcs, err)
}

// ByInput implements Source.
func (r *RemoteSource) ByInput(f media.Format) []*service.Service {
	return r.ByInputContext(context.Background(), f)
}

// ByOutput implements Source.
func (r *RemoteSource) ByOutput(f media.Format) []*service.Service {
	return r.ByOutputContext(context.Background(), f)
}

// All implements Source.
func (r *RemoteSource) All() []*service.Service {
	return r.AllContext(context.Background())
}

// ByInputContext implements ContextSource.
func (r *RemoteSource) ByInputContext(ctx context.Context, f media.Format) []*service.Service {
	return r.query(ctx, "in:"+f.String(), func(ctx context.Context) ([]*service.Service, error) {
		return r.client.ByInputContext(ctx, f)
	})
}

// ByOutputContext implements ContextSource.
func (r *RemoteSource) ByOutputContext(ctx context.Context, f media.Format) []*service.Service {
	return r.query(ctx, "out:"+f.String(), func(ctx context.Context) ([]*service.Service, error) {
		return r.client.ByOutputContext(ctx, f)
	})
}

// AllContext implements ContextSource.
func (r *RemoteSource) AllContext(ctx context.Context) []*service.Service {
	return r.query(ctx, "all", func(ctx context.Context) ([]*service.Service, error) {
		return r.client.AllContext(ctx)
	})
}
