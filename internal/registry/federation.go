package registry

import (
	"sort"
	"sync"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// Source is a read-only service directory: the query surface shared by a
// local Registry, a remote registry reached over the wire protocol, and a
// Federation of either. It is what graph discovery consumes.
type Source interface {
	// ByInput returns live services accepting the format, sorted by ID.
	ByInput(media.Format) []*service.Service
	// ByOutput returns live services producing the format, sorted by ID.
	ByOutput(media.Format) []*service.Service
	// All returns every live service, sorted by ID.
	All() []*service.Service
}

// Registry implements Source directly; assert it.
var _ Source = (*Registry)(nil)

// Federation aggregates several directories — the SLP "directory agent
// mesh" a multi-domain deployment runs. Queries union the members'
// answers; when two members advertise the same service ID the earlier
// member wins.
type Federation struct {
	sources []Source
}

// NewFederation builds a federation over the given members.
func NewFederation(sources ...Source) *Federation {
	return &Federation{sources: sources}
}

// Add appends another member.
func (f *Federation) Add(src Source) { f.sources = append(f.sources, src) }

// ByInput implements Source.
func (f *Federation) ByInput(format media.Format) []*service.Service {
	return f.merge(func(s Source) []*service.Service { return s.ByInput(format) })
}

// ByOutput implements Source.
func (f *Federation) ByOutput(format media.Format) []*service.Service {
	return f.merge(func(s Source) []*service.Service { return s.ByOutput(format) })
}

// All implements Source.
func (f *Federation) All() []*service.Service {
	return f.merge(func(s Source) []*service.Service { return s.All() })
}

func (f *Federation) merge(query func(Source) []*service.Service) []*service.Service {
	seen := make(map[service.ID]bool)
	var out []*service.Service
	for _, src := range f.sources {
		for _, svc := range query(src) {
			if seen[svc.ID] {
				continue
			}
			seen[svc.ID] = true
			out = append(out, svc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemoteSource adapts a wire Client into a Source. On a network error it
// serves the last known good answer for the query (marking itself stale)
// instead of silently shrinking the discovered pool to nothing — a
// transiently unreachable federation member keeps its most recent
// directory visible until it answers again. A query that never succeeded
// degrades to an empty answer.
type RemoteSource struct {
	client *Client

	mu      sync.Mutex
	cache   map[string][]*service.Service
	stale   bool
	lastErr error
}

// NewRemoteSource wraps a connected client.
func NewRemoteSource(c *Client) *RemoteSource {
	return &RemoteSource{client: c, cache: make(map[string][]*service.Service)}
}

// Stale reports whether the most recent query was served from cache
// because the remote registry did not answer.
func (r *RemoteSource) Stale() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stale
}

// LastError returns the most recent remote failure (nil after a
// successful query).
func (r *RemoteSource) LastError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// serve records a fresh answer or falls back to the cached one.
func (r *RemoteSource) serve(key string, svcs []*service.Service, err error) []*service.Service {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err == nil {
		r.cache[key] = svcs
		r.stale = false
		r.lastErr = nil
		return svcs
	}
	r.stale = true
	r.lastErr = err
	return r.cache[key]
}

// ByInput implements Source.
func (r *RemoteSource) ByInput(f media.Format) []*service.Service {
	svcs, err := r.client.ByInput(f)
	return r.serve("in:"+f.String(), svcs, err)
}

// ByOutput implements Source.
func (r *RemoteSource) ByOutput(f media.Format) []*service.Service {
	svcs, err := r.client.ByOutput(f)
	return r.serve("out:"+f.String(), svcs, err)
}

// All implements Source.
func (r *RemoteSource) All() []*service.Service {
	svcs, err := r.client.All()
	return r.serve("all", svcs, err)
}
