package registry

import (
	"context"
	"net"
	"testing"
	"time"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// silentListener accepts connections and reads requests but never
// answers — the hung-registry failure mode the client timeout guards
// against.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 1024)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestClientTimeoutFailsFastOnHungServer(t *testing.T) {
	ln := silentListener(t)
	c, err := DialTimeout(ln.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Len(); err == nil {
		t.Fatal("hung server must time out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timed out after %v, want ~100ms", elapsed)
	}
}

func TestClientContextCancellationUnblocks(t *testing.T) {
	ln := silentListener(t)
	c, err := Dial(ln.Addr().String()) // no timeout: only the ctx bounds it
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.AllContext(ctx)
	if err == nil {
		t.Fatal("cancelled query must fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("unblocked after %v, want ~50ms", elapsed)
	}
	if ctx.Err() == nil {
		t.Error("context should be cancelled")
	}
}

func TestClientContextAlreadyCancelled(t *testing.T) {
	_, c := startServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AllContext(ctx); err == nil {
		t.Error("pre-cancelled context must fail immediately")
	}
}

func TestClientRecoversAfterTimeout(t *testing.T) {
	// After a context-bounded call, the connection deadline must be
	// reset so later calls work.
	_, c := startServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.AllContext(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.All(); err != nil {
		t.Fatalf("plain call after bounded call: %v", err)
	}
}

func TestRemoteSourceServesLastKnownGoodWhenDown(t *testing.T) {
	srv, c := startServer(t)
	conv := service.FormatConverter("t1", media.VideoMPEG1, media.VideoH263)
	if err := c.Register(conv, time.Minute); err != nil {
		t.Fatal(err)
	}
	src := NewRemoteSource(c)

	// Warm the cache while the registry is healthy.
	if got := src.ByInput(media.VideoMPEG1); len(got) != 1 {
		t.Fatalf("live query = %v", got)
	}
	if got := src.All(); len(got) != 1 {
		t.Fatalf("live all = %v", got)
	}
	if src.Stale() || src.LastError() != nil {
		t.Fatal("healthy source must not be stale")
	}

	// Kill the registry: queries serve the last known good answers and
	// flag staleness instead of returning nothing.
	srv.Close()
	if got := src.ByInput(media.VideoMPEG1); len(got) != 1 || got[0].ID != "t1" {
		t.Errorf("stale query = %v, want cached t1", got)
	}
	if !src.Stale() || src.LastError() == nil {
		t.Error("source must mark itself stale with the remote error")
	}
	// A query never answered while healthy degrades to empty.
	if got := src.ByOutput(media.VideoMPEG1); got != nil {
		t.Errorf("uncached query = %v, want nil", got)
	}
}
