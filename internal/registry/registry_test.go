package registry

import (
	"testing"
	"time"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

func conv(id service.ID, from, to media.Format) *service.Service {
	return service.FormatConverter(id, from, to)
}

func TestRegisterAndLookup(t *testing.T) {
	r := New()
	s := conv("c1", media.ImageJPEG, media.ImageGIF)
	if err := r.Register(s, 0); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("c1")
	if !ok {
		t.Fatal("registered service should be found")
	}
	if got.ID != "c1" || !got.Accepts(media.ImageJPEG) {
		t.Errorf("lookup returned %v", got)
	}
	// Returned copy must not alias registry state.
	got.Inputs[0] = media.TextHTML
	again, _ := r.Lookup("c1")
	if !again.Accepts(media.ImageJPEG) {
		t.Error("Lookup must return an isolated copy")
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	r := New()
	if err := r.Register(&service.Service{}, 0); err == nil {
		t.Error("invalid service should be rejected")
	}
}

func TestRegisterReplaces(t *testing.T) {
	r := New()
	if err := r.Register(conv("c1", media.ImageJPEG, media.ImageGIF), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(conv("c1", media.TextHTML, media.TextWML), 0); err != nil {
		t.Fatal(err)
	}
	if got := r.ByInput(media.ImageJPEG); len(got) != 0 {
		t.Error("old index entries must be removed on re-register")
	}
	if got := r.ByInput(media.TextHTML); len(got) != 1 {
		t.Error("new index entries must be present")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestByInputByOutputSorted(t *testing.T) {
	r := New()
	for _, id := range []service.ID{"z9", "a1", "m5"} {
		if err := r.Register(conv(id, media.ImageJPEG, media.ImageGIF), 0); err != nil {
			t.Fatal(err)
		}
	}
	got := r.ByInput(media.ImageJPEG)
	if len(got) != 3 || got[0].ID != "a1" || got[1].ID != "m5" || got[2].ID != "z9" {
		t.Errorf("ByInput order: %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
	outs := r.ByOutput(media.ImageGIF)
	if len(outs) != 3 {
		t.Errorf("ByOutput count = %d", len(outs))
	}
	if len(r.ByOutput(media.ImageJPEG)) != 0 {
		t.Error("ByOutput of input format should be empty")
	}
}

func TestDeregister(t *testing.T) {
	r := New()
	if err := r.Register(conv("c1", media.ImageJPEG, media.ImageGIF), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("c1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("c1"); ok {
		t.Error("deregistered service should be gone")
	}
	if len(r.ByInput(media.ImageJPEG)) != 0 {
		t.Error("deregistered service must leave the index")
	}
	if err := r.Deregister("c1"); err == nil {
		t.Error("double deregister should fail")
	}
}

func TestLeaseExpiry(t *testing.T) {
	clock := NewFakeClock()
	r := NewWithClock(clock)
	if err := r.Register(conv("c1", media.ImageJPEG, media.ImageGIF), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("c1"); !ok {
		t.Fatal("service should be live inside the lease")
	}
	clock.Advance(2 * time.Minute)
	if _, ok := r.Lookup("c1"); ok {
		t.Error("service should be invisible after lease expiry")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0 after expiry", r.Len())
	}
	if len(r.ByInput(media.ImageJPEG)) != 0 {
		t.Error("expired service should not appear in queries")
	}
}

func TestRenewExtendsLease(t *testing.T) {
	clock := NewFakeClock()
	r := NewWithClock(clock)
	if err := r.Register(conv("c1", media.ImageJPEG, media.ImageGIF), time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Second)
	if err := r.Renew("c1", time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Advance(45 * time.Second) // 75s after registration, 45s after renew
	if _, ok := r.Lookup("c1"); !ok {
		t.Error("renewed lease should still be live")
	}
	clock.Advance(time.Minute)
	if err := r.Renew("c1", time.Minute); err == nil {
		t.Error("renew after expiry should fail")
	}
	if err := r.Renew("ghost", time.Minute); err == nil {
		t.Error("renew of unknown service should fail")
	}
}

func TestRenewToUnlimited(t *testing.T) {
	clock := NewFakeClock()
	r := NewWithClock(clock)
	if err := r.Register(conv("c1", media.ImageJPEG, media.ImageGIF), time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := r.Renew("c1", 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(100 * time.Hour)
	if _, ok := r.Lookup("c1"); !ok {
		t.Error("lease renewed to 0 should never expire")
	}
}

func TestSweep(t *testing.T) {
	clock := NewFakeClock()
	r := NewWithClock(clock)
	_ = r.Register(conv("c1", media.ImageJPEG, media.ImageGIF), time.Minute)
	_ = r.Register(conv("c2", media.TextHTML, media.TextWML), 0)
	ch, cancel := r.Watch(4)
	defer cancel()
	clock.Advance(2 * time.Minute)
	if n := r.Sweep(); n != 1 {
		t.Errorf("Sweep removed %d, want 1", n)
	}
	ev := <-ch
	if ev.Kind != EventExpired || ev.Service != "c1" {
		t.Errorf("expected expiry event for c1, got %+v", ev)
	}
	if r.Len() != 1 {
		t.Errorf("Len after sweep = %d, want 1", r.Len())
	}
	if n := r.Sweep(); n != 0 {
		t.Errorf("second sweep removed %d, want 0", n)
	}
}

func TestWatchEvents(t *testing.T) {
	r := New()
	ch, cancel := r.Watch(4)
	defer cancel()
	_ = r.Register(conv("c1", media.ImageJPEG, media.ImageGIF), 0)
	if ev := <-ch; ev.Kind != EventRegistered || ev.Service != "c1" {
		t.Errorf("register event = %+v", ev)
	}
	_ = r.Deregister("c1")
	if ev := <-ch; ev.Kind != EventDeregistered {
		t.Errorf("deregister event = %+v", ev)
	}
}

func TestAllSorted(t *testing.T) {
	r := New()
	_ = r.Register(conv("b", media.ImageJPEG, media.ImageGIF), 0)
	_ = r.Register(conv("a", media.TextHTML, media.TextWML), 0)
	all := r.All()
	if len(all) != 2 || all[0].ID != "a" || all[1].ID != "b" {
		t.Errorf("All = %v", all)
	}
}

func TestConcurrentRegisterQuery(t *testing.T) {
	r := New()
	done := make(chan bool)
	go func() {
		for i := 0; i < 200; i++ {
			_ = r.Register(conv(service.ID(media.Opaque(i).Encoding), media.ImageJPEG, media.ImageGIF), 0)
		}
		done <- true
	}()
	go func() {
		for i := 0; i < 200; i++ {
			r.ByInput(media.ImageJPEG)
			r.Len()
		}
		done <- true
	}()
	<-done
	<-done
	if r.Len() != 200 {
		t.Errorf("Len = %d, want 200", r.Len())
	}
}
