// Package registry implements service discovery for trans-coding
// services, in the spirit of the SLP/JINI-style advertisement the paper's
// intermediary profiles assume (Section 3): intermediaries register the
// services they host under a lease, and the graph builder queries the
// registry by input/output format.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// Clock abstracts time for deterministic tests.
type Clock interface {
	Now() time.Time
}

// SystemClock uses the wall clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced clock for tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts at an arbitrary fixed instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{t: time.Date(2007, 4, 15, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Entry is one registered service with its lease.
type Entry struct {
	Service *service.Service
	// Expires is the lease deadline; zero means no expiry.
	Expires time.Time
}

// EventKind distinguishes watcher notifications.
type EventKind int

// Watcher event kinds.
const (
	EventRegistered EventKind = iota
	EventDeregistered
	EventExpired
)

// Event notifies watchers of registry changes.
type Event struct {
	Kind    EventKind
	Service service.ID
}

// Registry is a concurrency-safe service registry with leases.
type Registry struct {
	clock Clock

	mu      sync.RWMutex
	entries map[service.ID]*Entry
	// byInput/byOutput index services by format for O(1) graph
	// construction queries.
	byInput  map[media.Format]map[service.ID]bool
	byOutput map[media.Format]map[service.ID]bool
	subs     []chan Event
	// members is the cluster-membership table (see membership.go).
	members map[string]*memberEntry
}

// New returns an empty registry on the system clock.
func New() *Registry { return NewWithClock(SystemClock{}) }

// NewWithClock returns an empty registry using the given clock.
func NewWithClock(c Clock) *Registry {
	return &Registry{
		clock:    c,
		entries:  make(map[service.ID]*Entry),
		byInput:  make(map[media.Format]map[service.ID]bool),
		byOutput: make(map[media.Format]map[service.ID]bool),
	}
}

// Register validates and stores the service under a lease of the given
// duration (0 = no expiry). Re-registering an existing ID replaces the
// previous advertisement.
func (r *Registry) Register(s *service.Service, lease time.Duration) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	var expires time.Time
	if lease > 0 {
		expires = r.clock.Now().Add(lease)
	}
	cp := s.Clone()
	r.mu.Lock()
	if old, exists := r.entries[cp.ID]; exists {
		r.unindexLocked(old.Service)
	}
	r.entries[cp.ID] = &Entry{Service: cp, Expires: expires}
	r.indexLocked(cp)
	subs := append([]chan Event(nil), r.subs...)
	r.mu.Unlock()
	notify(subs, Event{Kind: EventRegistered, Service: cp.ID})
	return nil
}

// Renew extends an existing lease; it fails for unknown or expired IDs.
func (r *Registry) Renew(id service.ID, lease time.Duration) error {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok || r.expiredLocked(e, now) {
		return fmt.Errorf("registry: no live registration for %s", id)
	}
	if lease > 0 {
		e.Expires = now.Add(lease)
	} else {
		e.Expires = time.Time{}
	}
	return nil
}

// Deregister removes the service.
func (r *Registry) Deregister(id service.ID) error {
	r.mu.Lock()
	e, ok := r.entries[id]
	if ok {
		r.unindexLocked(e.Service)
		delete(r.entries, id)
	}
	subs := append([]chan Event(nil), r.subs...)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("registry: unknown service %s", id)
	}
	notify(subs, Event{Kind: EventDeregistered, Service: id})
	return nil
}

// Lookup returns a copy of the live registration for id.
func (r *Registry) Lookup(id service.ID) (*service.Service, bool) {
	now := r.clock.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if !ok || r.expiredLocked(e, now) {
		return nil, false
	}
	return e.Service.Clone(), true
}

// ByInput returns live services that accept the format, sorted by ID.
func (r *Registry) ByInput(f media.Format) []*service.Service {
	return r.collect(r.byInput, f)
}

// ByOutput returns live services that produce the format, sorted by ID.
func (r *Registry) ByOutput(f media.Format) []*service.Service {
	return r.collect(r.byOutput, f)
}

// All returns every live registration, sorted by ID.
func (r *Registry) All() []*service.Service {
	now := r.clock.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*service.Service, 0, len(r.entries))
	for _, e := range r.entries {
		if !r.expiredLocked(e, now) {
			out = append(out, e.Service.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live registrations.
func (r *Registry) Len() int {
	now := r.clock.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, e := range r.entries {
		if !r.expiredLocked(e, now) {
			n++
		}
	}
	return n
}

// Sweep removes expired entries (service registrations and cluster
// members alike) and notifies watchers; it returns the number removed.
// Queries already ignore expired entries, so Sweep exists to reclaim
// memory, emit EventExpired, and make member expiry observable.
func (r *Registry) Sweep() int {
	now := r.clock.Now()
	r.mu.Lock()
	var expired []service.ID
	for id, e := range r.entries {
		if r.expiredLocked(e, now) {
			expired = append(expired, id)
			r.unindexLocked(e.Service)
			delete(r.entries, id)
		}
	}
	expiredMembers := r.sweepMembersLocked(now)
	subs := append([]chan Event(nil), r.subs...)
	r.mu.Unlock()
	for _, id := range expired {
		notify(subs, Event{Kind: EventExpired, Service: id})
	}
	return len(expired) + expiredMembers
}

// Watch subscribes to registry events; the channel has the given buffer
// and full channels drop events. Call cancel to unsubscribe.
func (r *Registry) Watch(buffer int) (<-chan Event, func()) {
	ch := make(chan Event, buffer)
	r.mu.Lock()
	r.subs = append(r.subs, ch)
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		for i, c := range r.subs {
			if c == ch {
				r.subs = append(r.subs[:i], r.subs[i+1:]...)
				break
			}
		}
		r.mu.Unlock()
	}
	return ch, cancel
}

func (r *Registry) collect(index map[media.Format]map[service.ID]bool, f media.Format) []*service.Service {
	now := r.clock.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := index[f]
	out := make([]*service.Service, 0, len(ids))
	for id := range ids {
		e := r.entries[id]
		if e != nil && !r.expiredLocked(e, now) {
			out = append(out, e.Service.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *Registry) expiredLocked(e *Entry, now time.Time) bool {
	return !e.Expires.IsZero() && now.After(e.Expires)
}

func (r *Registry) indexLocked(s *service.Service) {
	for _, f := range s.Inputs {
		m := r.byInput[f]
		if m == nil {
			m = make(map[service.ID]bool)
			r.byInput[f] = m
		}
		m[s.ID] = true
	}
	for _, f := range s.Outputs {
		m := r.byOutput[f]
		if m == nil {
			m = make(map[service.ID]bool)
			r.byOutput[f] = m
		}
		m[s.ID] = true
	}
}

func (r *Registry) unindexLocked(s *service.Service) {
	for _, f := range s.Inputs {
		delete(r.byInput[f], s.ID)
	}
	for _, f := range s.Outputs {
		delete(r.byOutput[f], s.ID)
	}
}

func notify(subs []chan Event, ev Event) {
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}
