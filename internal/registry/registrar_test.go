package registry

import (
	"context"
	"net"
	"testing"
	"time"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

func listenLocal(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return ln
}

func TestMembershipRoundTrip(t *testing.T) {
	clock := NewFakeClock()
	reg := NewWithClock(clock)
	srv := Serve(reg, listenLocal(t))
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lease := 5 * time.Second
	for _, m := range []Member{
		{ID: "n2", Addr: "127.0.0.1:8002", Host: "p2"},
		{ID: "n1", Addr: "127.0.0.1:8001", Host: "p1"},
		{ID: "n3", Addr: "127.0.0.1:8003", Host: "p3"},
	} {
		if err := c.Join(m, lease); err != nil {
			t.Fatalf("join %s: %v", m.ID, err)
		}
	}
	ms, err := c.Members()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].ID != "n1" || ms[2].ID != "n3" {
		t.Fatalf("members = %+v", ms)
	}
	if ms[1].Host != "p2" || ms[1].Addr != "127.0.0.1:8002" {
		t.Fatalf("member n2 = %+v", ms[1])
	}

	// Renew keeps a member alive across its original lease.
	clock.Advance(4 * time.Second)
	if err := c.RenewMember("n1", lease); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clock.Advance(2 * time.Second) // n2/n3 leases now expired
	if n := reg.Sweep(); n != 2 {
		t.Fatalf("Sweep removed %d, want 2", n)
	}
	ms, err = c.Members()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ID != "n1" {
		t.Fatalf("post-expiry members = %+v", ms)
	}

	// An expired member cannot renew; it must rejoin.
	if err := c.RenewMember("n2", lease); err == nil {
		t.Fatal("renewing an expired member succeeded")
	}
	if err := c.Join(Member{ID: "n2", Addr: "127.0.0.1:8002"}, lease); err != nil {
		t.Fatalf("rejoin: %v", err)
	}

	// Leave withdraws immediately.
	if err := c.Leave("n1"); err != nil {
		t.Fatal(err)
	}
	ms, _ = c.Members()
	if len(ms) != 1 || ms[0].ID != "n2" {
		t.Fatalf("post-leave members = %+v", ms)
	}
}

// TestRegistrarSurvivesRegistryRestart is the regression test for the
// renewal dead-end: a registryd restart empties the lease table, so a
// client that only renews errors until its advertisement expires
// everywhere. The Registrar must instead re-register on the first
// heartbeat after the restart.
func TestRegistrarSurvivesRegistryRestart(t *testing.T) {
	ln := listenLocal(t)
	addr := ln.Addr().String()
	srv := Serve(New(), ln)

	svc := service.FormatConverter("conv-reg", media.VideoMPEG1, media.VideoH263)
	reg := NewRegistrar(RegistrarConfig{
		Addr:    addr,
		Lease:   time.Minute,
		Timeout: 2 * time.Second,
		Service: svc,
		Member:  &Member{ID: "n1", Addr: "127.0.0.1:9001", Host: "p1"},
	})
	defer reg.Close()

	ctx := context.Background()
	if err := reg.Heartbeat(ctx); err != nil {
		t.Fatalf("initial heartbeat: %v", err)
	}
	// Steady state: the same heartbeat is a pure renewal.
	if err := reg.Heartbeat(ctx); err != nil {
		t.Fatalf("renewal heartbeat: %v", err)
	}

	// Restart the registry on the same address with a fresh (empty)
	// state — the crash-and-restart a deployment actually sees.
	srv.Close()
	var ln2 net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	fresh := New()
	srv2 := Serve(fresh, ln2)
	defer srv2.Close()

	// The next heartbeat hits a dead connection and an empty lease
	// table; it must heal both rather than error.
	if err := reg.Heartbeat(ctx); err != nil {
		t.Fatalf("heartbeat after restart: %v", err)
	}
	if _, ok := fresh.Lookup(svc.ID); !ok {
		t.Fatal("service not re-registered after registry restart")
	}
	ms := fresh.Members()
	if len(ms) != 1 || ms[0].ID != "n1" {
		t.Fatalf("member not rejoined after restart: %+v", ms)
	}

	// Subsequent heartbeats renew over the healed connection.
	if err := reg.Heartbeat(ctx); err != nil {
		t.Fatalf("heartbeat after heal: %v", err)
	}

	// Members polling heals the same way.
	if _, err := reg.Members(ctx); err != nil {
		t.Fatalf("Members after heal: %v", err)
	}
}

// TestRegistrarSurvivesLeaseExpiry covers the slow-heartbeat case: the
// registry stayed up but the lease lapsed, so Renew reports "no live
// registration". The heartbeat must fall back to re-registering over
// the same connection.
func TestRegistrarSurvivesLeaseExpiry(t *testing.T) {
	clock := NewFakeClock()
	r := NewWithClock(clock)
	srv := Serve(r, listenLocal(t))
	defer srv.Close()

	reg := NewRegistrar(RegistrarConfig{
		Addr:    srv.Addr(),
		Lease:   time.Second,
		Timeout: 2 * time.Second,
		Member:  &Member{ID: "n9", Addr: "127.0.0.1:9009"},
	})
	defer reg.Close()

	ctx := context.Background()
	if err := reg.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	r.Sweep()
	if err := reg.Heartbeat(ctx); err != nil {
		t.Fatalf("heartbeat after lease expiry: %v", err)
	}
	if ms := r.Members(); len(ms) != 1 || ms[0].ID != "n9" {
		t.Fatalf("member not rejoined after expiry: %+v", ms)
	}
}
