// Package debugz assembles the diagnostics endpoint daemons expose on a
// private -debug-addr listener: the net/http/pprof profiles (with mutex
// and block sampling enabled), expvar, and — when wired — the metrics
// registry's Prometheus exposition and the tracer's completed traces.
// It is deliberately separate from the serving listener so profiling an
// overloaded daemon never competes with (or leaks to) API traffic.
package debugz

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"

	"qoschain/internal/metrics"
	"qoschain/internal/trace"
)

// EnableProfiling turns on mutex and block profiling at moderate sample
// rates: 1-in-5 mutex contention events and blocking events of 1ms or
// longer. Call it once when a debug listener is configured — the
// sampling has a small cost, so it stays off otherwise.
func EnableProfiling() {
	runtime.SetMutexProfileFraction(5)
	runtime.SetBlockProfileRate(int(1e6)) // report blocking >= 1ms
}

// Handler returns the diagnostics mux. reg and tr may be nil; their
// endpoints are omitted.
func Handler(reg *metrics.Registry, tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	if tr != nil {
		mux.Handle("/debug/traces", tr.Handler())
	}
	return mux
}
