// Package store persists profiles on the filesystem: a deployment keeps
// its user, device, content and intermediary profiles as JSON documents
// and assembles a profile.Set per request. The layout is one directory
// per profile kind:
//
//	<root>/users/<name>.json
//	<root>/devices/<id>.json
//	<root>/contents/<id>.json
//	<root>/intermediaries/<host>.json
//	<root>/network.json
//
// Every document is validated on load; Assemble builds a ready-to-compose
// profile.Set from stored pieces.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"qoschain/internal/profile"
)

// ErrDurability marks a write that may not have reached stable storage:
// the temp-file write, its fsync, the rename, or the directory fsync
// failed. The on-disk state is either the old document or the new one —
// never a torn mix — but the caller cannot assume the update survived a
// power loss.
var ErrDurability = errors.New("store: durability failure")

// ErrCorruptProfile marks a stored document that no longer parses as
// JSON — a torn write from a pre-durability version, manual editing, or
// disk corruption. The error message carries the offending file path.
var ErrCorruptProfile = errors.New("store: corrupt profile")

// Store is a filesystem-backed profile repository.
type Store struct {
	root string
}

// Open ensures the directory layout exists and returns the store.
func Open(root string) (*Store, error) {
	for _, dir := range []string{"users", "devices", "contents", "intermediaries"} {
		if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: root}, nil
}

// Root returns the store's base directory.
func (s *Store) Root() string { return s.root }

// sanitize rejects path-escaping IDs.
func sanitize(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return "", fmt.Errorf("store: invalid profile ID %q", id)
	}
	return id + ".json", nil
}

func (s *Store) write(kind, id string, v interface{}) error {
	name, err := sanitize(id)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding %s/%s: %w", kind, id, err)
	}
	return writeDurable(filepath.Join(s.root, kind, name), append(data, '\n'))
}

// writeDurable publishes data at path so that a crash at any instant
// leaves either the old document or the new one: write to a temp file,
// fsync it (so the rename never publishes an empty or torn file), rename
// over the target, then fsync the directory (so the rename itself
// survives a power loss).
func writeDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%w: syncing %s: %w", ErrDurability, tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("%w: syncing %s: %w", ErrDurability, filepath.Dir(path), err)
	}
	return nil
}

func (s *Store) read(kind, id string, v interface{}) error {
	name, err := sanitize(id)
	if err != nil {
		return err
	}
	path := filepath.Join(s.root, kind, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w: %s: %w", ErrCorruptProfile, path, err)
	}
	return nil
}

func (s *Store) list(kind string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, kind))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(ids)
	return ids, nil
}

// PutUser validates and stores a user profile under its name.
func (s *Store) PutUser(u *profile.User) error {
	if err := u.Validate(); err != nil {
		return err
	}
	return s.write("users", u.Name, u)
}

// User loads and validates a user profile.
func (s *Store) User(name string) (*profile.User, error) {
	var u profile.User
	if err := s.read("users", name, &u); err != nil {
		return nil, err
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &u, nil
}

// Users lists stored user names.
func (s *Store) Users() ([]string, error) { return s.list("users") }

// PutDevice validates and stores a device profile under its ID.
func (s *Store) PutDevice(d *profile.Device) error {
	if err := d.Validate(); err != nil {
		return err
	}
	return s.write("devices", d.ID, d)
}

// Device loads and validates a device profile.
func (s *Store) Device(id string) (*profile.Device, error) {
	var d profile.Device
	if err := s.read("devices", id, &d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Devices lists stored device IDs.
func (s *Store) Devices() ([]string, error) { return s.list("devices") }

// PutContent validates and stores a content profile under its ID.
func (s *Store) PutContent(c *profile.Content) error {
	if err := c.Validate(); err != nil {
		return err
	}
	return s.write("contents", c.ID, c)
}

// Content loads and validates a content profile.
func (s *Store) Content(id string) (*profile.Content, error) {
	var c profile.Content
	if err := s.read("contents", id, &c); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Contents lists stored content IDs.
func (s *Store) Contents() ([]string, error) { return s.list("contents") }

// PutIntermediary validates and stores an intermediary profile under its
// host name.
func (s *Store) PutIntermediary(in *profile.Intermediary) error {
	if err := in.Validate(); err != nil {
		return err
	}
	return s.write("intermediaries", in.Host, in)
}

// Intermediary loads and validates an intermediary profile.
func (s *Store) Intermediary(host string) (*profile.Intermediary, error) {
	var in profile.Intermediary
	if err := s.read("intermediaries", host, &in); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// Intermediaries lists stored intermediary hosts.
func (s *Store) Intermediaries() ([]string, error) { return s.list("intermediaries") }

// PutNetwork validates and stores the network profile.
func (s *Store) PutNetwork(n *profile.Network) error {
	if err := n.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(n, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding network: %w", err)
	}
	return writeDurable(filepath.Join(s.root, "network.json"), append(data, '\n'))
}

// Network loads and validates the network profile.
func (s *Store) Network() (*profile.Network, error) {
	path := filepath.Join(s.root, "network.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var n profile.Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrCorruptProfile, path, err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// Assemble builds a validated profile.Set for one request: the named
// user, content and device, the stored network, and every stored
// intermediary.
func (s *Store) Assemble(user, content, device string) (*profile.Set, error) {
	u, err := s.User(user)
	if err != nil {
		return nil, err
	}
	c, err := s.Content(content)
	if err != nil {
		return nil, err
	}
	d, err := s.Device(device)
	if err != nil {
		return nil, err
	}
	n, err := s.Network()
	if err != nil {
		return nil, err
	}
	hosts, err := s.Intermediaries()
	if err != nil {
		return nil, err
	}
	set := &profile.Set{User: *u, Content: *c, Device: *d, Network: *n}
	for _, host := range hosts {
		in, err := s.Intermediary(host)
		if err != nil {
			return nil, err
		}
		set.Intermediaries = append(set.Intermediaries, *in)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}
