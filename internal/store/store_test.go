package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleUser() *profile.User {
	return &profile.User{
		Name: "alice",
		Preferences: map[media.Param]profile.FuncSpec{
			media.ParamFrameRate: profile.LinearSpec(0, 30),
		},
		Budget: 20,
	}
}

func sampleDevice() *profile.Device {
	return &profile.Device{
		ID:       "phone-1",
		Class:    profile.ClassPhone,
		Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
	}
}

func sampleContent() *profile.Content {
	return &profile.Content{
		ID: "clip-1",
		Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		},
	}
}

func sampleIntermediary() *profile.Intermediary {
	return &profile.Intermediary{
		Host: "p1", CPUMips: 1000, MemoryMB: 256,
		Services: []*service.Service{
			service.FormatConverter("conv1", media.VideoMPEG1, media.VideoH263),
		},
	}
}

func sampleNetwork() *profile.Network {
	return &profile.Network{Links: []profile.Link{
		{From: "sender", To: "p1", BandwidthKbps: 2400},
		{From: "p1", To: "phone-1", BandwidthKbps: 1800},
	}}
}

func TestUserRoundTrip(t *testing.T) {
	s := open(t)
	if err := s.PutUser(sampleUser()); err != nil {
		t.Fatal(err)
	}
	got, err := s.User("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "alice" || got.Budget != 20 {
		t.Errorf("loaded user = %+v", got)
	}
	names, err := s.Users()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "alice" {
		t.Errorf("Users = %v", names)
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s := open(t)
	if err := s.PutUser(&profile.User{}); err == nil {
		t.Error("invalid user must be rejected")
	}
	if err := s.PutDevice(&profile.Device{ID: "x"}); err == nil {
		t.Error("invalid device must be rejected")
	}
	if err := s.PutContent(&profile.Content{ID: "x"}); err == nil {
		t.Error("invalid content must be rejected")
	}
	if err := s.PutNetwork(&profile.Network{Links: []profile.Link{{From: "a", To: "a"}}}); err == nil {
		t.Error("invalid network must be rejected")
	}
}

func TestSanitizeRejectsPathEscapes(t *testing.T) {
	s := open(t)
	for _, id := range []string{"", "..", "a/b", `a\b`} {
		if _, err := s.User(id); err == nil {
			t.Errorf("ID %q must be rejected", id)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	s := open(t)
	path := filepath.Join(s.Root(), "users", "bad.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.User("bad"); err == nil {
		t.Error("corrupt document must fail to load")
	}
	// A document that parses but fails validation must also fail.
	if err := os.WriteFile(path, []byte(`{"name":"bad"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.User("bad"); err == nil {
		t.Error("invalid document must fail to load")
	}
}

func TestMissingDocument(t *testing.T) {
	s := open(t)
	if _, err := s.Device("ghost"); err == nil {
		t.Error("missing device must fail")
	}
	if _, err := s.Network(); err == nil {
		t.Error("missing network must fail")
	}
}

func TestAssemble(t *testing.T) {
	s := open(t)
	if err := s.PutUser(sampleUser()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDevice(sampleDevice()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutContent(sampleContent()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutIntermediary(sampleIntermediary()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNetwork(sampleNetwork()); err != nil {
		t.Fatal(err)
	}
	set, err := s.Assemble("alice", "clip-1", "phone-1")
	if err != nil {
		t.Fatal(err)
	}
	if set.User.Name != "alice" || set.Content.ID != "clip-1" || set.Device.ID != "phone-1" {
		t.Errorf("assembled set identities wrong: %+v", set)
	}
	if len(set.Intermediaries) != 1 || set.Intermediaries[0].Host != "p1" {
		t.Errorf("intermediaries = %+v", set.Intermediaries)
	}
	if len(set.Intermediaries[0].Services) != 1 {
		t.Error("intermediary services lost in round trip")
	}
}

func TestAssembleMissingPiece(t *testing.T) {
	s := open(t)
	if err := s.PutUser(sampleUser()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assemble("alice", "nope", "phone-1"); err == nil {
		t.Error("missing content must fail assembly")
	}
}

func TestListsSorted(t *testing.T) {
	s := open(t)
	for _, id := range []string{"zeta", "alpha", "mid"} {
		c := sampleContent()
		c.ID = id
		if err := s.PutContent(c); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "alpha" || ids[2] != "zeta" {
		t.Errorf("Contents = %v", ids)
	}
}

func TestOverwrite(t *testing.T) {
	s := open(t)
	u := sampleUser()
	if err := s.PutUser(u); err != nil {
		t.Fatal(err)
	}
	u.Budget = 99
	if err := s.PutUser(u); err != nil {
		t.Fatal(err)
	}
	got, err := s.User("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Budget != 99 {
		t.Errorf("overwrite lost: budget = %v", got.Budget)
	}
}

func TestIntermediaryRoundTrip(t *testing.T) {
	s := open(t)
	if err := s.PutIntermediary(sampleIntermediary()); err != nil {
		t.Fatal(err)
	}
	in, err := s.Intermediary("p1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Host != "p1" || len(in.Services) != 1 || in.Services[0].ID != "conv1" {
		t.Errorf("loaded intermediary = %+v", in)
	}
	hosts, err := s.Intermediaries()
	if err != nil || len(hosts) != 1 {
		t.Errorf("Intermediaries = %v %v", hosts, err)
	}
	if err := s.PutIntermediary(&profile.Intermediary{}); err == nil {
		t.Error("invalid intermediary must be rejected")
	}
}

func TestDeviceAndNetworkRoundTrip(t *testing.T) {
	s := open(t)
	if err := s.PutDevice(sampleDevice()); err != nil {
		t.Fatal(err)
	}
	d, err := s.Device("phone-1")
	if err != nil || !d.Decodes(media.VideoH263) {
		t.Errorf("device round trip: %v %v", d, err)
	}
	ids, err := s.Devices()
	if err != nil || len(ids) != 1 {
		t.Errorf("Devices = %v %v", ids, err)
	}
	if err := s.PutNetwork(sampleNetwork()); err != nil {
		t.Fatal(err)
	}
	n, err := s.Network()
	if err != nil || len(n.Links) != 2 {
		t.Errorf("network round trip: %v %v", n, err)
	}
}

func TestAssembleInvalidCombination(t *testing.T) {
	s := open(t)
	if err := s.PutUser(sampleUser()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutContent(sampleContent()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDevice(sampleDevice()); err != nil {
		t.Fatal(err)
	}
	// Missing network: assembly must fail cleanly.
	if _, err := s.Assemble("alice", "clip-1", "phone-1"); err == nil {
		t.Error("missing network must fail assembly")
	}
}

// TestCorruptProfileSentinel writes a valid profile, truncates the file
// mid-document (a torn write), and requires the typed sentinel with the
// offending path in the message.
func TestCorruptProfileSentinel(t *testing.T) {
	s := open(t)
	if err := s.PutUser(sampleUser()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Root(), "users", "alice.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.User("alice")
	if !errors.Is(err, ErrCorruptProfile) {
		t.Fatalf("err = %v, want ErrCorruptProfile", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q should name the corrupt file %s", err, path)
	}
	// The network document takes the same path.
	if err := os.WriteFile(filepath.Join(s.Root(), "network.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Network(); !errors.Is(err, ErrCorruptProfile) {
		t.Fatalf("network err = %v, want ErrCorruptProfile", err)
	}
}

// TestWriteDurableLeavesNoTemp checks the fsync'd write path: the
// document round-trips, no .tmp residue remains, and a write into a
// missing directory surfaces the typed durability error.
func TestWriteDurableLeavesNoTemp(t *testing.T) {
	s := open(t)
	if err := s.PutUser(sampleUser()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNetwork(sampleNetwork()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(s.Root(), "users"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp residue %s left behind", e.Name())
		}
	}
	if _, err := s.User("alice"); err != nil {
		t.Errorf("durable write did not round-trip: %v", err)
	}
	bad := &Store{root: filepath.Join(s.Root(), "missing")}
	if err := bad.PutUser(sampleUser()); !errors.Is(err, ErrDurability) {
		t.Errorf("err = %v, want ErrDurability", err)
	}
}
