package metrics

// BurnWindow is the windowed SLO burn-rate primitive behind the
// qos.burn_rate gauge: a fixed-size ring of below-floor observations.
// One session (or class member) observation goes in per evaluation; the
// rate out is the fraction of the most recent window that ran below its
// QoS floor. Not goroutine-safe — callers serialize (the storm
// controller under its lock, the session manager under its own).
type BurnWindow struct {
	ring  []bool
	n     int // observations in the ring (≤ len(ring))
	idx   int // next slot
	below int // below-floor observations currently in the ring
}

// NewBurnWindow returns a window over the last size observations
// (default 64 when size <= 0).
func NewBurnWindow(size int) *BurnWindow {
	if size <= 0 {
		size = 64
	}
	return &BurnWindow{ring: make([]bool, size)}
}

// Observe pushes one observation and returns the updated burn rate.
func (b *BurnWindow) Observe(belowFloor bool) float64 {
	if b == nil {
		return 0
	}
	if b.n == len(b.ring) {
		if b.ring[b.idx] {
			b.below--
		}
	} else {
		b.n++
	}
	b.ring[b.idx] = belowFloor
	if belowFloor {
		b.below++
	}
	b.idx++
	if b.idx == len(b.ring) {
		b.idx = 0
	}
	return float64(b.below) / float64(b.n)
}
