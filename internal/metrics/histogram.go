package metrics

import "math"

// SampleWindow is how many recent raw observations each histogram
// series retains for exact small-sample summaries (Window / Sample).
// Aggregate moments and bucket counts cover the full stream; only the
// raw-value window is bounded, which is what keeps a long-lived
// daemon's metric memory constant.
const SampleWindow = 1024

// DefBuckets is the default histogram bucket upper bounds. The range
// is wide (1e-3 .. 1e5) because the same default serves latencies in
// milliseconds, retry counts, and bandwidth in kbps.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000,
}

// histSeries is one bounded histogram series. Guarded by the owning
// Registry's mutex.
type histSeries struct {
	name   string
	labels string

	bounds  []float64 // upper bounds, ascending
	buckets []int64   // len(bounds)+1; last is the overflow bucket

	count      int64
	sum, sumsq float64
	min, max   float64

	window []float64 // ring of recent raw observations
	wnext  int       // next write position
	wfull  bool      // ring has wrapped
}

func newHistSeries(name, labels string, bounds []float64) *histSeries {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &histSeries{
		name:    name,
		labels:  labels,
		bounds:  bounds,
		buckets: make([]int64, len(bounds)+1),
	}
}

func (h *histSeries) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.sumsq += v * v
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i]++
	if h.window == nil {
		h.window = make([]float64, 0, 16)
	}
	if len(h.window) < SampleWindow && !h.wfull {
		h.window = append(h.window, v)
		return
	}
	h.wfull = true
	h.window[h.wnext] = v
	h.wnext++
	if h.wnext == SampleWindow {
		h.wnext = 0
	}
}

// windowCopy returns the retained raw observations, oldest first.
func (h *histSeries) windowCopy() []float64 {
	if len(h.window) == 0 {
		return nil
	}
	if !h.wfull {
		return append([]float64(nil), h.window...)
	}
	out := make([]float64, 0, len(h.window))
	out = append(out, h.window[h.wnext:]...)
	out = append(out, h.window[:h.wnext]...)
	return out
}

// summary is exact while the window still holds every observation;
// past that, count/mean/std/min/max stay exact (from the moments) and
// quantiles are interpolated from the bucket counts.
func (h *histSeries) summary() Summary {
	if h.count == 0 {
		return Summary{}
	}
	if !h.wfull {
		return Summarize(h.window)
	}
	n := float64(h.count)
	mean := h.sum / n
	std := 0.0
	if h.count > 1 {
		// Sample variance from the raw moments, clamped against
		// floating-point cancellation.
		v := (h.sumsq - n*mean*mean) / (n - 1)
		if v > 0 {
			std = math.Sqrt(v)
		}
	}
	return Summary{
		Count: int(h.count),
		Mean:  mean,
		Std:   std,
		Min:   h.min,
		Max:   h.max,
		P50:   h.bucketQuantile(0.50),
		P90:   h.bucketQuantile(0.90),
		P99:   h.bucketQuantile(0.99),
	}
}

// bucketQuantile interpolates the q-quantile from bucket counts,
// clamping the result to the observed [min, max].
func (h *histSeries) bucketQuantile(q float64) float64 {
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := h.min
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.max
}

func (h *histSeries) point() HistPoint {
	return HistPoint{
		Name:    h.name,
		Labels:  h.labels,
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Bounds:  h.bounds, // shared; bounds are never mutated
		Buckets: append([]int64(nil), h.buckets...),
	}
}
