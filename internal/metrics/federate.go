package metrics

// federate.go merges several nodes' registry snapshots into one
// Prometheus exposition — the payload behind the router's
// GET /cluster/metrics. Every scraped series reappears with a
// node="<id>" label appended; on top of that the writer derives
// cluster-level series:
//
//   - cluster.nodes_live        gauge: how many members were scraped
//   - replication.max_lag       gauge: worst follower lag across nodes
//   - storm.* / qos.* counters and gauges additionally emit one
//     aggregated (summed) series without the node label, so a single
//     query answers "how degraded is the cluster" without a PromQL sum
//
// Output is deterministic for a fixed input: series sort by
// (name, labels) and families carry one # TYPE line each, matching
// WritePrometheus.

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// NodeSnapshot pairs one member's registry snapshot with its node ID.
type NodeSnapshot struct {
	Node string           `json:"node"`
	Snap RegistrySnapshot `json:"snapshot"`
}

// aggregated reports whether a family participates in the summed
// cluster aggregate (the mass re-composition and SLO series operators
// alert on cluster-wide).
func aggregated(name string) bool {
	return strings.HasPrefix(name, "storm.") || strings.HasPrefix(name, "qos.")
}

// nodeLabel renders the label pair appended to every federated series.
func nodeLabel(node string) string {
	return `node="` + escapeLabel(node) + `"`
}

// WriteFederated renders the merged exposition of every node snapshot.
func WriteFederated(w io.Writer, nodes []NodeSnapshot) {
	type ipoint struct {
		name, labels string
		value        int64
	}
	type fpoint struct {
		name, labels string
		value        float64
	}
	sortI := func(ps []ipoint) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].name != ps[j].name {
				return ps[i].name < ps[j].name
			}
			return ps[i].labels < ps[j].labels
		})
	}
	sortF := func(ps []fpoint) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].name != ps[j].name {
				return ps[i].name < ps[j].name
			}
			return ps[i].labels < ps[j].labels
		})
	}

	var counters []ipoint
	var gauges []fpoint
	aggC := map[string]*ipoint{}
	aggG := map[string]*fpoint{}
	maxLag := 0.0
	for _, n := range nodes {
		nl := nodeLabel(n.Node)
		for _, c := range n.Snap.Counters {
			counters = append(counters, ipoint{c.Name, mergeLabels(c.Labels, nl), c.Value})
			if aggregated(c.Name) {
				key := seriesKey(c.Name, c.Labels)
				p, ok := aggC[key]
				if !ok {
					p = &ipoint{name: c.Name, labels: c.Labels}
					aggC[key] = p
				}
				p.value += c.Value
			}
		}
		for _, g := range n.Snap.Gauges {
			gauges = append(gauges, fpoint{g.Name, mergeLabels(g.Labels, nl), g.Value})
			if aggregated(g.Name) {
				key := seriesKey(g.Name, g.Labels)
				p, ok := aggG[key]
				if !ok {
					p = &fpoint{name: g.Name, labels: g.Labels}
					aggG[key] = p
				}
				p.value += g.Value
			}
		}
		for _, h := range n.Snap.Hists {
			if h.Name == SampleReplicationLag && h.Count > 0 && h.Max > maxLag {
				maxLag = h.Max
			}
		}
	}
	for _, p := range aggC {
		counters = append(counters, *p)
	}
	for _, p := range aggG {
		gauges = append(gauges, *p)
	}
	gauges = append(gauges,
		fpoint{name: "cluster.nodes_live", value: float64(len(nodes))},
		fpoint{name: "replication.max_lag", value: maxLag},
	)
	sortI(counters)
	sortF(gauges)

	lastType := ""
	typeLine := func(name, kind string) {
		if name != lastType {
			io.WriteString(w, "# TYPE "+promName(name)+" "+kind+"\n") //nolint:errcheck
			lastType = name
		}
	}
	for _, c := range counters {
		typeLine(c.name, "counter")
		io.WriteString(w, promSeries(c.name, c.labels)+" "+formatInt(c.value)+"\n") //nolint:errcheck
	}
	lastType = ""
	for _, g := range gauges {
		typeLine(g.name, "gauge")
		io.WriteString(w, promSeries(g.name, g.labels)+" "+formatFloat(g.value)+"\n") //nolint:errcheck
	}

	// Histograms federate per node only (summing fixed-bucket series
	// across nodes would misreport quantiles); cumulative buckets match
	// WritePrometheus.
	type hpoint struct {
		labels string
		HistPoint
	}
	var hists []hpoint
	for _, n := range nodes {
		nl := nodeLabel(n.Node)
		for _, h := range n.Snap.Hists {
			hists = append(hists, hpoint{labels: mergeLabels(h.Labels, nl), HistPoint: h})
		}
	}
	sort.Slice(hists, func(i, j int) bool {
		if hists[i].Name != hists[j].Name {
			return hists[i].Name < hists[j].Name
		}
		return hists[i].labels < hists[j].labels
	})
	lastType = ""
	for _, h := range hists {
		typeLine(h.Name, "histogram")
		base := promName(h.Name)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			le := mergeLabels(h.labels, `le="`+formatFloat(b)+`"`)
			io.WriteString(w, base+"_bucket{"+le+"} "+formatInt(cum)+"\n") //nolint:errcheck
		}
		cum += h.Buckets[len(h.Bounds)]
		le := mergeLabels(h.labels, `le="+Inf"`)
		io.WriteString(w, base+"_bucket{"+le+"} "+formatInt(cum)+"\n")                //nolint:errcheck
		io.WriteString(w, base+"_sum"+braced(h.labels)+" "+formatFloat(h.Sum)+"\n")   //nolint:errcheck
		io.WriteString(w, base+"_count"+braced(h.labels)+" "+formatInt(h.Count)+"\n") //nolint:errcheck
	}
}

func formatInt(v int64) string {
	return strconv.FormatInt(v, 10)
}
