package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Count != 1 || s.Mean != 7 || s.Std != 0 || s.P90 != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeUnsortedInputUntouched(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize must not mutate its input")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if math.Abs(s.P50-5) > 1e-12 {
		t.Errorf("P50 = %v, want 5", s.P50)
	}
	if math.Abs(s.P90-9) > 1e-12 {
		t.Errorf("P90 = %v, want 9", s.P90)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 2.5, 9.9, 10, -3, 42} {
		h.Observe(v)
	}
	if h.Total != 7 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Counts[0] != 3 { // 0.5, 1, clamped -3
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.9, 10, clamped 42
		t.Errorf("bin 4 = %d", h.Counts[4])
	}
	var b strings.Builder
	h.Render(&b)
	if !strings.Contains(b.String(), "#") {
		t.Error("render should draw bars")
	}
}

func TestHistogramDegenerateConfig(t *testing.T) {
	h := NewHistogram(5, 5, 0)
	h.Observe(5)
	if h.Total != 1 || len(h.Counts) != 1 {
		t.Errorf("degenerate histogram = %+v", h)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Round", "Selected", "Satisfaction")
	tb.AddRow(1, "T10", 1.0)
	tb.AddRow(15, "receiver", 0.6617)
	if tb.RowCount() != 2 {
		t.Errorf("RowCount = %d", tb.RowCount())
	}
	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	for _, want := range []string{"Round", "T10", "0.66", "receiver", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table lines = %d, want 4", len(lines))
	}
}
