package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Well-known series names recorded by the observability layer itself
// (PR 5). Histogram names end in a unit suffix; label keys are noted
// next to each name.
const (
	// HistComposeLatencyMs observes end-to-end compose request latency,
	// labeled outcome="ok|no_chain|aborted|shed|error".
	HistComposeLatencyMs = "compose.latency_ms"
	// CounterHTTPRequests counts served HTTP requests, labeled
	// code="200"... .
	CounterHTTPRequests = "http.requests"
	// HistHTTPLatencyMs observes per-request wall time, labeled
	// code="200"... .
	HistHTTPLatencyMs = "http.latency_ms"
	// CounterTracesCompleted counts finished request traces.
	CounterTracesCompleted = "trace.completed"
	// CounterTraceSpansDropped counts spans discarded because a trace
	// hit its span cap.
	CounterTraceSpansDropped = "trace.spans_dropped"
	// HistQueueWaitMs observes how long queued requests waited for an
	// admission slot (measured on the limiter's injected clock).
	HistQueueWaitMs = "admission.queue_wait_ms"
	// HistJournalAppendMs / HistJournalFsyncMs observe write-ahead log
	// append and group-commit fsync latency.
	HistJournalAppendMs = "journal.append_ms"
	HistJournalFsyncMs  = "journal.fsync_ms"
	// HistSelectRounds observes Bellman-Ford rounds per selection.
	HistSelectRounds = "compose.select_rounds"
)

// RegisterWellKnown declares every well-known series at zero so a
// fresh daemon's /metrics already lists the full schema (counters at
// 0, histograms with empty buckets) before traffic arrives.
func RegisterWellKnown(r *Registry) {
	if r == nil {
		return
	}
	for _, name := range []string{
		CounterFailovers, CounterRetries, CounterRecovered,
		CounterDegraded, CounterQuarantined,
		CounterAdmissionAdmitted, CounterAdmissionQueued,
		CounterAdmissionShedQueueFull, CounterAdmissionShedExpired,
		CounterAdmissionRateLimited, CounterCapacityRejected,
		CounterBreakerOpened, CounterBreakerHalfOpen, CounterBreakerClosed,
		CounterJournalAppends, CounterJournalSyncs, CounterJournalSnapshots,
		CounterJournalReplayed, CounterJournalTruncatedBytes,
		CounterRecoverySessions, CounterRecoveryErrors, CounterRecoveryReconciled,
		CounterHTTPRequests, CounterTracesCompleted, CounterTraceSpansDropped,
		CounterPipelineFramesIn, CounterPipelineFramesOut,
		CounterPipelineBytesOut, CounterPipelineDropped,
		CounterPipelineBatches, CounterPipelineChains,
		CounterPipelineFailures,
		CounterReplicationShipBatches, CounterReplicationShippedRecords,
		CounterReplicationShipRejected, CounterReplicationSnapshotShips,
		CounterReplicationApplied,
		CounterClusterPromotions, CounterClusterAdopted,
		CounterReevalManual, CounterReevalFault, CounterReevalStorm,
		CounterStormEvents, CounterStormClasses,
		CounterStormSessionsReplanned, CounterStormSelectCalls,
		CounterStormDegraded,
		CounterQoSBelowFloorSeconds, CounterQoSFloorBreaches,
	} {
		r.Add(name, 0)
	}
	for _, name := range []string{
		GaugeStormClassesAttached,
		GaugeQoSDegradedSessions, GaugeQoSBurnRate,
	} {
		r.SetGauge(name, 0)
	}
	for _, name := range []string{
		SampleQoSSatisfaction,
		SampleRecoverySteps, SampleRecoveryRetries, SampleReservedKbps,
		SampleRecoveryReleasedKbps,
		SampleReplicationLag, SampleClusterRecoveryMs,
		HistComposeLatencyMs, HistHTTPLatencyMs, HistQueueWaitMs,
		HistJournalAppendMs, HistJournalFsyncMs, HistSelectRounds,
		SamplePipelineBatchOccupancy, SamplePipelineQueueDepth,
		SampleStormQueueDepth, SampleStormRecoveryMs,
		SampleStormMembersPerClass,
	} {
		r.DeclareHist(name)
	}
}

// promName sanitizes a series name into the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; the dots in our dotted names
// become underscores.
func promName(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func promSeries(name, labels string) string {
	if labels == "" {
		return promName(name)
	}
	return promName(name) + "{" + labels + "}"
}

// mergeLabels appends extra to an already-rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus renders every series in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic: series
// are sorted by name then label set, and a # TYPE line precedes each
// metric family exactly once.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	lastType := ""
	typeLine := func(name, kind string) {
		if name != lastType {
			fmt.Fprintf(w, "# TYPE %s %s\n", promName(name), kind)
			lastType = name
		}
	}
	for _, c := range snap.Counters {
		typeLine(c.Name, "counter")
		fmt.Fprintf(w, "%s %d\n", promSeries(c.Name, c.Labels), c.Value)
	}
	lastType = ""
	for _, g := range snap.Gauges {
		typeLine(g.Name, "gauge")
		fmt.Fprintf(w, "%s %s\n", promSeries(g.Name, g.Labels), formatFloat(g.Value))
	}
	lastType = ""
	for _, h := range snap.Hists {
		typeLine(h.Name, "histogram")
		base := promName(h.Name)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			le := mergeLabels(h.Labels, `le="`+formatFloat(b)+`"`)
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, le, cum)
		}
		cum += h.Buckets[len(h.Bounds)]
		le := mergeLabels(h.Labels, `le="+Inf"`)
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, le, cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", base, braced(h.Labels), formatFloat(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", base, braced(h.Labels), h.Count)
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format; mount it at
// GET /metrics. With ?format=json it serves the structured
// RegistrySnapshot instead — the machine-readable scrape payload the
// cluster federation endpoint and the experiment harness consume.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry's snapshot as a named expvar
// (JSON under /debug/vars alongside the runtime's memstats). Publishing
// the same name twice is a no-op instead of expvar's panic, so tests
// and restart-in-process callers are safe.
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] || expvar.Get(name) != nil {
		expvarPublished[name] = true
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
