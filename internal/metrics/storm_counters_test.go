package metrics

// The storm.* counters are written from concurrent storm workers while
// /metrics and /healthz readers snapshot them; this is the -race proof
// plus the well-known registration check behind satellite wiring.

import (
	"strings"
	"sync"
	"testing"
)

func TestStormCountersRegisteredWellKnown(t *testing.T) {
	r := NewRegistry()
	RegisterWellKnown(r)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, name := range []string{
		CounterStormEvents, CounterStormClasses,
		CounterStormSessionsReplanned, CounterStormSelectCalls,
		CounterStormDegraded,
		GaugeStormClassesAttached, SampleStormMembersPerClass,
	} {
		// Prometheus names swap dots for underscores.
		want := strings.ReplaceAll(name, ".", "_")
		if !strings.Contains(out, want) {
			t.Errorf("well-known registration missing %s (%s)", name, want)
		}
	}
}

func TestStormCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	// Writers: the shape of a multi-worker storm fan-out.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(CounterStormSelectCalls)
				c.Add(CounterStormSessionsReplanned, 3)
				c.Observe(SampleStormQueueDepth, float64(i%5))
			}
		}()
	}
	// Readers: /metrics scraping mid-storm.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = c.Get(CounterStormSelectCalls)
				_ = c.SampleSummary(SampleStormQueueDepth)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(CounterStormSelectCalls); got != 8000 {
		t.Fatalf("storm.select_calls = %d, want 8000", got)
	}
	if got := c.Get(CounterStormSessionsReplanned); got != 24000 {
		t.Fatalf("storm.sessions_replanned = %d, want 24000", got)
	}
	if s := c.SampleSummary(SampleStormQueueDepth); s.Count != 8000 {
		t.Fatalf("storm.queue_depth samples = %d, want 8000", s.Count)
	}
}
