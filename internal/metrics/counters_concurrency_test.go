package metrics

import (
	"sync"
	"testing"
)

// TestCountersConcurrentWriters hammers one Counters from many
// goroutines — the admission layers all share a sink under load — and
// verifies no increment is lost. Run under -race this also proves the
// sink is data-race free.
func TestCountersConcurrentWriters(t *testing.T) {
	c := NewCounters()
	const (
		writers = 16
		perG    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc("admission.admitted")
				c.Add("admission.shed_queue_full", 2)
				c.Observe("admission.reserved_kbps", float64(i))
			}
		}()
	}
	// Concurrent readers must not disturb the totals.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = c.Snapshot()
			_ = c.Get("admission.admitted")
			_ = c.SampleSummary("admission.reserved_kbps")
		}
	}()
	wg.Wait()
	<-done

	if got := c.Get("admission.admitted"); got != writers*perG {
		t.Errorf("admitted = %d, want %d", got, writers*perG)
	}
	if got := c.Get("admission.shed_queue_full"); got != 2*writers*perG {
		t.Errorf("shed = %d, want %d", got, 2*writers*perG)
	}
	// Raw retention is bounded at SampleWindow, but the histogram's
	// aggregate count still covers every observation.
	if got := len(c.Sample("admission.reserved_kbps")); got != SampleWindow {
		t.Errorf("retained samples = %d, want %d (bounded window)", got, SampleWindow)
	}
	if got := c.SampleSummary("admission.reserved_kbps").Count; got != writers*perG {
		t.Errorf("summary count = %d, want %d", got, writers*perG)
	}
	snap := c.Snapshot()
	if snap["admission.admitted"] != writers*perG {
		t.Errorf("snapshot admitted = %d", snap["admission.admitted"])
	}
}

// TestNilCountersSafeConcurrently verifies the nil-sink contract under
// concurrency: every admission component treats a nil *Counters as a
// no-op.
func TestNilCountersSafeConcurrently(t *testing.T) {
	var c *Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc("x")
				c.Add("y", 3)
				c.Observe("z", 1.5)
			}
		}()
	}
	wg.Wait()
	if c.Get("x") != 0 || c.Snapshot() != nil {
		t.Error("nil sink must read as empty")
	}
}
