package metrics

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Label is one key="value" pair attached to a metric series. Series
// with the same name but different label sets are independent.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry is the process-wide metric store: monotonic counters,
// gauges, and fixed-bucket histograms, all with optional labels. All
// state is bounded — histograms keep aggregate moments, bucket counts,
// and a fixed window of recent raw observations, never the full sample
// stream — so a Registry is safe to feed from a long-lived daemon. A
// nil *Registry is a valid no-op sink.
//
// Expose a Registry over HTTP with (*Registry).Handler (Prometheus
// text format) and PublishExpvar (expvar JSON).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterSeries
	gauges   map[string]*gaugeSeries
	hists    map[string]*histSeries
}

type counterSeries struct {
	name   string
	labels string // canonical rendered label set, "" when unlabeled
	value  int64
}

type gaugeSeries struct {
	name   string
	labels string
	value  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*counterSeries),
		gauges:   make(map[string]*gaugeSeries),
		hists:    make(map[string]*histSeries),
	}
}

// labelKey renders labels canonically (sorted by key) for use both as
// a map-key suffix and in exposition: `k1="v1",k2="v2"`.
func labelKey(labels []Label) string {
	switch len(labels) {
	case 0:
		return ""
	case 1:
		return labels[0].Key + `="` + escapeLabel(labels[0].Value) + `"`
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Inc increments a counter series by one.
func (r *Registry) Inc(name string, labels ...Label) { r.Add(name, 1, labels...) }

// Add increments a counter series by n, creating it at zero first if
// needed (so Add(name, 0) declares a series for exposition).
func (r *Registry) Add(name string, n int64, labels ...Label) {
	if r == nil {
		return
	}
	lk := labelKey(labels)
	key := seriesKey(name, lk)
	r.mu.Lock()
	s, ok := r.counters[key]
	if !ok {
		s = &counterSeries{name: name, labels: lk}
		r.counters[key] = s
	}
	s.value += n
	r.mu.Unlock()
}

// CounterValue reads a counter series (0 for unknown series).
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if r == nil {
		return 0
	}
	key := seriesKey(name, labelKey(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.counters[key]; ok {
		return s.value
	}
	return 0
}

// SetGauge sets a gauge series to v.
func (r *Registry) SetGauge(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	lk := labelKey(labels)
	key := seriesKey(name, lk)
	r.mu.Lock()
	s, ok := r.gauges[key]
	if !ok {
		s = &gaugeSeries{name: name, labels: lk}
		r.gauges[key] = s
	}
	s.value = v
	r.mu.Unlock()
}

// AddGauge adjusts a gauge series by delta (useful for in-flight
// style gauges).
func (r *Registry) AddGauge(name string, delta float64, labels ...Label) {
	if r == nil {
		return
	}
	lk := labelKey(labels)
	key := seriesKey(name, lk)
	r.mu.Lock()
	s, ok := r.gauges[key]
	if !ok {
		s = &gaugeSeries{name: name, labels: lk}
		r.gauges[key] = s
	}
	s.value += delta
	r.mu.Unlock()
}

// GaugeValue reads a gauge series (0 for unknown series).
func (r *Registry) GaugeValue(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	key := seriesKey(name, labelKey(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.gauges[key]; ok {
		return s.value
	}
	return 0
}

// Observe records v into a histogram series, creating it with the
// default bucket bounds if needed.
func (r *Registry) Observe(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	lk := labelKey(labels)
	key := seriesKey(name, lk)
	r.mu.Lock()
	h, ok := r.hists[key]
	if !ok {
		h = newHistSeries(name, lk, nil)
		r.hists[key] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// ObserveDuration records d into a histogram series in milliseconds.
func (r *Registry) ObserveDuration(name string, d time.Duration, labels ...Label) {
	r.Observe(name, float64(d)/float64(time.Millisecond), labels...)
}

// DeclareHist creates an empty histogram series so it appears in
// exposition before its first observation.
func (r *Registry) DeclareHist(name string, labels ...Label) {
	if r == nil {
		return
	}
	lk := labelKey(labels)
	key := seriesKey(name, lk)
	r.mu.Lock()
	if _, ok := r.hists[key]; !ok {
		r.hists[key] = newHistSeries(name, lk, nil)
	}
	r.mu.Unlock()
}

// Window returns a copy of the most recent raw observations of a
// histogram series, oldest first — at most SampleWindow values. It
// returns nil for unknown series.
func (r *Registry) Window(name string, labels ...Label) []float64 {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labelKey(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h.windowCopy()
	}
	return nil
}

// SampleSummary summarizes a histogram series. While the series holds
// no more than SampleWindow observations the summary is exact; past
// that, count/mean/std/min/max remain exact and quantiles are
// interpolated from the bucket counts.
func (r *Registry) SampleSummary(name string, labels ...Label) Summary {
	if r == nil {
		return Summary{}
	}
	key := seriesKey(name, labelKey(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h.summary()
	}
	return Summary{}
}

// summaryByKey summarizes a histogram by its rendered series key
// (`name` or `name{labels}`), for callers iterating a Snapshot.
func (r *Registry) summaryByKey(key string) Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h.summary()
	}
	return Summary{}
}

// CounterPoint, GaugePoint, and HistPoint are one series each inside a
// Snapshot. Labels is the canonical rendered label set ("" when
// unlabeled).
type CounterPoint struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

type GaugePoint struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

type HistPoint struct {
	Name    string    `json:"name"`
	Labels  string    `json:"labels,omitempty"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // non-cumulative; len(Bounds)+1 with the overflow bucket last
}

// RegistrySnapshot is a point-in-time copy of every series, taken
// atomically under one lock acquisition and sorted by (name, labels).
type RegistrySnapshot struct {
	Counters []CounterPoint `json:"counters"`
	Gauges   []GaugePoint   `json:"gauges,omitempty"`
	Hists    []HistPoint    `json:"histograms,omitempty"`
}

// Snapshot captures every series atomically.
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	snap.Counters = make([]CounterPoint, 0, len(r.counters))
	for _, s := range r.counters {
		snap.Counters = append(snap.Counters, CounterPoint{Name: s.name, Labels: s.labels, Value: s.value})
	}
	snap.Gauges = make([]GaugePoint, 0, len(r.gauges))
	for _, s := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: s.name, Labels: s.labels, Value: s.value})
	}
	snap.Hists = make([]HistPoint, 0, len(r.hists))
	for _, h := range r.hists {
		snap.Hists = append(snap.Hists, h.point())
	}
	r.mu.Unlock()
	sortPoints := func(ni, li, nj, lj string) bool {
		if ni != nj {
			return ni < nj
		}
		return li < lj
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		return sortPoints(snap.Counters[i].Name, snap.Counters[i].Labels, snap.Counters[j].Name, snap.Counters[j].Labels)
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return sortPoints(snap.Gauges[i].Name, snap.Gauges[i].Labels, snap.Gauges[j].Name, snap.Gauges[j].Labels)
	})
	sort.Slice(snap.Hists, func(i, j int) bool {
		return sortPoints(snap.Hists[i].Name, snap.Hists[i].Labels, snap.Hists[j].Name, snap.Hists[j].Labels)
	})
	return snap
}

// CounterMap returns every counter value keyed by its rendered series
// key (`name` or `name{labels}`).
func (r *Registry) CounterMap() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for key, s := range r.counters {
		out[key] = s.value
	}
	return out
}
