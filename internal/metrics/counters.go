package metrics

import (
	"fmt"
	"io"
)

// Counters is the concurrency-safe sink instrumented code reports
// through — the reliability bookkeeping of the failover, admission,
// and durability paths. It is a thin facade over a Registry: counts
// go to counter series and Observe feeds bounded histogram series, so
// a long-lived daemon's metric memory stays constant (the old
// implementation appended every observation to a slice forever). A
// nil *Counters is a valid no-op sink, so instrumented code never
// needs to guard its calls.
type Counters struct {
	r *Registry
	// mirror, when non-nil, receives a copy of every write. Reads
	// always come from r, so a private sink stays deterministic while
	// the process-wide registry still sees the series (see Fanout).
	mirror *Counters
}

// Well-known counter and sample names recorded by the session failover
// path. Samples (Observe) use the same namespace as counters (Inc/Add).
const (
	// CounterFailovers counts entries into the failover loop.
	CounterFailovers = "failover.entered"
	// CounterRetries counts re-composition retry attempts beyond the
	// first within failover loops.
	CounterRetries = "failover.retries"
	// CounterRecovered counts failovers that ended on a live chain.
	CounterRecovered = "failover.recovered"
	// CounterDegraded counts sessions that entered the degraded state
	// (no chain cleared the satisfaction floor, or none existed at all).
	CounterDegraded = "failover.degraded"
	// CounterQuarantined counts host/service quarantine admissions.
	CounterQuarantined = "failover.quarantined"
	// SampleRecoverySteps observes the virtual-time steps a session spent
	// without a healthy chain before recovering.
	SampleRecoverySteps = "failover.recovery_steps"
	// SampleRecoveryRetries observes how many attempts a successful
	// failover needed.
	SampleRecoveryRetries = "failover.recovery_retries"
	// CounterReevalPrefix prefixes the per-reason re-evaluation counters
	// below; the reason token ("manual", "fault", "storm") is appended,
	// so storm-driven re-plans are distinguishable from per-session
	// failover in traces and dashboards.
	CounterReevalPrefix = "failover.reevaluate_"
	// CounterReevalManual counts client- or driver-requested
	// re-evaluations.
	CounterReevalManual = CounterReevalPrefix + "manual"
	// CounterReevalFault counts re-evaluations forced by fault handling
	// (post-recovery reconciliation, dead-link sweeps).
	CounterReevalFault = CounterReevalPrefix + "fault"
	// CounterReevalStorm counts re-evaluations driven by the mass
	// re-composition storm controller.
	CounterReevalStorm = CounterReevalPrefix + "storm"
)

// Well-known counter and sample names recorded by the re-composition
// storm controller (internal/storm).
const (
	// CounterStormEvents counts storms executed (one per backbone event
	// absorbed).
	CounterStormEvents = "storm.events"
	// CounterStormClasses counts equivalence classes re-planned across
	// all storms.
	CounterStormClasses = "storm.classes"
	// CounterStormSessionsReplanned counts member sessions whose chain
	// hold was swapped by a storm fan-out.
	CounterStormSessionsReplanned = "storm.sessions_replanned"
	// CounterStormSelectCalls counts Select invocations storms spent —
	// the numerator of the Select-calls-per-affected-session ratio that
	// proves class planning amortizes.
	CounterStormSelectCalls = "storm.select_calls"
	// CounterStormDegraded counts member sessions left below their QoS
	// floor after a storm (no above-floor chain existed for their class).
	CounterStormDegraded = "storm.sessions_degraded"
	// SampleStormQueueDepth observes the storm admission lane's queue
	// depth at each class admission — how backed up a storm in flight is.
	SampleStormQueueDepth = "storm.queue_depth"
	// SampleStormRecoveryMs observes wall-clock milliseconds from storm
	// start to the last fan-out.
	SampleStormRecoveryMs = "storm.recovery_ms"
	// GaugeStormClassesAttached gauges how many equivalence classes
	// currently have at least one attached member session.
	GaugeStormClassesAttached = "storm.classes_attached"
	// SampleStormMembersPerClass observes a class's member count at each
	// attach — the class-skew distribution operators read off /metrics.
	SampleStormMembersPerClass = "storm.members_per_class"
)

// Well-known counter, gauge, and sample names recorded by the QoS SLO
// tracker: the continuous per-session satisfaction telemetry behind the
// paper's above-floor promise. Every write is symmetric between live
// execution and journal replay, so a promoted replica's registry
// reports the same SLO state its primary accumulated.
const (
	// CounterQoSBelowFloorSeconds accumulates one virtual second per
	// below-floor observation of a session — the raw "time below floor"
	// an SLO burn is computed from.
	CounterQoSBelowFloorSeconds = "qos.below_floor_seconds"
	// CounterQoSFloorBreaches counts healthy→below-floor transitions
	// (degradation episodes, not time spent degraded).
	CounterQoSFloorBreaches = "qos.floor_breaches"
	// GaugeQoSDegradedSessions gauges how many sessions currently sit
	// below their satisfaction floor.
	GaugeQoSDegradedSessions = "qos.degraded_sessions"
	// GaugeQoSBurnRate gauges the below-floor fraction of the last
	// qosBurnWindow satisfaction observations — a windowed burn rate
	// that reacts faster than the lifetime counters.
	GaugeQoSBurnRate = "qos.burn_rate"
	// SampleQoSSatisfaction observes every session satisfaction value
	// recorded at a composition, re-plan, or storm fan-out.
	SampleQoSSatisfaction = "qos.satisfaction"
)

// Well-known counter and sample names recorded by the admission layer
// (internal/admission and the bandwidth-reserving session path).
const (
	// CounterAdmissionAdmitted counts requests that obtained a
	// concurrency slot (directly or after queueing).
	CounterAdmissionAdmitted = "admission.admitted"
	// CounterAdmissionQueued counts requests that had to wait in the
	// limiter's FIFO queue before a decision.
	CounterAdmissionQueued = "admission.queued"
	// CounterAdmissionShedQueueFull counts requests shed on arrival
	// because the wait queue was full.
	CounterAdmissionShedQueueFull = "admission.shed_queue_full"
	// CounterAdmissionShedExpired counts requests shed because their
	// deadline expired (or their caller gave up) while queued.
	CounterAdmissionShedExpired = "admission.shed_deadline"
	// CounterAdmissionRateLimited counts requests refused by a
	// client's token bucket.
	CounterAdmissionRateLimited = "admission.rate_limited"
	// CounterCapacityRejected counts compositions refused before
	// activation because their chain would oversubscribe reserved
	// overlay bandwidth.
	CounterCapacityRejected = "admission.capacity_rejected"
	// CounterBreakerOpened/HalfOpen/Closed count circuit breaker state
	// transitions.
	CounterBreakerOpened   = "admission.breaker_opened"
	CounterBreakerHalfOpen = "admission.breaker_half_open"
	CounterBreakerClosed   = "admission.breaker_closed"
	// SampleReservedKbps observes the per-link bandwidth each admitted
	// chain reserved.
	SampleReservedKbps = "admission.reserved_kbps"
)

// Well-known counter names recorded by the durability layer
// (internal/journal and the persistent session manager's recovery path).
const (
	// CounterJournalAppends counts records appended to the write-ahead
	// journal.
	CounterJournalAppends = "journal.appends"
	// CounterJournalSyncs counts group-commit fsyncs (one per batch of
	// appends, not one per record).
	CounterJournalSyncs = "journal.syncs"
	// CounterJournalSnapshots counts compacting snapshots published.
	CounterJournalSnapshots = "journal.snapshots"
	// CounterJournalReplayed counts journal records replayed at startup.
	CounterJournalReplayed = "journal.replayed"
	// CounterJournalTruncatedBytes accumulates torn-tail bytes recovery
	// had to truncate.
	CounterJournalTruncatedBytes = "journal.truncated_bytes"
	// CounterRecoverySessions counts sessions rebuilt from the snapshot
	// and journal at startup.
	CounterRecoverySessions = "recovery.sessions"
	// CounterRecoveryErrors counts journaled events that failed to
	// replay (skipped, with the session state left at its last good
	// point).
	CounterRecoveryErrors = "recovery.errors"
	// CounterRecoveryReconciled counts recovered sessions whose chain or
	// bandwidth holds no longer matched the live overlay and were pushed
	// through failover re-composition.
	CounterRecoveryReconciled = "recovery.reconciled"
	// SampleRecoveryReleasedKbps observes bandwidth released during
	// post-recovery reconciliation (holds whose links died).
	SampleRecoveryReleasedKbps = "recovery.released_kbps"
)

// Well-known counter and sample names recorded by the replicated
// composition tier (internal/cluster): WAL shipping between replicas
// and node-loss failover.
const (
	// CounterReplicationShipBatches counts ship batches a primary sent
	// that its follower verified and acked.
	CounterReplicationShipBatches = "replication.ship_batches"
	// CounterReplicationShippedRecords counts journal records shipped
	// and acked.
	CounterReplicationShippedRecords = "replication.shipped_records"
	// CounterReplicationShipRejected counts batches a follower rejected
	// (chain mismatch, offset mismatch, or a fenced source).
	CounterReplicationShipRejected = "replication.ship_rejected"
	// CounterReplicationSnapshotShips counts catch-ups that fell back to
	// shipping a full snapshot because the suffix was compacted away.
	CounterReplicationSnapshotShips = "replication.snapshot_ships"
	// CounterReplicationApplied counts replicated records a follower
	// appended and applied to its replica state machine.
	CounterReplicationApplied = "replication.applied_records"
	// SampleReplicationLag observes the primary's view of its follower's
	// lag (records appended locally but not yet acked) at each ship.
	SampleReplicationLag = "replication.lag_records"
	// CounterClusterPromotions counts followers promoted after a node's
	// membership lease expired.
	CounterClusterPromotions = "cluster.promotions"
	// CounterClusterAdopted counts sessions adopted by promoted
	// followers.
	CounterClusterAdopted = "cluster.sessions_adopted"
	// SampleClusterRecoveryMs observes wall-clock milliseconds from
	// detecting a dead node to its sessions being served by the
	// follower.
	SampleClusterRecoveryMs = "cluster.recovery_ms"
)

// Well-known counter and sample names recorded by the data plane
// (internal/pipeline's batched streaming executor). Per-run totals are
// folded in once when a chain finishes, so the per-frame hot path never
// touches the sink.
const (
	// CounterPipelineFramesIn counts source frames fed into chains.
	CounterPipelineFramesIn = "pipeline.frames_in"
	// CounterPipelineFramesOut counts frames delivered to receivers.
	CounterPipelineFramesOut = "pipeline.frames_out"
	// CounterPipelineBytesOut accumulates delivered payload bytes.
	CounterPipelineBytesOut = "pipeline.bytes_out"
	// CounterPipelineDropped counts frames dropped by any chain element
	// (shaping decimation, link loss draws, token-bucket overflow).
	CounterPipelineDropped = "pipeline.frames_dropped"
	// CounterPipelineBatches counts delivered frame batches.
	CounterPipelineBatches = "pipeline.batches"
	// CounterPipelineChains counts chain runs that finished (drained,
	// failed, or canceled).
	CounterPipelineChains = "pipeline.chains"
	// CounterPipelineFailures counts chain runs that ended in a typed
	// stage failure.
	CounterPipelineFailures = "pipeline.stage_failures"
	// SamplePipelineBatchOccupancy observes the mean delivered-batch
	// fill fraction of each finished run (1.0 = every batch full).
	SamplePipelineBatchOccupancy = "pipeline.batch_occupancy"
	// SamplePipelineQueueDepth observes the executor's run-queue depth
	// each time a worker picks up a chain.
	SamplePipelineQueueDepth = "pipeline.queue_depth"
)

// NewCounters returns an empty counter set backed by its own private
// registry.
func NewCounters() *Counters {
	return &Counters{r: NewRegistry()}
}

// CountersOn returns a Counters facade that records into an existing
// registry, so legacy *Counters call sites and registry-native code
// share one store. A nil registry yields a nil (no-op) sink.
func CountersOn(r *Registry) *Counters {
	if r == nil {
		return nil
	}
	return &Counters{r: r}
}

// Fanout returns a sink that writes through to both primary and
// mirror but reads (Get/Sample/Snapshot/Render) only from primary.
// The session manager uses this to keep its per-session counters
// byte-deterministic for crash-recovery fingerprints while the same
// series still reach the daemon's process-wide registry.
func Fanout(primary, mirror *Counters) *Counters {
	if primary == nil {
		return mirror
	}
	if mirror == nil {
		return primary
	}
	return &Counters{r: primary.r, mirror: mirror}
}

// Registry exposes the backing registry (nil for a nil sink).
func (c *Counters) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.r
}

// Inc increments a named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add increments a named counter by n.
func (c *Counters) Add(name string, n int64) {
	if c == nil {
		return
	}
	c.r.Add(name, n)
	c.mirror.Add(name, n)
}

// SetGauge sets a named gauge to v.
func (c *Counters) SetGauge(name string, v float64) {
	if c == nil {
		return
	}
	c.r.SetGauge(name, v)
	c.mirror.SetGauge(name, v)
}

// Gauge returns a gauge's value (0 for unknown names or a nil receiver).
func (c *Counters) Gauge(name string) float64 {
	if c == nil {
		return 0
	}
	return c.r.GaugeValue(name)
}

// Get returns a counter's value (0 for unknown names or a nil receiver).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	return c.r.CounterValue(name)
}

// Observe records a value into a named histogram series. Unlike the
// pre-registry implementation this is bounded: aggregate stats cover
// every observation, but only the most recent SampleWindow raw values
// are retained.
func (c *Counters) Observe(name string, v float64) {
	if c == nil {
		return
	}
	c.r.Observe(name, v)
	c.mirror.Observe(name, v)
}

// Sample returns a copy of the retained raw observations of a series,
// oldest first — at most SampleWindow values (see Observe).
func (c *Counters) Sample(name string) []float64 {
	if c == nil {
		return nil
	}
	return c.r.Window(name)
}

// SampleSummary summarizes a named series. Count, mean, std, min, and
// max are exact over the full stream; quantiles are exact up to
// SampleWindow observations and bucket-interpolated beyond.
func (c *Counters) SampleSummary(name string) Summary {
	if c == nil {
		return Summary{}
	}
	return c.r.SampleSummary(name)
}

// Snapshot returns every counter value, keyed by rendered series name.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	return c.r.CounterMap()
}

// Render writes the counters (sorted by name) and one summary line per
// histogram series.
func (c *Counters) Render(w io.Writer) {
	if c == nil {
		return
	}
	// Snapshot is already sorted by (name, labels).
	snap := c.r.Snapshot()
	for _, p := range snap.Counters {
		fmt.Fprintf(w, "%-28s %d\n", seriesKey(p.Name, p.Labels), p.Value)
	}
	for _, h := range snap.Hists {
		s := c.r.summaryByKey(seriesKey(h.Name, h.Labels))
		fmt.Fprintf(w, "%-28s n=%d mean=%.2f p50=%.2f max=%.2f\n",
			seriesKey(h.Name, h.Labels), s.Count, s.Mean, s.P50, s.Max)
	}
}
