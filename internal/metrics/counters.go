package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Counters is a concurrency-safe set of named monotonic counters and
// observed samples — the reliability bookkeeping the failover path
// reports through (failovers, retries, degraded sessions, time to
// recover). A nil *Counters is a valid no-op sink, so instrumented code
// never needs to guard its calls.
type Counters struct {
	mu      sync.Mutex
	counts  map[string]int64
	samples map[string][]float64
}

// Well-known counter and sample names recorded by the session failover
// path. Samples (Observe) use the same namespace as counters (Inc/Add).
const (
	// CounterFailovers counts entries into the failover loop.
	CounterFailovers = "failover.entered"
	// CounterRetries counts re-composition retry attempts beyond the
	// first within failover loops.
	CounterRetries = "failover.retries"
	// CounterRecovered counts failovers that ended on a live chain.
	CounterRecovered = "failover.recovered"
	// CounterDegraded counts sessions that entered the degraded state
	// (no chain cleared the satisfaction floor, or none existed at all).
	CounterDegraded = "failover.degraded"
	// CounterQuarantined counts host/service quarantine admissions.
	CounterQuarantined = "failover.quarantined"
	// SampleRecoverySteps observes the virtual-time steps a session spent
	// without a healthy chain before recovering.
	SampleRecoverySteps = "failover.recovery_steps"
	// SampleRecoveryRetries observes how many attempts a successful
	// failover needed.
	SampleRecoveryRetries = "failover.recovery_retries"
)

// Well-known counter and sample names recorded by the admission layer
// (internal/admission and the bandwidth-reserving session path).
const (
	// CounterAdmissionAdmitted counts requests that obtained a
	// concurrency slot (directly or after queueing).
	CounterAdmissionAdmitted = "admission.admitted"
	// CounterAdmissionQueued counts requests that had to wait in the
	// limiter's FIFO queue before a decision.
	CounterAdmissionQueued = "admission.queued"
	// CounterAdmissionShedQueueFull counts requests shed on arrival
	// because the wait queue was full.
	CounterAdmissionShedQueueFull = "admission.shed_queue_full"
	// CounterAdmissionShedExpired counts requests shed because their
	// deadline expired (or their caller gave up) while queued.
	CounterAdmissionShedExpired = "admission.shed_deadline"
	// CounterAdmissionRateLimited counts requests refused by a
	// client's token bucket.
	CounterAdmissionRateLimited = "admission.rate_limited"
	// CounterCapacityRejected counts compositions refused before
	// activation because their chain would oversubscribe reserved
	// overlay bandwidth.
	CounterCapacityRejected = "admission.capacity_rejected"
	// CounterBreakerOpened/HalfOpen/Closed count circuit breaker state
	// transitions.
	CounterBreakerOpened   = "admission.breaker_opened"
	CounterBreakerHalfOpen = "admission.breaker_half_open"
	CounterBreakerClosed   = "admission.breaker_closed"
	// SampleReservedKbps observes the per-link bandwidth each admitted
	// chain reserved.
	SampleReservedKbps = "admission.reserved_kbps"
)

// Well-known counter names recorded by the durability layer
// (internal/journal and the persistent session manager's recovery path).
const (
	// CounterJournalAppends counts records appended to the write-ahead
	// journal.
	CounterJournalAppends = "journal.appends"
	// CounterJournalSyncs counts group-commit fsyncs (one per batch of
	// appends, not one per record).
	CounterJournalSyncs = "journal.syncs"
	// CounterJournalSnapshots counts compacting snapshots published.
	CounterJournalSnapshots = "journal.snapshots"
	// CounterJournalReplayed counts journal records replayed at startup.
	CounterJournalReplayed = "journal.replayed"
	// CounterJournalTruncatedBytes accumulates torn-tail bytes recovery
	// had to truncate.
	CounterJournalTruncatedBytes = "journal.truncated_bytes"
	// CounterRecoverySessions counts sessions rebuilt from the snapshot
	// and journal at startup.
	CounterRecoverySessions = "recovery.sessions"
	// CounterRecoveryErrors counts journaled events that failed to
	// replay (skipped, with the session state left at its last good
	// point).
	CounterRecoveryErrors = "recovery.errors"
	// CounterRecoveryReconciled counts recovered sessions whose chain or
	// bandwidth holds no longer matched the live overlay and were pushed
	// through failover re-composition.
	CounterRecoveryReconciled = "recovery.reconciled"
	// SampleRecoveryReleasedKbps observes bandwidth released during
	// post-recovery reconciliation (holds whose links died).
	SampleRecoveryReleasedKbps = "recovery.released_kbps"
)

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{
		counts:  make(map[string]int64),
		samples: make(map[string][]float64),
	}
}

// Inc increments a named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add increments a named counter by n.
func (c *Counters) Add(name string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counts[name] += n
	c.mu.Unlock()
}

// Get returns a counter's value (0 for unknown names or a nil receiver).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Observe appends a value to a named sample series.
func (c *Counters) Observe(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.samples[name] = append(c.samples[name], v)
	c.mu.Unlock()
}

// Sample returns a copy of a named sample series.
func (c *Counters) Sample(name string) []float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.samples[name]...)
}

// SampleSummary summarizes a named sample series.
func (c *Counters) SampleSummary(name string) Summary {
	return Summarize(c.Sample(name))
}

// Snapshot returns every counter value, keyed by name.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Render writes the counters (sorted by name) and one summary line per
// sample series.
func (c *Counters) Render(w io.Writer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.counts))
	for k := range c.counts {
		names = append(names, k)
	}
	snames := make([]string, 0, len(c.samples))
	for k := range c.samples {
		snames = append(snames, k)
	}
	c.mu.Unlock()
	sort.Strings(names)
	sort.Strings(snames)
	for _, name := range names {
		fmt.Fprintf(w, "%-28s %d\n", name, c.Get(name))
	}
	for _, name := range snames {
		s := c.SampleSummary(name)
		fmt.Fprintf(w, "%-28s n=%d mean=%.2f p50=%.2f max=%.2f\n",
			name, s.Count, s.Mean, s.P50, s.Max)
	}
}
