package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Inc(CounterFailovers)
	c.Add(CounterRetries, 3)
	if c.Get(CounterFailovers) != 1 || c.Get(CounterRetries) != 3 {
		t.Errorf("counts = %v", c.Snapshot())
	}
	if c.Get("unknown") != 0 {
		t.Error("unknown counter must read 0")
	}
	c.Observe(SampleRecoverySteps, 2)
	c.Observe(SampleRecoverySteps, 4)
	s := c.SampleSummary(SampleRecoverySteps)
	if s.Count != 2 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Inc("x") // must not panic
	c.Observe("y", 1)
	if c.Get("x") != 0 || c.Sample("y") != nil || c.Snapshot() != nil {
		t.Error("nil counters must be inert")
	}
	var sb strings.Builder
	c.Render(&sb)
	if sb.Len() != 0 {
		t.Error("nil render must emit nothing")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc("n")
				c.Observe("s", float64(j))
			}
		}()
	}
	wg.Wait()
	if c.Get("n") != 800 {
		t.Errorf("n = %d, want 800", c.Get("n"))
	}
	if len(c.Sample("s")) != 800 {
		t.Errorf("samples = %d, want 800", len(c.Sample("s")))
	}
}

func TestCountersRender(t *testing.T) {
	c := NewCounters()
	c.Inc(CounterDegraded)
	c.Observe(SampleRecoverySteps, 5)
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, CounterDegraded) || !strings.Contains(out, "n=1") {
		t.Errorf("render output:\n%s", out)
	}
}
