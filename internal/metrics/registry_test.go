package metrics

import (
	"bufio"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Inc("a.total")
	r.Add("a.total", 4)
	if got := r.CounterValue("a.total"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.SetGauge("a.gauge", 2.5)
	r.AddGauge("a.gauge", -0.5)
	if got := r.GaugeValue("a.gauge"); got != 2.0 {
		t.Errorf("gauge = %g, want 2", got)
	}
	if r.CounterValue("unknown") != 0 || r.GaugeValue("unknown") != 0 {
		t.Error("unknown series must read 0")
	}
}

func TestRegistryLabelsAreIndependentSeries(t *testing.T) {
	r := NewRegistry()
	r.Inc("http.requests", L("code", "200"))
	r.Inc("http.requests", L("code", "200"))
	r.Inc("http.requests", L("code", "503"))
	r.Inc("http.requests")
	if got := r.CounterValue("http.requests", L("code", "200")); got != 2 {
		t.Errorf("code=200 = %d, want 2", got)
	}
	if got := r.CounterValue("http.requests", L("code", "503")); got != 1 {
		t.Errorf("code=503 = %d, want 1", got)
	}
	if got := r.CounterValue("http.requests"); got != 1 {
		t.Errorf("unlabeled = %d, want 1", got)
	}
	// Label order must not matter.
	r.Inc("x", L("b", "2"), L("a", "1"))
	r.Inc("x", L("a", "1"), L("b", "2"))
	if got := r.CounterValue("x", L("a", "1"), L("b", "2")); got != 2 {
		t.Errorf("sorted-label series = %d, want 2", got)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Inc("x")
	r.Add("x", 3)
	r.SetGauge("g", 1)
	r.Observe("h", 1)
	if r.CounterValue("x") != 0 || r.Window("h") != nil {
		t.Error("nil registry must be inert")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Hists) != 0 {
		t.Error("nil snapshot must be empty")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Error("nil registry exposition must be empty")
	}
}

func TestHistogramBoundedWindow(t *testing.T) {
	r := NewRegistry()
	n := SampleWindow + 500
	for i := 0; i < n; i++ {
		r.Observe("lat", float64(i))
	}
	win := r.Window("lat")
	if len(win) != SampleWindow {
		t.Fatalf("window = %d, want %d", len(win), SampleWindow)
	}
	// The window holds the most recent observations, oldest first.
	if win[0] != float64(n-SampleWindow) || win[len(win)-1] != float64(n-1) {
		t.Errorf("window ends = %g..%g, want %d..%d", win[0], win[len(win)-1], n-SampleWindow, n-1)
	}
	s := r.SampleSummary("lat")
	if s.Count != n {
		t.Errorf("count = %d, want %d", s.Count, n)
	}
	wantMean := float64(n-1) / 2
	if math.Abs(s.Mean-wantMean) > 1e-9 {
		t.Errorf("mean = %g, want %g", s.Mean, wantMean)
	}
	if s.Min != 0 || s.Max != float64(n-1) {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	// Quantiles are bucket-interpolated once the window wraps: accept a
	// loose band around the true value.
	trueP50 := wantMean
	if s.P50 < trueP50/4 || s.P50 > trueP50*4 {
		t.Errorf("p50 = %g, too far from %g", s.P50, trueP50)
	}
}

func TestHistogramExactWhileSmall(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		r.Observe("s", v)
	}
	s := r.SampleSummary("s")
	want := Summarize([]float64{1, 2, 3, 4, 5})
	if s != want {
		t.Errorf("summary = %+v, want exact %+v", s, want)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Inc("z.last")
	r.Inc("a.first")
	r.Inc("m.mid", L("k", "2"))
	r.Inc("m.mid", L("k", "1"))
	snap := r.Snapshot()
	var keys []string
	for _, c := range snap.Counters {
		keys = append(keys, seriesKey(c.Name, c.Labels))
	}
	want := []string{"a.first", `m.mid{k="1"}`, `m.mid{k="2"}`, "z.last"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}

// TestRegistryConcurrent hammers one registry from parallel writers
// across all three kinds while readers snapshot and expose it; run
// under -race this proves the store is data-race free, and the final
// totals prove no write is lost.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		perG    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Inc("c.total")
				r.Inc("c.labeled", L("w", "x"))
				r.SetGauge("g.now", float64(i))
				r.Observe("h.lat", float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = r.CounterValue("c.total")
			_ = r.SampleSummary("h.lat")
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if got := r.CounterValue("c.total"); got != writers*perG {
		t.Errorf("c.total = %d, want %d", got, writers*perG)
	}
	if got := r.CounterValue("c.labeled", L("w", "x")); got != writers*perG {
		t.Errorf("c.labeled = %d, want %d", got, writers*perG)
	}
	if got := r.SampleSummary("h.lat").Count; got != writers*perG {
		t.Errorf("h.lat count = %d, want %d", got, writers*perG)
	}
}

// TestPrometheusOutputStable verifies /metrics output is sorted,
// parseable line-by-line, and identical across renders with no writes
// in between.
func TestPrometheusOutputStable(t *testing.T) {
	r := NewRegistry()
	RegisterWellKnown(r)
	r.Inc(CounterFailovers)
	r.Add(CounterHTTPRequests, 3, L("code", "200"))
	r.Observe(HistComposeLatencyMs, 1.5, L("outcome", "ok"))
	r.SetGauge("sessions.live", 2)

	var a, b strings.Builder
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Fatal("exposition must be deterministic across renders")
	}

	sc := bufio.NewScanner(strings.NewReader(a.String()))
	var prevFamily, kind string
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if parts[3] != kind {
				// Output is sorted within each kind section
				// (counters, then gauges, then histograms).
				kind, prevFamily = parts[3], ""
			}
			continue
		}
		// Every sample line is `name value` or `name{labels} value`.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("unparseable line: %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced labels: %q", line)
			}
			name = name[:i]
		}
		if strings.ContainsAny(name, ".-") {
			t.Fatalf("unsanitized metric name: %q", line)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if prevFamily != "" && family < prevFamily && !strings.HasPrefix(prevFamily, family) && !strings.HasPrefix(family, prevFamily) {
			// Families must appear in sorted order (suffixes like
			// _bucket/_sum/_count stay within their family).
			t.Errorf("family %q after %q: output not sorted", family, prevFamily)
		}
		prevFamily = family
	}
	if lines == 0 {
		t.Fatal("no output")
	}
	for _, want := range []string{
		"failover_entered 1",
		`http_requests{code="200"} 3`,
		`compose_latency_ms_bucket{outcome="ok",le="2.5"} 1`,
		`compose_latency_ms_count{outcome="ok"} 1`,
		"sessions_live 2",
		"journal_appends 0",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q\n%s", want, a.String())
		}
	}
}

func TestCountersFanout(t *testing.T) {
	private := NewCounters()
	global := NewCounters()
	c := Fanout(private, global)
	c.Inc(CounterFailovers)
	c.Observe(SampleRecoverySteps, 3)
	if private.Get(CounterFailovers) != 1 || global.Get(CounterFailovers) != 1 {
		t.Error("writes must reach both sinks")
	}
	// Reads come from the primary only.
	global.Inc(CounterFailovers)
	if c.Get(CounterFailovers) != 1 {
		t.Errorf("fanout read = %d, want primary value 1", c.Get(CounterFailovers))
	}
	if len(c.Sample(SampleRecoverySteps)) != 1 {
		t.Error("fanout sample must read primary")
	}
	// Degenerate fanouts collapse to the non-nil side.
	if Fanout(nil, global) != global || Fanout(private, nil) != private {
		t.Error("nil sides must collapse")
	}
	var nilc *Counters
	if Fanout(nilc, nilc) != nil {
		t.Error("all-nil fanout must be nil")
	}
}

func TestCountersOnSharedRegistry(t *testing.T) {
	r := NewRegistry()
	c := CountersOn(r)
	c.Inc(CounterAdmissionAdmitted)
	if r.CounterValue(CounterAdmissionAdmitted) != 1 {
		t.Error("facade write must land in the registry")
	}
	r.Inc(CounterAdmissionAdmitted)
	if c.Get(CounterAdmissionAdmitted) != 2 {
		t.Error("facade read must see registry writes")
	}
	if CountersOn(nil) != nil {
		t.Error("CountersOn(nil) must be a nil sink")
	}
}
