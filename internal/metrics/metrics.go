// Package metrics provides the small statistics and table-rendering
// toolkit the experiment harness uses to report results in the shape the
// paper's tables and figures have.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	Count         int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes summary statistics; an empty sample yields zeros.
func Summarize(sample []float64) Summary {
	n := len(sample)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(n)
	varSum := 0.0
	for _, v := range sorted {
		d := v - mean
		varSum += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(varSum / float64(n-1))
	}
	return Summary{
		Count: n,
		Mean:  mean,
		Std:   std,
		Min:   sorted[0],
		Max:   sorted[n-1],
		P50:   quantile(sorted, 0.50),
		P90:   quantile(sorted, 0.90),
		P99:   quantile(sorted, 0.99),
	}
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram buckets a sample into fixed-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram with the given number of bins.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if max <= min {
		max = min + 1
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Observe adds a value (clamped into range).
func (h *Histogram) Observe(v float64) {
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	idx := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.Total++
}

// Render draws the histogram with unicode bars, one bin per line.
func (h *Histogram) Render(w io.Writer) {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(w, "%8.2f–%-8.2f |%-40s %d\n", h.Min+float64(i)*width, h.Min+float64(i+1)*width, bar, c)
	}
}

// Table renders fixed-width text tables in the style of the paper's
// Table 1.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.Join(parts, " | "))
	}
	line(t.headers)
	total := 0
	for _, wd := range widths {
		total += wd + 3
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
