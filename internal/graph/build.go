package graph

import (
	"fmt"
	"math"

	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// Input collects everything graph construction consumes (Section 4.2):
// the content profile (sender output links), the device profile (receiver
// input links), the deployed services (intermediate vertices with their
// I/O links) and the network (edge bandwidths).
type Input struct {
	// Content supplies the sender's variants.
	Content *profile.Content
	// Device supplies the receiver's decoders.
	Device *profile.Device
	// Services are the deployed trans-coding services; each must carry
	// its Host.
	Services []*service.Service
	// Net supplies host-to-host available bandwidth. When nil, all
	// edges get unlimited (+Inf) bandwidth — useful for pure-algorithm
	// tests. With a network present, host pairs with no connectivity
	// produce no edge at all.
	Net *overlay.Network
	// SenderHost/ReceiverHost locate the special vertices.
	SenderHost, ReceiverHost string
	// Intermediaries optionally declares per-host computing resources;
	// the selection algorithm enforces them (Section 4.3). Hosts absent
	// from the list are unconstrained.
	Intermediaries []profile.Intermediary
}

// Build constructs the adaptation graph: it connects the sender's
// variants to every service accepting that format, services to services
// whose input format matches an output format, and services (and the
// sender directly) to the receiver when the receiver can decode the
// format.
func Build(in Input) (*Graph, error) {
	if in.Content == nil || in.Device == nil {
		return nil, fmt.Errorf("graph: content and device profiles are required")
	}
	if err := in.Content.Validate(); err != nil {
		return nil, err
	}
	if err := in.Device.Validate(); err != nil {
		return nil, err
	}
	if in.SenderHost == "" {
		in.SenderHost = string(SenderID)
	}
	if in.ReceiverHost == "" {
		in.ReceiverHost = string(ReceiverID)
	}

	g := NewGraph(in.SenderHost, in.ReceiverHost)
	for i := range in.Intermediaries {
		inter := &in.Intermediaries[i]
		g.SetHostResources(inter.Host, HostResources{CPUMips: inter.CPUMips, MemoryMB: inter.MemoryMB})
	}
	for _, s := range in.Services {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		if err := g.AddService(s); err != nil {
			return nil, err
		}
	}

	// Index services by accepted input format once, so edge wiring walks
	// only the services that actually match an output format instead of
	// re-scanning the full service list per output link. This turns the
	// wiring from O(S²·F) into O(S·F + E), preserving the declaration
	// order the quadratic scan produced.
	acceptsFormat := make(map[media.Format][]*service.Service)
	for _, s := range in.Services {
		for _, f := range s.Inputs {
			acceptsFormat[f] = append(acceptsFormat[f], s)
		}
	}

	// Sender → services and sender → receiver, one edge per variant
	// format accepted downstream. Two variants sharing a format would
	// produce byte-identical edges; senderSeen drops the duplicates
	// (distinct parameters keep both edges — they are different offers).
	type senderKey struct {
		to NodeID
		f  media.Format
	}
	senderSeen := make(map[senderKey][]media.Params)
	dupSender := func(to NodeID, f media.Format, p media.Params) bool {
		k := senderKey{to, f}
		for _, prev := range senderSeen[k] {
			if prev.Equal(p, 0) {
				return true
			}
		}
		senderSeen[k] = append(senderSeen[k], p)
		return false
	}
	for _, variant := range in.Content.Variants {
		for _, s := range acceptsFormat[variant.Format] {
			if dupSender(NodeID(s.ID), variant.Format, variant.Params) {
				continue
			}
			kbps, delay, loss, connected := linkQoS(in.Net, in.SenderHost, s.Host)
			if !connected {
				continue
			}
			if err := g.AddEdge(&Edge{
				From: SenderID, To: NodeID(s.ID),
				Format:        variant.Format,
				BandwidthKbps: kbps,
				DelayMs:       delay,
				LossRate:      loss,
				SourceParams:  variant.Params.Clone(),
			}); err != nil {
				return nil, err
			}
		}
		if in.Device.Decodes(variant.Format) && !dupSender(ReceiverID, variant.Format, variant.Params) {
			if kbps, delay, loss, connected := linkQoS(in.Net, in.SenderHost, in.ReceiverHost); connected {
				if err := g.AddEdge(&Edge{
					From: SenderID, To: ReceiverID,
					Format:        variant.Format,
					BandwidthKbps: kbps,
					DelayMs:       delay,
					LossRate:      loss,
					SourceParams:  variant.Params.Clone(),
				}); err != nil {
					return nil, err
				}
			}
		}
	}

	// Service → service edges wherever an output link matches an input
	// link, and service → receiver for decodable outputs. A service
	// listing the same output format twice would duplicate its edges;
	// svcSeen collapses them (the duplicates are fully identical — same
	// endpoints, format and host pair).
	type svcKey struct {
		from, to NodeID
		f        media.Format
	}
	svcSeen := make(map[svcKey]bool)
	for _, from := range in.Services {
		for _, f := range from.Outputs {
			for _, to := range acceptsFormat[f] {
				if to.ID == from.ID {
					continue
				}
				k := svcKey{NodeID(from.ID), NodeID(to.ID), f}
				if svcSeen[k] {
					continue
				}
				svcSeen[k] = true
				kbps, delay, loss, connected := linkQoS(in.Net, from.Host, to.Host)
				if !connected {
					continue
				}
				if err := g.AddEdge(&Edge{
					From: NodeID(from.ID), To: NodeID(to.ID),
					Format:        f,
					BandwidthKbps: kbps,
					DelayMs:       delay,
					LossRate:      loss,
				}); err != nil {
					return nil, err
				}
			}
			k := svcKey{NodeID(from.ID), ReceiverID, f}
			if in.Device.Decodes(f) && !svcSeen[k] {
				svcSeen[k] = true
				if kbps, delay, loss, connected := linkQoS(in.Net, from.Host, in.ReceiverHost); connected {
					if err := g.AddEdge(&Edge{
						From: NodeID(from.ID), To: ReceiverID,
						Format:        f,
						BandwidthKbps: kbps,
						DelayMs:       delay,
						LossRate:      loss,
					}); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	return g, nil
}

// linkQoS returns the bandwidth, one-way delay and loss the overlay
// offers between two hosts, and whether an edge should exist at all:
// disconnected hosts yield no edge. Delay uses the direct link when
// present and the minimum-delay route otherwise. A nil network means
// unconstrained connectivity. Shared by Build and the Cache's
// bandwidth-only edge refresh.
func linkQoS(net *overlay.Network, fromHost, toHost string) (kbps, delayMs, loss float64, connected bool) {
	if net == nil {
		return math.Inf(1), 0, 0, true
	}
	v := net.AvailableBandwidth(fromHost, toHost)
	if v <= 0 {
		return 0, 0, 0, false
	}
	if fromHost == toHost {
		return v, 0, 0, true
	}
	if _, d, l, direct := net.Link(fromHost, toHost); direct {
		return v, d, l, true
	}
	if _, d, ok := net.MinDelayPath(fromHost, toHost); ok {
		return v, d, 0, true
	}
	return v, 0, 0, true
}

// BuildFromSet builds the graph from a full profile set, deploying every
// intermediary's services and using the set's static network profile for
// bandwidths. The sender is hosted on "sender" and the receiver on the
// device ID unless the network profile names a "receiver" host.
func BuildFromSet(set *profile.Set) (*Graph, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	net, err := overlay.FromProfile(set.Network)
	if err != nil {
		return nil, err
	}
	var services []*service.Service
	for i := range set.Intermediaries {
		services = append(services, set.Intermediaries[i].Services...)
	}
	receiverHost := set.Device.ID
	if net.HasNode(string(ReceiverID)) {
		receiverHost = string(ReceiverID)
	}
	return Build(Input{
		Content:        &set.Content,
		Device:         &set.Device,
		Services:       services,
		Net:            net,
		SenderHost:     string(SenderID),
		ReceiverHost:   receiverHost,
		Intermediaries: set.Intermediaries,
	})
}

// CollectServices flattens every intermediary's service list, preserving
// declaration order.
func CollectServices(intermediaries []profile.Intermediary) []*service.Service {
	var out []*service.Service
	for i := range intermediaries {
		out = append(out, intermediaries[i].Services...)
	}
	return out
}

// SenderVariantParams returns the QoS parameters of the content variant
// flowing over a sender-outgoing edge. It falls back to nil for non-sender
// edges.
func SenderVariantParams(e *Edge) media.Params { return e.SourceParams }
