package graph

import (
	"fmt"
	"math"

	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// Input collects everything graph construction consumes (Section 4.2):
// the content profile (sender output links), the device profile (receiver
// input links), the deployed services (intermediate vertices with their
// I/O links) and the network (edge bandwidths).
type Input struct {
	// Content supplies the sender's variants.
	Content *profile.Content
	// Device supplies the receiver's decoders.
	Device *profile.Device
	// Services are the deployed trans-coding services; each must carry
	// its Host.
	Services []*service.Service
	// Net supplies host-to-host available bandwidth. When nil, all
	// edges get unlimited (+Inf) bandwidth — useful for pure-algorithm
	// tests. With a network present, host pairs with no connectivity
	// produce no edge at all.
	Net *overlay.Network
	// SenderHost/ReceiverHost locate the special vertices.
	SenderHost, ReceiverHost string
	// Intermediaries optionally declares per-host computing resources;
	// the selection algorithm enforces them (Section 4.3). Hosts absent
	// from the list are unconstrained.
	Intermediaries []profile.Intermediary
}

// Build constructs the adaptation graph: it connects the sender's
// variants to every service accepting that format, services to services
// whose input format matches an output format, and services (and the
// sender directly) to the receiver when the receiver can decode the
// format.
func Build(in Input) (*Graph, error) {
	if in.Content == nil || in.Device == nil {
		return nil, fmt.Errorf("graph: content and device profiles are required")
	}
	if err := in.Content.Validate(); err != nil {
		return nil, err
	}
	if err := in.Device.Validate(); err != nil {
		return nil, err
	}
	if in.SenderHost == "" {
		in.SenderHost = string(SenderID)
	}
	if in.ReceiverHost == "" {
		in.ReceiverHost = string(ReceiverID)
	}

	g := NewGraph(in.SenderHost, in.ReceiverHost)
	for i := range in.Intermediaries {
		inter := &in.Intermediaries[i]
		g.SetHostResources(inter.Host, HostResources{CPUMips: inter.CPUMips, MemoryMB: inter.MemoryMB})
	}
	for _, s := range in.Services {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		if err := g.AddService(s); err != nil {
			return nil, err
		}
	}

	// bw returns the available bandwidth and one-way delay between two
	// hosts, and whether an edge should exist at all: disconnected
	// hosts yield no edge. Delay uses the direct link when present and
	// the minimum-delay route otherwise.
	bw := func(fromHost, toHost string) (kbps, delayMs, loss float64, connected bool) {
		if in.Net == nil {
			return math.Inf(1), 0, 0, true
		}
		v := in.Net.AvailableBandwidth(fromHost, toHost)
		if v <= 0 {
			return 0, 0, 0, false
		}
		if fromHost == toHost {
			return v, 0, 0, true
		}
		if _, d, l, direct := in.Net.Link(fromHost, toHost); direct {
			return v, d, l, true
		}
		if _, d, ok := in.Net.MinDelayPath(fromHost, toHost); ok {
			return v, d, 0, true
		}
		return v, 0, 0, true
	}

	// Sender → services and sender → receiver, one edge per variant
	// format accepted downstream.
	for _, variant := range in.Content.Variants {
		for _, s := range in.Services {
			if !s.Accepts(variant.Format) {
				continue
			}
			kbps, delay, loss, connected := bw(in.SenderHost, s.Host)
			if !connected {
				continue
			}
			if err := g.AddEdge(&Edge{
				From: SenderID, To: NodeID(s.ID),
				Format:        variant.Format,
				BandwidthKbps: kbps,
				DelayMs:       delay,
				LossRate:      loss,
				SourceParams:  variant.Params.Clone(),
			}); err != nil {
				return nil, err
			}
		}
		if in.Device.Decodes(variant.Format) {
			if kbps, delay, loss, connected := bw(in.SenderHost, in.ReceiverHost); connected {
				if err := g.AddEdge(&Edge{
					From: SenderID, To: ReceiverID,
					Format:        variant.Format,
					BandwidthKbps: kbps,
					DelayMs:       delay,
					LossRate:      loss,
					SourceParams:  variant.Params.Clone(),
				}); err != nil {
					return nil, err
				}
			}
		}
	}

	// Service → service edges wherever an output link matches an input
	// link, and service → receiver for decodable outputs.
	for _, from := range in.Services {
		for _, f := range from.Outputs {
			for _, to := range in.Services {
				if to.ID == from.ID || !to.Accepts(f) {
					continue
				}
				kbps, delay, loss, connected := bw(from.Host, to.Host)
				if !connected {
					continue
				}
				if err := g.AddEdge(&Edge{
					From: NodeID(from.ID), To: NodeID(to.ID),
					Format:        f,
					BandwidthKbps: kbps,
					DelayMs:       delay,
					LossRate:      loss,
				}); err != nil {
					return nil, err
				}
			}
			if in.Device.Decodes(f) {
				if kbps, delay, loss, connected := bw(from.Host, in.ReceiverHost); connected {
					if err := g.AddEdge(&Edge{
						From: NodeID(from.ID), To: ReceiverID,
						Format:        f,
						BandwidthKbps: kbps,
						DelayMs:       delay,
						LossRate:      loss,
					}); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	return g, nil
}

// BuildFromSet builds the graph from a full profile set, deploying every
// intermediary's services and using the set's static network profile for
// bandwidths. The sender is hosted on "sender" and the receiver on the
// device ID unless the network profile names a "receiver" host.
func BuildFromSet(set *profile.Set) (*Graph, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	net, err := overlay.FromProfile(set.Network)
	if err != nil {
		return nil, err
	}
	var services []*service.Service
	for i := range set.Intermediaries {
		services = append(services, set.Intermediaries[i].Services...)
	}
	receiverHost := set.Device.ID
	if net.HasNode(string(ReceiverID)) {
		receiverHost = string(ReceiverID)
	}
	return Build(Input{
		Content:        &set.Content,
		Device:         &set.Device,
		Services:       services,
		Net:            net,
		SenderHost:     string(SenderID),
		ReceiverHost:   receiverHost,
		Intermediaries: set.Intermediaries,
	})
}

// CollectServices flattens every intermediary's service list, preserving
// declaration order.
func CollectServices(intermediaries []profile.Intermediary) []*service.Service {
	var out []*service.Service
	for i := range intermediaries {
		out = append(out, intermediaries[i].Services...)
	}
	return out
}

// SenderVariantParams returns the QoS parameters of the content variant
// flowing over a sender-outgoing edge. It falls back to nil for non-sender
// edges.
func SenderVariantParams(e *Edge) media.Params { return e.SourceParams }
