package graph

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT syntax: vertices as boxes
// (sender/receiver emphasized), edges labelled with the flowing format
// and, when finite, the available bandwidth. The output is deterministic.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box];\n")
	for _, id := range g.NodeIDs() {
		n := g.nodes[id]
		switch {
		case n.IsSender():
			fmt.Fprintf(&b, "  %q [shape=ellipse, style=bold];\n", id)
		case n.IsReceiver():
			fmt.Fprintf(&b, "  %q [shape=ellipse, style=bold];\n", id)
		default:
			label := string(id)
			if n.Service != nil && n.Host != "" {
				label = fmt.Sprintf("%s\\n@%s", id, n.Host)
			}
			fmt.Fprintf(&b, "  %q [label=\"%s\"];\n", id, label)
		}
	}
	for _, id := range g.NodeIDs() {
		edges := append([]*Edge(nil), g.out[id]...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].To != edges[j].To {
				return LessNatural(edges[i].To, edges[j].To)
			}
			return edges[i].Format.String() < edges[j].Format.String()
		})
		for _, e := range edges {
			label := e.Format.String()
			if e.BandwidthKbps > 0 && !math.IsInf(e.BandwidthKbps, 1) {
				label = fmt.Sprintf("%s\\n%.0f kbps", label, e.BandwidthKbps)
			}
			fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"];\n", e.From, e.To, label)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
