package graph

import (
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

func TestEdgeBetweenFindsEveryEdge(t *testing.T) {
	g := buildFixture(t)
	// The index must agree with a linear scan for every edge in the graph.
	for _, id := range g.NodeIDs() {
		for _, e := range g.Out(id) {
			got := g.EdgeBetween(e.From, e.To, e.Format)
			if got == nil {
				t.Fatalf("EdgeBetween(%s,%s,%v) = nil for an existing edge", e.From, e.To, e.Format)
			}
			if got.From != e.From || got.To != e.To || got.Format != e.Format {
				t.Fatalf("EdgeBetween returned the wrong edge: %+v", got)
			}
		}
	}
}

func TestEdgeBetweenMisses(t *testing.T) {
	g := buildFixture(t)
	if e := g.EdgeBetween(SenderID, "conv2", media.Opaque(1)); e != nil {
		t.Errorf("nonexistent hop returned %+v", e)
	}
	if e := g.EdgeBetween(SenderID, "conv1", media.Opaque(9)); e != nil {
		t.Errorf("wrong format returned %+v", e)
	}
	if e := g.EdgeBetween("ghost", ReceiverID, media.Opaque(1)); e != nil {
		t.Errorf("unknown node returned %+v", e)
	}
}

// TestEdgeBetweenInvalidatedByAddEdge: the lazily built index must be
// rebuilt after the graph grows, not serve a stale snapshot.
func TestEdgeBetweenInvalidatedByAddEdge(t *testing.T) {
	g := NewGraph("s", "r")
	conv := service.FormatConverter("c", media.Opaque(1), media.Opaque(2))
	if err := g.AddService(conv); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&Edge{From: SenderID, To: "c", Format: media.Opaque(1), BandwidthKbps: 100}); err != nil {
		t.Fatal(err)
	}
	// Build the index, then grow the graph.
	if g.EdgeBetween(SenderID, "c", media.Opaque(1)) == nil {
		t.Fatal("first edge not indexed")
	}
	if err := g.AddEdge(&Edge{From: "c", To: ReceiverID, Format: media.Opaque(2), BandwidthKbps: 100}); err != nil {
		t.Fatal(err)
	}
	if g.EdgeBetween("c", ReceiverID, media.Opaque(2)) == nil {
		t.Error("edge added after the index was built is invisible")
	}
}

// TestEdgeBetweenInvalidatedByPrune: edges removed by pruning must stop
// resolving.
func TestEdgeBetweenInvalidatedByPrune(t *testing.T) {
	g := NewGraph("s", "r")
	dead := service.FormatConverter("dead", media.Opaque(1), media.Opaque(5))
	live := service.FormatConverter("live", media.Opaque(1), media.Opaque(2))
	for _, svc := range []*service.Service{dead, live} {
		if err := g.AddService(svc); err != nil {
			t.Fatal(err)
		}
	}
	edges := []*Edge{
		{From: SenderID, To: "dead", Format: media.Opaque(1), BandwidthKbps: 100},
		{From: SenderID, To: "live", Format: media.Opaque(1), BandwidthKbps: 100},
		{From: "live", To: ReceiverID, Format: media.Opaque(2), BandwidthKbps: 100},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if g.EdgeBetween(SenderID, "dead", media.Opaque(1)) == nil {
		t.Fatal("dead-end edge should resolve before pruning")
	}
	g.Prune()
	if e := g.EdgeBetween(SenderID, "dead", media.Opaque(1)); e != nil {
		t.Errorf("pruned edge still resolves: %+v", e)
	}
	if g.EdgeBetween(SenderID, "live", media.Opaque(1)) == nil {
		t.Error("surviving edge lost from the index")
	}
}

// TestEdgeBetweenFirstWins: parallel duplicate edges (legal before
// pruning) must resolve to the first one added — the same edge a linear
// first-match scan would return.
func TestEdgeBetweenFirstWins(t *testing.T) {
	g := NewGraph("s", "r")
	conv := service.FormatConverter("c", media.Opaque(1), media.Opaque(2))
	if err := g.AddService(conv); err != nil {
		t.Fatal(err)
	}
	first := &Edge{From: SenderID, To: "c", Format: media.Opaque(1), BandwidthKbps: 111}
	second := &Edge{From: SenderID, To: "c", Format: media.Opaque(1), BandwidthKbps: 222}
	if err := g.AddEdge(first); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(second); err != nil {
		t.Fatal(err)
	}
	got := g.EdgeBetween(SenderID, "c", media.Opaque(1))
	if got != first {
		t.Errorf("EdgeBetween returned bandwidth %v, want the first-added edge (111)", got.BandwidthKbps)
	}
}

// TestEdgeBetweenSurvivesBandwidthRefresh: in-place mutation of edge
// attributes (the overlay's bandwidth refresh path) must be visible
// through the index without any invalidation — the index maps to edge
// pointers, not copies.
func TestEdgeBetweenSurvivesBandwidthRefresh(t *testing.T) {
	g := buildFixture(t)
	e := g.EdgeBetween(SenderID, "conv1", media.Opaque(1))
	if e == nil {
		t.Fatal("fixture edge missing")
	}
	e.BandwidthKbps = 777
	if got := g.EdgeBetween(SenderID, "conv1", media.Opaque(1)); got.BandwidthKbps != 777 {
		t.Errorf("refresh invisible through index: %v", got.BandwidthKbps)
	}
}
