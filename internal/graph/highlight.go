package graph

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"qoschain/internal/media"
)

// WriteDOTHighlight renders the graph like WriteDOT but emphasizes a
// selected chain: its vertices are filled and its edges drawn bold, the
// presentation the paper's Figure 6 uses to show the selected path inside
// the full graph. The path is the vertex sequence with its per-edge
// formats (as a core.Result carries them).
func (g *Graph) WriteDOTHighlight(w io.Writer, title string, path []NodeID, formats []media.Format) error {
	onPath := make(map[NodeID]bool, len(path))
	for _, id := range path {
		onPath[id] = true
	}
	type edgeKey struct {
		from, to NodeID
		format   media.Format
	}
	pathEdges := make(map[edgeKey]bool, len(formats))
	for i := 1; i < len(path) && i-1 < len(formats); i++ {
		pathEdges[edgeKey{path[i-1], path[i], formats[i-1]}] = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box];\n")
	for _, id := range g.NodeIDs() {
		n := g.nodes[id]
		attrs := []string{}
		if n.IsSender() || n.IsReceiver() {
			attrs = append(attrs, "shape=ellipse", "style=bold")
		}
		if onPath[id] {
			attrs = append(attrs, `fillcolor="lightblue"`, `style="filled,bold"`)
		}
		fmt.Fprintf(&b, "  %q [%s];\n", id, strings.Join(attrs, ", "))
	}
	for _, id := range g.NodeIDs() {
		edges := append([]*Edge(nil), g.out[id]...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].To != edges[j].To {
				return LessNatural(edges[i].To, edges[j].To)
			}
			return edges[i].Format.String() < edges[j].Format.String()
		})
		for _, e := range edges {
			label := e.Format.String()
			if e.BandwidthKbps > 0 && !math.IsInf(e.BandwidthKbps, 1) {
				label = fmt.Sprintf("%s\\n%.0f kbps", label, e.BandwidthKbps)
			}
			style := ""
			if pathEdges[edgeKey{e.From, e.To, e.Format}] {
				style = ", penwidth=3, color=blue"
			}
			fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"%s];\n", e.From, e.To, label, style)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
