package graph

// Tests for incremental graph repair (BuildRepair): a repaired graph
// must carry exactly the annotations a full rebuild would, only edges
// touching the changed-link set are re-queried, topology changes fall
// back to a rebuild, and concurrent repairs against concurrent Build
// traffic are race-free.

import (
	"fmt"
	"sync"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// repairNet is a three-proxy overlay: two parallel sender uplinks and a
// routed pair (sender→p3 has no direct link, so its edge is annotated
// from a widest path).
func repairNet() *overlay.Network {
	net := overlay.New()
	net.AddLink("sender", "p1", 2000, 5, 0)
	net.AddLink("sender", "p2", 3000, 5, 0)
	net.AddLink("p1", "p3", 1800, 5, 0)
	net.AddLink("p2", "p3", 2500, 5, 0)
	net.AddLink("p1", "recv", 1500, 5, 0)
	net.AddLink("p2", "recv", 1600, 5, 0)
	net.AddLink("p3", "recv", 1400, 5, 0)
	return net
}

// repairInput deploys one converter per proxy so the graph has an edge
// over every link plus the routed sender→p3 pair.
func repairInput(net *overlay.Network) Input {
	svc := func(id, host string) *service.Service {
		return &service.Service{
			ID:      service.ID(id),
			Inputs:  []media.Format{media.Opaque(1)},
			Outputs: []media.Format{media.Opaque(2)},
			Host:    host,
		}
	}
	return Input{
		Content: &profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.Opaque(1), Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: &profile.Device{ID: "d", Software: profile.Software{
			Decoders: []media.Format{media.Opaque(2)},
		}},
		Services:     []*service.Service{svc("s1", "p1"), svc("s2", "p2"), svc("s3", "p3")},
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "recv",
	}
}

// edgeBandwidths flattens a graph's per-edge bandwidth annotations.
func edgeBandwidths(g *Graph) map[string]float64 {
	out := make(map[string]float64)
	for _, id := range g.NodeIDs() {
		for _, e := range g.Out(id) {
			out[fmt.Sprintf("%s->%s/%s", e.From, e.To, e.Format)] = e.BandwidthKbps
		}
	}
	return out
}

func TestRepairMatchesFullRebuild(t *testing.T) {
	net := repairNet()
	c := NewCache(0)
	in := repairInput(net)
	g, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}

	// A value-only change on two links, repaired with the exact
	// changed-link set.
	if err := net.SetBandwidth("sender", "p1", 900); err != nil {
		t.Fatal(err)
	}
	if err := net.SetBandwidth("p2", "p3", 1100); err != nil {
		t.Fatal(err)
	}
	changed := []overlay.LinkRef{{From: "sender", To: "p1"}, {From: "p2", To: "p3"}}
	repaired, outcome, err := c.BuildRepairEx(in, changed)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeRepair {
		t.Fatalf("outcome = %s, want %s", outcome, OutcomeRepair)
	}
	if repaired != g {
		t.Fatal("repair must patch the cached graph in place, not rebuild")
	}

	// Ground truth: a cold cache built from the same post-change network.
	fresh, err := NewCache(0).Build(in)
	if err != nil {
		t.Fatal(err)
	}
	want, got := edgeBandwidths(fresh), edgeBandwidths(repaired)
	if len(want) != len(got) {
		t.Fatalf("repaired graph has %d edges, rebuild has %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("edge %s: repaired bandwidth %.1f, rebuild %.1f", k, got[k], w)
		}
	}
	if st := c.Stats(); st.Repairs != 1 {
		t.Fatalf("stats = %+v, want exactly 1 repair", st)
	}
}

func TestRepairSkipsUntouchedDirectEdges(t *testing.T) {
	net := repairNet()
	c := NewCache(0)
	in := repairInput(net)
	g, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	before := edgeBandwidths(g)

	// Change p1→recv but repair with a changed set naming only
	// sender→p2: the p1→recv direct edge must keep its stale annotation
	// (proof the repair did not re-query it), while the routed
	// sender→p3 pair is always conservatively re-queried.
	if err := net.SetBandwidth("p1", "recv", 700); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := c.BuildRepairEx(in, []overlay.LinkRef{{From: "sender", To: "p2"}}); err != nil {
		t.Fatal(err)
	} else if outcome != OutcomeRepair {
		t.Fatalf("outcome = %s, want %s", outcome, OutcomeRepair)
	}
	after := edgeBandwidths(g)
	key := fmt.Sprintf("p1->recv/%s", media.Opaque(2))
	if after[key] != before[key] {
		t.Fatalf("untouched direct edge was re-annotated: %.1f -> %.1f", before[key], after[key])
	}
}

func TestRepairTopologyChangeFallsBackToRebuild(t *testing.T) {
	net := repairNet()
	c := NewCache(0)
	in := repairInput(net)
	if _, err := c.Build(in); err != nil {
		t.Fatal(err)
	}
	// A link going down changes the connectivity signature; repair must
	// refuse to patch and rebuild from scratch like BuildEx would.
	if err := net.FailLink("p1", "recv"); err != nil {
		t.Fatal(err)
	}
	_, outcome, err := c.BuildRepairEx(in, []overlay.LinkRef{{From: "p1", To: "recv"}})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeMiss {
		t.Fatalf("outcome = %s after topology change, want %s (full rebuild)", outcome, OutcomeMiss)
	}
	if st := c.Stats(); st.Repairs != 0 {
		t.Fatalf("stats = %+v: a topology change must never count as a repair", st)
	}
}

func TestRepairEmptyChangedSetIsBuildEx(t *testing.T) {
	net := repairNet()
	c := NewCache(0)
	in := repairInput(net)
	g1, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	g2, outcome, err := c.BuildRepairEx(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g1 || outcome != OutcomeHit {
		t.Fatalf("empty changed set: outcome %s, want plain hit on the cached graph", outcome)
	}
}

// TestRepairConcurrentWithBuild drives repairs, refreshes and rebuilds
// from many goroutines against one cache while the network mutates —
// the -race proof for the in-place refresh the storm controller leans
// on. (The *planner* still serializes selection against refresh per the
// cache contract; the cache itself must be internally race-free.)
func TestRepairConcurrentWithBuild(t *testing.T) {
	net := repairNet()
	c := NewCache(0)
	in := repairInput(net)
	if _, err := c.Build(in); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	mutatorDone := make(chan struct{})
	// Mutator: bandwidth wobbles on two links until the readers finish.
	go func() {
		defer close(mutatorDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = net.SetBandwidth("sender", "p1", 1000+float64(i%7)*100)
			_ = net.SetBandwidth("p2", "p3", 1500+float64(i%5)*100)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			changed := []overlay.LinkRef{{From: "sender", To: "p1"}, {From: "p2", To: "p3"}}
			for i := 0; i < 200; i++ {
				if w%2 == 0 {
					if _, _, err := c.BuildRepairEx(in, changed); err != nil {
						t.Errorf("BuildRepairEx: %v", err)
						return
					}
				} else {
					if _, err := c.Build(in); err != nil {
						t.Errorf("Build: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-mutatorDone
}
