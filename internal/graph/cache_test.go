package graph

import (
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// cacheNet builds the two-hop overlay the cache tests mutate.
func cacheNet() *overlay.Network {
	net := overlay.New()
	net.AddLink("sender", "p1", 2000, 5, 0)
	net.AddLink("p1", "recv", 1500, 5, 0)
	return net
}

// cacheInput is a minimal buildable input: one converter on p1 between
// the source format and the device's only decoder.
func cacheInput(net *overlay.Network) Input {
	return Input{
		Content: &profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.Opaque(1), Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: &profile.Device{ID: "d", Software: profile.Software{
			Decoders: []media.Format{media.Opaque(2)},
		}},
		Services: []*service.Service{{
			ID:      "s1",
			Inputs:  []media.Format{media.Opaque(1)},
			Outputs: []media.Format{media.Opaque(2)},
			Host:    "p1",
		}},
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "recv",
	}
}

func TestCacheHitReturnsSameGraph(t *testing.T) {
	net := cacheNet()
	c := NewCache(0)
	g1, err := c.Build(cacheInput(net))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Build(cacheInput(net))
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("unchanged input should return the cached graph instance")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheBandwidthChangeRefreshesEdgesInPlace(t *testing.T) {
	net := cacheNet()
	c := NewCache(0)
	in := cacheInput(net)
	g1, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetBandwidth("sender", "p1", 900); err != nil {
		t.Fatal(err)
	}
	g2, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("bandwidth-only change must refresh the cached graph, not rebuild it")
	}
	out := g2.Out(SenderID)
	if len(out) != 1 || out[0].BandwidthKbps != 900 {
		t.Fatalf("sender edge bandwidth = %v, want refreshed to 900", out)
	}
	if st := c.Stats(); st.Refreshes != 1 {
		t.Fatalf("stats = %+v, want 1 refresh", st)
	}
}

func TestCacheZeroCrossingRebuilds(t *testing.T) {
	net := cacheNet()
	c := NewCache(0)
	in := cacheInput(net)
	g1, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Out(SenderID)) != 1 {
		t.Fatalf("expected one sender edge, got %d", len(g1.Out(SenderID)))
	}
	// Bandwidth hitting zero disconnects the host pair: topology is no
	// longer valid, the graph must be rebuilt without the edge.
	if err := net.SetBandwidth("sender", "p1", 0); err != nil {
		t.Fatal(err)
	}
	g2, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Fatal("connectivity change must rebuild, not refresh")
	}
	if len(g2.Out(SenderID)) != 0 {
		t.Fatalf("rebuilt graph should drop the disconnected edge, has %d", len(g2.Out(SenderID)))
	}
}

func TestCacheTopologyChangeRebuilds(t *testing.T) {
	net := cacheNet()
	c := NewCache(0)
	in := cacheInput(net)
	g1, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	net.RemoveLink("p1", "recv")
	g2, err := c.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Fatal("link removal must rebuild the graph")
	}
}

func TestCacheInvalidateAndReset(t *testing.T) {
	net := cacheNet()
	c := NewCache(0)
	in := cacheInput(net)
	if _, err := c.Build(in); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(in)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries after Invalidate = %d, want 0", st.Entries)
	}
	if _, err := c.Build(in); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries after Reset = %d, want 0", st.Entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	net := cacheNet()
	c := NewCache(1)
	inA := cacheInput(net)
	inB := cacheInput(net)
	inB.Content = &profile.Content{ID: "other", Variants: inA.Content.Variants}
	gA, err := c.Build(inA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(inB); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (evicted)", st.Entries)
	}
	gA2, err := c.Build(inA)
	if err != nil {
		t.Fatal(err)
	}
	if gA == gA2 {
		t.Fatal("A was evicted; a fresh build must return a new graph")
	}
}

func TestCacheBuildFromSet(t *testing.T) {
	set := &profile.Set{
		User: profile.User{
			Name: "u",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		},
		Content: profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.Opaque(1), Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: profile.Device{ID: "d", Software: profile.Software{
			Decoders: []media.Format{media.Opaque(2)},
		}},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "p1", BandwidthKbps: 2000},
			{From: "p1", To: "d", BandwidthKbps: 1500},
		}},
		Intermediaries: []profile.Intermediary{{
			Host: "p1", CPUMips: 1000, MemoryMB: 256,
			Services: []*service.Service{{
				ID:      "s1",
				Inputs:  []media.Format{media.Opaque(1)},
				Outputs: []media.Format{media.Opaque(2)},
			}},
		}},
	}
	c := NewCache(0)
	g1, err := c.BuildFromSet(set)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.BuildFromSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("equal sets must share one cached graph")
	}
	// A changed link value is part of the static fingerprint: new entry.
	set.Network.Links[0].BandwidthKbps = 100
	g3, err := c.BuildFromSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Fatal("changed network profile must produce a fresh graph")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses", st)
	}
}

func TestOverlayGenerationAdvances(t *testing.T) {
	net := cacheNet()
	g0 := net.Generation()
	if err := net.SetBandwidth("sender", "p1", 42); err != nil {
		t.Fatal(err)
	}
	if g1 := net.Generation(); g1 <= g0 {
		t.Fatalf("generation %d should advance past %d on mutation", g1, g0)
	}
}
