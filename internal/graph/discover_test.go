package graph

import (
	"testing"
	"time"

	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/registry"
	"qoschain/internal/service"
)

func discoveryRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New()
	adds := []*service.Service{
		// Reachable in one hop from MPEG-1.
		service.FormatConverter("hop1", media.VideoMPEG1, media.VideoMJPEG),
		// Reachable in two hops.
		service.FormatConverter("hop2", media.VideoMJPEG, media.VideoH263),
		// Unreachable: nothing produces its input.
		service.FormatConverter("stray", media.AudioPCM, media.AudioMP3),
	}
	for _, s := range adds {
		s.Host = "p"
		if err := reg.Register(s, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func mpegContent() *profile.Content {
	return &profile.Content{ID: "c", Variants: []media.Descriptor{
		{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
	}}
}

func TestDiscoverBFS(t *testing.T) {
	reg := discoveryRegistry(t)
	found := Discover(reg, mpegContent(), 0)
	if len(found) != 2 {
		t.Fatalf("Discover found %d services, want 2 (hop1, hop2)", len(found))
	}
	if found[0].ID != "hop1" || found[1].ID != "hop2" {
		t.Errorf("order = %v %v", found[0].ID, found[1].ID)
	}
}

func TestDiscoverDepthBound(t *testing.T) {
	reg := discoveryRegistry(t)
	found := Discover(reg, mpegContent(), 1)
	if len(found) != 1 || found[0].ID != "hop1" {
		t.Fatalf("depth-1 discovery = %v", found)
	}
}

func TestDiscoverNilInputs(t *testing.T) {
	if got := Discover(nil, mpegContent(), 0); got != nil {
		t.Error("nil directory should discover nothing")
	}
	if got := Discover(discoveryRegistry(t), nil, 0); got != nil {
		t.Error("nil content should discover nothing")
	}
}

func TestDiscoverThenBuild(t *testing.T) {
	reg := discoveryRegistry(t)
	content := mpegContent()
	device := &profile.Device{ID: "d", Software: profile.Software{
		Decoders: []media.Format{media.VideoH263},
	}}
	services := Discover(reg, content, 0)
	g, err := Build(Input{Content: content, Device: device, Services: services})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasPath() {
		t.Errorf("discovered services must connect sender to receiver:\n%s", g)
	}
	if _, ok := g.Node("stray"); ok {
		t.Error("unreachable service must not be discovered")
	}
}

func TestDiscoverFromFederation(t *testing.T) {
	a, b := registry.New(), registry.New()
	s1 := service.FormatConverter("hop1", media.VideoMPEG1, media.VideoMJPEG)
	s2 := service.FormatConverter("hop2", media.VideoMJPEG, media.VideoH263)
	_ = a.Register(s1, 0)
	_ = b.Register(s2, 0)
	fed := registry.NewFederation(a, b)
	found := Discover(fed, mpegContent(), 0)
	if len(found) != 2 {
		t.Fatalf("federated discovery = %d services, want 2", len(found))
	}
}
