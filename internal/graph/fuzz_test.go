package graph

import (
	"testing"

	"qoschain/internal/media"
)

// FuzzFormatInterning checks the format-interning round trip: interning
// any two (possibly equal) formats must hand out stable dense indices
// that FormatIndex and FormatAt invert exactly.
func FuzzFormatInterning(f *testing.F) {
	f.Add(uint8(1), "mpeg1", "", uint8(1), "h263", "cif")
	f.Add(uint8(2), "jpeg", "gray", uint8(2), "jpeg", "gray")
	f.Add(uint8(0), "", "", uint8(7), "pcm", "")
	f.Fuzz(func(t *testing.T, k1 uint8, enc1, prof1 string, k2 uint8, enc2, prof2 string) {
		g := NewGraph("sender", "receiver")
		formats := []media.Format{
			{Kind: media.Kind(k1), Encoding: enc1, Profile: prof1},
			{Kind: media.Kind(k2), Encoding: enc2, Profile: prof2},
		}
		seen := make(map[media.Format]int)
		for _, fm := range formats {
			idx := int(g.internFormat(fm))
			if prev, ok := seen[fm]; ok && prev != idx {
				t.Fatalf("format %v re-interned at %d, was %d", fm, idx, prev)
			}
			seen[fm] = idx
			got, ok := g.FormatIndex(fm)
			if !ok || got != idx {
				t.Fatalf("FormatIndex(%v) = %d,%v; want %d,true", fm, got, ok, idx)
			}
			if back := g.FormatAt(idx); back != fm {
				t.Fatalf("FormatAt(%d) = %v, want %v", idx, back, fm)
			}
		}
		if g.FormatCount() != len(seen) {
			t.Fatalf("FormatCount = %d, want %d", g.FormatCount(), len(seen))
		}
	})
}
