package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// Cache memoizes built adaptation graphs so that repeated compositions
// over the same content/device/service deployment skip graph
// construction entirely — the amortization a production planner needs
// when many receivers share one deployment.
//
// Keying. Entries are keyed by a 64-bit fingerprint over everything
// Build consumes structurally: the content variants, the device's
// decoders, the full service descriptions, the host resource
// declarations and the sender/receiver hosts. The live overlay network
// is identified by pointer (its *state* is tracked separately, below);
// graphs built from a static profile.Set fingerprint the profile's link
// table instead.
//
// Invalidation. A live overlay network carries a generation counter
// (overlay.Network.Generation) bumped on every mutation. On a lookup
// whose entry was built at an older generation, the cache compares two
// signatures of the network's link table:
//
//   - the connectivity signature (which links exist with positive
//     bandwidth) — if it changed, host-pair reachability may have
//     changed, so the graph is rebuilt from scratch;
//   - the value signature (exact bandwidth/delay/loss) — if only it
//     changed, the cached topology is still valid and the cache merely
//     refreshes the QoS annotations of the existing edges in place.
//
// This implements the rule that bandwidth fluctuation invalidates edges,
// never topology. Explicit invalidation is available through Invalidate
// and Reset.
//
// Concurrency. The cache itself is safe for concurrent use. The returned
// *Graph is shared between callers and refreshed in place: do not run a
// refresh-triggering Build concurrently with selections on a previously
// returned graph; serialize compose traffic through the cache or
// snapshot the network first.
type Cache struct {
	mu      sync.Mutex
	max     int
	tick    uint64
	entries map[uint64]*cacheEntry

	hits, misses, refreshes, repairs uint64
}

type cacheEntry struct {
	g        *Graph
	in       Input // inputs retained for rebuild and refresh
	netGen   uint64
	connSig  uint64
	valueSig uint64
	lastUsed uint64
}

// DefaultCacheSize bounds a Cache built with NewCache(0).
const DefaultCacheSize = 64

// NewCache returns a cache holding at most maxEntries graphs (least
// recently used evicted first); maxEntries <= 0 selects
// DefaultCacheSize.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cache{max: maxEntries, entries: make(map[uint64]*cacheEntry)}
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from the cache, including refreshed
	// ones.
	Hits uint64
	// Misses counts lookups that built a graph.
	Misses uint64
	// Refreshes counts hits that re-annotated edge QoS in place after a
	// bandwidth-only network change.
	Refreshes uint64
	// Repairs counts hits that patched only the edges touching a known
	// changed-link set (BuildRepair) instead of re-annotating every edge.
	Repairs uint64
	// Entries is the current number of cached graphs.
	Entries int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Refreshes: c.refreshes, Repairs: c.repairs, Entries: len(c.entries)}
}

// Reset drops every cached graph.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
}

// Invalidate drops the cached graph for the given input, if present.
func (c *Cache) Invalidate(in Input) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, fingerprintInput(&in))
}

// BuildOutcome reports how a cache lookup was served: a plain hit, a
// hit that refreshed edge QoS in place, or a miss that built the graph.
type BuildOutcome string

const (
	OutcomeHit     BuildOutcome = "hit"
	OutcomeRefresh BuildOutcome = "refresh"
	OutcomeRepair  BuildOutcome = "repair"
	OutcomeMiss    BuildOutcome = "miss"
)

// Build returns the adaptation graph for the input, reusing a cached one
// when the structural inputs are unchanged. See the type comment for the
// network-change rules.
func (c *Cache) Build(in Input) (*Graph, error) {
	g, _, err := c.BuildEx(in)
	return g, err
}

// BuildEx is Build plus the exact cache outcome, for instrumentation.
func (c *Cache) BuildEx(in Input) (*Graph, BuildOutcome, error) {
	key := fingerprintInput(&in)
	var gen uint64
	if in.Net != nil {
		gen = in.Net.Generation()
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if in.Net == nil || gen == e.netGen {
			c.hits++
			c.touch(e)
			g := e.g
			c.mu.Unlock()
			return g, OutcomeHit, nil
		}
		connSig, valueSig := networkSignatures(in.Net.Snapshot())
		if connSig == e.connSig {
			if valueSig != e.valueSig && !refreshEdgeQoS(e.g, &e.in) {
				// A host pair lost connectivity despite an unchanged
				// link set — fall through to a rebuild.
				delete(c.entries, key)
			} else {
				e.valueSig = valueSig
				e.netGen = gen
				c.hits++
				c.refreshes++
				c.touch(e)
				g := e.g
				c.mu.Unlock()
				return g, OutcomeRefresh, nil
			}
		} else {
			delete(c.entries, key)
		}
	}
	c.misses++
	c.mu.Unlock()

	g, err := Build(in)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	e := &cacheEntry{g: g, in: in, netGen: gen}
	if in.Net != nil {
		e.connSig, e.valueSig = networkSignatures(in.Net.Snapshot())
	}
	c.mu.Lock()
	c.touch(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()
	return g, OutcomeMiss, nil
}

// BuildFromSet returns the graph for a full profile set, cached on a
// fingerprint of the set itself (including its static network links) —
// two calls with equal sets share one graph and skip both overlay and
// graph construction.
func (c *Cache) BuildFromSet(set *profile.Set) (*Graph, error) {
	g, _, err := c.BuildFromSetEx(set)
	return g, err
}

// BuildFromSetEx is BuildFromSet plus the exact cache outcome, for
// instrumentation.
func (c *Cache) BuildFromSetEx(set *profile.Set) (*Graph, BuildOutcome, error) {
	// Validate first: it stamps each service's Host from its
	// intermediary, which the fingerprint must see so that the first and
	// subsequent calls hash identically.
	if err := set.Validate(); err != nil {
		return nil, OutcomeMiss, err
	}
	key := fingerprintSet(set)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.touch(e)
		g := e.g
		c.mu.Unlock()
		return g, OutcomeHit, nil
	}
	c.misses++
	c.mu.Unlock()

	g, err := BuildFromSet(set)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	e := &cacheEntry{g: g}
	c.mu.Lock()
	c.touch(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()
	return g, OutcomeMiss, nil
}

func (c *Cache) touch(e *cacheEntry) {
	c.tick++
	e.lastUsed = c.tick
}

func (c *Cache) evictLocked() {
	for len(c.entries) > c.max {
		var oldestKey uint64
		var oldest *cacheEntry
		for k, e := range c.entries {
			if oldest == nil || e.lastUsed < oldest.lastUsed {
				oldestKey, oldest = k, e
			}
		}
		delete(c.entries, oldestKey)
	}
}

// refreshEdgeQoS re-annotates every edge of a cached graph with the
// network's current bandwidth/delay/loss, leaving the topology alone.
// It reports false when some edge's host pair is no longer connected —
// the caller must rebuild.
func refreshEdgeQoS(g *Graph, in *Input) bool {
	for i := 0; i < g.NodeIndexCount(); i++ {
		fromNode, ok := g.Node(g.NodeIDAt(i))
		if !ok {
			continue // pruned vertex
		}
		for _, e := range g.OutAt(i) {
			toNode, ok := g.Node(e.To)
			if !ok {
				continue
			}
			kbps, delay, loss, connected := linkQoS(in.Net, fromNode.Host, toNode.Host)
			if !connected {
				return false
			}
			e.BandwidthKbps = kbps
			e.DelayMs = delay
			e.LossRate = loss
		}
	}
	return true
}

// networkSignatures hashes a network snapshot into the connectivity
// signature (link endpoints and bandwidth positivity) and the value
// signature (exact QoS figures). Snapshot links are sorted, so the
// hashes are deterministic.
func networkSignatures(p profile.Network) (connSig, valueSig uint64) {
	ch, vh := newFnv(), newFnv()
	for _, l := range p.Links {
		ch.str(l.From)
		ch.str(l.To)
		ch.bool(l.BandwidthKbps > 0)
		vh.str(l.From)
		vh.str(l.To)
		vh.f64(l.BandwidthKbps)
		vh.f64(l.DelayMs)
		vh.f64(l.LossRate)
	}
	return ch.sum, vh.sum
}

// fnv is a tiny FNV-1a stream hasher over the canonical byte encodings
// of the fingerprinted fields. 64 bits is plenty for a cache bounded at
// tens of entries; a collision costs correctness only if two different
// deployments are composed through one cache in one process, which the
// structural fields make astronomically unlikely.
type fnv struct{ sum uint64 }

func newFnv() *fnv { return &fnv{sum: 1469598103934665603} }

func (h *fnv) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= 1099511628211
}

// u64 folds a whole word per step instead of running the byte loop
// eight times. Fingerprints live only in this process's cache map, so
// the exact bit pattern is free to change; the word-at-a-time variant
// mixes less per bit than true FNV-1a but far more than the cache's
// tens of entries need, and it makes fingerprinting the numeric-heavy
// network signatures ~8x cheaper on the warm-hit path.
func (h *fnv) u64(v uint64) {
	h.sum ^= v
	h.sum *= 1099511628211
}

func (h *fnv) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *fnv) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *fnv) bool(b bool) {
	if b {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

func (h *fnv) format(f media.Format) {
	h.u64(uint64(f.Kind))
	h.str(f.Encoding)
	h.str(f.Profile)
}

func (h *fnv) params(p media.Params) {
	names := p.Names()
	h.u64(uint64(len(names)))
	for _, name := range names {
		h.str(string(name))
		h.f64(p[name])
	}
}

func (h *fnv) domains(d map[media.Param]satisfaction.Domain) {
	names := make([]string, 0, len(d))
	for k := range d {
		names = append(names, string(k))
	}
	sort.Strings(names)
	h.u64(uint64(len(names)))
	for _, name := range names {
		h.str(name)
		dom := d[media.Param(name)]
		h.u64(uint64(len(dom.Values)))
		for _, v := range dom.Values {
			h.f64(v)
		}
	}
}

func (h *fnv) service(s *service.Service) {
	h.str(string(s.ID))
	h.str(s.Host)
	h.u64(uint64(len(s.Inputs)))
	for _, f := range s.Inputs {
		h.format(f)
	}
	h.u64(uint64(len(s.Outputs)))
	for _, f := range s.Outputs {
		h.format(f)
	}
	h.params(s.Caps)
	h.domains(s.Domains)
	h.f64(s.CPUPerKbps)
	h.f64(s.MemoryMB)
	h.f64(s.Cost)
}

func (h *fnv) content(cnt *profile.Content) {
	h.str(cnt.ID)
	h.u64(uint64(len(cnt.Variants)))
	for _, v := range cnt.Variants {
		h.format(v.Format)
		h.params(v.Params)
	}
}

func (h *fnv) device(dev *profile.Device) {
	h.str(dev.ID)
	h.u64(uint64(len(dev.Software.Decoders)))
	for _, f := range dev.Software.Decoders {
		h.format(f)
	}
}

// fingerprintInput keys a live-network build: every structural input plus
// the network's identity (not its state — that is the generation
// counter's job).
func fingerprintInput(in *Input) uint64 {
	h := newFnv()
	if in.Content != nil {
		h.content(in.Content)
	}
	if in.Device != nil {
		h.device(in.Device)
	}
	h.u64(uint64(len(in.Services)))
	for _, s := range in.Services {
		h.service(s)
	}
	h.str(in.SenderHost)
	h.str(in.ReceiverHost)
	h.u64(uint64(len(in.Intermediaries)))
	for i := range in.Intermediaries {
		inter := &in.Intermediaries[i]
		h.str(inter.Host)
		h.f64(inter.CPUMips)
		h.f64(inter.MemoryMB)
	}
	h.str(fmt.Sprintf("%p", in.Net))
	return h.sum
}

// fingerprintSet keys a static-profile build on the set's contents,
// including the network link table.
func fingerprintSet(set *profile.Set) uint64 {
	h := newFnv()
	h.content(&set.Content)
	h.device(&set.Device)
	h.u64(uint64(len(set.Intermediaries)))
	for i := range set.Intermediaries {
		inter := &set.Intermediaries[i]
		h.str(inter.Host)
		h.f64(inter.CPUMips)
		h.f64(inter.MemoryMB)
		h.u64(uint64(len(inter.Services)))
		for _, s := range inter.Services {
			h.service(s)
		}
	}
	h.u64(uint64(len(set.Network.Links)))
	for _, l := range set.Network.Links {
		h.str(l.From)
		h.str(l.To)
		h.f64(l.BandwidthKbps)
		h.f64(l.DelayMs)
		h.f64(l.LossRate)
	}
	return h.sum
}
