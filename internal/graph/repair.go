package graph

import "qoschain/internal/overlay"

// Incremental graph repair: when the caller knows *which* links a
// network event changed (the fault → overlay event path carries the
// changed-link set), re-annotating every edge of a cached graph is
// wasted work — on a Figure 6-style deployment a backbone event touches
// a handful of links while the graph carries hundreds of edges. Repair
// patches only the edges the changed set can influence:
//
//   - an edge between hosts joined by a direct usable link is exact as
//     long as that one link is unchanged — skipped unless its link is in
//     the changed set;
//   - an edge between hosts with no direct link was annotated from a
//     routed (widest/min-delay) path that may cross any changed link —
//     always re-queried, conservatively;
//   - a co-located edge (same host) is link-independent — always skipped.
//
// Repair preserves the cache's refresh-vs-rebuild decision rule: it
// applies only while the connectivity signature is unchanged. Any
// topology-affecting event (link down, host crash, bandwidth to zero)
// changes the connectivity signature and falls back to a full rebuild,
// exactly as BuildEx would.

// BuildRepair is Build with a known changed-link set: a cached graph
// whose topology is intact is patched only on the edges touching the
// changed links. See BuildRepairEx for the outcome rules.
func (c *Cache) BuildRepair(in Input, changed []overlay.LinkRef) (*Graph, error) {
	g, _, err := c.BuildRepairEx(in, changed)
	return g, err
}

// BuildRepairEx is BuildEx specialized for a known changed-link set.
// With no cached entry, no live network, or an empty changed set it
// behaves exactly like BuildEx. On a cached entry whose connectivity
// signature is unchanged it returns OutcomeRepair after patching only
// the affected edges; a connectivity change (or a host pair that lost
// its routed path) falls back to the BuildEx rebuild path and reports
// OutcomeMiss.
func (c *Cache) BuildRepairEx(in Input, changed []overlay.LinkRef) (*Graph, BuildOutcome, error) {
	if in.Net == nil || len(changed) == 0 {
		return c.BuildEx(in)
	}
	key := fingerprintInput(&in)
	gen := in.Net.Generation()

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return c.BuildEx(in)
	}
	if gen == e.netGen {
		c.hits++
		c.touch(e)
		g := e.g
		c.mu.Unlock()
		return g, OutcomeHit, nil
	}
	connSig, valueSig := networkSignatures(in.Net.Snapshot())
	if connSig != e.connSig {
		// Host-pair reachability may have changed: rebuild from scratch.
		delete(c.entries, key)
		c.mu.Unlock()
		return c.BuildEx(in)
	}
	touched := make(map[[2]string]bool, len(changed))
	for _, l := range changed {
		touched[[2]string{l.From, l.To}] = true
	}
	if !repairEdgeQoS(e.g, &e.in, touched) {
		// A routed host pair lost connectivity despite an unchanged link
		// set — same fallback as the refresh path.
		delete(c.entries, key)
		c.mu.Unlock()
		return c.BuildEx(in)
	}
	e.valueSig = valueSig
	e.netGen = gen
	c.hits++
	c.repairs++
	c.touch(e)
	g := e.g
	c.mu.Unlock()
	return g, OutcomeRepair, nil
}

// repairEdgeQoS re-annotates the edges the changed-link set can
// influence (see the package comment above for the decision rule). It
// reports false when some edge's host pair is no longer connected — the
// caller must rebuild.
func repairEdgeQoS(g *Graph, in *Input, touched map[[2]string]bool) bool {
	for i := 0; i < g.NodeIndexCount(); i++ {
		fromNode, ok := g.Node(g.NodeIDAt(i))
		if !ok {
			continue // pruned vertex
		}
		for _, e := range g.OutAt(i) {
			toNode, ok := g.Node(e.To)
			if !ok {
				continue
			}
			if fromNode.Host == toNode.Host {
				continue // co-located: +Inf regardless of any link
			}
			if !touched[[2]string{fromNode.Host, toNode.Host}] &&
				in.Net.HasUsableLink(fromNode.Host, toNode.Host) {
				continue // direct link unchanged: annotation still exact
			}
			kbps, delay, loss, connected := linkQoS(in.Net, fromNode.Host, toNode.Host)
			if !connected {
				return false
			}
			e.BandwidthKbps = kbps
			e.DelayMs = delay
			e.LossRate = loss
		}
	}
	return true
}
