package graph

import (
	"math"
	"strings"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// buildFixture creates a small pipeline:
//
//	sender --F1--> conv1 --F2--> conv2 --F3--> receiver
//	sender -----------F3 (direct, device decodes F3) ----> receiver
func buildFixture(t *testing.T) *Graph {
	t.Helper()
	content := &profile.Content{
		ID: "c",
		Variants: []media.Descriptor{
			{Format: media.Opaque(1), Params: media.Params{media.ParamFrameRate: 30}},
			{Format: media.Opaque(3), Params: media.Params{media.ParamFrameRate: 10}},
		},
	}
	device := &profile.Device{
		ID:       "dev",
		Software: profile.Software{Decoders: []media.Format{media.Opaque(3)}},
	}
	conv1 := service.FormatConverter("conv1", media.Opaque(1), media.Opaque(2))
	conv1.Host = "p1"
	conv2 := service.FormatConverter("conv2", media.Opaque(2), media.Opaque(3))
	conv2.Host = "p2"
	net := overlay.New()
	net.AddLink("sender", "p1", 3000, 10, 0)
	net.AddLink("p1", "p2", 2000, 10, 0)
	net.AddLink("p2", "dev", 1000, 10, 0)
	net.AddLink("sender", "dev", 500, 10, 0)
	g, err := Build(Input{
		Content: content, Device: device,
		Services:     []*service.Service{conv1, conv2},
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "dev",
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildPipeline(t *testing.T) {
	g := buildFixture(t)
	if g.NodeCount() != 4 {
		t.Errorf("NodeCount = %d, want 4", g.NodeCount())
	}
	// sender->conv1 (F1), conv1->conv2 (F2), conv2->receiver (F3),
	// sender->receiver (F3 direct).
	if g.EdgeCount() != 4 {
		t.Errorf("EdgeCount = %d, want 4: %s", g.EdgeCount(), g)
	}
	out := g.Out(SenderID)
	if len(out) != 2 {
		t.Fatalf("sender out-degree = %d, want 2", len(out))
	}
	for _, e := range out {
		if e.SourceParams == nil {
			t.Error("sender edge must carry variant params")
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("built graph should validate: %v", err)
	}
}

func TestBuildEdgeBandwidths(t *testing.T) {
	g := buildFixture(t)
	for _, e := range g.Out(SenderID) {
		switch e.To {
		case "conv1":
			if e.BandwidthKbps != 3000 {
				t.Errorf("sender->conv1 bandwidth = %v, want 3000", e.BandwidthKbps)
			}
		case ReceiverID:
			if e.BandwidthKbps != 500 {
				t.Errorf("sender->receiver bandwidth = %v, want 500", e.BandwidthKbps)
			}
		}
	}
}

func TestBuildWithoutNetwork(t *testing.T) {
	content := &profile.Content{ID: "c", Variants: []media.Descriptor{{Format: media.Opaque(1)}}}
	device := &profile.Device{ID: "d", Software: profile.Software{Decoders: []media.Format{media.Opaque(1)}}}
	g, err := Build(Input{Content: content, Device: device})
	if err != nil {
		t.Fatal(err)
	}
	out := g.Out(SenderID)
	if len(out) != 1 || !math.IsInf(out[0].BandwidthKbps, 1) {
		t.Errorf("nil network should give unlimited (+Inf) bandwidth edges: %v", out)
	}
}

func TestBuildSkipsDisconnectedHosts(t *testing.T) {
	content := &profile.Content{ID: "c", Variants: []media.Descriptor{{Format: media.Opaque(1)}}}
	device := &profile.Device{ID: "d", Software: profile.Software{Decoders: []media.Format{media.Opaque(2)}}}
	far := service.FormatConverter("far", media.Opaque(1), media.Opaque(2))
	far.Host = "island"
	net := overlay.New()
	net.AddLink("sender", "d", 100, 0, 0)
	net.AddNode("island")
	g, err := Build(Input{Content: content, Device: device,
		Services: []*service.Service{far}, Net: net,
		SenderHost: "sender", ReceiverHost: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 0 {
		t.Errorf("disconnected host should produce no edges:\n%s", g)
	}
}

func TestBuildRejectsInvalidInputs(t *testing.T) {
	if _, err := Build(Input{}); err == nil {
		t.Error("missing profiles should fail")
	}
	content := &profile.Content{ID: "c", Variants: []media.Descriptor{{Format: media.Opaque(1)}}}
	device := &profile.Device{ID: "d", Software: profile.Software{Decoders: []media.Format{media.Opaque(1)}}}
	bad := &service.Service{ID: "x"}
	if _, err := Build(Input{Content: content, Device: device, Services: []*service.Service{bad}}); err == nil {
		t.Error("invalid service should fail")
	}
	dup := service.FormatConverter("dup", media.Opaque(1), media.Opaque(2))
	if _, err := Build(Input{Content: content, Device: device, Services: []*service.Service{dup, dup.Clone()}}); err == nil {
		t.Error("duplicate service IDs should fail")
	}
	reserved := service.FormatConverter("sender", media.Opaque(1), media.Opaque(2))
	if _, err := Build(Input{Content: content, Device: device, Services: []*service.Service{reserved}}); err == nil {
		t.Error("reserved service ID should fail")
	}
}

func TestGraphAddEdgeErrors(t *testing.T) {
	g := NewGraph("s", "r")
	if err := g.AddEdge(&Edge{From: "ghost", To: ReceiverID, Format: media.Opaque(1)}); err == nil {
		t.Error("edge from unknown vertex should fail")
	}
	if err := g.AddEdge(&Edge{From: SenderID, To: "ghost", Format: media.Opaque(1)}); err == nil {
		t.Error("edge to unknown vertex should fail")
	}
	if err := g.AddEdge(&Edge{From: SenderID, To: SenderID, Format: media.Opaque(1)}); err == nil {
		t.Error("self-loop should fail")
	}
}

func TestGraphValidateCatchesBadEdges(t *testing.T) {
	g := NewGraph("s", "r")
	_ = g.AddService(service.FormatConverter("c1", media.Opaque(1), media.Opaque(2)))
	_ = g.AddEdge(&Edge{From: "c1", To: SenderID, Format: media.Opaque(2)})
	if err := g.Validate(); err == nil {
		t.Error("incoming sender edge should fail validation")
	}
	g2 := NewGraph("s", "r")
	_ = g2.AddService(service.FormatConverter("c1", media.Opaque(1), media.Opaque(2)))
	_ = g2.AddEdge(&Edge{From: ReceiverID, To: "c1", Format: media.Opaque(1)})
	if err := g2.Validate(); err == nil {
		t.Error("outgoing receiver edge should fail validation")
	}
}

func TestNodeIDsNaturalOrder(t *testing.T) {
	g := NewGraph("s", "r")
	for _, id := range []service.ID{"t10", "t2", "t1"} {
		_ = g.AddService(service.FormatConverter(id, media.Opaque(1), media.Opaque(2)))
	}
	ids := g.NodeIDs()
	want := []NodeID{SenderID, "t1", "t2", "t10", ReceiverID}
	if len(ids) != len(want) {
		t.Fatalf("NodeIDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("NodeIDs = %v, want %v", ids, want)
		}
	}
}

func TestNeighbors(t *testing.T) {
	g := buildFixture(t)
	nb := g.Neighbors(SenderID)
	if len(nb) != 2 || nb[0] != "conv1" || nb[1] != ReceiverID {
		t.Errorf("Neighbors(sender) = %v", nb)
	}
	if len(g.Neighbors(ReceiverID)) != 0 {
		t.Error("receiver has no neighbors")
	}
}

func TestPruneRemovesDeadEnds(t *testing.T) {
	g := buildFixture(t)
	// deadend accepts F1 but produces a format nobody consumes.
	dead := service.FormatConverter("deadend", media.Opaque(1), media.Opaque(99))
	if err := g.AddService(dead); err != nil {
		t.Fatal(err)
	}
	_ = g.AddEdge(&Edge{From: SenderID, To: "deadend", Format: media.Opaque(1)})
	// orphan is never connected at all.
	if err := g.AddService(service.FormatConverter("orphan", media.Opaque(50), media.Opaque(51))); err != nil {
		t.Fatal(err)
	}
	before := g.NodeCount()
	removed := g.Prune()
	if removed == 0 {
		t.Error("prune should remove the dead-end edge")
	}
	if g.NodeCount() != before-2 {
		t.Errorf("prune should drop 2 vertices, %d -> %d", before, g.NodeCount())
	}
	if _, ok := g.Node("deadend"); ok {
		t.Error("dead-end vertex should be pruned")
	}
	if _, ok := g.Node("orphan"); ok {
		t.Error("orphan vertex should be pruned")
	}
	if !g.HasPath() {
		t.Error("pruning must preserve sender→receiver connectivity")
	}
}

func TestPruneDedupsParallelEdges(t *testing.T) {
	g := NewGraph("s", "r")
	_ = g.AddEdge(&Edge{From: SenderID, To: ReceiverID, Format: media.Opaque(1), BandwidthKbps: 100})
	_ = g.AddEdge(&Edge{From: SenderID, To: ReceiverID, Format: media.Opaque(1), BandwidthKbps: 900})
	_ = g.AddEdge(&Edge{From: SenderID, To: ReceiverID, Format: media.Opaque(2), BandwidthKbps: 50})
	removed := g.Prune()
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	for _, e := range g.Out(SenderID) {
		if e.Format == media.Opaque(1) && e.BandwidthKbps != 900 {
			t.Error("dedup must keep the widest edge")
		}
	}
}

func TestPruneKeepsDisconnectedSenderReceiver(t *testing.T) {
	g := NewGraph("s", "r")
	g.Prune()
	if _, ok := g.Node(SenderID); !ok {
		t.Error("sender must survive pruning")
	}
	if _, ok := g.Node(ReceiverID); !ok {
		t.Error("receiver must survive pruning")
	}
	if g.HasPath() {
		t.Error("empty graph has no path")
	}
}

func TestBuildFromSet(t *testing.T) {
	set := &profile.Set{
		User: profile.User{Name: "u", Preferences: map[media.Param]profile.FuncSpec{
			media.ParamFrameRate: profile.LinearSpec(0, 30),
		}},
		Content: profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: profile.Device{ID: "dev", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263},
		}},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "p1", BandwidthKbps: 2000},
			{From: "p1", To: "dev", BandwidthKbps: 1000},
		}},
		Intermediaries: []profile.Intermediary{{
			Host: "p1", CPUMips: 1000, MemoryMB: 256,
			Services: []*service.Service{service.FormatConverter("c1", media.VideoMPEG1, media.VideoH263)},
		}},
	}
	g, err := BuildFromSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasPath() {
		t.Error("set should yield a sender→receiver path")
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2:\n%s", g.EdgeCount(), g)
	}
}

func TestStringAndDOTDeterministic(t *testing.T) {
	g := buildFixture(t)
	s1, s2 := g.String(), g.String()
	if s1 != s2 {
		t.Error("String must be deterministic")
	}
	if !strings.Contains(s1, "sender -[video/f1]-> conv1") {
		t.Errorf("String missing expected edge:\n%s", s1)
	}
	var b1, b2 strings.Builder
	if err := g.WriteDOT(&b1, "test"); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&b2, "test"); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("WriteDOT must be deterministic")
	}
	for _, want := range []string{"digraph", "rankdir=LR", `"sender" -> "conv1"`, "3000 kbps"} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("DOT missing %q:\n%s", want, b1.String())
		}
	}
}

func TestLessNaturalOrdering(t *testing.T) {
	cases := []struct {
		a, b NodeID
		want bool
	}{
		{"t2", "t10", true},
		{"t10", "t2", false},
		{"t1", "t1", false},
		{"alpha", "beta", true},
		{"t1", "sender", false}, // falls back to lexicographic for mixed prefixes
	}
	for _, c := range cases {
		if got := LessNatural(c.a, c.b); got != c.want {
			t.Errorf("LessNatural(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBuildEdgeDelays(t *testing.T) {
	g := buildFixture(t)
	for _, e := range g.Out(SenderID) {
		switch e.To {
		case "conv1":
			if e.DelayMs != 10 {
				t.Errorf("sender->conv1 delay = %v, want 10", e.DelayMs)
			}
		case ReceiverID:
			if e.DelayMs != 10 {
				t.Errorf("sender->receiver delay = %v, want 10", e.DelayMs)
			}
		}
	}
}

func TestBuildRoutedDelay(t *testing.T) {
	// No direct sender->p2 link: traffic routes sender->p1->p2 (20 ms).
	content := &profile.Content{ID: "c", Variants: []media.Descriptor{
		{Format: media.Opaque(1), Params: media.Params{media.ParamFrameRate: 30}},
	}}
	device := &profile.Device{ID: "d", Software: profile.Software{Decoders: []media.Format{media.Opaque(2)}}}
	far := service.FormatConverter("far", media.Opaque(1), media.Opaque(2))
	far.Host = "p2"
	net := overlay.New()
	net.AddLink("sender", "p1", 2000, 10, 0)
	net.AddLink("p1", "p2", 2000, 10, 0)
	net.AddLink("p2", "d", 2000, 5, 0)
	g, err := Build(Input{Content: content, Device: device,
		Services: []*service.Service{far}, Net: net,
		SenderHost: "sender", ReceiverHost: "d"})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Out(SenderID) {
		if e.To == "far" && e.DelayMs != 20 {
			t.Errorf("routed delay = %v, want 20 (10+10)", e.DelayMs)
		}
	}
}

func TestBuildEdgeLossRate(t *testing.T) {
	content := &profile.Content{ID: "c", Variants: []media.Descriptor{
		{Format: media.Opaque(1), Params: media.Params{media.ParamFrameRate: 30}},
	}}
	device := &profile.Device{ID: "d", Software: profile.Software{Decoders: []media.Format{media.Opaque(1)}}}
	net := overlay.New()
	net.AddLink("sender", "d", 1000, 10, 0.05)
	g, err := Build(Input{Content: content, Device: device, Net: net,
		SenderHost: "sender", ReceiverHost: "d"})
	if err != nil {
		t.Fatal(err)
	}
	out := g.Out(SenderID)
	if len(out) != 1 || out[0].LossRate != 0.05 {
		t.Errorf("edge loss = %v", out)
	}
}

func TestHostResourcesDeclaration(t *testing.T) {
	g := NewGraph("s", "r")
	if _, ok := g.HostResources("p1"); ok {
		t.Error("undeclared host should report not-ok")
	}
	g.SetHostResources("p1", HostResources{CPUMips: 100, MemoryMB: 64})
	r, ok := g.HostResources("p1")
	if !ok || r.CPUMips != 100 || r.MemoryMB != 64 {
		t.Errorf("HostResources = %+v %v", r, ok)
	}
}

func TestWriteDOTHighlight(t *testing.T) {
	g := buildFixture(t)
	path := []NodeID{SenderID, "conv1", "conv2", ReceiverID}
	formats := []media.Format{media.Opaque(1), media.Opaque(2), media.Opaque(3)}
	var b strings.Builder
	if err := g.WriteDOTHighlight(&b, "selected", path, formats); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph \"selected\"",
		`"conv1" [fillcolor="lightblue"`,
		"penwidth=3, color=blue",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("highlighted DOT missing %q:\n%s", want, out)
		}
	}
	// The direct sender->receiver edge is off-path and must stay plain.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `"sender" -> "receiver"`) && strings.Contains(line, "penwidth") {
			t.Errorf("off-path edge highlighted: %s", line)
		}
	}
}
