package graph

// Pruning implements the "optimization techniques ... to remove the extra
// edges in the graph" step of Section 4: edges and vertices that can never
// appear on a sender→receiver chain are deleted before selection runs.

// Prune removes, in order:
//
//  1. duplicate parallel edges (same endpoints and format), keeping the
//     one with the highest bandwidth;
//  2. vertices unreachable from the sender;
//  3. vertices from which the receiver is unreachable.
//
// It returns the number of edges removed. The sender and receiver are
// never removed, even when disconnected.
func (g *Graph) Prune() int {
	// Pruning rewrites adjacency lists; drop the EdgeBetween index.
	g.edgeIdx.Store(nil)
	removed := g.dedupEdges()

	reachable := g.forwardReachable(SenderID)
	coreach := g.backwardReachable(ReceiverID)

	keep := func(id NodeID) bool {
		if id == SenderID || id == ReceiverID {
			return true
		}
		return reachable[id] && coreach[id]
	}

	drop := make(map[NodeID]bool)
	for id := range g.nodes {
		if !keep(id) {
			drop[id] = true
		}
	}
	if len(drop) == 0 {
		return removed
	}
	// Batch removal: delete dropped vertices and their outgoing edges,
	// filter surviving adjacency lists once, then rebuild the incoming
	// index in one pass (removing nodes one at a time would rebuild the
	// index per node, turning pruning quadratic).
	for id := range drop {
		removed += len(g.out[id])
		delete(g.nodes, id)
		delete(g.out, id)
		delete(g.in, id)
	}
	for id, edges := range g.out {
		kept := edges[:0]
		for _, e := range edges {
			if drop[e.To] {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		g.out[id] = kept
	}
	g.rebuildIn()
	return removed
}

// dedupEdges collapses parallel same-format edges to the widest one.
func (g *Graph) dedupEdges() int {
	removed := 0
	for id, edges := range g.out {
		type key struct {
			to     NodeID
			format string
		}
		best := make(map[key]*Edge, len(edges))
		for _, e := range edges {
			k := key{e.To, e.Format.String()}
			if prev, ok := best[k]; !ok || e.BandwidthKbps > prev.BandwidthKbps {
				best[k] = e
			}
		}
		if len(best) == len(edges) {
			continue
		}
		kept := make([]*Edge, 0, len(best))
		for _, e := range edges {
			k := key{e.To, e.Format.String()}
			if best[k] == e {
				kept = append(kept, e)
			}
		}
		removed += len(edges) - len(kept)
		g.out[id] = kept
	}
	if removed > 0 {
		g.rebuildIn()
	}
	return removed
}

func (g *Graph) rebuildIn() {
	g.in = make(map[NodeID][]*Edge, len(g.in))
	count := 0
	for _, edges := range g.out {
		for _, e := range edges {
			g.in[e.To] = append(g.in[e.To], e)
			count++
		}
	}
	g.edges = count
}

func (g *Graph) forwardReachable(start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[cur] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

func (g *Graph) backwardReachable(start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.in[cur] {
			if !seen[e.From] {
				seen[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}
	return seen
}

// HasPath reports whether any sender→receiver chain exists at all.
func (g *Graph) HasPath() bool {
	return g.forwardReachable(SenderID)[ReceiverID]
}
