package graph

import (
	"sort"

	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// Directory is the service-discovery query graph construction needs: who
// accepts a given format. registry.Registry, registry.Federation and
// registry.RemoteSource all satisfy it.
type Directory interface {
	ByInput(media.Format) []*service.Service
}

// Discover collects the trans-coding services relevant to adapting the
// content by breadth-first expansion over formats: starting from the
// content's variant formats, it queries the directory for services
// accepting each frontier format and adds their output formats to the
// frontier, up to maxDepth conversion steps (0 means unlimited). The
// result is sorted by service ID and ready for Build.
//
// This is how a deployment actually obtains the Build input: rather than
// enumerating every advertised service, only those reachable from the
// content's formats matter — everything else could never join a chain.
func Discover(dir Directory, content *profile.Content, maxDepth int) []*service.Service {
	if dir == nil || content == nil {
		return nil
	}
	seenFormats := make(media.FormatSet)
	frontier := make([]media.Format, 0, len(content.Variants))
	for _, v := range content.Variants {
		if !seenFormats.Contains(v.Format) {
			seenFormats.Add(v.Format)
			frontier = append(frontier, v.Format)
		}
	}
	found := make(map[service.ID]*service.Service)
	for depth := 0; len(frontier) > 0 && (maxDepth <= 0 || depth < maxDepth); depth++ {
		var next []media.Format
		for _, f := range frontier {
			for _, svc := range dir.ByInput(f) {
				if _, ok := found[svc.ID]; ok {
					continue
				}
				found[svc.ID] = svc
				for _, out := range svc.Outputs {
					if !seenFormats.Contains(out) {
						seenFormats.Add(out)
						next = append(next, out)
					}
				}
			}
		}
		frontier = next
	}
	out := make([]*service.Service, 0, len(found))
	for _, svc := range found {
		out = append(out, svc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
