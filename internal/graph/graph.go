// Package graph builds the directed adaptation graph of Section 4.2: the
// structure the QoS selection algorithm searches.
//
// Vertices are trans-coding services plus two special vertices — the
// sender (only output links, one per content variant) and the receiver
// (only input links, one per device decoder). A directed edge connects an
// output link of one vertex to a same-format input link of another, and
// carries the network bandwidth available between the two hosts
// (Section 4.3).
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"qoschain/internal/media"
	"qoschain/internal/service"
)

// NodeID identifies a vertex. The sender and receiver use the reserved
// IDs below; every other vertex uses its service ID.
type NodeID string

// Reserved vertex IDs.
const (
	SenderID   NodeID = "sender"
	ReceiverID NodeID = "receiver"
)

// Reserved vertex indices: every graph interns its vertices to dense
// integer indices at insertion time, with the sender and receiver always
// occupying the first two slots. The selection hot path uses indices to
// replace map lookups with slice indexing.
const (
	SenderIndex   = 0
	ReceiverIndex = 1
)

// Node is one vertex of the adaptation graph.
type Node struct {
	// ID is the vertex identity.
	ID NodeID
	// Service describes the trans-coding service; nil for the sender
	// and receiver vertices.
	Service *service.Service
	// Host is the network host the vertex lives on.
	Host string
}

// IsSender reports whether the node is the sender vertex.
func (n *Node) IsSender() bool { return n.ID == SenderID }

// IsReceiver reports whether the node is the receiver vertex.
func (n *Node) IsReceiver() bool { return n.ID == ReceiverID }

// Edge is one directed, format-labelled connection.
type Edge struct {
	// From/To are the endpoint vertices.
	From, To NodeID
	// fromIdx/toIdx/formatIdx are the interned indices of the endpoints
	// and the format label, assigned by AddEdge. They are meaningless on
	// edges that have not been added to a graph.
	fromIdx, toIdx, formatIdx int32
	// Format is the media format flowing over the edge (the matching
	// output/input link label, e.g. "F5" in Figure 3).
	Format media.Format
	// BandwidthKbps is the available bandwidth between the endpoint
	// hosts at construction time; +Inf for co-located endpoints.
	BandwidthKbps float64
	// DelayMs is the one-way network latency between the endpoint
	// hosts (0 for co-located endpoints).
	DelayMs float64
	// LossRate is the packet-loss probability of the direct link
	// between the endpoint hosts (0 when routed or co-located).
	LossRate float64
	// SourceParams carries the content variant's maximum QoS parameters
	// on sender-outgoing edges; nil elsewhere.
	SourceParams media.Params
	// TransmissionCost is an optional per-use monetary cost of the
	// edge, added to the accumulated cost of Figure 4 Step 6.
	TransmissionCost float64
}

// HostResources is the computing capacity of an intermediary host
// (Section 4.3: memory and CPU needs are a function of the input data;
// the host must be able to carry the service out).
type HostResources struct {
	// CPUMips is the processing capacity available for trans-coding.
	CPUMips float64
	// MemoryMB is the memory available for trans-coding.
	MemoryMB float64
}

// Graph is the adaptation graph.
type Graph struct {
	nodes map[NodeID]*Node
	out   map[NodeID][]*Edge
	in    map[NodeID][]*Edge
	edges int
	hosts map[string]HostResources

	// Interning tables: vertices and edge formats are assigned dense
	// integer indices at insertion time so the selection algorithm can
	// replace maps with slices and format sets with bitsets. Indices are
	// never reused, even after pruning removes a vertex.
	nodeIdx   map[NodeID]int32
	nodeList  []NodeID
	formatIdx map[media.Format]int32
	formats   []media.Format

	// edgeIdx is a lazily built (from, to, format) → edge lookup table
	// shared by concurrent readers (chain instantiation, mass failover
	// re-instantiation). Structural mutations drop it; in-place edge
	// updates (bandwidth refresh) keep it, since edge pointers are
	// stable. See EdgeBetween.
	edgeIdx atomic.Pointer[map[edgeKey]*Edge]
}

// edgeKey identifies an edge for EdgeBetween lookups.
type edgeKey struct {
	from, to NodeID
	format   media.Format
}

// NewGraph returns an empty graph containing only the sender and
// receiver vertices on the given hosts.
func NewGraph(senderHost, receiverHost string) *Graph {
	g := &Graph{
		nodes:     make(map[NodeID]*Node),
		out:       make(map[NodeID][]*Edge),
		in:        make(map[NodeID][]*Edge),
		hosts:     make(map[string]HostResources),
		nodeIdx:   make(map[NodeID]int32),
		formatIdx: make(map[media.Format]int32),
	}
	g.nodes[SenderID] = &Node{ID: SenderID, Host: senderHost}
	g.nodes[ReceiverID] = &Node{ID: ReceiverID, Host: receiverHost}
	g.internNode(SenderID)   // index 0 == SenderIndex
	g.internNode(ReceiverID) // index 1 == ReceiverIndex
	return g
}

// internNode assigns the next dense index to a vertex.
func (g *Graph) internNode(id NodeID) int32 {
	if i, ok := g.nodeIdx[id]; ok {
		return i
	}
	i := int32(len(g.nodeList))
	g.nodeIdx[id] = i
	g.nodeList = append(g.nodeList, id)
	return i
}

// internFormat assigns the next dense index to an edge format.
func (g *Graph) internFormat(f media.Format) int32 {
	if i, ok := g.formatIdx[f]; ok {
		return i
	}
	i := int32(len(g.formats))
	g.formatIdx[f] = i
	g.formats = append(g.formats, f)
	return i
}

// NodeIndexCount returns the size of the vertex index space (indices are
// dense in [0, NodeIndexCount) but may include pruned vertices).
func (g *Graph) NodeIndexCount() int { return len(g.nodeList) }

// NodeIndex returns the interned index of a vertex.
func (g *Graph) NodeIndex(id NodeID) (int, bool) {
	i, ok := g.nodeIdx[id]
	return int(i), ok
}

// NodeIDAt returns the vertex ID for an interned index. The ID of a
// pruned vertex remains resolvable.
func (g *Graph) NodeIDAt(i int) NodeID { return g.nodeList[i] }

// FormatCount returns the number of distinct edge formats interned so
// far.
func (g *Graph) FormatCount() int { return len(g.formats) }

// FormatIndex returns the interned index of a format that appeared on at
// least one edge.
func (g *Graph) FormatIndex(f media.Format) (int, bool) {
	i, ok := g.formatIdx[f]
	return int(i), ok
}

// FormatAt returns the format for an interned index.
func (g *Graph) FormatAt(i int) media.Format { return g.formats[i] }

// FromIndex returns the interned index of the edge's source vertex.
// Valid only for edges added to a graph.
func (e *Edge) FromIndex() int { return int(e.fromIdx) }

// ToIndex returns the interned index of the edge's target vertex.
// Valid only for edges added to a graph.
func (e *Edge) ToIndex() int { return int(e.toIdx) }

// FormatIndex returns the interned index of the edge's format label.
// Valid only for edges added to a graph.
func (e *Edge) FormatIndex() int { return int(e.formatIdx) }

// OutAt returns the outgoing edges of the vertex with the given interned
// index.
func (g *Graph) OutAt(i int) []*Edge { return g.out[g.nodeList[i]] }

// AddService inserts a service vertex. It fails on duplicate or reserved
// IDs.
func (g *Graph) AddService(s *service.Service) error {
	id := NodeID(s.ID)
	if id == SenderID || id == ReceiverID {
		return fmt.Errorf("graph: service uses reserved ID %q", id)
	}
	if _, exists := g.nodes[id]; exists {
		return fmt.Errorf("graph: duplicate vertex %q", id)
	}
	g.nodes[id] = &Node{ID: id, Service: s, Host: s.Host}
	g.internNode(id)
	return nil
}

// AddEdge inserts a directed edge. Both endpoints must exist.
func (g *Graph) AddEdge(e *Edge) error {
	if _, ok := g.nodes[e.From]; !ok {
		return fmt.Errorf("graph: edge from unknown vertex %q", e.From)
	}
	if _, ok := g.nodes[e.To]; !ok {
		return fmt.Errorf("graph: edge to unknown vertex %q", e.To)
	}
	if e.From == e.To {
		return fmt.Errorf("graph: self-loop on %q", e.From)
	}
	e.fromIdx = g.nodeIdx[e.From]
	e.toIdx = g.nodeIdx[e.To]
	e.formatIdx = g.internFormat(e.Format)
	g.out[e.From] = append(g.out[e.From], e)
	g.in[e.To] = append(g.in[e.To], e)
	g.edges++
	g.edgeIdx.Store(nil)
	return nil
}

// EdgeBetween returns the edge from→to carrying format, or nil. When
// parallel duplicates exist (only possible before Prune dedups them) the
// first edge in adjacency order wins, matching a linear scan of Out.
// Lookups hit a lazily built index, so instantiating a chain — or
// re-instantiating thousands of them during a mass failover — costs
// O(1) per path step instead of a scan of the vertex's out-degree.
//
// EdgeBetween is safe for concurrent use with other readers. Like every
// Graph accessor it must not race with structural mutation (AddEdge,
// Prune), which invalidates the index.
func (g *Graph) EdgeBetween(from, to NodeID, format media.Format) *Edge {
	idx := g.edgeIdx.Load()
	if idx == nil {
		m := make(map[edgeKey]*Edge, g.edges)
		for _, edges := range g.out {
			for _, e := range edges {
				k := edgeKey{e.From, e.To, e.Format}
				if _, dup := m[k]; !dup {
					m[k] = e
				}
			}
		}
		// Concurrent first builds may race benignly: each stores an
		// equivalent map and the last write wins.
		g.edgeIdx.Store(&m)
		idx = &m
	}
	return (*idx)[edgeKey{from, to, format}]
}

// SetHostResources declares an intermediary host's capacity. Hosts with
// no declared resources are treated as unconstrained.
func (g *Graph) SetHostResources(host string, r HostResources) {
	g.hosts[host] = r
}

// HostResources returns the declared capacity of a host; ok is false for
// undeclared (unconstrained) hosts.
func (g *Graph) HostResources(host string) (HostResources, bool) {
	r, ok := g.hosts[host]
	return r, ok
}

// Node returns the vertex by ID.
func (g *Graph) Node(id NodeID) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Out returns the outgoing edges of a vertex.
func (g *Graph) Out(id NodeID) []*Edge { return g.out[id] }

// In returns the incoming edges of a vertex.
func (g *Graph) In(id NodeID) []*Edge { return g.in[id] }

// NodeCount returns the number of vertices (including sender/receiver).
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of directed edges.
func (g *Graph) EdgeCount() int { return g.edges }

// NodeIDs returns all vertex IDs sorted, sender first and receiver last
// for readability.
func (g *Graph) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		if id == SenderID || id == ReceiverID {
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return LessNatural(out[i], out[j]) })
	result := append([]NodeID{SenderID}, out...)
	return append(result, ReceiverID)
}

// LessNatural orders node IDs naturally: t2 before t10, falling back to
// lexicographic comparison for mixed prefixes.
func LessNatural(a, b NodeID) bool {
	na, oka := trailingInt(string(a))
	nb, okb := trailingInt(string(b))
	pa, pb := prefix(string(a)), prefix(string(b))
	if oka && okb && pa == pb {
		return na < nb
	}
	return a < b
}

func prefix(s string) string {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	return s[:i]
}

func trailingInt(s string) (int, bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return 0, false
	}
	n := 0
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return n, true
}

// Neighbors returns the distinct vertices reachable over one outgoing
// edge, sorted naturally.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	for _, e := range g.out[id] {
		seen[e.To] = true
	}
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return LessNatural(out[i], out[j]) })
	return out
}

// Validate checks graph invariants: the sender has no incoming edges,
// the receiver no outgoing edges, every edge format is valid.
func (g *Graph) Validate() error {
	if len(g.in[SenderID]) > 0 {
		return fmt.Errorf("graph: sender has incoming edges")
	}
	if len(g.out[ReceiverID]) > 0 {
		return fmt.Errorf("graph: receiver has outgoing edges")
	}
	for _, edges := range g.out {
		for _, e := range edges {
			if err := e.Format.Validate(); err != nil {
				return fmt.Errorf("graph: edge %s->%s: %w", e.From, e.To, err)
			}
			if e.BandwidthKbps < 0 {
				return fmt.Errorf("graph: edge %s->%s negative bandwidth", e.From, e.To)
			}
		}
	}
	return nil
}

// String renders a deterministic adjacency listing, one edge per line.
func (g *Graph) String() string {
	var b strings.Builder
	for _, id := range g.NodeIDs() {
		edges := append([]*Edge(nil), g.out[id]...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].To != edges[j].To {
				return LessNatural(edges[i].To, edges[j].To)
			}
			return edges[i].Format.String() < edges[j].Format.String()
		})
		for _, e := range edges {
			fmt.Fprintf(&b, "%s -[%s]-> %s\n", e.From, e.Format, e.To)
		}
	}
	return b.String()
}
