package service

import (
	"strings"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

func sampleService() *Service {
	return &Service{
		ID:      "t1",
		Name:    "test transcoder",
		Inputs:  []media.Format{media.Opaque(5), media.Opaque(6)},
		Outputs: []media.Format{media.Opaque(10), media.Opaque(11), media.Opaque(12), media.Opaque(13)},
		Caps:    media.Params{media.ParamFrameRate: 25},
	}
}

func TestServiceValidate(t *testing.T) {
	if err := sampleService().Validate(); err != nil {
		t.Errorf("valid service rejected: %v", err)
	}
	bad := []*Service{
		{},
		{ID: "x", Outputs: []media.Format{media.ImageGIF}},
		{ID: "x", Inputs: []media.Format{media.ImageGIF}},
		{ID: "x", Inputs: []media.Format{{}}, Outputs: []media.Format{media.ImageGIF}},
		{ID: "x", Inputs: []media.Format{media.ImageGIF}, Outputs: []media.Format{{}}},
		{ID: "x", Inputs: []media.Format{media.ImageGIF}, Outputs: []media.Format{media.ImageJPEG}, Caps: media.Params{media.ParamFrameRate: -1}},
		{ID: "x", Inputs: []media.Format{media.ImageGIF}, Outputs: []media.Format{media.ImageJPEG}, Cost: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad service %d should fail validation", i)
		}
	}
}

// TestServiceFigure2 mirrors Figure 2: a trans-coding service T1 with
// input formats F5 and F6 and output formats F10–F13.
func TestServiceFigure2(t *testing.T) {
	s := sampleService()
	if !s.Accepts(media.Opaque(5)) || !s.Accepts(media.Opaque(6)) {
		t.Error("T1 must accept F5 and F6")
	}
	if s.Accepts(media.Opaque(7)) {
		t.Error("T1 must not accept F7")
	}
	for _, n := range []int{10, 11, 12, 13} {
		if !s.Produces(media.Opaque(n)) {
			t.Errorf("T1 must produce F%d", n)
		}
	}
	if s.Produces(media.Opaque(9)) {
		t.Error("T1 must not produce F9")
	}
}

func TestServiceTransferOnlyReduces(t *testing.T) {
	s := sampleService() // caps framerate at 25
	out := s.Transfer(media.Params{media.ParamFrameRate: 30, media.ParamResolution: 300})
	if out[media.ParamFrameRate] != 25 {
		t.Errorf("framerate should cap at 25, got %v", out[media.ParamFrameRate])
	}
	if out[media.ParamResolution] != 300 {
		t.Errorf("uncapped parameter should pass through, got %v", out[media.ParamResolution])
	}
	out = s.Transfer(media.Params{media.ParamFrameRate: 10})
	if out[media.ParamFrameRate] != 10 {
		t.Errorf("input below the cap must not be raised, got %v", out[media.ParamFrameRate])
	}
}

func TestServiceCPURequired(t *testing.T) {
	s := &Service{CPUPerKbps: 0.5}
	if got := s.CPURequired(2000); got != 1000 {
		t.Errorf("CPURequired = %v, want 1000", got)
	}
}

func TestServiceString(t *testing.T) {
	s := sampleService()
	str := s.String()
	for _, part := range []string{"t1:", "video/f5", "video/f6", "video/f10", "->"} {
		if !strings.Contains(str, part) {
			t.Errorf("String() = %q, missing %q", str, part)
		}
	}
}

func TestServiceClone(t *testing.T) {
	s := sampleService()
	s.Domains = map[media.Param]satisfaction.Domain{
		media.ParamResolution: {Values: []float64{25, 101}},
	}
	c := s.Clone()
	c.Inputs[0] = media.ImageGIF
	c.Caps[media.ParamFrameRate] = 1
	c.Domains[media.ParamResolution].Values[0] = 99
	if s.Inputs[0] != media.Opaque(5) {
		t.Error("Clone must not share Inputs")
	}
	if s.Caps[media.ParamFrameRate] != 25 {
		t.Error("Clone must not share Caps")
	}
	if s.Domains[media.ParamResolution].Values[0] != 25 {
		t.Error("Clone must not share Domains")
	}
}

func TestArchetypesValidate(t *testing.T) {
	archetypes := []*Service{
		FormatConverter("c1", media.ImageJPEG, media.ImageGIF),
		FrameRateReducer("r1", media.VideoMPEG1, 15),
		ResolutionScaler("s1", media.VideoMPEG1, 25, 101),
		ColorReducer("cr1", media.ImageJPEG, media.ImageJPEGGray, 2),
		AudioDownsampler("a1", media.AudioPCM, media.AudioPCM8K, 8, 8),
		KeyframeExtractor("k1", media.VideoMPEG1),
		SpeechToText("st1", media.AudioPCM),
		TextSummarizer("ts1"),
		HTMLToWML("hw1"),
	}
	for _, s := range archetypes {
		if err := s.Validate(); err != nil {
			t.Errorf("archetype %s should validate: %v", s.ID, err)
		}
	}
}

func TestFrameRateReducerChangesFormatIdentity(t *testing.T) {
	r := FrameRateReducer("r1", media.VideoMPEG1, 15)
	if r.Outputs[0] == r.Inputs[0] {
		t.Error("reducer output format must differ from input (distinct-format acyclicity)")
	}
	if r.Caps[media.ParamFrameRate] != 15 {
		t.Errorf("cap = %v, want 15", r.Caps[media.ParamFrameRate])
	}
	out := r.Transfer(media.Params{media.ParamFrameRate: 30})
	if out[media.ParamFrameRate] != 15 {
		t.Error("reducer must cap frame rate")
	}
}

func TestResolutionScalerLadder(t *testing.T) {
	s := ResolutionScaler("s1", media.VideoMPEG1, 101, 25)
	d, ok := s.Domains[media.ParamResolution]
	if !ok {
		t.Fatal("scaler must expose a resolution domain")
	}
	if len(d.Values) != 2 {
		t.Fatalf("ladder = %v", d.Values)
	}
	if s.Caps[media.ParamResolution] != 101 {
		t.Errorf("cap should be the ladder max, got %v", s.Caps[media.ParamResolution])
	}
}

func TestKeyframeExtractorCollapsesMotion(t *testing.T) {
	k := KeyframeExtractor("k1", media.VideoMPEG1)
	out := k.Transfer(media.Params{media.ParamFrameRate: 30})
	if out[media.ParamFrameRate] != 1 {
		t.Errorf("keyframes should cap frame rate at 1, got %v", out[media.ParamFrameRate])
	}
	if k.Outputs[0].Kind != media.KindImage {
		t.Error("keyframe output should be an image format")
	}
}

func TestTagProfile(t *testing.T) {
	if got := tagProfile("", "lowfps"); got != "lowfps" {
		t.Errorf("tagProfile empty = %q", got)
	}
	if got := tagProfile("cif", "lowfps"); got != "cif-lowfps" {
		t.Errorf("tagProfile = %q", got)
	}
}
