// Package service describes trans-coding services: the vertices of the
// paper's adaptation graph (Section 4.2, Figure 2).
//
// A service advertises the input formats it consumes, the output formats
// it produces, the continuous QoS capabilities of its output, the
// computing resources it needs, and the monetary cost of using it — the
// fields the "profile of intermediaries" of Section 3 enumerates.
package service

import (
	"fmt"
	"math"
	"strings"

	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

// ID uniquely names a deployed trans-coding service instance.
type ID string

// Service is the description of one trans-coding service.
type Service struct {
	// ID is the unique instance identifier (e.g. "t7", "scaler-3").
	ID ID
	// Name is a human-readable label ("jpeg→gif colour reducer").
	Name string
	// Inputs are the formats the service accepts (input links of the
	// vertex, Figure 2).
	Inputs []media.Format
	// Outputs are the formats the service can emit (output links).
	Outputs []media.Format
	// Caps bounds the continuous QoS parameters of the output stream:
	// the service cannot emit a parameter above its cap. A parameter
	// absent from Caps passes through unchanged. Combined with the
	// input-side values via element-wise min, this encodes the paper's
	// assumption that trans-coding only ever reduces quality.
	Caps media.Params
	// Domains optionally restricts output parameters to discrete
	// ladders (e.g. a scaler that only emits CIF/QCIF resolutions).
	Domains map[media.Param]satisfaction.Domain
	// CPUPerKbps is the processing demand in MIPS per kbit/s of input —
	// Section 4.3's observation that memory and computing needs are a
	// function of the amount of input data.
	CPUPerKbps float64
	// MemoryMB is the resident memory the service needs to run.
	MemoryMB float64
	// Cost is the monetary charge per session for using the service,
	// counted against the user's budget (Figure 4, Step 6).
	Cost float64
	// Host is the intermediary the instance runs on; empty until the
	// service is deployed.
	Host string
}

// Validate checks structural invariants of the description.
func (s *Service) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("service: empty ID")
	}
	if len(s.Inputs) == 0 {
		return fmt.Errorf("service %s: no input formats", s.ID)
	}
	if len(s.Outputs) == 0 {
		return fmt.Errorf("service %s: no output formats", s.ID)
	}
	for _, f := range s.Inputs {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("service %s input: %w", s.ID, err)
		}
	}
	for _, f := range s.Outputs {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("service %s output: %w", s.ID, err)
		}
	}
	for p, v := range s.Caps {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("service %s: cap %s=%v invalid", s.ID, p, v)
		}
	}
	if s.CPUPerKbps < 0 || s.MemoryMB < 0 || s.Cost < 0 {
		return fmt.Errorf("service %s: negative resource or cost", s.ID)
	}
	return nil
}

// Accepts reports whether the service consumes format f.
func (s *Service) Accepts(f media.Format) bool {
	for _, in := range s.Inputs {
		if in == f {
			return true
		}
	}
	return false
}

// Produces reports whether the service can emit format f.
func (s *Service) Produces(f media.Format) bool {
	for _, out := range s.Outputs {
		if out == f {
			return true
		}
	}
	return false
}

// Transfer computes the QoS parameters available at the service's output
// given the parameters arriving at its input: the element-wise minimum of
// the input values and the service's caps. This is the quality-monotone
// transfer the greedy optimality argument (Figure 5) relies on.
func (s *Service) Transfer(in media.Params) media.Params {
	return in.Min(s.Caps)
}

// CPURequired returns the MIPS demand for an input stream of the given
// bitrate.
func (s *Service) CPURequired(inputKbps float64) float64 {
	return s.CPUPerKbps * inputKbps
}

// String renders a compact description: "id: in1|in2 -> out1|out2".
func (s *Service) String() string {
	ins := make([]string, len(s.Inputs))
	for i, f := range s.Inputs {
		ins[i] = f.String()
	}
	outs := make([]string, len(s.Outputs))
	for i, f := range s.Outputs {
		outs[i] = f.String()
	}
	return fmt.Sprintf("%s: %s -> %s", s.ID, strings.Join(ins, "|"), strings.Join(outs, "|"))
}

// Clone returns a deep copy of the service description.
func (s *Service) Clone() *Service {
	c := *s
	c.Inputs = append([]media.Format(nil), s.Inputs...)
	c.Outputs = append([]media.Format(nil), s.Outputs...)
	c.Caps = s.Caps.Clone()
	if s.Domains != nil {
		c.Domains = make(map[media.Param]satisfaction.Domain, len(s.Domains))
		for k, d := range s.Domains {
			c.Domains[k] = satisfaction.Domain{Values: append([]float64(nil), d.Values...)}
		}
	}
	return &c
}
