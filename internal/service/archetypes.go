package service

import (
	"fmt"

	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

// This file provides constructors for the trans-coding archetypes the
// paper's introduction motivates: format conversion, colour-depth
// reduction, frame-rate reduction, resolution scaling, audio
// downsampling, video→keyframe extraction and audio→text conversion.
// Each archetype is a plain Service description; the executable
// counterparts live in internal/transcode.

// FormatConverter converts between container/codec formats without
// touching continuous quality parameters (e.g. jpeg → gif).
func FormatConverter(id ID, from, to media.Format) *Service {
	return &Service{
		ID:         id,
		Name:       fmt.Sprintf("%s→%s converter", from, to),
		Inputs:     []media.Format{from},
		Outputs:    []media.Format{to},
		CPUPerKbps: 0.5,
		MemoryMB:   16,
		Cost:       1,
	}
}

// FrameRateReducer caps the video frame rate at maxFPS while keeping the
// format unchanged in encoding terms (the output format carries a profile
// tag so that chains remain acyclic under the distinct-format rule).
func FrameRateReducer(id ID, format media.Format, maxFPS float64) *Service {
	out := format
	out.Profile = tagProfile(format.Profile, "lowfps")
	return &Service{
		ID:         id,
		Name:       fmt.Sprintf("frame-rate reducer (≤%.0f fps)", maxFPS),
		Inputs:     []media.Format{format},
		Outputs:    []media.Format{out},
		Caps:       media.Params{media.ParamFrameRate: maxFPS},
		CPUPerKbps: 0.2,
		MemoryMB:   8,
		Cost:       1,
	}
}

// ResolutionScaler downscales to one of the rungs of a resolution ladder
// (in kilopixels), e.g. CIF (101 kpx) and QCIF (25 kpx).
func ResolutionScaler(id ID, format media.Format, ladderKpx ...float64) *Service {
	out := format
	out.Profile = tagProfile(format.Profile, "scaled")
	maxKpx := 0.0
	for _, v := range ladderKpx {
		if v > maxKpx {
			maxKpx = v
		}
	}
	return &Service{
		ID:      id,
		Name:    fmt.Sprintf("resolution scaler (≤%.0f kpx)", maxKpx),
		Inputs:  []media.Format{format},
		Outputs: []media.Format{out},
		Caps:    media.Params{media.ParamResolution: maxKpx},
		Domains: map[media.Param]satisfaction.Domain{
			media.ParamResolution: {Values: append([]float64(nil), ladderKpx...)},
		},
		CPUPerKbps: 0.8,
		MemoryMB:   32,
		Cost:       2,
	}
}

// ColorReducer lowers the colour depth (bits per pixel), e.g. the paper's
// 256-colour → 2-colour first stage of the jpeg→gif example.
func ColorReducer(id ID, from, to media.Format, maxBits float64) *Service {
	return &Service{
		ID:         id,
		Name:       fmt.Sprintf("colour reducer (≤%.0f bpp)", maxBits),
		Inputs:     []media.Format{from},
		Outputs:    []media.Format{to},
		Caps:       media.Params{media.ParamColorDepth: maxBits},
		CPUPerKbps: 0.3,
		MemoryMB:   8,
		Cost:       1,
	}
}

// AudioDownsampler reduces the audio sampling rate (kHz) and sample depth.
func AudioDownsampler(id ID, from, to media.Format, maxKHz, maxBits float64) *Service {
	return &Service{
		ID:      id,
		Name:    fmt.Sprintf("audio downsampler (≤%.1f kHz)", maxKHz),
		Inputs:  []media.Format{from},
		Outputs: []media.Format{to},
		Caps: media.Params{
			media.ParamAudioRate: maxKHz,
			media.ParamAudioBits: maxBits,
		},
		CPUPerKbps: 0.1,
		MemoryMB:   4,
		Cost:       1,
	}
}

// KeyframeExtractor converts a video stream into a sequence of still
// keyframe images — the "video to key frame" adaptation of Section 1. The
// frame rate collapses to at most one frame per second.
func KeyframeExtractor(id ID, from media.Format) *Service {
	return &Service{
		ID:         id,
		Name:       "video→keyframe extractor",
		Inputs:     []media.Format{from},
		Outputs:    []media.Format{media.VideoKeyframes},
		Caps:       media.Params{media.ParamFrameRate: 1},
		CPUPerKbps: 1.0,
		MemoryMB:   64,
		Cost:       3,
	}
}

// SpeechToText converts audio into a text transcript — the "audio to
// text" adaptation of Section 1. All continuous audio parameters collapse.
func SpeechToText(id ID, from media.Format) *Service {
	return &Service{
		ID:      id,
		Name:    "audio→text converter",
		Inputs:  []media.Format{from},
		Outputs: []media.Format{media.TextTranscript},
		Caps: media.Params{
			media.ParamAudioRate: 0,
			media.ParamAudioBits: 0,
		},
		CPUPerKbps: 2.0,
		MemoryMB:   128,
		Cost:       5,
	}
}

// TextSummarizer shortens text content (the "text summarization"
// adaptation of Section 1).
func TextSummarizer(id ID) *Service {
	return &Service{
		ID:         id,
		Name:       "text summarizer",
		Inputs:     []media.Format{media.TextPlain, media.TextHTML, media.TextTranscript},
		Outputs:    []media.Format{media.TextSummary},
		CPUPerKbps: 0.4,
		MemoryMB:   32,
		Cost:       2,
	}
}

// HTMLToWML converts HTML pages to WML decks for WAP-era handsets
// (Section 2's canonical web-content adaptation).
func HTMLToWML(id ID) *Service {
	return &Service{
		ID:         id,
		Name:       "HTML→WML converter",
		Inputs:     []media.Format{media.TextHTML},
		Outputs:    []media.Format{media.TextWML},
		CPUPerKbps: 0.2,
		MemoryMB:   8,
		Cost:       1,
	}
}

// tagProfile appends a tag to an existing profile string, keeping the
// result stable and parseable.
func tagProfile(existing, tag string) string {
	if existing == "" {
		return tag
	}
	return existing + "-" + tag
}
