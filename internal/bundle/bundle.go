// Package bundle composes adaptation chains for multi-stream content:
// a session whose audio and video travel as separate elementary streams,
// each through its own trans-coding chain, with one combined user
// satisfaction over all QoS parameters (Equation 1 spans both streams —
// a user does not enjoy perfect video with unusable audio).
//
// The paper's worked example adapts a single stream; multi-stream
// delivery is the natural next step its Section 3 profiles already
// describe (content profiles hold audio and video variants; user profiles
// score audio and video parameters). This package is extension EXT-H.
package bundle

import (
	"fmt"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// Request describes a multi-stream composition.
type Request struct {
	// Content holds the variants; kinds are separated automatically
	// (video+image variants form the visual stream, audio variants the
	// audio stream).
	Content *profile.Content
	// Device supplies decoders for both streams.
	Device *profile.Device
	// Services is the shared trans-coding pool.
	Services []*service.Service
	// Net is the overlay; both chains draw on the same links.
	Net *overlay.Network
	// SenderHost/ReceiverHost locate the endpoints.
	SenderHost, ReceiverHost string
	// Profile scores all parameters, across both streams.
	Profile satisfaction.Profile
	// Budget bounds the *total* monetary cost across both chains.
	Budget float64
	// Bitrate converts parameters to bandwidth (nil: default model).
	Bitrate media.BitrateModel
}

// Result is the bundle outcome.
type Result struct {
	// Video/Audio are the per-stream selections (nil when the content
	// has no variant of that kind).
	Video *core.Result
	Audio *core.Result
	// Params merges the delivered parameters of both streams.
	Params media.Params
	// Combined is the user's satisfaction over the merged parameters —
	// the true Equation 1 value for the whole session.
	Combined float64
	// Cost is the total monetary cost of both chains.
	Cost float64
}

// videoParams and audioParams partition the QoS parameter space by the
// stream that carries them.
var videoParams = map[media.Param]bool{
	media.ParamFrameRate:  true,
	media.ParamResolution: true,
	media.ParamColorDepth: true,
}

var audioParams = map[media.Param]bool{
	media.ParamAudioRate: true,
	media.ParamAudioBits: true,
}

// stream pairs a sub-content with the parameters its chain carries.
type stream struct {
	kind    string
	content *profile.Content
	keep    map[media.Param]bool
}

// Compose selects one chain per stream kind present in the content. The
// two streams share the same links, so they are composed sequentially:
// the first chain's bitrate is (best-effort) reserved on the overlay
// before the second composes, then released. Both orders are tried and
// the bundle with the higher combined satisfaction wins — with a shared
// bottleneck, composing the cheap audio stream first usually beats
// letting video hog the link (the geometric mean rewards balance). The
// user's budget is shared sequentially within each attempt.
func Compose(req Request) (*Result, error) {
	if req.Content == nil || req.Device == nil {
		return nil, fmt.Errorf("bundle: content and device are required")
	}
	if err := req.Content.Validate(); err != nil {
		return nil, err
	}
	videoContent, audioContent := splitContent(req.Content)
	if videoContent == nil && audioContent == nil {
		return nil, fmt.Errorf("bundle: content %s has no audio or video variants", req.Content.ID)
	}

	var streams []stream
	if videoContent != nil {
		streams = append(streams, stream{"video", videoContent, videoParams})
	}
	if audioContent != nil {
		streams = append(streams, stream{"audio", audioContent, audioParams})
	}

	best, err := composeOrder(req, streams)
	if len(streams) == 2 {
		reversed := []stream{streams[1], streams[0]}
		if alt, altErr := composeOrder(req, reversed); altErr == nil && alt != nil {
			if best == nil || err != nil || alt.Combined > best.Combined+1e-12 {
				best, err = alt, nil
			}
		}
	}
	if best == nil {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("bundle: no stream could be composed")
	}
	return best, err
}

// composeOrder runs one sequential composition attempt.
func composeOrder(req Request, streams []stream) (*Result, error) {
	res := &Result{Params: media.Params{}}
	remaining := req.Budget
	type hold struct {
		from, to string
		kbps     float64
	}
	var held []hold // released when the attempt finishes
	defer func() {
		for _, h := range held {
			req.Net.Release(h.from, h.to, h.kbps)
		}
	}()

	var firstErr error
	for _, st := range streams {
		subProfile := filterProfile(req.Profile, st.keep)
		if len(subProfile.Functions) == 0 {
			continue // the user scores nothing on this stream: skip it
		}
		g, err := graph.Build(graph.Input{
			Content:      st.content,
			Device:       req.Device,
			Services:     req.Services,
			Net:          req.Net,
			SenderHost:   req.SenderHost,
			ReceiverHost: req.ReceiverHost,
		})
		if err != nil {
			return nil, err
		}
		sel, err := core.Select(g, core.Config{
			Profile:      subProfile,
			Bitrate:      req.Bitrate,
			Budget:       remaining,
			ReceiverCaps: req.Device.RenderCaps(),
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		switch st.kind {
		case "video":
			res.Video = sel
		case "audio":
			res.Audio = sel
		}
		res.Cost += sel.Cost
		if req.Budget > 0 {
			remaining = req.Budget - res.Cost
		}
		mergeParams(res.Params, sel.Params)
		// Best-effort: hold this chain's bitrate while composing the
		// next stream so the two contend realistically.
		if req.Net != nil {
			model := req.Bitrate
			if model == nil {
				model = media.DefaultBitrate
			}
			kbps := model.RequiredKbps(sel.Params)
			if kbps > 0 {
				hosts := chainHosts(req, sel)
				for i := 1; i < len(hosts); i++ {
					if hosts[i-1] == hosts[i] {
						continue
					}
					if err := req.Net.Reserve(hosts[i-1], hosts[i], kbps); err == nil {
						held = append(held, hold{hosts[i-1], hosts[i], kbps})
					}
				}
			}
		}
	}
	if res.Video == nil && res.Audio == nil {
		return nil, firstErr
	}
	res.Combined = req.Profile.Evaluate(res.Params)
	return res, nil
}

// chainHosts maps a selection's path onto overlay hosts.
func chainHosts(req Request, sel *core.Result) []string {
	hosts := []string{req.SenderHost}
	for _, id := range sel.Path[1 : len(sel.Path)-1] {
		for _, svc := range req.Services {
			if service.ID(id) == svc.ID {
				hosts = append(hosts, svc.Host)
				break
			}
		}
	}
	return append(hosts, req.ReceiverHost)
}

// splitContent partitions the variants into visual and audio sub-contents
// (nil when a kind is absent).
func splitContent(c *profile.Content) (video, audio *profile.Content) {
	var vv, av []media.Descriptor
	for _, v := range c.Variants {
		switch v.Format.Kind {
		case media.KindVideo, media.KindImage:
			vv = append(vv, v)
		case media.KindAudio:
			av = append(av, v)
		}
	}
	if len(vv) > 0 {
		video = &profile.Content{ID: c.ID + "-video", Title: c.Title, Variants: vv, DurationSec: c.DurationSec}
	}
	if len(av) > 0 {
		audio = &profile.Content{ID: c.ID + "-audio", Title: c.Title, Variants: av, DurationSec: c.DurationSec}
	}
	return video, audio
}

// filterProfile keeps only the parameters in keep.
func filterProfile(p satisfaction.Profile, keep map[media.Param]bool) satisfaction.Profile {
	fns := make(map[media.Param]satisfaction.Function)
	var weights map[media.Param]float64
	for name, fn := range p.Functions {
		if !keep[name] {
			continue
		}
		fns[name] = fn
		if p.Weights != nil {
			if weights == nil {
				weights = make(map[media.Param]float64)
			}
			weights[name] = p.Weights[name]
		}
	}
	return satisfaction.Profile{Functions: fns, Weights: weights}
}

func mergeParams(dst, src media.Params) {
	for k, v := range src {
		dst[k] = v
	}
}
