package bundle

import (
	"math"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// testbed: a lecture with MPEG-1 video and PCM audio, a device decoding
// H.263 and GSM, one proxy hosting both converters.
func testRequest() Request {
	vconv := service.FormatConverter("vconv", media.VideoMPEG1, media.VideoH263)
	vconv.Host = "proxy"
	vconv.Cost = 3
	aconv := service.FormatConverter("aconv", media.AudioPCM, media.AudioGSM)
	aconv.Host = "proxy"
	aconv.Cost = 2

	net := overlay.New()
	net.AddLink("sender", "proxy", 4000, 10, 0)
	// 4000 kbps fits both streams at their ideals (3000 video + 441
	// audio); the bottleneck test narrows this link explicitly.
	net.AddLink("proxy", "dev", 4000, 15, 0)

	bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate: 100,
		media.ParamAudioRate: 10,
	}}
	return Request{
		Content: &profile.Content{ID: "lecture", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}, Bitrate: bitrate},
			{Format: media.AudioPCM, Params: media.Params{media.ParamAudioRate: 44.1}, Bitrate: bitrate},
		}},
		Device: &profile.Device{ID: "dev", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263, media.AudioGSM},
		}},
		Services:     []*service.Service{vconv, aconv},
		Net:          net,
		SenderHost:   "sender",
		ReceiverHost: "dev",
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
			media.ParamAudioRate: satisfaction.Linear{M: 0, I: 44.1},
		}),
		Bitrate: bitrate,
	}
}

func TestComposeBothStreams(t *testing.T) {
	res, err := Compose(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Video == nil || res.Audio == nil {
		t.Fatal("both streams should compose")
	}
	if string(res.Video.Path[1]) != "vconv" {
		t.Errorf("video path = %v", res.Video.Path)
	}
	if string(res.Audio.Path[1]) != "aconv" {
		t.Errorf("audio path = %v", res.Audio.Path)
	}
	// Video caps at 3000 kbps / 100 = 30 fps (ideal); audio fits fully.
	if math.Abs(res.Params.Get(media.ParamFrameRate)-30) > 1e-6 {
		t.Errorf("fps = %v", res.Params.Get(media.ParamFrameRate))
	}
	if math.Abs(res.Params.Get(media.ParamAudioRate)-44.1) > 1e-6 {
		t.Errorf("audio rate = %v", res.Params.Get(media.ParamAudioRate))
	}
	if math.Abs(res.Combined-1) > 1e-9 {
		t.Errorf("combined satisfaction = %v, want 1", res.Combined)
	}
	if res.Cost != 5 {
		t.Errorf("cost = %v, want 5 (3+2)", res.Cost)
	}
}

func TestComposeCombinedPenalizesMissingAudio(t *testing.T) {
	req := testRequest()
	// Remove the audio converter: the audio stream cannot reach the
	// device, so the combined satisfaction collapses even though video
	// is perfect.
	req.Services = req.Services[:1]
	res, err := Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Video == nil {
		t.Fatal("video should still compose")
	}
	if res.Audio != nil && res.Audio.Found {
		t.Fatal("audio should fail without its converter")
	}
	if res.Combined != 0 {
		t.Errorf("combined satisfaction = %v, want 0 (audio missing)", res.Combined)
	}
}

func TestComposeSharedBudget(t *testing.T) {
	req := testRequest()
	req.Budget = 4 // video takes 3, leaving 1 < aconv's 2
	res, err := Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Video == nil || !res.Video.Found {
		t.Fatal("video fits the budget")
	}
	if res.Audio != nil && res.Audio.Found {
		t.Error("audio should be priced out of the shared budget")
	}
	if res.Cost > 4 {
		t.Errorf("cost %v exceeds budget", res.Cost)
	}
}

func TestComposeVideoOnlyContent(t *testing.T) {
	req := testRequest()
	req.Content = &profile.Content{ID: "silent", Variants: []media.Descriptor{
		{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
	}}
	// Score only video so the combined value is meaningful.
	req.Profile = satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})
	res, err := Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audio != nil {
		t.Error("no audio variant → no audio chain")
	}
	if res.Combined != 1 {
		t.Errorf("combined = %v", res.Combined)
	}
}

func TestComposeAudioOnlyProfileSkipsVideo(t *testing.T) {
	req := testRequest()
	req.Profile = satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamAudioRate: satisfaction.Linear{M: 0, I: 44.1},
	})
	res, err := Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Video != nil {
		t.Error("unscored video stream should be skipped entirely")
	}
	if res.Audio == nil || res.Combined != 1 {
		t.Errorf("audio result = %v combined = %v", res.Audio, res.Combined)
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(Request{}); err == nil {
		t.Error("missing content/device must fail")
	}
	req := testRequest()
	req.Content = &profile.Content{ID: "text", Variants: []media.Descriptor{
		{Format: media.TextHTML},
	}}
	if _, err := Compose(req); err == nil {
		t.Error("content without audio/video variants must fail")
	}
}

func TestComposeSharedBottleneckBalances(t *testing.T) {
	// The exit link carries only 1500 kbps shared by both streams.
	// Composed naively (video first, hogging the link), audio would get
	// nothing; the order search should find the balanced bundle: audio
	// first (441 kbps), video from the remainder (~10.6 fps).
	req := testRequest()
	if err := req.Net.SetBandwidth("proxy", "dev", 1500); err != nil {
		t.Fatal(err)
	}
	res, err := Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audio == nil || !res.Audio.Found {
		t.Fatal("audio must survive the shared bottleneck")
	}
	if res.Video == nil || !res.Video.Found {
		t.Fatal("video must survive the shared bottleneck")
	}
	if math.Abs(res.Params.Get(media.ParamAudioRate)-44.1) > 1e-6 {
		t.Errorf("audio rate = %v", res.Params.Get(media.ParamAudioRate))
	}
	fps := res.Params.Get(media.ParamFrameRate)
	if fps < 10 || fps > 11 {
		t.Errorf("video fps = %v, want ~10.6 (remainder of 1500-441)", fps)
	}
	// Balanced bundle beats the video-hog bundle: sqrt(0.35*1) ≈ 0.59
	// versus sqrt(0.5*0) = 0.
	if res.Combined < 0.55 {
		t.Errorf("combined = %v, want ~0.59", res.Combined)
	}
	// All temporary reservations must be released.
	if avail := req.Net.AvailableBandwidth("proxy", "dev"); math.Abs(avail-1500) > 1e-6 {
		t.Errorf("leaked reservations: available = %v", avail)
	}
}
