package paperexample_test

import (
	"fmt"

	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/paperexample"
)

// ExampleRunTable1 reproduces the headline result of the paper's worked
// example: the selected chain, delivered frame rate and satisfaction of
// Table 1's final row.
func ExampleRunTable1() {
	res, err := paperexample.RunTable1(true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("rounds:", len(res.Rounds))
	fmt.Println("path:", core.PathString(res.Path))
	fmt.Println("fps:", core.DisplayFPS(res.Params.Get(media.ParamFrameRate)))
	fmt.Println("satisfaction:", core.DisplaySat(res.Satisfaction))
	// Output:
	// rounds: 15
	// path: sender,T7,receiver
	// fps: 20
	// satisfaction: 0.66
}
