package paperexample

import (
	"math"
	"testing"

	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

func TestFigure1FunctionShape(t *testing.T) {
	fn := Figure1Function()
	if fn.Min() != 5 || fn.Ideal() != 20 {
		t.Fatalf("Figure 1 bounds = %v/%v, want 5/20", fn.Min(), fn.Ideal())
	}
	if err := satisfaction.CheckMonotone(fn, 128); err != nil {
		t.Fatal(err)
	}
	if fn.Eval(0) != 0 || fn.Eval(5) != 0 {
		t.Error("satisfaction below the minimum must be 0")
	}
	if fn.Eval(20) != 1 || fn.Eval(25) != 1 {
		t.Error("satisfaction at/above the ideal must be 1")
	}
}

func TestFigure1Samples(t *testing.T) {
	samples := Figure1Samples()
	if len(samples) != 26 {
		t.Fatalf("samples = %d, want 26 (0..25 fps)", len(samples))
	}
	prev := -1.0
	for _, s := range samples {
		if s[1] < prev {
			t.Fatalf("samples must be non-decreasing, %v after %v", s[1], prev)
		}
		prev = s[1]
	}
	mid := samples[12][1] // 12.5 is the midpoint; 12 is just below
	if mid <= 0.3 || mid >= 0.6 {
		t.Errorf("sample at 12 fps = %v, expected near 0.5", mid)
	}
}

func TestFigure2ServiceLinks(t *testing.T) {
	s := Figure2Service()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Inputs) != 2 || len(s.Outputs) != 4 {
		t.Fatalf("Figure 2 shape = %d in / %d out, want 2/4", len(s.Inputs), len(s.Outputs))
	}
	for _, n := range []int{5, 6} {
		if !s.Accepts(media.Opaque(n)) {
			t.Errorf("T1 must accept F%d", n)
		}
	}
	for _, n := range []int{10, 11, 12, 13} {
		if !s.Produces(media.Opaque(n)) {
			t.Errorf("T1 must produce F%d", n)
		}
	}
}

func TestFigure3GraphStructure(t *testing.T) {
	g, err := Figure3Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 9 { // 7 intermediates + sender + receiver
		t.Errorf("NodeCount = %d, want 9", g.NodeCount())
	}
	// The figure's stated connection: sender reaches T1 over F5.
	found := false
	for _, e := range g.Out(graph.SenderID) {
		if e.To == "t1" && e.Format == media.Opaque(5) {
			found = true
		}
	}
	if !found {
		t.Errorf("sender must connect to T1 over F5:\n%s", g)
	}
	if !g.HasPath() {
		t.Error("Figure 3 graph must connect sender to receiver")
	}
	// Every intermediate vertex survives pruning in the figure.
	before := g.NodeCount()
	g.Prune()
	if after := g.NodeCount(); after >= before {
		// Pruning may legitimately remove fan-out branches that cannot
		// reach the receiver (T1's F12/F13 outputs dangle in the
		// printed figure too); just re-check connectivity.
		t.Logf("prune kept %d of %d vertices", after, before)
	}
	if !g.HasPath() {
		t.Error("pruned Figure 3 graph must stay connected")
	}
}

func TestTable1NetworkCalibration(t *testing.T) {
	net := Table1Network()
	// Spot checks on the calibrated first-hop bandwidths.
	cases := []struct {
		host string
		kbps float64
	}{
		{"p10", 3200}, {"p5", 2720}, {"p4", 2700}, {"p3", 2309},
		{"p7", 2000}, {"p9", 1500},
	}
	for _, c := range cases {
		if got := net.AvailableBandwidth("sender", c.host); got != c.kbps {
			t.Errorf("sender->%s = %v, want %v", c.host, got, c.kbps)
		}
	}
	if got := net.AvailableBandwidth("p7", "receiver"); got != 1985 {
		t.Errorf("p7->receiver = %v, want 1985 (prints as 20 fps / 0.66)", got)
	}
	// The delivered frame rate of the winning chain: 1985 kbps at
	// 100 kbps per fps is 19.85 fps.
	if fps := 1985.0 / 100.0; math.Abs(fps-19.85) > 1e-12 {
		t.Fatalf("calibration arithmetic broke: %v", fps)
	}
}
