package paperexample

import (
	"strings"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
)

// table1Row is one printed row of the paper's Table 1.
type table1Row struct {
	considered string // VT in insertion order
	candidates string // CS as a set (we compare sorted)
	selected   string
	path       string
	fps        int
	sat        string
}

// table1Expected is Table 1 of the paper, cell for cell. The candidate
// sets are written sorted naturally (the paper lists them in insertion
// order; the set contents are identical).
var table1Expected = []table1Row{
	{"sender", "T1,T2,T3,T4,T5,T6,T7,T8,T9,T10", "T10", "sender,T10", 30, "1.00"},
	{"sender,T10", "T1,T2,T3,T4,T5,T6,T7,T8,T9,T19,T20,receiver", "T20", "sender,T10,T20", 30, "1.00"},
	{"sender,T10,T20", "T1,T2,T3,T4,T5,T6,T7,T8,T9,T19,receiver", "T5", "sender,T5", 27, "0.90"},
	{"sender,T10,T20,T5", "T1,T2,T3,T4,T6,T7,T8,T9,T15,T19,receiver", "T4", "sender,T4", 27, "0.90"},
	{"sender,T10,T20,T5,T4", "T1,T2,T3,T6,T7,T8,T9,T15,T19,receiver", "T3", "sender,T3", 23, "0.76"},
	{"sender,T10,T20,T5,T4,T3", "T1,T2,T6,T7,T8,T9,T14,T15,T19,receiver", "T2", "sender,T2", 23, "0.76"},
	{"sender,T10,T20,T5,T4,T3,T2", "T1,T6,T7,T8,T9,T12,T13,T14,T15,T19,receiver", "T1", "sender,T1", 23, "0.76"},
	{"sender,T10,T20,T5,T4,T3,T2,T1", "T6,T7,T8,T9,T11,T12,T13,T14,T15,T19,receiver", "T11", "sender,T1,T11", 23, "0.76"},
	{"sender,T10,T20,T5,T4,T3,T2,T1,T11", "T6,T7,T8,T9,T12,T13,T14,T15,T19,receiver", "T13", "sender,T2,T13", 23, "0.76"},
	{"sender,T10,T20,T5,T4,T3,T2,T1,T11,T13", "T6,T7,T8,T9,T12,T14,T15,T19,receiver", "T12", "sender,T2,T12", 23, "0.76"},
	{"sender,T10,T20,T5,T4,T3,T2,T1,T11,T13,T12", "T6,T7,T8,T9,T14,T15,T19,receiver", "T14", "sender,T3,T14", 23, "0.76"},
	{"sender,T10,T20,T5,T4,T3,T2,T1,T11,T13,T12,T14", "T6,T7,T8,T9,T15,T19,receiver", "T8", "sender,T8", 20, "0.66"},
	{"sender,T10,T20,T5,T4,T3,T2,T1,T11,T13,T12,T14,T8", "T6,T7,T9,T15,T19,receiver", "T7", "sender,T7", 20, "0.66"},
	{"sender,T10,T20,T5,T4,T3,T2,T1,T11,T13,T12,T14,T8,T7", "T6,T9,T15,T19,receiver", "T6", "sender,T6", 20, "0.66"},
	{"sender,T10,T20,T5,T4,T3,T2,T1,T11,T13,T12,T14,T8,T7,T6", "T9,T15,T19,receiver", "receiver", "sender,T7,receiver", 20, "0.66"},
}

func ids(nodes []graph.NodeID) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		s := string(n)
		if len(s) > 0 && s[0] == 't' {
			s = "T" + s[1:]
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// TestTable1GoldenTrace asserts the full 15-round trace of Table 1,
// cell for cell.
func TestTable1GoldenTrace(t *testing.T) {
	res, err := RunTable1(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("Table 1 run must find a chain")
	}
	if len(res.Rounds) != len(table1Expected) {
		t.Fatalf("rounds = %d, want %d\n%s", len(res.Rounds), len(table1Expected), res.TraceTable())
	}
	for i, want := range table1Expected {
		got := res.Rounds[i]
		if gotVT := ids(got.Considered); gotVT != want.considered {
			t.Errorf("round %d considered = %s, want %s", i+1, gotVT, want.considered)
		}
		if gotCS := ids(got.Candidates); gotCS != want.candidates {
			t.Errorf("round %d candidates = %s, want %s", i+1, gotCS, want.candidates)
		}
		if gotSel := ids([]graph.NodeID{got.Selected}); gotSel != want.selected {
			t.Errorf("round %d selected = %s, want %s", i+1, gotSel, want.selected)
		}
		if gotPath := core.PathString(got.Path); gotPath != want.path {
			t.Errorf("round %d path = %s, want %s", i+1, gotPath, want.path)
		}
		if gotFPS := core.DisplayFPS(got.Params.Get(media.ParamFrameRate)); gotFPS != want.fps {
			t.Errorf("round %d fps = %d, want %d", i+1, gotFPS, want.fps)
		}
		if gotSat := core.DisplaySat(got.Satisfaction); gotSat != want.sat {
			t.Errorf("round %d satisfaction = %s, want %s", i+1, gotSat, want.sat)
		}
	}
	// The final result is Table 1's last row.
	if got := core.PathString(res.Path); got != "sender,T7,receiver" {
		t.Errorf("final path = %s, want sender,T7,receiver", got)
	}
	if got := core.DisplaySat(res.Satisfaction); got != "0.66" {
		t.Errorf("final satisfaction = %s, want 0.66", got)
	}
	if got := core.DisplayFPS(res.Params.Get(media.ParamFrameRate)); got != 20 {
		t.Errorf("final fps = %d, want 20", got)
	}
}

// TestFigure6WithoutT7 asserts the Figure 6 ablation: removing T7 shifts
// the selected path to sender,T8,receiver at 18 fps (satisfaction 0.60).
func TestFigure6WithoutT7(t *testing.T) {
	res, err := RunTable1(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("ablated graph must still find a chain")
	}
	if got := core.PathString(res.Path); got != "sender,T8,receiver" {
		t.Errorf("ablated path = %s, want sender,T8,receiver", got)
	}
	if got := core.DisplayFPS(res.Params.Get(media.ParamFrameRate)); got != 18 {
		t.Errorf("ablated fps = %d, want 18", got)
	}
	if got := core.DisplaySat(res.Satisfaction); got != "0.60" {
		t.Errorf("ablated satisfaction = %s, want 0.60", got)
	}
	// T7's presence improves satisfaction — the point of the ablation.
	withT7, err := RunTable1(true)
	if err != nil {
		t.Fatal(err)
	}
	if withT7.Satisfaction <= res.Satisfaction {
		t.Errorf("T7 should improve satisfaction: with=%v without=%v",
			withT7.Satisfaction, res.Satisfaction)
	}
}

func TestTable1GraphShape(t *testing.T) {
	g, err := Table1Graph(true)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 22 { // 20 services + sender + receiver
		t.Errorf("NodeCount = %d, want 22", g.NodeCount())
	}
	if len(g.Out(graph.SenderID)) != 10 {
		t.Errorf("sender out-degree = %d, want 10", len(g.Out(graph.SenderID)))
	}
	if got := len(g.In(graph.ReceiverID)); got != 6 { // T7, T8, T10, T16, T17, T18
		t.Errorf("receiver in-degree = %d, want 6", got)
	}
	// The example graph must survive pruning unchanged (every vertex
	// lies on some sender→receiver path).
	nodesBefore := g.NodeCount()
	g.Prune()
	if g.NodeCount() != nodesBefore {
		t.Errorf("prune removed vertices from the example graph: %d -> %d", nodesBefore, g.NodeCount())
	}
	if res, err := core.Select(g, Table1Config()); err != nil || !res.Found {
		t.Errorf("pruned example graph must still yield the chain: %v", err)
	}
}

func TestTable1TraceTableRenders(t *testing.T) {
	res, err := RunTable1(true)
	if err != nil {
		t.Fatal(err)
	}
	table := res.TraceTable()
	for _, want := range []string{"T10", "sender,T7,receiver", "0.66", "1.00"} {
		if !strings.Contains(table, want) {
			t.Errorf("trace table missing %q", want)
		}
	}
}

// TestTable1HeapVariantIdentical asserts that the linear-scan candidate
// selection reproduces the identical Table 1 trace the default heap
// variant produces.
func TestTable1HeapVariantIdentical(t *testing.T) {
	g, err := Table1Graph(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Table1Config()
	cfg.Scan = true
	res, err := core.Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != len(table1Expected) {
		t.Fatalf("heap variant rounds = %d", len(res.Rounds))
	}
	for i, want := range table1Expected {
		got := res.Rounds[i]
		if gotSel := ids([]graph.NodeID{got.Selected}); gotSel != want.selected {
			t.Errorf("heap round %d selected = %s, want %s", i+1, gotSel, want.selected)
		}
	}
	if got := core.PathString(res.Path); got != "sender,T7,receiver" {
		t.Errorf("heap final path = %s", got)
	}
}
