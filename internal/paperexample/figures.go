package paperexample

import (
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// Figure1Function is the frame-rate satisfaction function sketched in
// Figure 1: S-shaped between a minimum acceptable 5 fps and an ideal
// 20 fps.
func Figure1Function() satisfaction.Function {
	return satisfaction.SCurve{M: 5, I: 20}
}

// Figure1Samples evaluates the Figure 1 function at integer frame rates
// 0..25 and returns (fps, satisfaction) pairs — the series a plot of the
// figure would show.
func Figure1Samples() [][2]float64 {
	fn := Figure1Function()
	out := make([][2]float64, 0, 26)
	for fps := 0; fps <= 25; fps++ {
		out = append(out, [2]float64{float64(fps), fn.Eval(float64(fps))})
	}
	return out
}

// Figure2Service is the trans-coding service T1 of Figure 2: two input
// formats (F5, F6) and four output formats (F10, F11, F12, F13).
func Figure2Service() *service.Service {
	return &service.Service{
		ID:     "t1",
		Name:   "Figure 2 trans-coding service",
		Inputs: []media.Format{fmtN(5), fmtN(6)},
		Outputs: []media.Format{
			fmtN(10), fmtN(11), fmtN(12), fmtN(13),
		},
	}
}

// Figure3Graph reconstructs the directed trans-coding graph of Figure 3:
// one sender, one receiver and seven intermediate trans-coding services
// over formats F3..F16. The printed figure is only partially legible; this
// reconstruction preserves its stated structure — the sender reaches T1
// over F5, T1 fans out to F10..F13, and the receiver is fed over F14..F16.
func Figure3Graph() (*graph.Graph, error) {
	content := &profile.Content{
		ID: "figure3-content",
		Variants: []media.Descriptor{
			{Format: fmtN(3), Params: media.Params{media.ParamFrameRate: 30}},
			{Format: fmtN(4), Params: media.Params{media.ParamFrameRate: 30}},
			{Format: fmtN(5), Params: media.Params{media.ParamFrameRate: 30}},
		},
	}
	device := &profile.Device{
		ID: "receiver",
		Software: profile.Software{
			Decoders: []media.Format{fmtN(15), fmtN(16)},
		},
	}
	mk := func(id string, ins, outs []media.Format) *service.Service {
		return &service.Service{ID: service.ID(id), Inputs: ins, Outputs: outs}
	}
	services := []*service.Service{
		mk("t1", []media.Format{fmtN(5), fmtN(6)}, []media.Format{fmtN(10), fmtN(11), fmtN(12), fmtN(13)}),
		mk("t2", []media.Format{fmtN(3)}, []media.Format{fmtN(6)}),
		mk("t3", []media.Format{fmtN(4)}, []media.Format{fmtN(8)}),
		mk("t4", []media.Format{fmtN(8)}, []media.Format{fmtN(9)}),
		mk("t5", []media.Format{fmtN(9)}, []media.Format{fmtN(14)}),
		mk("t6", []media.Format{fmtN(10)}, []media.Format{fmtN(15)}),
		mk("t7", []media.Format{fmtN(11), fmtN(14)}, []media.Format{fmtN(16)}),
	}
	return graph.Build(graph.Input{
		Content:  content,
		Device:   device,
		Services: services,
	})
}
