// Package paperexample reconstructs the paper's worked artifacts: the
// Figure 6 trans-coding graph whose selection trace is Table 1, the
// Figure 1 satisfaction function, the Figure 2 multi-link service and the
// Figure 3 construction example.
//
// The printed Figure 6 does not legibly annotate edge bandwidths, so the
// graph here is reverse-engineered from Table 1 itself (see DESIGN.md §5):
// the adjacency follows the evolution of the candidate set CS across the
// 15 rounds, and the link bandwidths are calibrated so that every printed
// cell — candidate sets, selection order, best paths, delivered frame
// rates and satisfactions — reproduces exactly under the paper's display
// conventions (frame rate rounded to nearest integer, satisfaction
// truncated to two decimals).
package paperexample

import (
	"fmt"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// The format scheme: the sender stores variants F1..F10 (one accepted by
// each of T1..T10); internal formats F1xx/F2xx wire the remaining
// adjacency; the receiver decodes F100.
func fmtN(n int) media.Format { return media.Opaque(n) }

// receiverFormat is the only format the receiving device decodes.
var receiverFormat = fmtN(100)

// Table1Services builds the twenty trans-coding services of Figure 6,
// each hosted on its own proxy ("p1".."p20"). When includeT7 is false the
// Figure 6 ablation variant (graph without T7) is produced.
func Table1Services(includeT7 bool) []*service.Service {
	svc := func(i int, inputs, outputs []media.Format) *service.Service {
		return &service.Service{
			ID:      service.ID(fmt.Sprintf("t%d", i)),
			Name:    fmt.Sprintf("trans-coding service T%d", i),
			Inputs:  inputs,
			Outputs: outputs,
			Host:    fmt.Sprintf("p%d", i),
		}
	}
	f := fmtN
	services := []*service.Service{
		svc(1, []media.Format{f(1)}, []media.Format{f(111)}),
		svc(2, []media.Format{f(2)}, []media.Format{f(112), f(113)}),
		svc(3, []media.Format{f(3)}, []media.Format{f(114)}),
		svc(4, []media.Format{f(4), f(212), f(213)}, []media.Format{f(204)}),
		svc(5, []media.Format{f(5), f(211), f(214), f(204)}, []media.Format{f(115)}),
		svc(6, []media.Format{f(6), f(215)}, []media.Format{f(206)}),
		svc(8, []media.Format{f(8)}, []media.Format{receiverFormat}),
		svc(9, []media.Format{f(9), f(219)}, []media.Format{f(209), f(216)}),
		svc(10, []media.Format{f(10), f(220)}, []media.Format{receiverFormat, f(119), f(120)}),
		svc(11, []media.Format{f(111)}, []media.Format{f(211)}),
		svc(12, []media.Format{f(112)}, []media.Format{f(212)}),
		svc(13, []media.Format{f(113)}, []media.Format{f(213)}),
		svc(14, []media.Format{f(114)}, []media.Format{f(214)}),
		svc(15, []media.Format{f(115)}, []media.Format{f(215), f(217)}),
		// T16–T18 hang off services the algorithm never expands (T9,
		// T15, T19), so they never enter CS — matching Table 1, whose
		// candidate sets never mention them.
		svc(16, []media.Format{f(216)}, []media.Format{receiverFormat}),
		svc(17, []media.Format{f(217)}, []media.Format{receiverFormat}),
		svc(18, []media.Format{f(218)}, []media.Format{receiverFormat}),
		svc(19, []media.Format{f(119)}, []media.Format{f(219), f(218)}),
		svc(20, []media.Format{f(120)}, []media.Format{f(220)}),
	}
	if includeT7 {
		services = append(services, svc(7, []media.Format{f(7), f(206), f(209)}, []media.Format{receiverFormat}))
	}
	return services
}

// Table1Network builds the overlay whose link bandwidths are calibrated
// to reproduce Table 1. The default bitrate model charges 100 kbit/s per
// delivered frame per second, so e.g. the 2720 kbps sender→p5 link lets
// T5 deliver 27.2 fps, which Table 1 prints as "27 / 0.90".
func Table1Network() *overlay.Network {
	net := overlay.New()
	// Sender access links, ordering the ten first-hop candidates.
	senderLinks := map[string]float64{
		"p1": 2300, "p2": 2305, "p3": 2309, "p4": 2700, "p5": 2720,
		"p6": 1990, "p7": 2000, "p8": 2009, "p9": 1500, "p10": 3200,
	}
	for host, kbps := range senderLinks {
		net.AddLink("sender", host, kbps, 10, 0)
	}
	// Second-hop links discovered as the algorithm expands.
	net.AddLink("p10", "p19", 1200, 10, 0)
	net.AddLink("p10", "p20", 3200, 10, 0)
	net.AddLink("p10", "receiver", 1000, 10, 0)
	net.AddLink("p5", "p15", 1650, 10, 0)
	net.AddLink("p1", "p11", 2298, 10, 0)
	net.AddLink("p2", "p13", 2295, 10, 0)
	net.AddLink("p2", "p12", 2290, 10, 0)
	net.AddLink("p3", "p14", 2285, 10, 0)
	// Exit links to the receiver: T7's affords 19.85 fps (prints as
	// 20 / 0.66); T8's affords 18 fps and carries the Figure 6
	// "without T7" ablation (prints as 18 / 0.60).
	net.AddLink("p7", "receiver", 1985, 10, 0)
	net.AddLink("p8", "receiver", 1800, 10, 0)
	// Wide links closing the graph (targets are already-considered
	// services by the time these are reached, matching the rounds in
	// which CS gains nothing).
	for _, l := range [][2]string{
		{"p20", "p10"}, {"p19", "p9"}, {"p11", "p5"}, {"p13", "p4"},
		{"p12", "p4"}, {"p14", "p5"}, {"p4", "p5"}, {"p15", "p6"},
		{"p6", "p7"}, {"p9", "p7"},
		{"p9", "p16"}, {"p15", "p17"}, {"p19", "p18"},
		{"p16", "receiver"}, {"p17", "receiver"}, {"p18", "receiver"},
	} {
		net.AddLink(l[0], l[1], 5000, 10, 0)
	}
	return net
}

// Table1Content is the sender's content profile: ten stored variants
// F1..F10, each offering the full 30 fps.
func Table1Content() *profile.Content {
	c := &profile.Content{ID: "figure6-content", Title: "Figure 6 source stream"}
	for i := 1; i <= 10; i++ {
		c.Variants = append(c.Variants, media.Descriptor{
			Format: fmtN(i),
			Params: media.Params{media.ParamFrameRate: 30},
		})
	}
	return c
}

// Table1Device is the receiving device: it decodes only F100.
func Table1Device() *profile.Device {
	return &profile.Device{
		ID:       "receiver",
		Class:    profile.ClassDesktop,
		Software: profile.Software{Decoders: []media.Format{receiverFormat}},
	}
}

// Table1Graph builds the full adaptation graph of Figure 6 (or its
// without-T7 ablation).
func Table1Graph(includeT7 bool) (*graph.Graph, error) {
	return graph.Build(graph.Input{
		Content:      Table1Content(),
		Device:       Table1Device(),
		Services:     Table1Services(includeT7),
		Net:          Table1Network(),
		SenderHost:   "sender",
		ReceiverHost: "receiver",
	})
}

// Table1Config is the selection configuration of the worked example: the
// user's satisfaction is linear in the delivered frame rate with ideal
// 30 fps (Table 1's satisfaction column equals fps/30), the default
// bitrate model applies, and the budget is unconstrained.
func Table1Config() core.Config {
	return core.Config{
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
		}),
		Trace: true,
	}
}

// RunTable1 reproduces the Table 1 trace; includeT7 selects between
// Figure 6's two variants.
func RunTable1(includeT7 bool) (*core.Result, error) {
	g, err := Table1Graph(includeT7)
	if err != nil {
		return nil, err
	}
	return core.Select(g, Table1Config())
}
