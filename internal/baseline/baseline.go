// Package baseline implements alternative chain-selection strategies used
// to evaluate the paper's greedy QoS algorithm:
//
//   - Exhaustive: enumerates every sender→receiver path (the ground-truth
//     optimum, exponential — it certifies the Figure 5 optimality argument
//     on small graphs);
//   - ShortestHop: fewest trans-coding stages, satisfaction ignored (the
//     "number of hops" criterion Section 4.4 contrasts against);
//   - WidestPath: maximum bottleneck bandwidth, satisfaction ignored (the
//     "available bandwidth" criterion Section 4.4 contrasts against);
//   - MinCost: cheapest accumulated monetary cost;
//   - Random: a uniformly random viable path (sanity floor).
//
// Every baseline returns a *core.Result evaluated with the same
// satisfaction machinery as the greedy algorithm, so results compare
// apples to apples.
package baseline

import (
	"container/heap"
	"math"
	"math/rand"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
)

// state is a node of the search tree shared by the path-based baselines;
// following prev pointers reconstructs the edge sequence.
type state struct {
	at   graph.NodeID
	via  *graph.Edge
	prev *state
}

// edges rebuilds the sender-rooted edge list of the branch.
func (s *state) edges() []*graph.Edge {
	var rev []*graph.Edge
	for cur := s; cur != nil && cur.via != nil; cur = cur.prev {
		rev = append(rev, cur.via)
	}
	out := make([]*graph.Edge, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// Exhaustive searches every acyclic, distinct-format path from sender to
// receiver and returns the satisfaction-maximal one. maxPaths bounds the
// enumeration (0 means unbounded); the returned explored count reports
// how many complete paths were evaluated.
func Exhaustive(g *graph.Graph, cfg core.Config, maxPaths int) (*core.Result, int) {
	cfg.Trace = false
	best := &core.Result{}
	explored := 0
	var stack []*graph.Edge
	visited := map[graph.NodeID]bool{graph.SenderID: true}

	var dfs func(at graph.NodeID)
	dfs = func(at graph.NodeID) {
		if maxPaths > 0 && explored >= maxPaths {
			return
		}
		if at == graph.ReceiverID {
			explored++
			params, sat, cost, ok := core.EvalPath(g, cfg, stack)
			if ok && (!best.Found || sat > best.Satisfaction) {
				best.Found = true
				best.Satisfaction = sat
				best.Params = params
				best.Cost = cost
				best.Path, best.Formats = materialize(stack)
			}
			return
		}
		for _, e := range sortedOut(g, at) {
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			stack = append(stack, e)
			dfs(e.To)
			stack = stack[:len(stack)-1]
			visited[e.To] = false
		}
	}
	dfs(graph.SenderID)
	return best, explored
}

// ShortestHop returns the chain with the fewest stages (BFS), evaluated
// under cfg. Among equal-length options the natural ID order decides.
func ShortestHop(g *graph.Graph, cfg core.Config) *core.Result {
	cfg.Trace = false
	visited := map[graph.NodeID]bool{graph.SenderID: true}
	queue := []*state{{at: graph.SenderID}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.at == graph.ReceiverID {
			return evalEdges(g, cfg, cur.edges())
		}
		for _, e := range sortedOut(g, cur.at) {
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			queue = append(queue, &state{at: e.To, via: e, prev: cur})
		}
	}
	return &core.Result{}
}

// widthItem/costItem drive the priority-queue baselines.
type widthItem struct {
	st    *state
	width float64
}

type widthHeap []widthItem

func (h widthHeap) Len() int            { return len(h) }
func (h widthHeap) Less(i, j int) bool  { return h[i].width > h[j].width }
func (h widthHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *widthHeap) Push(x interface{}) { *h = append(*h, x.(widthItem)) }
func (h *widthHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type costItem struct {
	st   *state
	cost float64
}

type costHeap []costItem

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// WidestPath returns the chain maximizing the bottleneck bandwidth,
// evaluated under cfg.
func WidestPath(g *graph.Graph, cfg core.Config) *core.Result {
	cfg.Trace = false
	best := map[graph.NodeID]float64{graph.SenderID: math.Inf(1)}
	pq := &widthHeap{{&state{at: graph.SenderID}, math.Inf(1)}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(widthItem)
		if cur.st.at == graph.ReceiverID {
			return evalEdges(g, cfg, cur.st.edges())
		}
		if cur.width < best[cur.st.at] {
			continue
		}
		for _, e := range sortedOut(g, cur.st.at) {
			w := math.Min(cur.width, e.BandwidthKbps)
			if prev, seen := best[e.To]; !seen || w > prev {
				best[e.To] = w
				heap.Push(pq, widthItem{&state{at: e.To, via: e, prev: cur.st}, w})
			}
		}
	}
	return &core.Result{}
}

// MinCost returns the monetarily cheapest chain (service costs plus edge
// transmission costs), evaluated under cfg.
func MinCost(g *graph.Graph, cfg core.Config) *core.Result {
	cfg.Trace = false
	best := map[graph.NodeID]float64{graph.SenderID: 0}
	done := map[graph.NodeID]bool{}
	pq := &costHeap{{&state{at: graph.SenderID}, 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(costItem)
		if cur.st.at == graph.ReceiverID {
			return evalEdges(g, cfg, cur.st.edges())
		}
		if done[cur.st.at] {
			continue
		}
		done[cur.st.at] = true
		for _, e := range sortedOut(g, cur.st.at) {
			c := cur.cost + e.TransmissionCost
			if node, ok := g.Node(e.To); ok && node.Service != nil {
				c += node.Service.Cost
			}
			if prev, seen := best[e.To]; !seen || c < prev {
				best[e.To] = c
				heap.Push(pq, costItem{&state{at: e.To, via: e, prev: cur.st}, c})
			}
		}
	}
	return &core.Result{}
}

// Random walks a uniformly random viable path (restarting on dead ends,
// up to maxTries attempts) and evaluates it under cfg.
func Random(g *graph.Graph, cfg core.Config, rng *rand.Rand, maxTries int) *core.Result {
	cfg.Trace = false
	if maxTries <= 0 {
		maxTries = 32
	}
	for try := 0; try < maxTries; try++ {
		visited := map[graph.NodeID]bool{graph.SenderID: true}
		var edges []*graph.Edge
		at := graph.SenderID
		for at != graph.ReceiverID {
			var options []*graph.Edge
			for _, e := range sortedOut(g, at) {
				if !visited[e.To] {
					options = append(options, e)
				}
			}
			if len(options) == 0 {
				break
			}
			e := options[rng.Intn(len(options))]
			visited[e.To] = true
			edges = append(edges, e)
			at = e.To
		}
		if at != graph.ReceiverID {
			continue
		}
		if res := evalEdges(g, cfg, edges); res.Found {
			return res
		}
	}
	return &core.Result{}
}

// evalEdges evaluates a concrete edge list into a core.Result.
func evalEdges(g *graph.Graph, cfg core.Config, edges []*graph.Edge) *core.Result {
	params, sat, cost, ok := core.EvalPath(g, cfg, edges)
	if !ok {
		return &core.Result{}
	}
	res := &core.Result{Found: true, Satisfaction: sat, Params: params, Cost: cost}
	res.Path, res.Formats = materialize(edges)
	return res
}

// materialize converts an edge list into (path, formats).
func materialize(edges []*graph.Edge) ([]graph.NodeID, []media.Format) {
	path := make([]graph.NodeID, 0, len(edges)+1)
	formats := make([]media.Format, 0, len(edges))
	path = append(path, graph.SenderID)
	for _, e := range edges {
		path = append(path, e.To)
		formats = append(formats, e.Format)
	}
	return path, formats
}

// sortedOut returns a node's outgoing edges in deterministic order.
func sortedOut(g *graph.Graph, id graph.NodeID) []*graph.Edge {
	edges := append([]*graph.Edge(nil), g.Out(id)...)
	sortEdges(edges)
	return edges
}

func sortEdges(edges []*graph.Edge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edgeLess(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

func edgeLess(a, b *graph.Edge) bool {
	if a.To != b.To {
		return graph.LessNatural(a.To, b.To)
	}
	return a.Format.String() < b.Format.String()
}
