package baseline

import (
	"math"
	"math/rand"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/paperexample"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
	"qoschain/internal/workload"
)

func fpsConfig() core.Config {
	return core.Config{Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})}
}

// diamond builds sender with two chains: a (fast, expensive, 2 hops via
// a1,a2) and b (slow, cheap, 1 hop).
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.NewGraph("s", "r")
	a1 := service.FormatConverter("a1", media.Opaque(1), media.Opaque(2))
	a1.Cost = 5
	a2 := service.FormatConverter("a2", media.Opaque(2), media.Opaque(3))
	a2.Cost = 5
	b := service.FormatConverter("b1", media.Opaque(4), media.Opaque(5))
	b.Cost = 1
	for _, s := range []*service.Service{a1, a2, b} {
		if err := g.AddService(s); err != nil {
			t.Fatal(err)
		}
	}
	src := media.Params{media.ParamFrameRate: 30}
	edges := []*graph.Edge{
		{From: graph.SenderID, To: "a1", Format: media.Opaque(1), BandwidthKbps: 3000, SourceParams: src},
		{From: "a1", To: "a2", Format: media.Opaque(2), BandwidthKbps: 3000},
		{From: "a2", To: graph.ReceiverID, Format: media.Opaque(3), BandwidthKbps: 2800},
		{From: graph.SenderID, To: "b1", Format: media.Opaque(4), BandwidthKbps: 1200, SourceParams: src},
		{From: "b1", To: graph.ReceiverID, Format: media.Opaque(5), BandwidthKbps: 5000},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	g := diamond(t)
	res, explored := Exhaustive(g, fpsConfig(), 0)
	if !res.Found {
		t.Fatal("exhaustive must find a chain")
	}
	if explored != 2 {
		t.Errorf("explored = %d paths, want 2", explored)
	}
	// Best chain: via a1,a2 at 28 fps.
	if core.PathString(res.Path) != "sender,a1,a2,receiver" {
		t.Errorf("path = %s", core.PathString(res.Path))
	}
	if math.Abs(res.Params.Get(media.ParamFrameRate)-28) > 1e-6 {
		t.Errorf("fps = %v, want 28", res.Params.Get(media.ParamFrameRate))
	}
}

func TestExhaustiveMaxPathsBound(t *testing.T) {
	g := diamond(t)
	_, explored := Exhaustive(g, fpsConfig(), 1)
	if explored != 1 {
		t.Errorf("explored = %d, want exactly the bound", explored)
	}
}

func TestExhaustiveNoChain(t *testing.T) {
	g := graph.NewGraph("s", "r")
	res, explored := Exhaustive(g, fpsConfig(), 0)
	if res.Found || explored != 0 {
		t.Error("empty graph must explore nothing")
	}
}

func TestShortestHopPrefersFewestStages(t *testing.T) {
	g := diamond(t)
	res := ShortestHop(g, fpsConfig())
	if !res.Found {
		t.Fatal("shortest-hop must find a chain")
	}
	if core.PathString(res.Path) != "sender,b1,receiver" {
		t.Errorf("path = %s, want the 1-stage chain", core.PathString(res.Path))
	}
	// It pays for fewer hops with quality: 12 fps only.
	if math.Abs(res.Params.Get(media.ParamFrameRate)-12) > 1e-6 {
		t.Errorf("fps = %v, want 12", res.Params.Get(media.ParamFrameRate))
	}
}

func TestWidestPathMaximizesBottleneck(t *testing.T) {
	g := diamond(t)
	res := WidestPath(g, fpsConfig())
	if !res.Found {
		t.Fatal("widest-path must find a chain")
	}
	// Chain a bottleneck = 2800; chain b bottleneck = 1200.
	if core.PathString(res.Path) != "sender,a1,a2,receiver" {
		t.Errorf("path = %s", core.PathString(res.Path))
	}
}

func TestMinCostPrefersCheapest(t *testing.T) {
	g := diamond(t)
	res := MinCost(g, fpsConfig())
	if !res.Found {
		t.Fatal("min-cost must find a chain")
	}
	if core.PathString(res.Path) != "sender,b1,receiver" {
		t.Errorf("path = %s, want the cost-1 chain", core.PathString(res.Path))
	}
	if res.Cost != 1 {
		t.Errorf("cost = %v, want 1", res.Cost)
	}
}

func TestRandomFindsSomeChain(t *testing.T) {
	g := diamond(t)
	res := Random(g, fpsConfig(), rand.New(rand.NewSource(1)), 16)
	if !res.Found {
		t.Fatal("random baseline should find a chain in a connected graph")
	}
	if res.Satisfaction <= 0 {
		t.Error("random chain should deliver positive satisfaction")
	}
}

func TestRandomGivesUpOnDisconnected(t *testing.T) {
	g := graph.NewGraph("s", "r")
	res := Random(g, fpsConfig(), rand.New(rand.NewSource(1)), 4)
	if res.Found {
		t.Error("random must not invent a chain")
	}
}

// TestFigure5GreedyEqualsExhaustive is the Figure 5 optimality claim:
// because trans-coding only reduces quality, the greedy algorithm's
// satisfaction equals the exhaustive optimum. Verified over 60 random
// scenarios.
func TestFigure5GreedyEqualsExhaustive(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		sc := workload.Generate(rand.New(rand.NewSource(seed)), workload.Spec{Services: 8})
		greedy, err := core.Select(sc.Graph, sc.Config)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exact, _ := Exhaustive(sc.Graph, sc.Config, 0)
		if !exact.Found {
			t.Fatalf("seed %d: exhaustive found nothing but greedy did", seed)
		}
		if greedy.Satisfaction < exact.Satisfaction-1e-9 {
			t.Errorf("seed %d: greedy %.6f < exhaustive %.6f (path %s vs %s)",
				seed, greedy.Satisfaction, exact.Satisfaction,
				core.PathString(greedy.Path), core.PathString(exact.Path))
		}
		// And greedy can never exceed the true optimum.
		if greedy.Satisfaction > exact.Satisfaction+1e-9 {
			t.Errorf("seed %d: greedy %.6f above exhaustive %.6f — exhaustive is broken",
				seed, greedy.Satisfaction, exact.Satisfaction)
		}
	}
}

// TestBaselinesOnTable1 runs every baseline on the paper's Figure 6
// graph: none may beat the greedy algorithm's 0.66 satisfaction, and the
// exhaustive search must match it exactly.
func TestBaselinesOnTable1(t *testing.T) {
	g, err := paperexample.Table1Graph(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperexample.Table1Config()
	greedy, err := core.Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := Exhaustive(g, cfg, 0)
	if math.Abs(exact.Satisfaction-greedy.Satisfaction) > 1e-9 {
		t.Errorf("exhaustive %.6f != greedy %.6f on Table 1", exact.Satisfaction, greedy.Satisfaction)
	}
	for name, res := range map[string]*core.Result{
		"shortest-hop": ShortestHop(g, cfg),
		"widest-path":  WidestPath(g, cfg),
		"min-cost":     MinCost(g, cfg),
		"random":       Random(g, cfg, rand.New(rand.NewSource(2)), 32),
	} {
		if !res.Found {
			t.Errorf("%s found no chain on Table 1 graph", name)
			continue
		}
		if res.Satisfaction > greedy.Satisfaction+1e-9 {
			t.Errorf("%s satisfaction %.6f beats greedy %.6f — impossible",
				name, res.Satisfaction, greedy.Satisfaction)
		}
	}
}

func TestEvalPathRejectsBadSequences(t *testing.T) {
	g := diamond(t)
	cfg := fpsConfig()
	if _, _, _, ok := core.EvalPath(g, cfg, nil); ok {
		t.Error("empty path must be rejected")
	}
	// Discontinuous: sender->a1 then b1->receiver.
	var e1, e2 *graph.Edge
	for _, e := range g.Out(graph.SenderID) {
		if e.To == "a1" {
			e1 = e
		}
	}
	for _, e := range g.Out("b1") {
		e2 = e
	}
	if _, _, _, ok := core.EvalPath(g, cfg, []*graph.Edge{e1, e2}); ok {
		t.Error("discontinuous path must be rejected")
	}
	// Not starting at the sender.
	if _, _, _, ok := core.EvalPath(g, cfg, []*graph.Edge{e2}); ok {
		t.Error("path not rooted at the sender must be rejected")
	}
}
