// Package e2e holds end-to-end integration tests exercising the whole
// deployment story: intermediaries advertise services to a TCP registry,
// the composer discovers them, builds the graph over a live overlay,
// selects a chain, streams frames through it, and adapts when the
// network fluctuates — with the HTTP API layered on top.
package e2e

import (
	"bytes"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/httpapi"
	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/pipeline"
	"qoschain/internal/profile"
	"qoschain/internal/registry"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
	"qoschain/internal/session"
)

// deployment assembles the shared scenario: an MPEG-1 source, a phone
// that decodes H.263, two proxies advertising converters to a live TCP
// registry, and an overlay connecting everything.
type deployment struct {
	registry *registry.Server
	client   *registry.Client
	net      *overlay.Network
	content  *profile.Content
	device   *profile.Device
}

func deploy(t *testing.T) *deployment {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := registry.Serve(registry.New(), ln)
	t.Cleanup(func() { srv.Close() })

	client, err := registry.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	// Two intermediaries advertise over the wire, as real proxies would.
	direct := service.FormatConverter("direct", media.VideoMPEG1, media.VideoH263)
	direct.Host = "proxy-fast"
	stage1 := service.FormatConverter("stage1", media.VideoMPEG1, media.VideoMJPEG)
	stage1.Host = "proxy-slow"
	stage2 := service.FormatConverter("stage2", media.VideoMJPEG, media.VideoH263)
	stage2.Host = "proxy-slow"
	for _, svc := range []*service.Service{direct, stage1, stage2} {
		if err := client.Register(svc, time.Hour); err != nil {
			t.Fatal(err)
		}
	}

	ov := overlay.New()
	ov.AddLink("sender", "proxy-fast", 2600, 10, 0)
	ov.AddLink("proxy-fast", "phone", 2400, 15, 0)
	ov.AddLink("sender", "proxy-slow", 1500, 20, 0)
	ov.AddLink("proxy-slow", "phone", 1400, 25, 0)

	return &deployment{
		registry: srv,
		client:   client,
		net:      ov,
		content: &profile.Content{ID: "clip", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		device: &profile.Device{ID: "phone", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263},
		}},
	}
}

// table1StyleConfig is the linear frame-rate objective shared by the
// end-to-end tests.
func table1StyleConfig() core.Config {
	return core.Config{Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})}
}

func TestEndToEndDiscoverComposeStream(t *testing.T) {
	d := deploy(t)

	// 1. Discover services through the wire-protocol registry.
	src := registry.NewRemoteSource(d.client)
	services := graph.Discover(src, d.content, 0)
	if len(services) != 3 {
		t.Fatalf("discovered %d services, want 3", len(services))
	}

	// 2. Build the adaptation graph over the live overlay and select.
	g, err := graph.Build(graph.Input{
		Content: d.content, Device: d.device,
		Services: services, Net: d.net,
		SenderHost: "sender", ReceiverHost: "phone",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := table1StyleConfig()
	res, err := core.Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if core.PathString(res.Path) != "sender,direct,receiver" {
		t.Fatalf("selected path = %s, want the fast proxy", core.PathString(res.Path))
	}
	// Bottleneck 2400 kbps → 24 fps → 0.8.
	if math.Abs(res.Satisfaction-0.8) > 1e-6 {
		t.Fatalf("satisfaction = %v, want 0.8", res.Satisfaction)
	}

	// 3. Stream 10 seconds through the chain.
	p, err := pipeline.FromResult(g, res, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(300)
	if math.Abs(stats.DeliveredFPS-24) > 1.5 {
		t.Errorf("delivered fps = %v, want ~24", stats.DeliveredFPS)
	}
	if stats.ChainDelayMs != 25 { // 10 + 15 ms
		t.Errorf("chain delay = %v, want 25", stats.ChainDelayMs)
	}
}

func TestEndToEndSessionAdapts(t *testing.T) {
	d := deploy(t)
	src := registry.NewRemoteSource(d.client)
	services := graph.Discover(src, d.content, 0)

	sess, err := session.New(session.Config{
		Content: d.content, Device: d.device,
		Services: services, Net: d.net,
		SenderHost: "sender", ReceiverHost: "phone",
		Select: table1StyleConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if core.PathString(sess.Result().Path) != "sender,direct,receiver" {
		t.Fatalf("initial path = %s", core.PathString(sess.Result().Path))
	}
	// The fast proxy's access link collapses; the session must fall
	// back to the two-stage chain through the slow proxy.
	if err := d.net.SetBandwidth("sender", "proxy-fast", 200); err != nil {
		t.Fatal(err)
	}
	changed, err := sess.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("session should re-compose after the collapse")
	}
	if core.PathString(sess.Result().Path) != "sender,stage1,stage2,receiver" {
		t.Errorf("fallback path = %s", core.PathString(sess.Result().Path))
	}
}

func TestEndToEndOverHTTP(t *testing.T) {
	d := deploy(t)
	// The HTTP API takes a full profile set; assemble one matching the
	// deployment (the intermediary list mirrors what the registry holds).
	src := registry.NewRemoteSource(d.client)
	services := graph.Discover(src, d.content, 0)
	byHost := map[string][]*service.Service{}
	for _, svc := range services {
		byHost[svc.Host] = append(byHost[svc.Host], svc)
	}
	set := &profile.Set{
		User: profile.User{Name: "u", Preferences: map[media.Param]profile.FuncSpec{
			media.ParamFrameRate: profile.LinearSpec(0, 30),
		}},
		Content: *d.content,
		Device:  *d.device,
		Network: d.net.Snapshot(),
	}
	for host, svcs := range byHost {
		set.Intermediaries = append(set.Intermediaries, profile.Intermediary{
			Host: host, CPUMips: 10000, MemoryMB: 1024, Services: svcs,
		})
	}

	api := httptest.NewServer(httpapi.Handler())
	defer api.Close()
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(api.URL+"/v1/compose", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Path         []string `json:"path"`
		Satisfaction float64  `json:"satisfaction"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Path) != 3 || body.Path[1] != "direct" {
		t.Errorf("HTTP path = %v", body.Path)
	}
	if math.Abs(body.Satisfaction-0.8) > 1e-6 {
		t.Errorf("HTTP satisfaction = %v", body.Satisfaction)
	}
}
