// Package multicast composes adaptation chains for a *group* of
// heterogeneous receivers of the same content — the one-sender,
// many-clients setting the paper's introduction motivates ("trans-coding
// services ... can also be replicated across the network").
//
// This is an extension beyond the paper (EXT-E in EXPERIMENTS.md): the
// paper's algorithm serves one receiver. The group composer runs it once
// per receiver in order, but lets later receivers reuse the trans-coding
// services earlier receivers already pay for: a reused service instance
// has zero marginal monetary cost, so tight budgets stop blocking the
// high-quality chains once one group member funds them.
package multicast

import (
	"fmt"
	"sort"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

// Receiver is one group member: a device plus that user's selection
// configuration (satisfaction profile, budget, receiver caps).
type Receiver struct {
	// ID names the member (used as the receiver host on the overlay).
	ID string
	// Device supplies the decoders and render caps.
	Device *profile.Device
	// Config is the member's selection configuration.
	Config core.Config
}

// Group is the shared composition problem.
type Group struct {
	// Content is the common source.
	Content *profile.Content
	// Services are the deployed trans-coding services (hosts stamped).
	Services []*service.Service
	// Net is the overlay; each receiver must be reachable on it under
	// its ID (or its Device.ID when ID is empty).
	Net *overlay.Network
	// SenderHost locates the sender.
	SenderHost string
}

// MemberResult is one receiver's outcome.
type MemberResult struct {
	Receiver string
	Result   *core.Result
	Err      error
}

// Result is the group outcome.
type Result struct {
	// Members holds per-receiver results in composition order.
	Members []MemberResult
	// SharedCost is the total monetary cost with service sharing.
	SharedCost float64
	// IndependentCost is what the same chains would cost if every
	// member paid for its services separately.
	IndependentCost float64
	// Shared lists services used by more than one member.
	Shared []service.ID
	// MeanSatisfaction averages the satisfactions of served members.
	MeanSatisfaction float64
}

// Compose runs the shared composition. Receivers are served in the given
// order; an unreachable receiver is recorded with its error rather than
// failing the group.
func Compose(g Group, receivers []Receiver) (*Result, error) {
	if g.Content == nil {
		return nil, fmt.Errorf("multicast: nil content")
	}
	if len(receivers) == 0 {
		return nil, fmt.Errorf("multicast: no receivers")
	}

	res := &Result{}
	paid := make(map[service.ID]float64) // service -> cost already funded
	usage := make(map[service.ID]int)
	satSum := 0.0
	served := 0

	for _, rcv := range receivers {
		host := rcv.ID
		if host == "" && rcv.Device != nil {
			host = rcv.Device.ID
		}
		// Clone the service pool with already-funded services free.
		pool := make([]*service.Service, len(g.Services))
		for i, s := range g.Services {
			c := s.Clone()
			if _, funded := paid[c.ID]; funded {
				c.Cost = 0
			}
			pool[i] = c
		}
		adaptGraph, err := graph.Build(graph.Input{
			Content:      g.Content,
			Device:       rcv.Device,
			Services:     pool,
			Net:          g.Net,
			SenderHost:   g.SenderHost,
			ReceiverHost: host,
		})
		var selected *core.Result
		if err == nil {
			selected, err = core.Select(adaptGraph, rcv.Config)
		}
		res.Members = append(res.Members, MemberResult{Receiver: host, Result: selected, Err: err})
		if err != nil {
			continue
		}
		served++
		satSum += selected.Satisfaction
		res.SharedCost += selected.Cost
		// Account full (unshared) prices for the comparison, and mark
		// the chain's services as funded.
		for _, id := range selected.Path[1 : len(selected.Path)-1] {
			sid := service.ID(id)
			usage[sid]++
			full := fullCost(g.Services, sid)
			res.IndependentCost += full
			if _, funded := paid[sid]; !funded {
				paid[sid] = full
			}
		}
	}
	if served > 0 {
		res.MeanSatisfaction = satSum / float64(served)
	}
	for id, n := range usage {
		if n > 1 {
			res.Shared = append(res.Shared, id)
		}
	}
	sort.Slice(res.Shared, func(i, j int) bool { return res.Shared[i] < res.Shared[j] })
	return res, nil
}

func fullCost(services []*service.Service, id service.ID) float64 {
	for _, s := range services {
		if s.ID == id {
			return s.Cost
		}
	}
	return 0
}

// Savings returns the monetary saving sharing achieved.
func (r *Result) Savings() float64 { return r.IndependentCost - r.SharedCost }

// Served counts members that received a chain.
func (r *Result) Served() int {
	n := 0
	for _, m := range r.Members {
		if m.Err == nil && m.Result != nil && m.Result.Found {
			n++
		}
	}
	return n
}

// ReuseNetwork is a convenience for tests and examples: it extends the
// overlay with identical last-hop links from hub to each receiver.
func ReuseNetwork(net *overlay.Network, hub string, kbps, delayMs float64, receivers []Receiver) {
	for _, rcv := range receivers {
		host := rcv.ID
		if host == "" && rcv.Device != nil {
			host = rcv.Device.ID
		}
		net.AddLink(hub, host, kbps, delayMs, 0)
	}
}
