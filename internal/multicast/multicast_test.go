package multicast

import (
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

func fpsConfig(budget float64) core.Config {
	return core.Config{
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
		}),
		Budget: budget,
	}
}

func phone(id string) *profile.Device {
	return &profile.Device{
		ID:       id,
		Class:    profile.ClassPhone,
		Software: profile.Software{Decoders: []media.Format{media.VideoH263}},
	}
}

// group builds: sender → proxy (premium converter, cost 5; economy
// converter, cost 1 with a 12 fps cap) → N phones.
func group(receivers ...Receiver) (Group, []Receiver) {
	premium := service.FormatConverter("premium", media.VideoMPEG1, media.VideoH263)
	premium.Cost = 5
	premium.Host = "proxy"
	economy := service.FormatConverter("economy", media.VideoMPEG1, media.VideoH263)
	economy.Cost = 1
	economy.Caps = media.Params{media.ParamFrameRate: 12}
	economy.Host = "proxy"

	net := overlay.New()
	net.AddLink("sender", "proxy", 4000, 10, 0)
	ReuseNetwork(net, "proxy", 3000, 20, receivers)

	return Group{
		Content: &profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Services:   []*service.Service{premium, economy},
		Net:        net,
		SenderHost: "sender",
	}, receivers
}

func TestComposeSharingUnlocksPremium(t *testing.T) {
	// First member can afford the premium converter; the second has
	// budget 1 and would be stuck on economy alone — but sharing makes
	// premium free for them.
	receivers := []Receiver{
		{ID: "phone-1", Device: phone("phone-1"), Config: fpsConfig(10)},
		{ID: "phone-2", Device: phone("phone-2"), Config: fpsConfig(1)},
	}
	g, receivers := group(receivers...)
	res, err := Compose(g, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served() != 2 {
		t.Fatalf("served = %d, want 2", res.Served())
	}
	for i, m := range res.Members {
		if string(m.Result.Path[1]) != "premium" {
			t.Errorf("member %d path = %v, want premium", i, m.Result.Path)
		}
		if m.Result.Satisfaction != 1 {
			t.Errorf("member %d satisfaction = %v, want 1", i, m.Result.Satisfaction)
		}
	}
	if res.SharedCost != 5 {
		t.Errorf("SharedCost = %v, want 5 (premium funded once)", res.SharedCost)
	}
	if res.IndependentCost != 10 {
		t.Errorf("IndependentCost = %v, want 10", res.IndependentCost)
	}
	if res.Savings() != 5 {
		t.Errorf("Savings = %v, want 5", res.Savings())
	}
	if len(res.Shared) != 1 || res.Shared[0] != "premium" {
		t.Errorf("Shared = %v", res.Shared)
	}
}

func TestComposeWithoutSharingBudgetBinds(t *testing.T) {
	// A single budget-1 receiver alone can only afford economy.
	receivers := []Receiver{
		{ID: "phone-2", Device: phone("phone-2"), Config: fpsConfig(1)},
	}
	g, receivers := group(receivers...)
	res, err := Compose(g, receivers)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Members[0]
	if string(m.Result.Path[1]) != "economy" {
		t.Errorf("path = %v, want economy (budget 1)", m.Result.Path)
	}
	if m.Result.Satisfaction >= 1 {
		t.Error("economy chain should cap satisfaction below 1")
	}
}

func TestComposeUnreachableMemberRecorded(t *testing.T) {
	receivers := []Receiver{
		{ID: "phone-1", Device: phone("phone-1"), Config: fpsConfig(10)},
		{ID: "island", Device: phone("island"), Config: fpsConfig(10)},
	}
	g, _ := group(receivers[0]) // only phone-1 gets a last hop
	g.Net.AddNode("island")
	res, err := Compose(g, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served() != 1 {
		t.Errorf("served = %d, want 1", res.Served())
	}
	if res.Members[1].Err == nil {
		t.Error("unreachable member should carry an error")
	}
	if res.MeanSatisfaction != 1 {
		t.Errorf("mean satisfaction over served members = %v, want 1", res.MeanSatisfaction)
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(Group{}, nil); err == nil {
		t.Error("nil content must fail")
	}
	g, _ := group()
	if _, err := Compose(g, nil); err == nil {
		t.Error("empty receiver list must fail")
	}
}

func TestComposeDefaultsHostToDeviceID(t *testing.T) {
	receivers := []Receiver{
		{Device: phone("phone-1"), Config: fpsConfig(10)}, // no explicit ID
	}
	g, receivers := group(Receiver{ID: "phone-1", Device: phone("phone-1"), Config: fpsConfig(10)})
	res, err := Compose(g, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Members[0].Receiver != "phone-1" {
		t.Errorf("receiver host = %q, want device ID fallback", res.Members[0].Receiver)
	}
	if res.Served() != 1 {
		t.Error("device-ID fallback must still serve")
	}
}

func TestComposeHeterogeneousGroup(t *testing.T) {
	// A phone and a desktop: the desktop decodes the source directly
	// (no service cost), the phone uses the shared premium converter.
	desktop := &profile.Device{
		ID:       "desk-1",
		Class:    profile.ClassDesktop,
		Software: profile.Software{Decoders: []media.Format{media.VideoMPEG1}},
	}
	receivers := []Receiver{
		{ID: "phone-1", Device: phone("phone-1"), Config: fpsConfig(10)},
		{ID: "desk-1", Device: desktop, Config: fpsConfig(10)},
	}
	g, receivers := group(receivers...)
	res, err := Compose(g, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served() != 2 {
		t.Fatalf("served = %d", res.Served())
	}
	if len(res.Members[1].Result.Path) != 2 {
		t.Errorf("desktop should take the direct path: %v", res.Members[1].Result.Path)
	}
	if res.SharedCost != 5 {
		t.Errorf("only the phone's premium should cost: %v", res.SharedCost)
	}
	if len(res.Shared) != 0 {
		t.Errorf("nothing is shared here: %v", res.Shared)
	}
}
