package media

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Param names a continuous application-level QoS parameter of a media
// stream. These are the variables x_i of Section 4.1: the quantities the
// user's satisfaction functions are defined over and that the selection
// algorithm tunes per trans-coding service.
type Param string

// The application-level QoS parameters used by the framework. Downstream
// code may introduce additional parameters; these are the ones the paper
// names (frame rate, resolution, colour depth, audio quality).
const (
	ParamFrameRate  Param = "framerate"  // frames per second
	ParamResolution Param = "resolution" // kilopixels per frame
	ParamColorDepth Param = "colordepth" // bits per pixel
	ParamAudioRate  Param = "audiorate"  // kHz sampling rate
	ParamAudioBits  Param = "audiobits"  // bits per sample
)

// Params is an assignment of values to QoS parameters. A nil Params is
// treated as empty everywhere.
type Params map[Param]float64

// Clone returns a deep copy of p.
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Get returns the value of the parameter, or 0 when absent.
func (p Params) Get(name Param) float64 { return p[name] }

// Names returns the parameter names in sorted order, for deterministic
// iteration.
func (p Params) Names() []Param {
	out := make([]Param, 0, len(p))
	for k := range p {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Min returns the element-wise minimum of p and other over the parameters
// present in p. Parameters absent from other are kept as-is. This models
// a trans-coding service that can only reduce quality: its output
// parameters are capped both by its capability and by its input.
func (p Params) Min(other Params) Params {
	out := p.Clone()
	for k, v := range out {
		if ov, ok := other[k]; ok && ov < v {
			out[k] = ov
		}
	}
	return out
}

// Dominates reports whether every parameter of p is >= the corresponding
// parameter in other, with other's parameter set a subset of p's. It is
// used by dominated-edge pruning in graph construction.
func (p Params) Dominates(other Params) bool {
	for k, v := range other {
		pv, ok := p[k]
		if !ok || pv < v {
			return false
		}
	}
	return true
}

// Equal reports whether p and other hold the same assignments within eps.
func (p Params) Equal(other Params, eps float64) bool {
	if len(p) != len(other) {
		return false
	}
	for k, v := range p {
		ov, ok := other[k]
		if !ok || math.Abs(ov-v) > eps {
			return false
		}
	}
	return true
}

// String renders the assignment as "name=value" pairs sorted by name.
func (p Params) String() string {
	if len(p) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range p.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.4g", name, p[name])
	}
	b.WriteByte('}')
	return b.String()
}

// Descriptor fully describes one variant of a media object: its discrete
// format signature plus the continuous QoS parameters at which it is (or
// can be) delivered. The content profile of Section 3 is a collection of
// descriptors, one per stored variant.
type Descriptor struct {
	// Format is the discrete compatibility signature of the variant.
	Format Format
	// Params are the maximum QoS parameter values the variant offers;
	// the selection algorithm may deliver anything at or below them.
	Params Params
	// Bitrate converts a parameter assignment into the bandwidth the
	// stream requires. When nil, DefaultBitrate is used.
	Bitrate BitrateModel
}

// RequiredKbps returns the bandwidth in kbit/s needed to deliver the
// descriptor at the given parameters.
func (d Descriptor) RequiredKbps(p Params) float64 {
	m := d.Bitrate
	if m == nil {
		m = DefaultBitrate
	}
	return m.RequiredKbps(p)
}

// Validate checks the descriptor's format and that no parameter is
// negative or non-finite.
func (d Descriptor) Validate() error {
	if err := d.Format.Validate(); err != nil {
		return err
	}
	for k, v := range d.Params {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("media: descriptor %s parameter %s has invalid value %v", d.Format, k, v)
		}
	}
	return nil
}

// BitrateModel converts a QoS parameter assignment into the bandwidth in
// kbit/s required to stream the content at those parameters. The model is
// the bandwidth_requirement(x1..xn) function of Equation 2.
type BitrateModel interface {
	RequiredKbps(Params) float64
}

// LinearBitrate charges a fixed number of kbit/s per unit of each
// parameter plus a constant overhead. A parameter absent from the
// assignment contributes nothing.
type LinearBitrate struct {
	// PerUnit maps a parameter to its kbit/s cost per unit.
	PerUnit map[Param]float64
	// Overhead is a constant kbit/s term (container/protocol overhead).
	Overhead float64
}

// RequiredKbps implements BitrateModel.
func (m LinearBitrate) RequiredKbps(p Params) float64 {
	total := m.Overhead
	for k, perUnit := range m.PerUnit {
		total += perUnit * p.Get(k)
	}
	return total
}

// VideoBitrate models raw-ish video bandwidth as the product
// framerate × resolution(kpx) × colordepth(bits) scaled by a compression
// ratio, plus audio as audiorate × audiobits.
type VideoBitrate struct {
	// Compression divides the raw pixel bitrate; 1 means uncompressed.
	Compression float64
}

// RequiredKbps implements BitrateModel.
func (m VideoBitrate) RequiredKbps(p Params) float64 {
	c := m.Compression
	if c <= 0 {
		c = 1
	}
	video := p.Get(ParamFrameRate) * p.Get(ParamResolution) * p.Get(ParamColorDepth) / c
	audio := p.Get(ParamAudioRate) * p.Get(ParamAudioBits)
	return video + audio
}

// DefaultBitrate is the bitrate model used when a descriptor does not set
// one: 100 kbit/s per frame per second, which is the calibration the
// paper-example graph uses (Table 1 reproduces exactly under it).
var DefaultBitrate BitrateModel = LinearBitrate{PerUnit: map[Param]float64{ParamFrameRate: 100}}
