package media

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsCloneIndependence(t *testing.T) {
	p := Params{ParamFrameRate: 30, ParamResolution: 300}
	c := p.Clone()
	c[ParamFrameRate] = 10
	if p[ParamFrameRate] != 30 {
		t.Error("Clone must not share storage")
	}
	if Params(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestParamsGet(t *testing.T) {
	p := Params{ParamFrameRate: 25}
	if p.Get(ParamFrameRate) != 25 {
		t.Error("Get should return stored value")
	}
	if p.Get(ParamAudioRate) != 0 {
		t.Error("Get of absent parameter should be 0")
	}
}

func TestParamsNamesSorted(t *testing.T) {
	p := Params{ParamResolution: 1, ParamAudioBits: 2, ParamFrameRate: 3}
	names := p.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestParamsMin(t *testing.T) {
	p := Params{ParamFrameRate: 30, ParamResolution: 300}
	capped := p.Min(Params{ParamFrameRate: 15})
	if capped[ParamFrameRate] != 15 {
		t.Errorf("framerate should cap to 15, got %v", capped[ParamFrameRate])
	}
	if capped[ParamResolution] != 300 {
		t.Errorf("resolution should be unchanged, got %v", capped[ParamResolution])
	}
	// Min must not raise values.
	raised := p.Min(Params{ParamFrameRate: 60})
	if raised[ParamFrameRate] != 30 {
		t.Errorf("Min must never raise a value, got %v", raised[ParamFrameRate])
	}
}

func TestParamsDominates(t *testing.T) {
	hi := Params{ParamFrameRate: 30, ParamResolution: 300}
	lo := Params{ParamFrameRate: 15, ParamResolution: 300}
	if !hi.Dominates(lo) {
		t.Error("hi should dominate lo")
	}
	if lo.Dominates(hi) {
		t.Error("lo should not dominate hi")
	}
	if !hi.Dominates(Params{ParamFrameRate: 30}) {
		t.Error("domination over a subset of parameters should hold")
	}
	if hi.Dominates(Params{ParamAudioRate: 1}) {
		t.Error("missing parameter must break domination")
	}
	if !hi.Dominates(nil) {
		t.Error("everything dominates the empty assignment")
	}
}

func TestParamsEqual(t *testing.T) {
	a := Params{ParamFrameRate: 30}
	b := Params{ParamFrameRate: 30.0000001}
	if !a.Equal(b, 1e-3) {
		t.Error("Equal within eps should hold")
	}
	if a.Equal(b, 1e-9) {
		t.Error("Equal outside eps should fail")
	}
	if a.Equal(Params{ParamAudioRate: 30}, 1) {
		t.Error("different parameter names are never Equal")
	}
	if a.Equal(Params{ParamFrameRate: 30, ParamAudioRate: 1}, 1) {
		t.Error("different sizes are never Equal")
	}
}

func TestParamsString(t *testing.T) {
	if got := (Params{}).String(); got != "{}" {
		t.Errorf("empty Params String = %q", got)
	}
	got := Params{ParamFrameRate: 20, ParamAudioRate: 8}.String()
	want := "{audiorate=8 framerate=20}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestLinearBitrate(t *testing.T) {
	m := LinearBitrate{PerUnit: map[Param]float64{ParamFrameRate: 100}, Overhead: 50}
	got := m.RequiredKbps(Params{ParamFrameRate: 20})
	if got != 2050 {
		t.Errorf("RequiredKbps = %v, want 2050", got)
	}
	if m.RequiredKbps(nil) != 50 {
		t.Error("empty params should cost only the overhead")
	}
}

func TestVideoBitrate(t *testing.T) {
	m := VideoBitrate{Compression: 50}
	p := Params{
		ParamFrameRate:  25,
		ParamResolution: 300, // kilopixels
		ParamColorDepth: 24,
		ParamAudioRate:  44.1,
		ParamAudioBits:  16,
	}
	want := 25*300*24/50.0 + 44.1*16
	if got := m.RequiredKbps(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("RequiredKbps = %v, want %v", got, want)
	}
	// Zero compression defaults to 1 rather than dividing by zero.
	raw := VideoBitrate{}.RequiredKbps(Params{ParamFrameRate: 1, ParamResolution: 1, ParamColorDepth: 1})
	if raw != 1 {
		t.Errorf("default compression should be 1, got bitrate %v", raw)
	}
}

func TestDescriptorRequiredKbpsDefault(t *testing.T) {
	d := Descriptor{Format: VideoMPEG1, Params: Params{ParamFrameRate: 30}}
	if got := d.RequiredKbps(Params{ParamFrameRate: 20}); got != 2000 {
		t.Errorf("default bitrate model should charge 100 kbps/fps: got %v", got)
	}
}

func TestDescriptorValidate(t *testing.T) {
	good := Descriptor{Format: VideoMPEG1, Params: Params{ParamFrameRate: 30}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid descriptor rejected: %v", err)
	}
	bad := []Descriptor{
		{Format: Format{}},
		{Format: VideoMPEG1, Params: Params{ParamFrameRate: -1}},
		{Format: VideoMPEG1, Params: Params{ParamFrameRate: math.NaN()}},
		{Format: VideoMPEG1, Params: Params{ParamFrameRate: math.Inf(1)}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad descriptor %d should fail validation", i)
		}
	}
}

// Property: Min is idempotent, commutative in its capping effect, and
// never increases any coordinate.
func TestParamsMinQuick(t *testing.T) {
	prop := func(a, b uint16) bool {
		p := Params{ParamFrameRate: float64(a % 100), ParamResolution: float64(b % 1000)}
		q := Params{ParamFrameRate: float64(b % 100), ParamResolution: float64(a % 1000)}
		m := p.Min(q)
		if m[ParamFrameRate] > p[ParamFrameRate] || m[ParamResolution] > p[ParamResolution] {
			return false
		}
		if m[ParamFrameRate] > q[ParamFrameRate] || m[ParamResolution] > q[ParamResolution] {
			return false
		}
		return m.Equal(m.Min(q), 0)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: a params vector always dominates its own Min with anything.
func TestParamsDominatesMinQuick(t *testing.T) {
	prop := func(a, b, c uint16) bool {
		p := Params{ParamFrameRate: float64(a), ParamResolution: float64(b)}
		q := Params{ParamFrameRate: float64(c)}
		return p.Dominates(p.Min(q))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
