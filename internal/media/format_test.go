package media

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{KindVideo, "video"},
		{KindAudio, "audio"},
		{KindImage, "image"},
		{KindText, "text"},
		{KindUnknown, "unknown"},
		{Kind(99), "kind(99)"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.kind), got, c.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"video", "AUDIO", " image ", "text"} {
		if _, err := ParseKind(name); err != nil {
			t.Errorf("ParseKind(%q) unexpected error: %v", name, err)
		}
	}
	if _, err := ParseKind("smellovision"); err == nil {
		t.Error("ParseKind of bogus kind should fail")
	}
}

func TestKindValid(t *testing.T) {
	if KindUnknown.Valid() {
		t.Error("KindUnknown must not be Valid")
	}
	if Kind(42).Valid() {
		t.Error("out-of-range kind must not be Valid")
	}
	for _, k := range []Kind{KindVideo, KindAudio, KindImage, KindText} {
		if !k.Valid() {
			t.Errorf("%v should be Valid", k)
		}
	}
}

func TestFormatString(t *testing.T) {
	cases := []struct {
		f    Format
		want string
	}{
		{Format{}, "-"},
		{VideoMPEG1, "video/mpeg1"},
		{ImageJPEGGray, "image/jpeg;gray"},
		{AudioTelephony, "audio/g711;telephony"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Format%+v.String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	for _, f := range WellKnown() {
		got, err := ParseFormat(f.String())
		if err != nil {
			t.Fatalf("ParseFormat(%q): %v", f.String(), err)
		}
		if got != f {
			t.Errorf("round trip of %q gave %+v, want %+v", f.String(), got, f)
		}
	}
}

func TestParseFormatErrors(t *testing.T) {
	for _, s := range []string{"", "video", "smell/codec", "video/", "/mpeg1"} {
		if _, err := ParseFormat(s); err == nil {
			t.Errorf("ParseFormat(%q) should fail", s)
		}
	}
}

func TestFormatValidate(t *testing.T) {
	if err := (Format{Kind: KindVideo, Encoding: "MPEG1"}).Validate(); err == nil {
		t.Error("upper-case encoding should fail validation")
	}
	if err := (Format{Kind: KindVideo}).Validate(); err == nil {
		t.Error("empty encoding should fail validation")
	}
	for _, f := range WellKnown() {
		if err := f.Validate(); err != nil {
			t.Errorf("well-known format %s should validate: %v", f, err)
		}
	}
}

func TestMustParseFormatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseFormat should panic on invalid input")
		}
	}()
	MustParseFormat("nonsense")
}

func TestOpaque(t *testing.T) {
	f5 := Opaque(5)
	if f5.String() != "video/f5" {
		t.Errorf("Opaque(5) = %s, want video/f5", f5)
	}
	if Opaque(5) != f5 {
		t.Error("Opaque must be deterministic")
	}
	if Opaque(5) == Opaque(6) {
		t.Error("distinct opaque indices must differ")
	}
	if got := Opaque(0).String(); got != "video/f0" {
		t.Errorf("Opaque(0) = %s, want video/f0", got)
	}
	if got := Opaque(123).String(); got != "video/f123" {
		t.Errorf("Opaque(123) = %s, want video/f123", got)
	}
	if got := Opaque(-3); got != Opaque(0) {
		t.Errorf("negative opaque index should clamp to 0, got %s", got)
	}
}

func TestOpaqueDistinctness(t *testing.T) {
	seen := make(map[Format]int)
	for i := 0; i < 500; i++ {
		f := Opaque(i)
		if prev, dup := seen[f]; dup {
			t.Fatalf("Opaque(%d) collides with Opaque(%d): %s", i, prev, f)
		}
		seen[f] = i
	}
}

func TestFormatSet(t *testing.T) {
	s := NewFormatSet(VideoMPEG1, AudioMP3)
	if !s.Contains(VideoMPEG1) || !s.Contains(AudioMP3) {
		t.Fatal("set should contain its constructor arguments")
	}
	if s.Contains(ImageGIF) {
		t.Fatal("set should not contain absent format")
	}
	s.Add(ImageGIF)
	if !s.Contains(ImageGIF) {
		t.Fatal("Add should insert")
	}
	inter := s.Intersect(NewFormatSet(ImageGIF, TextHTML))
	if len(inter) != 1 || !inter.Contains(ImageGIF) {
		t.Fatalf("Intersect = %v, want only image/gif", inter.Strings())
	}
}

func TestFormatSetSliceSorted(t *testing.T) {
	s := NewFormatSet(TextHTML, AudioMP3, VideoMPEG1, ImageGIF)
	got := s.Strings()
	want := []string{"audio/mp3", "image/gif", "text/html", "video/mpeg1"}
	if len(got) != len(want) {
		t.Fatalf("Strings() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Strings()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestParseFormatQuick property-tests that any format assembled from
// valid components survives a String/Parse round trip.
func TestParseFormatQuick(t *testing.T) {
	kinds := []Kind{KindVideo, KindAudio, KindImage, KindText}
	encodings := []string{"mpeg1", "h261", "jpeg", "gif", "pcm", "plain", "x"}
	profiles := []string{"", "gray", "qcif", "2bit"}
	prop := func(ki, ei, pi uint8) bool {
		f := Format{
			Kind:     kinds[int(ki)%len(kinds)],
			Encoding: encodings[int(ei)%len(encodings)],
			Profile:  profiles[int(pi)%len(profiles)],
		}
		got, err := ParseFormat(f.String())
		return err == nil && got == f
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
