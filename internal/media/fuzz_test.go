package media

import "testing"

// FuzzParseFormat checks that ParseFormat never panics and that every
// successfully parsed format survives a String/Parse round trip.
func FuzzParseFormat(f *testing.F) {
	for _, seed := range []string{
		"video/mpeg1", "audio/g711;telephony", "image/jpeg;gray",
		"text/plain", "", "video/", "/x", "video", "video/UPPER",
		"kind/enc;a;b", "video/f5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		parsed, err := ParseFormat(s)
		if err != nil {
			return
		}
		if verr := parsed.Validate(); verr != nil {
			t.Fatalf("ParseFormat(%q) returned invalid format: %v", s, verr)
		}
		again, err := ParseFormat(parsed.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", parsed.String(), err)
		}
		if again != parsed {
			t.Fatalf("round trip of %q changed value: %+v vs %+v", s, again, parsed)
		}
	})
}
