package media

// Well-known formats used throughout the framework, the examples and the
// paper-era scenarios (Section 1 motivates jpeg→gif colour reduction,
// HTML→WML, audio→text, video→keyframe conversions; Section 4 labels
// formats opaquely as F1..F16).
var (
	// Video formats.
	VideoMPEG1     = Format{Kind: KindVideo, Encoding: "mpeg1"}
	VideoMPEG2     = Format{Kind: KindVideo, Encoding: "mpeg2"}
	VideoMPEG4     = Format{Kind: KindVideo, Encoding: "mpeg4"}
	VideoH261      = Format{Kind: KindVideo, Encoding: "h261"}
	VideoH263      = Format{Kind: KindVideo, Encoding: "h263"}
	VideoMJPEG     = Format{Kind: KindVideo, Encoding: "mjpeg"}
	VideoH263QCIF  = Format{Kind: KindVideo, Encoding: "h263", Profile: "qcif"}
	VideoKeyframes = Format{Kind: KindImage, Encoding: "jpeg", Profile: "keyframes"}

	// Audio formats.
	AudioPCM       = Format{Kind: KindAudio, Encoding: "pcm"}
	AudioPCM8K     = Format{Kind: KindAudio, Encoding: "pcm", Profile: "8khz"}
	AudioMP3       = Format{Kind: KindAudio, Encoding: "mp3"}
	AudioAAC       = Format{Kind: KindAudio, Encoding: "aac"}
	AudioGSM       = Format{Kind: KindAudio, Encoding: "gsm"}
	AudioG711      = Format{Kind: KindAudio, Encoding: "g711"}
	AudioTelephony = Format{Kind: KindAudio, Encoding: "g711", Profile: "telephony"}

	// Image formats.
	ImageJPEG     = Format{Kind: KindImage, Encoding: "jpeg"}
	ImageJPEGGray = Format{Kind: KindImage, Encoding: "jpeg", Profile: "gray"}
	ImageGIF      = Format{Kind: KindImage, Encoding: "gif"}
	ImageGIF2Bit  = Format{Kind: KindImage, Encoding: "gif", Profile: "2bit"}
	ImagePNG      = Format{Kind: KindImage, Encoding: "png"}
	ImageBMP      = Format{Kind: KindImage, Encoding: "bmp"}

	// Text formats.
	TextHTML       = Format{Kind: KindText, Encoding: "html"}
	TextWML        = Format{Kind: KindText, Encoding: "wml"}
	TextPlain      = Format{Kind: KindText, Encoding: "plain"}
	TextSummary    = Format{Kind: KindText, Encoding: "plain", Profile: "summary"}
	TextTranscript = Format{Kind: KindText, Encoding: "plain", Profile: "transcript"}
)

// Opaque returns the opaque numbered format "Fn" used by the paper's
// figures (F1, F2, ...). Opaque formats share the video kind so that the
// continuous video QoS parameters apply to them; the encoding carries the
// identity.
func Opaque(n int) Format {
	return Format{Kind: KindVideo, Encoding: opaqueName(n)}
}

func opaqueName(n int) string {
	// fmt.Sprintf would be fine; a manual conversion keeps this
	// allocation-light for graph construction benchmarks.
	if n < 0 {
		n = 0
	}
	buf := [8]byte{'f'}
	i := len(buf)
	if n == 0 {
		return "f0"
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "f" + string(buf[i:])
}

// WellKnown lists every named format defined by this package. It is used
// by workload generators and by tests that iterate the format universe.
func WellKnown() []Format {
	return []Format{
		VideoMPEG1, VideoMPEG2, VideoMPEG4, VideoH261, VideoH263,
		VideoMJPEG, VideoH263QCIF, VideoKeyframes,
		AudioPCM, AudioPCM8K, AudioMP3, AudioAAC, AudioGSM, AudioG711,
		AudioTelephony,
		ImageJPEG, ImageJPEGGray, ImageGIF, ImageGIF2Bit, ImagePNG,
		ImageBMP,
		TextHTML, TextWML, TextPlain, TextSummary, TextTranscript,
	}
}
