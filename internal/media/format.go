// Package media models multimedia format signatures and media descriptors.
//
// A Format is the discrete compatibility signature used to connect the
// output of one trans-coding service to the input of another: two services
// can be chained when one produces exactly the Format the other consumes
// (Section 4.2 of the paper). Continuous quality parameters (frame rate,
// resolution, ...) are carried separately by a Descriptor because they are
// negotiated by the QoS selection algorithm rather than fixed by the
// format signature.
package media

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the broad media type of a format.
type Kind int

// The media kinds understood by the framework.
const (
	KindUnknown Kind = iota
	KindVideo
	KindAudio
	KindImage
	KindText
)

var kindNames = map[Kind]string{
	KindUnknown: "unknown",
	KindVideo:   "video",
	KindAudio:   "audio",
	KindImage:   "image",
	KindText:    "text",
}

var kindsByName = map[string]Kind{
	"unknown": KindUnknown,
	"video":   KindVideo,
	"audio":   KindAudio,
	"image":   KindImage,
	"text":    KindText,
}

// String returns the lower-case name of the kind ("video", "audio", ...).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind converts a kind name back into a Kind.
func ParseKind(s string) (Kind, error) {
	if k, ok := kindsByName[strings.ToLower(strings.TrimSpace(s))]; ok {
		return k, nil
	}
	return KindUnknown, fmt.Errorf("media: unknown kind %q", s)
}

// Valid reports whether the kind is one of the defined media kinds.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok && k != KindUnknown
}

// Format is a discrete media format signature: the media kind, the
// encoding (codec or container short name), and an optional profile tag
// that distinguishes variants of the same encoding (for example
// "jpeg/gray" versus "jpeg"). Formats are value types and are compared
// with ==.
type Format struct {
	// Kind is the broad media type.
	Kind Kind
	// Encoding is the codec or container short name, lower case
	// ("mpeg1", "h261", "jpeg", "gif", "pcm", "mp3", "plain", ...).
	Encoding string
	// Profile optionally narrows the encoding ("gray", "2bit", "cif").
	Profile string
}

// Zero reports whether f is the zero Format.
func (f Format) Zero() bool { return f == Format{} }

// String renders the canonical form "kind/encoding" or
// "kind/encoding;profile".
func (f Format) String() string {
	if f.Zero() {
		return "-"
	}
	s := f.Kind.String() + "/" + f.Encoding
	if f.Profile != "" {
		s += ";" + f.Profile
	}
	return s
}

// Validate checks that the format has a valid kind and a non-empty
// encoding.
func (f Format) Validate() error {
	if !f.Kind.Valid() {
		return fmt.Errorf("media: format %q has invalid kind", f)
	}
	if f.Encoding == "" {
		return fmt.Errorf("media: format with kind %s has empty encoding", f.Kind)
	}
	if f.Encoding != strings.ToLower(f.Encoding) {
		return fmt.Errorf("media: format encoding %q must be lower case", f.Encoding)
	}
	return nil
}

// ParseFormat parses the canonical string form produced by Format.String:
// "kind/encoding" with an optional ";profile" suffix.
func ParseFormat(s string) (Format, error) {
	s = strings.TrimSpace(s)
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Format{}, fmt.Errorf("media: format %q missing kind/encoding separator", s)
	}
	kind, err := ParseKind(s[:slash])
	if err != nil {
		return Format{}, err
	}
	rest := s[slash+1:]
	var profile string
	if semi := strings.IndexByte(rest, ';'); semi >= 0 {
		profile = rest[semi+1:]
		rest = rest[:semi]
	}
	f := Format{Kind: kind, Encoding: strings.ToLower(rest), Profile: profile}
	if err := f.Validate(); err != nil {
		return Format{}, err
	}
	return f, nil
}

// MustParseFormat is like ParseFormat but panics on error. It is intended
// for package-level tables of well-known formats.
func MustParseFormat(s string) Format {
	f, err := ParseFormat(s)
	if err != nil {
		panic(err)
	}
	return f
}

// FormatSet is an unordered set of formats.
type FormatSet map[Format]struct{}

// NewFormatSet builds a set from the given formats.
func NewFormatSet(formats ...Format) FormatSet {
	s := make(FormatSet, len(formats))
	for _, f := range formats {
		s[f] = struct{}{}
	}
	return s
}

// Add inserts f into the set.
func (s FormatSet) Add(f Format) { s[f] = struct{}{} }

// Contains reports whether f is in the set.
func (s FormatSet) Contains(f Format) bool {
	_, ok := s[f]
	return ok
}

// Intersect returns the formats present in both sets.
func (s FormatSet) Intersect(other FormatSet) FormatSet {
	out := make(FormatSet)
	for f := range s {
		if other.Contains(f) {
			out.Add(f)
		}
	}
	return out
}

// Slice returns the formats sorted by their canonical string form.
func (s FormatSet) Slice() []Format {
	out := make([]Format, 0, len(s))
	for f := range s {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Strings returns the sorted canonical string forms of the set members.
func (s FormatSet) Strings() []string {
	fs := s.Slice()
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}
