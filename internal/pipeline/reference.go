package pipeline

import (
	"sync"

	"qoschain/internal/transcode"
)

// RunReference executes the chain with the seed implementation's
// protocol: the whole source materialized up front (O(n·payload)
// memory), one goroutine per element, and one channel operation per
// frame. Stage semantics are shared with Run — the same process methods
// drive both — so for a given seed the two produce identical Stats on a
// clean drain.
//
// It is retained as the "before" side of BENCH_pipeline.json and as the
// baseline the equivalence suite pins the batched executor against.
// Build the pipeline with Options.NoPool: this path does not recycle
// delivered payloads.
func (p *Pipeline) RunReference(n int) Stats {
	frames := p.source.Frames(n)

	rc := newRunCtx()
	first := make(chan transcode.Frame, 16)
	in := first
	var wg sync.WaitGroup
	for _, st := range p.stages {
		out := make(chan transcode.Frame, 16)
		wg.Add(1)
		go func(st runner, in <-chan transcode.Frame, out chan<- transcode.Frame) {
			defer wg.Done()
			defer close(out)
			for {
				f, ok := rc.recv(in)
				if !ok {
					return
				}
				ofs, ok := st.process(rc, []transcode.Frame{f}, nil)
				if !ok {
					return
				}
				for _, of := range ofs {
					if !rc.send(out, of) {
						return
					}
				}
			}
		}(st, in, out)
		in = out
	}

	var acc deliveryAccumulator
	done := make(chan struct{})
	go func() {
		defer close(done)
		for f := range in {
			acc.framesOut++
			acc.bytesOut += len(f.Payload)
			acc.lastPTS = f.PTS
		}
	}()

	for _, f := range frames {
		if !rc.send(first, f) {
			break
		}
	}
	close(first)
	wg.Wait()
	<-done

	return p.finish(n, rc, &acc)
}
