package pipeline

import (
	"errors"
	"fmt"
	"testing"

	"qoschain/internal/transcode"
)

// The tests in this file audit the pool ownership discipline of DESIGN
// §12: after any run — clean, failed mid-batch, or canceled — every
// payload buffer taken from the pool must have been returned, so a
// private pool's Outstanding() reads zero. They run under -race in CI,
// which also exercises the shutdown paths for ordering bugs.

// leakPipeline builds a pooled pipeline over the failGraph chain with a
// private pool so the audit is not polluted by concurrent tests using
// the process-shared pool.
func leakPipeline(t *testing.T, pool *transcode.PayloadPool, hook FaultHook) *Pipeline {
	t.Helper()
	g, res := failGraph(t)
	p, err := FromResult(g, res, Options{
		Batch:     8,
		Buffer:    1, // tight queues strand batches in flight on abort
		Pool:      pool,
		FaultHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func auditPool(t *testing.T, pool *transcode.PayloadPool, when string) {
	t.Helper()
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("%s: %d pooled payload buffers leaked", when, n)
	}
}

func TestRunCleanLeaksNoPoolBuffers(t *testing.T) {
	pool := transcode.NewPayloadPool()
	p := leakPipeline(t, pool, nil)
	if stats := p.Run(200); stats.Failure != nil {
		t.Fatalf("unexpected failure: %v", stats.Failure)
	}
	auditPool(t, pool, "clean run")
}

// TestRunFailureLeaksNoPoolBuffers kills the chain at every element and
// at several frame offsets (start of a batch, mid-batch, deep into the
// stream) and asserts the pool balances each time. Mid-batch failures
// are the interesting case: the failing element holds a half-consumed
// input batch and a half-built output batch, upstream elements hold
// batches in flight, and the feed may be blocked on a full queue.
func TestRunFailureLeaksNoPoolBuffers(t *testing.T) {
	stages := []string{"shaper:sender", "link:sender->conv", "conv", "link:conv->receiver"}
	for _, stage := range stages {
		for _, at := range []int{0, 3, 13, 100} {
			t.Run(fmt.Sprintf("%s@%d", stage, at), func(t *testing.T) {
				pool := transcode.NewPayloadPool()
				p := leakPipeline(t, pool, func(s string, frame int) error {
					if s == stage && frame >= at {
						return errors.New("injected crash")
					}
					return nil
				})
				if stats := p.Run(400); stats.Failure == nil {
					t.Fatal("expected a failure")
				}
				auditPool(t, pool, "failed run")
			})
		}
	}
}

// TestExecutorFailureLeaksNoPoolBuffers drives the same mid-batch
// failures through the inline executor path, whose abort unwinds a
// partially built output batch inside runSlice rather than a goroutine
// chain.
func TestExecutorFailureLeaksNoPoolBuffers(t *testing.T) {
	ex := NewExecutor(2)
	defer ex.Close()
	for _, at := range []int{0, 5, 50} {
		pool := transcode.NewPayloadPool()
		p := leakPipeline(t, pool, func(s string, frame int) error {
			if s == "conv" && frame >= at {
				return errors.New("injected crash")
			}
			return nil
		})
		h, err := ex.Submit(p, 300)
		if err != nil {
			t.Fatal(err)
		}
		if stats := h.Wait(); stats.Failure == nil {
			t.Fatalf("at=%d: expected a failure", at)
		}
		auditPool(t, pool, fmt.Sprintf("executor failure at %d", at))
	}
}

// TestExecutorCancelLeaksNoPoolBuffers cancels chains mid-stream — and
// closes the executor with chains still queued — and asserts the pool
// balances. Cancellation lands at slice boundaries, so the audit proves
// no slice leaves payloads checked out between scheduling turns.
func TestExecutorCancelLeaksNoPoolBuffers(t *testing.T) {
	pool := transcode.NewPayloadPool()
	ex := NewExecutor(2)
	const chains = 8
	handles := make([]*Handle, 0, chains)
	for i := 0; i < chains; i++ {
		p := leakPipeline(t, pool, nil)
		h, err := ex.Submit(p, 100_000) // long enough to be mid-stream when canceled
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Cancel half explicitly; Close cancels the rest wherever they are.
	for _, h := range handles[:chains/2] {
		h.Cancel()
	}
	ex.Close()
	for i, h := range handles {
		stats := h.Wait()
		if !h.Canceled() {
			t.Fatalf("chain %d: expected cancellation, got %d/%d frames",
				i, stats.FramesOut, stats.FramesIn)
		}
	}
	auditPool(t, pool, "cancel + close")
}
