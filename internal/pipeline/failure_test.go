package pipeline

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// failGraph builds a minimal sender -> conv -> receiver chain and selects
// it, returning the graph and result ready for FromResult.
func failGraph(t *testing.T) (*graph.Graph, *core.Result) {
	t.Helper()
	conv := service.FormatConverter("conv", media.Opaque(1), media.Opaque(2))
	g := graph.NewGraph("s", "r")
	if err := g.AddService(conv); err != nil {
		t.Fatal(err)
	}
	edges := []*graph.Edge{
		{From: graph.SenderID, To: "conv", Format: media.Opaque(1), BandwidthKbps: 10000,
			SourceParams: media.Params{media.ParamFrameRate: 30}},
		{From: "conv", To: graph.ReceiverID, Format: media.Opaque(2), BandwidthKbps: 10000},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := core.Select(g, core.Config{
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 1, I: 30},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestStageFailurePropagates(t *testing.T) {
	g, res := failGraph(t)
	boom := errors.New("injected crash")
	p, err := FromResult(g, res, Options{
		FaultHook: func(stage string, frame int) error {
			if stage == "conv" && frame >= 10 {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(100)
	if stats.Failure == nil {
		t.Fatal("expected a stage failure")
	}
	if stats.Failure.Stage != "conv" || stats.Failure.Frame != 10 {
		t.Errorf("failure = %+v", stats.Failure)
	}
	if !errors.Is(stats.Failure, boom) {
		t.Error("failure must unwrap to the injected cause")
	}
	if stats.FramesOut >= 100 {
		t.Errorf("failed run delivered %d frames", stats.FramesOut)
	}
}

func TestLinkFailurePropagates(t *testing.T) {
	g, res := failGraph(t)
	p, err := FromResult(g, res, Options{
		FaultHook: func(stage string, frame int) error {
			if stage == "link:conv->receiver" && frame >= 5 {
				return errors.New("link severed")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(50)
	if stats.Failure == nil || stats.Failure.Stage != "link:conv->receiver" {
		t.Fatalf("failure = %+v", stats.Failure)
	}
}

func TestCleanRunHasNoFailure(t *testing.T) {
	g, res := failGraph(t)
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(30)
	if stats.Failure != nil {
		t.Fatalf("unexpected failure: %v", stats.Failure)
	}
	if stats.FramesOut == 0 {
		t.Fatal("clean run delivered nothing")
	}
}

// TestFailureShutdownLeaksNoGoroutines kills a chain mid-stream many
// times and checks the goroutine count settles back to the baseline —
// i.e. failure shutdown unwinds every stage goroutine instead of
// stranding them on channel operations.
func TestFailureShutdownLeaksNoGoroutines(t *testing.T) {
	g, res := failGraph(t)
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p, err := FromResult(g, res, Options{
			Buffer: 1, // tight buffers make stranded senders likely
			FaultHook: func(stage string, frame int) error {
				if stage == "conv" && frame >= 3 {
					return errors.New("crash")
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats := p.Run(500); stats.Failure == nil {
			t.Fatal("expected failure")
		}
	}
	// Allow exiting goroutines to be reaped before counting.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
}
