package pipeline

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/metrics"
	"qoschain/internal/paperexample"
)

// The equivalence suite pins the batched data plane against the seed
// implementation's protocol (RunReference): for every chain shape, loss
// seed and batch size, a clean drain must produce byte-identical Stats —
// same delivered frames and bytes, same per-stage accounting, same
// failure record. This is what lets the executor rewrite claim "exact
// semantics preserved" rather than "roughly the same numbers".

// eqShape is one chain fixture of the equivalence matrix.
type eqShape struct {
	name  string
	build func(t *testing.T) (*graph.Graph, *core.Result)
}

func eqShapes() []eqShape {
	return []eqShape{
		{"full-rate", func(t *testing.T) (*graph.Graph, *core.Result) {
			return selectChain(t, 3000, 3000)
		}},
		{"bottleneck", func(t *testing.T) (*graph.Graph, *core.Result) {
			return selectChain(t, 3000, 1500)
		}},
		{"lossy", func(t *testing.T) (*graph.Graph, *core.Result) {
			g, res := selectChain(t, 3000, 3000)
			for _, e := range g.Out("t1") {
				e.LossRate = 0.2
			}
			return g, res
		}},
		{"table1", func(t *testing.T) (*graph.Graph, *core.Result) {
			t.Helper()
			g, err := paperexample.Table1Graph(true)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Select(g, paperexample.Table1Config())
			if err != nil {
				t.Fatal(err)
			}
			return g, res
		}},
	}
}

// statsDiff compares two Stats field by field and reports the first
// discrepancy, or "" when they are identical.
func statsDiff(a, b Stats) string {
	if a.FramesIn != b.FramesIn {
		return fmt.Sprintf("FramesIn %d != %d", a.FramesIn, b.FramesIn)
	}
	if a.FramesOut != b.FramesOut {
		return fmt.Sprintf("FramesOut %d != %d", a.FramesOut, b.FramesOut)
	}
	if a.BytesOut != b.BytesOut {
		return fmt.Sprintf("BytesOut %d != %d", a.BytesOut, b.BytesOut)
	}
	if math.Abs(a.DeliveredFPS-b.DeliveredFPS) > 1e-9 {
		return fmt.Sprintf("DeliveredFPS %v != %v", a.DeliveredFPS, b.DeliveredFPS)
	}
	if a.ChainDelayMs != b.ChainDelayMs {
		return fmt.Sprintf("ChainDelayMs %v != %v", a.ChainDelayMs, b.ChainDelayMs)
	}
	if len(a.Stages) != len(b.Stages) {
		return fmt.Sprintf("stage count %d != %d", len(a.Stages), len(b.Stages))
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			return fmt.Sprintf("stage %d: %+v != %+v", i, a.Stages[i], b.Stages[i])
		}
	}
	if (a.Failure == nil) != (b.Failure == nil) {
		return fmt.Sprintf("failure %v != %v", a.Failure, b.Failure)
	}
	if a.Failure != nil &&
		(a.Failure.Stage != b.Failure.Stage || a.Failure.Frame != b.Failure.Frame) {
		return fmt.Sprintf("failure %v != %v", a.Failure, b.Failure)
	}
	return ""
}

// TestEquivalenceRunMatchesReference sweeps shapes × loss seeds × batch
// sizes and demands full-Stats identity between the batched pooled Run
// and the frame-at-a-time unpooled RunReference.
func TestEquivalenceRunMatchesReference(t *testing.T) {
	const n = 500
	for _, sh := range eqShapes() {
		for _, seed := range []int64{1, 7, 99} {
			g, res := sh.build(t)
			ref, err := FromResult(g, res, Options{NoPool: true, LossSeed: seed})
			if err != nil {
				t.Fatal(err)
			}
			want := ref.RunReference(n)
			for _, batch := range []int{1, 3, 64, 257} {
				name := fmt.Sprintf("%s/seed%d/batch%d", sh.name, seed, batch)
				p, err := FromResult(g, res, Options{Batch: batch, LossSeed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if d := statsDiff(want, p.Run(n)); d != "" {
					t.Errorf("%s: Run diverges from reference: %s", name, d)
				}
			}
		}
	}
}

// TestEquivalenceExecutorMatchesReference runs the same matrix through a
// shared executor: cooperative inline scheduling must not change a
// single delivered byte either.
func TestEquivalenceExecutorMatchesReference(t *testing.T) {
	const n = 500
	ex := NewExecutor(2)
	defer ex.Close()
	for _, sh := range eqShapes() {
		for _, seed := range []int64{1, 7} {
			g, res := sh.build(t)
			ref, err := FromResult(g, res, Options{NoPool: true, LossSeed: seed})
			if err != nil {
				t.Fatal(err)
			}
			want := ref.RunReference(n)
			for _, batch := range []int{1, 64} {
				name := fmt.Sprintf("%s/seed%d/batch%d", sh.name, seed, batch)
				p, err := FromResult(g, res, Options{Batch: batch, LossSeed: seed})
				if err != nil {
					t.Fatal(err)
				}
				h, err := ex.Submit(p, n)
				if err != nil {
					t.Fatal(err)
				}
				if d := statsDiff(want, h.Wait()); d != "" {
					t.Errorf("%s: executor diverges from reference: %s", name, d)
				}
			}
		}
	}
}

// TestEquivalenceFaultFailureIdentity injects mid-stream faults and
// checks every execution mode reports the same typed failure — the same
// stage, at the same source frame. (Delivered counts on a faulted run
// are timing-dependent in the concurrent modes and deliberately not
// compared; the failure record is the deterministic contract.)
func TestEquivalenceFaultFailureIdentity(t *testing.T) {
	g, res := selectChain(t, 3000, 1500)
	for _, tc := range []struct {
		stage string
		frame int
	}{
		{"t1", 70},
		{"shaper:sender", 3},
		{"link:t1->receiver", 150},
	} {
		hook := func(stage string, frame int) error {
			if stage == tc.stage && frame >= tc.frame {
				return errors.New("injected")
			}
			return nil
		}
		check := func(mode string, s Stats) {
			if s.Failure == nil {
				t.Fatalf("%s %s@%d: no failure recorded", mode, tc.stage, tc.frame)
			}
			if s.Failure.Stage != tc.stage || s.Failure.Frame != tc.frame {
				t.Errorf("%s %s@%d: failure = %s@%d", mode, tc.stage, tc.frame,
					s.Failure.Stage, s.Failure.Frame)
			}
			if s.FramesOut >= 300 {
				t.Errorf("%s %s@%d: faulted run delivered the full stream", mode, tc.stage, tc.frame)
			}
		}

		ref, err := FromResult(g, res, Options{NoPool: true, FaultHook: hook})
		if err != nil {
			t.Fatal(err)
		}
		check("reference", ref.RunReference(300))

		p, err := FromResult(g, res, Options{FaultHook: hook})
		if err != nil {
			t.Fatal(err)
		}
		check("run", p.Run(300))

		ex := NewExecutor(1)
		pe, err := FromResult(g, res, Options{FaultHook: hook})
		if err != nil {
			t.Fatal(err)
		}
		h, err := ex.Submit(pe, 300)
		if err != nil {
			t.Fatal(err)
		}
		check("executor", h.Wait())
		ex.Close()
	}
}

// TestEquivalenceExecutorFaultDeterministic: the executor's inline
// batch-by-batch path has no cross-goroutine races, so even a faulted
// run must reproduce full Stats — delivered counts included — under the
// same batch size.
func TestEquivalenceExecutorFaultDeterministic(t *testing.T) {
	g, res := selectChain(t, 3000, 1500)
	hook := func(stage string, frame int) error {
		if stage == "t1" && frame >= 123 {
			return errors.New("injected")
		}
		return nil
	}
	run := func() Stats {
		ex := NewExecutor(1)
		defer ex.Close()
		p, err := FromResult(g, res, Options{FaultHook: hook})
		if err != nil {
			t.Fatal(err)
		}
		h, err := ex.Submit(p, 400)
		if err != nil {
			t.Fatal(err)
		}
		return h.Wait()
	}
	a, b := run(), run()
	if d := statsDiff(a, b); d != "" {
		t.Errorf("executor fault runs diverge: %s", d)
	}
	if a.Failure == nil {
		t.Fatal("expected a failure")
	}
}

// TestEquivalenceLossSweep drives higher loss rates through the matrix:
// loss draws come from a per-link seeded RNG that must see frames in the
// identical order in every mode.
func TestEquivalenceLossSweep(t *testing.T) {
	for _, loss := range []float64{0.05, 0.5} {
		g, res := selectChain(t, 3000, 3000)
		for _, e := range g.Out("t1") {
			e.LossRate = loss
		}
		ref, err := FromResult(g, res, Options{NoPool: true, LossSeed: 11})
		if err != nil {
			t.Fatal(err)
		}
		want := ref.RunReference(800)
		p, err := FromResult(g, res, Options{LossSeed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if d := statsDiff(want, p.Run(800)); d != "" {
			t.Errorf("loss %.2f: %s", loss, d)
		}
	}
}

// TestRunStreamingMemory checks the batched Run really streams: pushing
// a stream whose materialized form would be ~190 MB must allocate only a
// small fraction of that, because payload buffers recycle through the
// pool instead of being allocated per frame.
func TestRunStreamingMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory sweep")
	}
	g, res := selectChain(t, 3000, 3000)
	const n = 15000 // 12.5 KB/frame source → ~190 MB materialized

	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(n / 10) // warm the shared pool's steady state

	p2, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	allocated := allocDelta(func() {
		if stats := p2.Run(n); stats.FramesOut != n {
			t.Errorf("FramesOut = %d", stats.FramesOut)
		}
	})
	naive := uint64(n) * 12500
	if allocated > naive/5 {
		t.Errorf("Run(%d) allocated %d bytes; streaming+pooling should stay well under the %d-byte materialized size", n, allocated, naive)
	}
}

func TestEquivalenceMetricsFold(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	sink := metrics.NewCounters()
	p, err := FromResult(g, res, Options{Metrics: sink})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(200)
	if got := sink.Get("pipeline.frames_out"); got != int64(stats.FramesOut) {
		t.Errorf("pipeline.frames_out = %d, stats %d", got, stats.FramesOut)
	}
	if got := sink.Get("pipeline.frames_in"); got != 200 {
		t.Errorf("pipeline.frames_in = %d", got)
	}
	if got := sink.Get("pipeline.chains"); got != 1 {
		t.Errorf("pipeline.chains = %d", got)
	}
	if got := sink.Get("pipeline.batches"); got <= 0 {
		t.Errorf("pipeline.batches = %d", got)
	}
}

// allocDelta measures the heap bytes allocated while f runs.
func allocDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}
