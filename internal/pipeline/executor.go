package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"qoschain/internal/metrics"
	"qoschain/internal/transcode"
)

// sliceBatches is how many source batches one scheduling turn processes
// before a chain yields its worker. Small enough that a slow chain
// cannot starve the run queue, large enough to amortize the queue
// round-trip.
const sliceBatches = 4

// Executor multiplexes many concurrent chains over a fixed worker pool
// instead of spawning goroutines-per-stage-per-session: with S sessions
// of k-element chains, the process runs W ≈ GOMAXPROCS goroutines, not
// S·(k+2). Each chain is scheduled cooperatively — a worker pulls it
// from the FIFO run queue, pushes a bounded slice of batches through
// every element inline, and requeues it — so a slow link stalls only
// its own chain while others keep flowing, and live payload memory is
// bounded by O(workers · batch), not by session count.
//
// Chains execute with exactly the semantics of Pipeline.Run: the same
// stage code, token buckets, seeded loss draws, fault hooks and typed
// failures; batch-by-batch inline execution preserves per-stage frame
// order, so a given seed yields identical Stats.
type Executor struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*job
	closed bool
	wg     sync.WaitGroup

	active atomic.Int64
}

// job is one chain's scheduling state. It is owned either by the run
// queue or by exactly one worker, so its fields need no locking.
type job struct {
	p    *Pipeline
	rc   *runCtx
	cur  *transcode.Cursor
	bufA []transcode.Frame
	bufB []transcode.Frame
	acc  deliveryAccumulator
	n    int
	h    *Handle
	ex   *Executor
}

// Handle tracks one submitted chain.
type Handle struct {
	done     chan struct{}
	stats    Stats
	canceled atomic.Bool
}

// Wait blocks until the chain drains, fails, or is canceled, and
// returns its statistics. A canceled chain reports the partial delivery
// up to the cancellation point.
func (h *Handle) Wait() Stats {
	<-h.done
	return h.stats
}

// Cancel asks the chain to stop at its next scheduling turn. It never
// blocks; Wait still returns (with partial Stats).
func (h *Handle) Cancel() { h.canceled.Store(true) }

// Canceled reports whether Cancel was called (or the executor closed)
// before the chain drained.
func (h *Handle) Canceled() bool { return h.canceled.Load() }

// NewExecutor starts a worker pool. workers <= 0 sizes the pool to
// GOMAXPROCS. Close must be called to release the workers.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{workers: workers}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers reports the pool size.
func (e *Executor) Workers() int { return e.workers }

// Active reports how many submitted chains have not yet finished.
func (e *Executor) Active() int { return int(e.active.Load()) }

// Submit schedules a pipeline to stream n source frames. The pipeline
// must be freshly built (FromResult) and must not be run by any other
// means. Submit never blocks on chain execution; backpressure is
// per-chain (one slice of batches in flight each turn).
func (e *Executor) Submit(p *Pipeline, n int) (*Handle, error) {
	h := &Handle{done: make(chan struct{})}
	j := &job{
		p:    p,
		rc:   newRunCtx(),
		cur:  p.source.Cursor(n, p.pool),
		bufA: make([]transcode.Frame, 0, p.batch),
		bufB: make([]transcode.Frame, 0, p.batch),
		n:    n,
		h:    h,
		ex:   e,
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("pipeline: executor is closed")
	}
	e.active.Add(1)
	e.queue = append(e.queue, j)
	e.cond.Signal()
	e.mu.Unlock()
	return h, nil
}

// Close stops the pool: chains still queued or mid-stream are canceled
// (their Wait returns partial Stats), and Close blocks until every
// worker has exited. Submitting after Close fails.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	pending := e.queue
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, j := range pending {
		j.h.canceled.Store(true)
		j.finish()
	}
	e.wg.Wait()
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			// closed and drained
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue[0] = nil
		e.queue = e.queue[1:]
		depth := len(e.queue)
		e.mu.Unlock()

		if s := j.p.sink; s != nil {
			s.Observe(metrics.SamplePipelineQueueDepth, float64(depth))
		}
		if j.runSlice(sliceBatches) {
			j.finish()
			continue
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			j.h.canceled.Store(true)
			j.finish()
			continue
		}
		e.queue = append(e.queue, j)
		e.cond.Signal()
		e.mu.Unlock()
	}
}

// runSlice pushes up to k source batches through the whole chain
// inline. It returns true when the chain is finished — drained, failed,
// or canceled.
func (j *job) runSlice(k int) bool {
	for s := 0; s < k; s++ {
		if j.h.canceled.Load() {
			return true
		}
		in := j.cur.Next(j.bufA[:0])
		if len(in) == 0 {
			return true
		}
		spare := j.bufB
		for _, st := range j.p.stages {
			next, ok := st.process(j.rc, in, spare[:0])
			if !ok {
				// The element recycled its unconsumed input; the partial
				// output batch is ours to return to the pool.
				recycleFrames(j.p.pool, next)
				return true
			}
			spare, in = in, next
		}
		j.acc.take(in, j.p.pool)
		// Keep whatever capacities the turn ended up with.
		j.bufA, j.bufB = in, spare
	}
	return j.cur.Remaining() == 0
}

// finish publishes the job's Stats exactly once and releases waiters.
func (j *job) finish() {
	j.h.stats = j.p.finish(j.n, j.rc, &j.acc)
	j.ex.active.Add(-1)
	close(j.h.done)
}
