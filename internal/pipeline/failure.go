package pipeline

import (
	"fmt"
	"sync"

	"qoschain/internal/transcode"
)

// StageFailure is the typed error a failing chain element raises: which
// stage broke, at which source frame, and why. A failed pipeline shuts
// down cleanly — every stage goroutine exits and Run returns with the
// failure recorded — rather than silently stalling the stream.
type StageFailure struct {
	// Stage is the failing element's ID (service ID, "link:a->b", or
	// "shaper:sender").
	Stage string
	// Frame is the source sequence number being processed when the
	// stage failed.
	Frame int
	// Err is the underlying cause.
	Err error
}

func (f *StageFailure) Error() string {
	return fmt.Sprintf("pipeline: stage %s failed at frame %d: %v", f.Stage, f.Frame, f.Err)
}

func (f *StageFailure) Unwrap() error { return f.Err }

// FaultHook is consulted before each frame a chain element handles.
// Returning a non-nil error fails that stage — the injection point the
// fault layer uses to kill a live chain mid-stream.
type FaultHook func(stage string, frame int) error

// runCtx coordinates one Run: the first stage to fail records its
// StageFailure and closes stop, and every blocked send/receive unwinds.
type runCtx struct {
	stop chan struct{}
	once sync.Once

	mu      sync.Mutex
	failure *StageFailure
}

func newRunCtx() *runCtx {
	return &runCtx{stop: make(chan struct{})}
}

// fail records the first failure and signals shutdown.
func (rc *runCtx) fail(stage string, frame int, err error) {
	rc.once.Do(func() {
		rc.mu.Lock()
		rc.failure = &StageFailure{Stage: stage, Frame: frame, Err: err}
		rc.mu.Unlock()
		close(rc.stop)
	})
}

// Failure returns the recorded failure, if any.
func (rc *runCtx) Failure() *StageFailure {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.failure
}

// recv receives the next frame, aborting if the run is shutting down.
// Used by the frame-at-a-time reference path.
func (rc *runCtx) recv(in <-chan transcode.Frame) (transcode.Frame, bool) {
	select {
	case <-rc.stop:
		return transcode.Frame{}, false
	case f, ok := <-in:
		return f, ok
	}
}

// send forwards a frame downstream, aborting if the run is shutting down.
// Used by the frame-at-a-time reference path.
func (rc *runCtx) send(out chan<- transcode.Frame, f transcode.Frame) bool {
	select {
	case <-rc.stop:
		return false
	case out <- f:
		return true
	}
}

// recvBatch receives the next frame batch, aborting if the run is
// shutting down.
func (rc *runCtx) recvBatch(in <-chan []transcode.Frame) ([]transcode.Frame, bool) {
	select {
	case <-rc.stop:
		return nil, false
	case b, ok := <-in:
		return b, ok
	}
}

// sendBatch forwards a frame batch downstream, aborting if the run is
// shutting down.
func (rc *runCtx) sendBatch(out chan<- []transcode.Frame, b []transcode.Frame) bool {
	select {
	case <-rc.stop:
		return false
	case out <- b:
		return true
	}
}
