// Package pipeline executes a selected adaptation chain over a synthetic
// media stream. It is the runtime that turns a core.Result into flowing
// frames — the "self-organizing data distribution" role the paper's
// framework delegates to the intermediaries — and it is built to sustain
// the rates the planner negotiates: stages exchange frames in batches
// over bounded queues, payload buffers recycle through a pool with
// zero-copy handoff between stages that don't re-encode, and a shared
// Executor multiplexes thousands of concurrent chains over a fixed
// worker pool with per-chain backpressure.
//
// Ownership rules (DESIGN §12): a frame belongs to exactly one chain
// element at a time. An element that consumes a frame either hands its
// payload downstream (links, zero-copy rewrites), recycles it to the
// pool (drops, re-encodes), or leaves it to the garbage collector when
// no pool is attached. Frame Params are shared read-only and must never
// be mutated in flight.
package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/transcode"
)

// DefaultBatch is the number of frames exchanged per queue operation
// when Options.Batch is unset. Synchronization cost amortizes roughly
// batch-fold, so the default is large enough to make queue traffic
// negligible while keeping per-chain memory small.
const DefaultBatch = 64

// DefaultQueue is the per-hop queue depth, in batches, when
// Options.Buffer is unset.
const DefaultQueue = 4

// sharedPool recycles payload buffers across every pooled pipeline in
// the process, so concurrent chains under one Executor feed each other's
// steady state instead of allocating privately.
var sharedPool = transcode.NewPayloadPool()

// StageStats reports one stage's frame accounting.
type StageStats struct {
	// ID names the stage (service ID, or "link:a->b" for links).
	ID string
	// Consumed/Emitted/Dropped count frames.
	Consumed int
	Emitted  int
	Dropped  int
}

// Stats summarizes one pipeline run.
type Stats struct {
	// FramesIn is the number of source frames fed in.
	FramesIn int
	// FramesOut is the number delivered to the receiver.
	FramesOut int
	// BytesOut is the delivered payload volume.
	BytesOut int
	// DeliveredFPS is the average delivered frame rate over the
	// stream's duration (virtual time).
	DeliveredFPS float64
	// ChainDelayMs is the static end-to-end network latency of the
	// chain: the sum of the link delays along the path.
	ChainDelayMs float64
	// Stages lists per-stage accounting in chain order (links
	// interleaved with services).
	Stages []StageStats
	// Failure is the first stage failure of the run, nil on a clean
	// drain. A failed run still reports the frames delivered before the
	// chain went down.
	Failure *StageFailure
}

// Pipeline is a runnable chain instance. A Pipeline carries per-run
// stage state (counters, token buckets, decimation accumulators), so
// each instance must be run exactly once — build a fresh one per run
// with FromResult.
type Pipeline struct {
	source  transcode.Source
	stages  []runner
	batch   int
	queue   int
	pool    *transcode.PayloadPool
	sink    *metrics.Counters
	delayMs float64
}

// runner is one chain element: a trans-coding stage or a link. It
// consumes one input batch and appends survivors to out; returning
// false aborts the run (the element has recorded a StageFailure).
type runner interface {
	process(rc *runCtx, in, out []transcode.Frame) ([]transcode.Frame, bool)
	stats() StageStats
}

// stageRunner wraps a transcode stage.
type stageRunner struct {
	id   string
	p    processor
	hook FaultHook
	pool *transcode.PayloadPool
}

// recycleFrames returns the payloads of an abandoned batch to the pool
// — the cleanup every failure and cancellation path owes the pool so
// its outstanding-buffer accounting returns to zero.
func recycleFrames(pool *transcode.PayloadPool, frames []transcode.Frame) {
	if pool == nil {
		return
	}
	for _, f := range frames {
		pool.Put(f.Payload)
	}
}

// processor is the subset of transcode stages the pipeline drives.
type processor interface {
	Process(transcode.Frame) []transcode.Frame
	ProcessAppend(transcode.Frame, []transcode.Frame) []transcode.Frame
	UsePool(*transcode.PayloadPool)
	Counters() (consumed, emitted, dropped int)
}

func (s *stageRunner) process(rc *runCtx, in, out []transcode.Frame) ([]transcode.Frame, bool) {
	for i, f := range in {
		if s.hook != nil {
			if err := s.hook(s.id, f.Seq); err != nil {
				rc.fail(s.id, f.Seq, err)
				// The failing frame and everything behind it were never
				// consumed; their payloads go back to the pool here (the
				// caller recycles the partial output batch).
				recycleFrames(s.pool, in[i:])
				return out, false
			}
		}
		out = s.p.ProcessAppend(f, out)
	}
	return out, true
}

func (s *stageRunner) stats() StageStats {
	c, e, d := s.p.Counters()
	return StageStats{ID: s.id, Consumed: c, Emitted: e, Dropped: d}
}

// linkRunner enforces a link's bandwidth over virtual time with a
// continuous token bucket: tokens accrue at kbps*1000/8 bytes per virtual
// second (burst capacity of one second) and a frame passes only when the
// bucket holds its payload. Oversubscribed frames are dropped — the loss
// a real network would impose when the negotiated rate is exceeded.
//
// Counters are atomics folded in once per batch, so the per-frame hot
// path takes no locks and mid-run stats() reads stay consistent.
type linkRunner struct {
	id   string
	loss float64
	rng  *rand.Rand
	hook FaultHook
	pool *transcode.PayloadPool

	// token-bucket state, touched only by the (single) goroutine or
	// worker slice driving this chain.
	rate    float64
	burst   float64
	tokens  float64
	lastPTS float64
	limited bool

	consumed atomic.Int64
	emitted  atomic.Int64
	dropped  atomic.Int64
}

func newLinkRunner(id string, kbps, loss float64, rng *rand.Rand, hook FaultHook, pool *transcode.PayloadPool) *linkRunner {
	rate := kbps * 1000 / 8 // bytes per virtual second
	return &linkRunner{
		id: id, loss: loss, rng: rng, hook: hook, pool: pool,
		rate: rate, burst: rate, tokens: rate,
		limited: !math.IsInf(kbps, 1) && kbps > 0,
	}
}

func (l *linkRunner) recycle(b []byte) {
	if l.pool != nil {
		l.pool.Put(b)
	}
}

func (l *linkRunner) process(rc *runCtx, in, out []transcode.Frame) ([]transcode.Frame, bool) {
	var consumed, emitted, dropped int64
	ok := true
	for i, f := range in {
		if l.hook != nil {
			if err := l.hook(l.id, f.Seq); err != nil {
				rc.fail(l.id, f.Seq, err)
				// Unconsumed frames (this one included) return to the
				// pool; the caller recycles the partial output batch.
				recycleFrames(l.pool, in[i:])
				ok = false
				break
			}
		}
		consumed++
		if l.loss > 0 && l.rng != nil && l.rng.Float64() < l.loss {
			dropped++
			l.recycle(f.Payload)
			continue
		}
		if l.limited {
			if f.PTS > l.lastPTS {
				l.tokens += (f.PTS - l.lastPTS) * l.rate
				if l.tokens > l.burst {
					l.tokens = l.burst
				}
				l.lastPTS = f.PTS
			}
			need := float64(len(f.Payload))
			if need > l.tokens+1e-6 {
				dropped++
				l.recycle(f.Payload)
				continue
			}
			l.tokens -= need
		}
		emitted++
		out = append(out, f)
	}
	l.consumed.Add(consumed)
	l.emitted.Add(emitted)
	l.dropped.Add(dropped)
	return out, ok
}

func (l *linkRunner) stats() StageStats {
	return StageStats{
		ID:       l.id,
		Consumed: int(l.consumed.Load()),
		Emitted:  int(l.emitted.Load()),
		Dropped:  int(l.dropped.Load()),
	}
}

// Options tunes pipeline construction.
type Options struct {
	// Batch is the number of frames exchanged per queue operation and
	// generated per source step (default DefaultBatch). Partial batches
	// flush immediately — a stage never holds frames back to fill one.
	Batch int
	// Buffer is the per-hop queue depth in batches (default
	// DefaultQueue). Together with Batch it bounds how far ahead an
	// element can run before backpressure stalls it.
	Buffer int
	// NoPool disables payload-buffer pooling and zero-copy handoff,
	// reverting to a fresh allocation per re-encoded frame. Used by the
	// reference path and by callers that retain delivered frames.
	NoPool bool
	// Pool, when set (and NoPool is false), replaces the process-shared
	// payload pool for this pipeline. Leak audits use a private pool so
	// Outstanding() reflects one run rather than every concurrent chain.
	Pool *transcode.PayloadPool
	// Bitrate sizes synthetic payloads; nil uses media.DefaultBitrate.
	Bitrate media.BitrateModel
	// GOP is the source keyframe interval (default 10).
	GOP int
	// LossSeed seeds the per-link packet-loss draws so lossy runs are
	// reproducible (0 uses seed 1).
	LossSeed int64
	// FaultHook, when set, is consulted by every chain element before
	// each frame; a non-nil return fails that stage with a typed
	// StageFailure and shuts the whole pipeline down.
	FaultHook FaultHook
	// Metrics, when set, receives the pipeline.* series (frame/byte/
	// drop totals, batch occupancy) folded in when the run finishes. A
	// nil sink is a no-op.
	Metrics *metrics.Counters
}

func (o Options) batch() int {
	if o.Batch > 0 {
		return o.Batch
	}
	return DefaultBatch
}

func (o Options) queue() int {
	if o.Buffer > 0 {
		return o.Buffer
	}
	return DefaultQueue
}

// FromResult assembles a runnable pipeline from a selection result: the
// source emits the first edge's variant, each service on the path becomes
// a stage emitting the negotiated downstream parameters, and each edge
// becomes a bandwidth-limited link.
//
// Stage targets: the final delivered parameters (res.Params) bound every
// stage — a stage never has to emit more than the chain ultimately
// delivers, which matches the optimizer's choice of per-edge parameters.
func FromResult(g *graph.Graph, res *core.Result, opts Options) (*Pipeline, error) {
	if res == nil || !res.Found {
		return nil, fmt.Errorf("pipeline: no chain to instantiate")
	}
	if len(res.Path) < 2 || len(res.Formats) != len(res.Path)-1 {
		return nil, fmt.Errorf("pipeline: malformed result path")
	}

	// Source parameters come from the sender's outgoing edge.
	sourceEdge := g.EdgeBetween(graph.SenderID, res.Path[1], res.Formats[0])
	if sourceEdge == nil {
		return nil, fmt.Errorf("pipeline: result path's first edge not in graph")
	}

	p := &Pipeline{
		source: transcode.Source{
			Format:  res.Formats[0],
			Params:  sourceEdge.SourceParams,
			Bitrate: opts.Bitrate,
			GOP:     opts.GOP,
		},
		batch: opts.batch(),
		queue: opts.queue(),
		sink:  opts.Metrics,
	}
	if !opts.NoPool {
		if opts.Pool != nil {
			p.pool = opts.Pool
		} else {
			p.pool = sharedPool
		}
	}

	// The sender shapes the stream down to the negotiated delivery
	// parameters before the first link, mirroring the optimizer's
	// per-edge parameter choice.
	shaper := transcode.NewShaper(res.Params, opts.Bitrate)
	shaper.UsePool(p.pool)
	p.stages = append(p.stages, &stageRunner{
		id:   "shaper:sender",
		p:    shaper,
		hook: opts.FaultHook,
		pool: p.pool,
	})

	// Walk the path: link to node i, then (if a service) its stage.
	for i := 1; i < len(res.Path); i++ {
		edge := g.EdgeBetween(res.Path[i-1], res.Path[i], res.Formats[i-1])
		if edge == nil {
			return nil, fmt.Errorf("pipeline: missing edge %s->%s", res.Path[i-1], res.Path[i])
		}
		seed := opts.LossSeed
		if seed == 0 {
			seed = 1
		}
		var lossRNG *rand.Rand
		if edge.LossRate > 0 {
			lossRNG = rand.New(rand.NewSource(seed + int64(i)))
		}
		p.stages = append(p.stages, newLinkRunner(
			fmt.Sprintf("link:%s->%s", edge.From, edge.To),
			edge.BandwidthKbps, edge.LossRate, lossRNG, opts.FaultHook, p.pool,
		))
		p.delayMs += edge.DelayMs
		node, _ := g.Node(res.Path[i])
		if node == nil || node.Service == nil {
			continue // receiver
		}
		outFormat := res.Formats[i] // format leaving this service
		target := res.Params.Min(node.Service.Caps)
		stage, err := transcode.NewStage(node.Service, outFormat, target, opts.Bitrate)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		stage.UsePool(p.pool)
		p.stages = append(p.stages, &stageRunner{
			id:   string(node.Service.ID),
			p:    stage,
			hook: opts.FaultHook,
			pool: p.pool,
		})
	}
	return p, nil
}

// batchList is a bounded free list of reusable batch slices shared by
// one run's producers and consumers.
type batchList struct {
	ch    chan []transcode.Frame
	batch int
}

func newBatchList(batch, depth int) *batchList {
	return &batchList{ch: make(chan []transcode.Frame, depth), batch: batch}
}

func (fl *batchList) get() []transcode.Frame {
	select {
	case b := <-fl.ch:
		return b[:0]
	default:
		return make([]transcode.Frame, 0, fl.batch)
	}
}

func (fl *batchList) put(b []transcode.Frame) {
	if cap(b) == 0 {
		return
	}
	select {
	case fl.ch <- b:
	default:
	}
}

// Run pushes n source frames through the chain and blocks until the
// stream drains or a stage fails, returning the delivery statistics.
//
// Execution is streaming and batched: the source generates frames
// lazily (O(batch), not O(n), memory), one goroutine per element
// exchanges []Frame batches over bounded queues — backpressure, not
// buffering, absorbs a slow element — and payload buffers recycle
// through the pool. On stage failure the run shuts down cleanly: every
// goroutine exits, the partial delivery is reported, and Stats.Failure
// carries the typed error.
func (p *Pipeline) Run(n int) Stats {
	rc := newRunCtx()
	cur := p.source.Cursor(n, p.pool)
	free := newBatchList(p.batch, (len(p.stages)+2)*p.queue)

	first := make(chan []transcode.Frame, p.queue)
	// Every hop's channel is remembered so an aborted run can sweep the
	// batches stranded in them back to the pool — without the sweep a
	// mid-stream failure leaks every in-flight payload buffer.
	hops := []chan []transcode.Frame{first}
	in := first
	var wg sync.WaitGroup
	for _, st := range p.stages {
		out := make(chan []transcode.Frame, p.queue)
		hops = append(hops, out)
		wg.Add(1)
		go func(st runner, in <-chan []transcode.Frame, out chan<- []transcode.Frame) {
			defer wg.Done()
			defer close(out)
			for {
				b, ok := rc.recvBatch(in)
				if !ok {
					return
				}
				ob, ok := st.process(rc, b, free.get())
				free.put(b)
				if !ok {
					// The element recycled its unconsumed input; the
					// partial output it produced is ours to clean up.
					recycleFrames(p.pool, ob)
					free.put(ob)
					return
				}
				if len(ob) == 0 {
					// Flush-on-partial means empty results vanish
					// rather than clogging the queue.
					free.put(ob)
					continue
				}
				if !rc.sendBatch(out, ob) {
					recycleFrames(p.pool, ob)
					return
				}
			}
		}(st, in, out)
		in = out
	}

	// Sink: collect delivered batches, recycle payloads.
	var acc deliveryAccumulator
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := range in {
			acc.take(b, p.pool)
			free.put(b)
		}
	}()

	// Feed: generate source batches on demand — the bounded first queue
	// is the backpressure that keeps generation at the chain's pace.
	for {
		b := cur.Next(free.get())
		if len(b) == 0 {
			free.put(b)
			break
		}
		if !rc.sendBatch(first, b) {
			recycleFrames(p.pool, b)
			break
		}
	}
	close(first)
	wg.Wait()
	<-done

	// After an abort, batches can be stranded in any hop queue (every
	// goroutine has exited and every channel is closed, so the drain
	// terminates). On a clean drain the queues are already empty.
	for _, ch := range hops {
		for b := range ch {
			recycleFrames(p.pool, b)
		}
	}

	return p.finish(n, rc, &acc)
}

// deliveryAccumulator gathers sink-side totals shared by Run and the
// Executor's inline path.
type deliveryAccumulator struct {
	framesOut int
	bytesOut  int
	lastPTS   float64
	batches   int64
	occupied  int64
}

func (a *deliveryAccumulator) take(b []transcode.Frame, pool *transcode.PayloadPool) {
	a.batches++
	a.occupied += int64(len(b))
	for _, f := range b {
		a.framesOut++
		a.bytesOut += len(f.Payload)
		a.lastPTS = f.PTS
		if pool != nil {
			pool.Put(f.Payload)
		}
	}
}

// finish assembles Stats from a completed run and folds the pipeline.*
// series into the metrics sink.
func (p *Pipeline) finish(n int, rc *runCtx, acc *deliveryAccumulator) Stats {
	stats := Stats{
		FramesIn:     n,
		FramesOut:    acc.framesOut,
		BytesOut:     acc.bytesOut,
		ChainDelayMs: p.delayMs,
		Failure:      rc.Failure(),
	}
	if stats.FramesOut > 1 && acc.lastPTS > 0 {
		stats.DeliveredFPS = float64(stats.FramesOut-1) / acc.lastPTS
	} else {
		stats.DeliveredFPS = float64(stats.FramesOut)
	}
	dropped := 0
	for _, st := range p.stages {
		ss := st.stats()
		dropped += ss.Dropped
		stats.Stages = append(stats.Stages, ss)
	}

	if s := p.sink; s != nil {
		s.Add(metrics.CounterPipelineFramesIn, int64(stats.FramesIn))
		s.Add(metrics.CounterPipelineFramesOut, int64(stats.FramesOut))
		s.Add(metrics.CounterPipelineBytesOut, int64(stats.BytesOut))
		s.Add(metrics.CounterPipelineDropped, int64(dropped))
		s.Add(metrics.CounterPipelineBatches, acc.batches)
		s.Inc(metrics.CounterPipelineChains)
		if stats.Failure != nil {
			s.Inc(metrics.CounterPipelineFailures)
		}
		if acc.batches > 0 {
			s.Observe(metrics.SamplePipelineBatchOccupancy,
				float64(acc.occupied)/float64(acc.batches*int64(p.batch)))
		}
	}
	return stats
}

// StageCount returns the number of concurrent elements (stages + links).
func (p *Pipeline) StageCount() int { return len(p.stages) }
