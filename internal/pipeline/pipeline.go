// Package pipeline executes a selected adaptation chain over a synthetic
// media stream: one goroutine per trans-coding stage, channels between
// them, and bandwidth-limited links that drop frames exceeding the link's
// per-second byte budget. It is the runtime that turns a core.Result into
// flowing frames — the "self-organizing data distribution" role the
// paper's framework delegates to the intermediaries.
package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/transcode"
)

// StageStats reports one stage's frame accounting.
type StageStats struct {
	// ID names the stage (service ID, or "link:a->b" for links).
	ID string
	// Consumed/Emitted/Dropped count frames.
	Consumed int
	Emitted  int
	Dropped  int
}

// Stats summarizes one pipeline run.
type Stats struct {
	// FramesIn is the number of source frames fed in.
	FramesIn int
	// FramesOut is the number delivered to the receiver.
	FramesOut int
	// BytesOut is the delivered payload volume.
	BytesOut int
	// DeliveredFPS is the average delivered frame rate over the
	// stream's duration (virtual time).
	DeliveredFPS float64
	// ChainDelayMs is the static end-to-end network latency of the
	// chain: the sum of the link delays along the path.
	ChainDelayMs float64
	// Stages lists per-stage accounting in chain order (links
	// interleaved with services).
	Stages []StageStats
	// Failure is the first stage failure of the run, nil on a clean
	// drain. A failed run still reports the frames delivered before the
	// chain went down.
	Failure *StageFailure
}

// Pipeline is a runnable chain instance.
type Pipeline struct {
	source  transcode.Source
	stages  []runner
	buffer  int
	delayMs float64
}

// runner is one concurrent element: a trans-coding stage or a link.
type runner interface {
	run(rc *runCtx, in <-chan transcode.Frame, out chan<- transcode.Frame)
	stats() StageStats
}

// stageRunner wraps a transcode stage.
type stageRunner struct {
	id   string
	p    processor
	hook FaultHook
}

// processor is the subset of transcode stages the pipeline drives.
type processor interface {
	Process(transcode.Frame) []transcode.Frame
	Counters() (consumed, emitted, dropped int)
}

func (s *stageRunner) run(rc *runCtx, in <-chan transcode.Frame, out chan<- transcode.Frame) {
	defer close(out)
	for {
		f, ok := rc.recv(in)
		if !ok {
			return
		}
		if s.hook != nil {
			if err := s.hook(s.id, f.Seq); err != nil {
				rc.fail(s.id, f.Seq, err)
				return
			}
		}
		for _, of := range s.p.Process(f) {
			if !rc.send(out, of) {
				return
			}
		}
	}
}

func (s *stageRunner) stats() StageStats {
	c, e, d := s.p.Counters()
	return StageStats{ID: s.id, Consumed: c, Emitted: e, Dropped: d}
}

// linkRunner enforces a link's bandwidth over virtual time with a
// continuous token bucket: tokens accrue at kbps*1000/8 bytes per virtual
// second (burst capacity of one second) and a frame passes only when the
// bucket holds its payload. Oversubscribed frames are dropped — the loss
// a real network would impose when the negotiated rate is exceeded.
type linkRunner struct {
	id   string
	kbps float64
	loss float64
	rng  *rand.Rand
	hook FaultHook

	mu       sync.Mutex
	consumed int
	emitted  int
	dropped  int
}

func (l *linkRunner) run(rc *runCtx, in <-chan transcode.Frame, out chan<- transcode.Frame) {
	defer close(out)
	rate := l.kbps * 1000 / 8 // bytes per virtual second
	burst := rate             // bucket capacity: one second of traffic
	tokens := burst
	lastPTS := 0.0
	limited := !math.IsInf(l.kbps, 1) && l.kbps > 0
	for {
		f, ok := rc.recv(in)
		if !ok {
			return
		}
		if l.hook != nil {
			if err := l.hook(l.id, f.Seq); err != nil {
				rc.fail(l.id, f.Seq, err)
				return
			}
		}
		l.mu.Lock()
		l.consumed++
		l.mu.Unlock()
		if l.loss > 0 && l.rng != nil && l.rng.Float64() < l.loss {
			l.mu.Lock()
			l.dropped++
			l.mu.Unlock()
			continue
		}
		if limited {
			if f.PTS > lastPTS {
				tokens += (f.PTS - lastPTS) * rate
				if tokens > burst {
					tokens = burst
				}
				lastPTS = f.PTS
			}
			need := float64(f.Bytes())
			if need > tokens+1e-6 {
				l.mu.Lock()
				l.dropped++
				l.mu.Unlock()
				continue
			}
			tokens -= need
		}
		l.mu.Lock()
		l.emitted++
		l.mu.Unlock()
		if !rc.send(out, f) {
			return
		}
	}
}

func (l *linkRunner) stats() StageStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return StageStats{ID: l.id, Consumed: l.consumed, Emitted: l.emitted, Dropped: l.dropped}
}

// Options tunes pipeline construction.
type Options struct {
	// Buffer is the channel depth between elements (default 16).
	Buffer int
	// Bitrate sizes synthetic payloads; nil uses media.DefaultBitrate.
	Bitrate media.BitrateModel
	// GOP is the source keyframe interval (default 10).
	GOP int
	// LossSeed seeds the per-link packet-loss draws so lossy runs are
	// reproducible (0 uses seed 1).
	LossSeed int64
	// FaultHook, when set, is consulted by every chain element before
	// each frame; a non-nil return fails that stage with a typed
	// StageFailure and shuts the whole pipeline down.
	FaultHook FaultHook
}

// FromResult assembles a runnable pipeline from a selection result: the
// source emits the first edge's variant, each service on the path becomes
// a stage emitting the negotiated downstream parameters, and each edge
// becomes a bandwidth-limited link.
//
// Stage targets: the final delivered parameters (res.Params) bound every
// stage — a stage never has to emit more than the chain ultimately
// delivers, which matches the optimizer's choice of per-edge parameters.
func FromResult(g *graph.Graph, res *core.Result, opts Options) (*Pipeline, error) {
	if res == nil || !res.Found {
		return nil, fmt.Errorf("pipeline: no chain to instantiate")
	}
	if len(res.Path) < 2 || len(res.Formats) != len(res.Path)-1 {
		return nil, fmt.Errorf("pipeline: malformed result path")
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 16
	}

	// Source parameters come from the sender's outgoing edge.
	var sourceEdge *graph.Edge
	for _, e := range g.Out(graph.SenderID) {
		if e.To == res.Path[1] && e.Format == res.Formats[0] {
			sourceEdge = e
			break
		}
	}
	if sourceEdge == nil {
		return nil, fmt.Errorf("pipeline: result path's first edge not in graph")
	}

	p := &Pipeline{
		source: transcode.Source{
			Format:  res.Formats[0],
			Params:  sourceEdge.SourceParams,
			Bitrate: opts.Bitrate,
			GOP:     opts.GOP,
		},
		buffer: buffer,
	}

	// The sender shapes the stream down to the negotiated delivery
	// parameters before the first link, mirroring the optimizer's
	// per-edge parameter choice.
	p.stages = append(p.stages, &stageRunner{
		id:   "shaper:sender",
		p:    transcode.NewShaper(res.Params, opts.Bitrate),
		hook: opts.FaultHook,
	})

	// Walk the path: link to node i, then (if a service) its stage.
	for i := 1; i < len(res.Path); i++ {
		edge := findEdge(g, res.Path[i-1], res.Path[i], res.Formats[i-1])
		if edge == nil {
			return nil, fmt.Errorf("pipeline: missing edge %s->%s", res.Path[i-1], res.Path[i])
		}
		seed := opts.LossSeed
		if seed == 0 {
			seed = 1
		}
		var lossRNG *rand.Rand
		if edge.LossRate > 0 {
			lossRNG = rand.New(rand.NewSource(seed + int64(i)))
		}
		p.stages = append(p.stages, &linkRunner{
			id:   fmt.Sprintf("link:%s->%s", edge.From, edge.To),
			kbps: edge.BandwidthKbps,
			loss: edge.LossRate,
			rng:  lossRNG,
			hook: opts.FaultHook,
		})
		p.delayMs += edge.DelayMs
		node, _ := g.Node(res.Path[i])
		if node == nil || node.Service == nil {
			continue // receiver
		}
		outFormat := res.Formats[i] // format leaving this service
		target := res.Params.Min(node.Service.Caps)
		stage, err := transcode.NewStage(node.Service, outFormat, target, opts.Bitrate)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		p.stages = append(p.stages, &stageRunner{
			id:   string(node.Service.ID),
			p:    stage,
			hook: opts.FaultHook,
		})
	}
	return p, nil
}

// findEdge locates the graph edge used by the path step.
func findEdge(g *graph.Graph, from, to graph.NodeID, format media.Format) *graph.Edge {
	for _, e := range g.Out(from) {
		if e.To == to && e.Format == format {
			return e
		}
	}
	return nil
}

// Run pushes n source frames through the chain and blocks until the
// stream drains or a stage fails, returning the delivery statistics.
// On stage failure the run shuts down cleanly: every stage goroutine
// exits, the partial delivery is reported, and Stats.Failure carries the
// typed error.
func (p *Pipeline) Run(n int) Stats {
	frames := p.source.Frames(n)

	rc := newRunCtx()
	first := make(chan transcode.Frame, p.buffer)
	in := first
	var wg sync.WaitGroup
	for _, st := range p.stages {
		out := make(chan transcode.Frame, p.buffer)
		wg.Add(1)
		go func(st runner, in <-chan transcode.Frame, out chan<- transcode.Frame) {
			defer wg.Done()
			st.run(rc, in, out)
		}(st, in, out)
		in = out
	}

	// Sink: collect delivered frames.
	var stats Stats
	stats.FramesIn = n
	done := make(chan struct{})
	var lastPTS float64
	go func() {
		defer close(done)
		for f := range in {
			stats.FramesOut++
			stats.BytesOut += f.Bytes()
			lastPTS = f.PTS
		}
	}()

	for _, f := range frames {
		if !rc.send(first, f) {
			break
		}
	}
	close(first)
	wg.Wait()
	<-done
	stats.Failure = rc.Failure()

	if stats.FramesOut > 1 && lastPTS > 0 {
		stats.DeliveredFPS = float64(stats.FramesOut-1) / lastPTS
	} else {
		stats.DeliveredFPS = float64(stats.FramesOut)
	}
	stats.ChainDelayMs = p.delayMs
	for _, st := range p.stages {
		stats.Stages = append(stats.Stages, st.stats())
	}
	return stats
}

// StageCount returns the number of concurrent elements (stages + links).
func (p *Pipeline) StageCount() int { return len(p.stages) }
