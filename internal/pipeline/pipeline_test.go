package pipeline

import (
	"math"
	"strings"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/paperexample"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

func fpsConfig() core.Config {
	return core.Config{Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})}
}

// selectChain builds sender->t1->receiver and selects the chain.
func selectChain(t *testing.T, bwIn, bwOut float64) (*graph.Graph, *core.Result) {
	t.Helper()
	g := graph.NewGraph("s", "r")
	t1 := service.FormatConverter("t1", media.Opaque(1), media.Opaque(2))
	if err := g.AddService(t1); err != nil {
		t.Fatal(err)
	}
	edges := []*graph.Edge{
		{From: graph.SenderID, To: "t1", Format: media.Opaque(1), BandwidthKbps: bwIn,
			SourceParams: media.Params{media.ParamFrameRate: 30}},
		{From: "t1", To: graph.ReceiverID, Format: media.Opaque(2), BandwidthKbps: bwOut},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := core.Select(g, fpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestPipelineFullRate(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(300)
	if stats.FramesIn != 300 {
		t.Errorf("FramesIn = %d", stats.FramesIn)
	}
	if stats.FramesOut != 300 {
		t.Errorf("FramesOut = %d, want all 300 at full rate", stats.FramesOut)
	}
	if math.Abs(stats.DeliveredFPS-30) > 1 {
		t.Errorf("DeliveredFPS = %v, want ~30", stats.DeliveredFPS)
	}
}

func TestPipelineBottleneckMatchesSelection(t *testing.T) {
	g, res := selectChain(t, 3000, 1500) // negotiated 15 fps
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(600)
	wantOut := 300 // half of 600 at 15/30 decimation
	if stats.FramesOut < wantOut-3 || stats.FramesOut > wantOut+3 {
		t.Errorf("FramesOut = %d, want ~%d", stats.FramesOut, wantOut)
	}
	// Delivered rate must track the negotiated parameters, not the
	// source rate.
	if math.Abs(stats.DeliveredFPS-res.Params.Get(media.ParamFrameRate)) > 1.5 {
		t.Errorf("DeliveredFPS = %v, negotiated %v", stats.DeliveredFPS, res.Params.Get(media.ParamFrameRate))
	}
	// The shaper, not the links, should absorb the reduction.
	for _, st := range stats.Stages {
		if strings.HasPrefix(st.ID, "link:") && st.Dropped > stats.FramesIn/20 {
			t.Errorf("link %s dropped %d frames; shaping should prevent link loss", st.ID, st.Dropped)
		}
	}
}

func TestPipelineStageAccounting(t *testing.T) {
	g, res := selectChain(t, 3000, 1500)
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(100)
	if len(stats.Stages) != 4 { // shaper, link, t1, link
		t.Fatalf("stages = %d (%v)", len(stats.Stages), stats.Stages)
	}
	ids := make([]string, len(stats.Stages))
	for i, st := range stats.Stages {
		ids[i] = st.ID
	}
	want := []string{"shaper:sender", "link:sender->t1", "t1", "link:t1->receiver"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("stage order = %v, want %v", ids, want)
		}
	}
	shaper := stats.Stages[0]
	if shaper.Consumed != 100 {
		t.Errorf("shaper consumed %d", shaper.Consumed)
	}
	if shaper.Emitted+shaper.Dropped != shaper.Consumed {
		t.Errorf("shaper accounting leak: %+v", shaper)
	}
}

func TestPipelineOverloadedLinkDrops(t *testing.T) {
	// Bypass selection: deliberately oversubscribe a link by asking the
	// shaper for more than the link carries.
	g, res := selectChain(t, 3000, 3000)
	// Manually narrow the exit link after selection negotiated 30 fps.
	for _, e := range g.Out("t1") {
		e.BandwidthKbps = 1000 // carries only ~10 fps
	}
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(300)
	if stats.FramesOut >= 300 {
		t.Errorf("oversubscribed link should drop frames: out=%d", stats.FramesOut)
	}
	var linkDrops int
	for _, st := range stats.Stages {
		if strings.HasPrefix(st.ID, "link:t1") {
			linkDrops = st.Dropped
		}
	}
	if linkDrops == 0 {
		t.Error("the narrow link should report drops")
	}
}

func TestPipelineFromResultErrors(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	if _, err := FromResult(g, nil, Options{}); err == nil {
		t.Error("nil result must be rejected")
	}
	if _, err := FromResult(g, &core.Result{}, Options{}); err == nil {
		t.Error("not-found result must be rejected")
	}
	bad := *res
	bad.Formats = nil
	if _, err := FromResult(g, &bad, Options{}); err == nil {
		t.Error("malformed result must be rejected")
	}
	other := graph.NewGraph("s", "r")
	if _, err := FromResult(other, res, Options{}); err == nil {
		t.Error("result from a different graph must be rejected")
	}
}

func TestPipelineOnTable1Chain(t *testing.T) {
	g, err := paperexample.Table1Graph(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Select(g, paperexample.Table1Config())
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(900) // 30 seconds of 30 fps source
	// Negotiated 19.85 fps → about 596 of 900 frames.
	negotiated := res.Params.Get(media.ParamFrameRate)
	if math.Abs(stats.DeliveredFPS-negotiated) > 1.5 {
		t.Errorf("DeliveredFPS = %.2f, negotiated %.2f", stats.DeliveredFPS, negotiated)
	}
	if stats.FramesOut == 0 || stats.BytesOut == 0 {
		t.Error("the Table 1 chain must deliver frames")
	}
	if p.StageCount() < 3 {
		t.Errorf("Table 1 chain should have shaper+2 links+service, got %d", p.StageCount())
	}
}

func TestPipelineDeterministic(t *testing.T) {
	g, res := selectChain(t, 3000, 1500)
	p1, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := p1.Run(200), p2.Run(200)
	if s1.FramesOut != s2.FramesOut || s1.BytesOut != s2.BytesOut {
		t.Errorf("pipeline runs must be deterministic: %+v vs %+v", s1, s2)
	}
}

func TestPipelineSmallBuffer(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	p, err := FromResult(g, res, Options{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(100)
	if stats.FramesOut != 100 {
		t.Errorf("buffer-1 pipeline should still deliver all frames, got %d", stats.FramesOut)
	}
}

func TestPipelineChainDelay(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	// Annotate delays on the edges the chain uses.
	for _, e := range g.Out(graph.SenderID) {
		e.DelayMs = 20
	}
	for _, e := range g.Out("t1") {
		e.DelayMs = 35
	}
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(10)
	if stats.ChainDelayMs != 55 {
		t.Errorf("ChainDelayMs = %v, want 55", stats.ChainDelayMs)
	}
}

func TestPipelineLossyLink(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	for _, e := range g.Out("t1") {
		e.LossRate = 0.2
	}
	p, err := FromResult(g, res, Options{LossSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(1000)
	lossFrac := 1 - float64(stats.FramesOut)/float64(stats.FramesIn)
	if lossFrac < 0.15 || lossFrac > 0.25 {
		t.Errorf("loss fraction = %.3f, want ~0.2", lossFrac)
	}
	// Determinism under the same seed.
	p2, err := FromResult(g, res, Options{LossSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Run(1000); got.FramesOut != stats.FramesOut {
		t.Errorf("same seed must reproduce losses: %d vs %d", got.FramesOut, stats.FramesOut)
	}
	// A different seed gives a different (but still ~20%) pattern.
	p3, err := FromResult(g, res, Options{LossSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := p3.Run(1000); got.FramesOut == stats.FramesOut {
		t.Log("different seed coincidentally matched; acceptable but unusual")
	}
}

func TestPipelineLosslessByDefault(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats := p.Run(200); stats.FramesOut != 200 {
		t.Errorf("zero loss rate must not drop frames: %d", stats.FramesOut)
	}
}
