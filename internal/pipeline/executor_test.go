package pipeline

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestExecutorManyChains is the scale acceptance check: 1000 concurrent
// chains over one small worker pool must all drain correctly, with live
// memory bounded by the pool (not by session count) and every worker
// goroutine released by Close.
func TestExecutorManyChains(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep")
	}
	g, res := selectChain(t, 3000, 3000)
	base := runtime.NumGoroutine()
	ex := NewExecutor(4)

	const chains, frames = 1000, 600 // ~7.5 MB per chain if materialized
	want := func() Stats {
		p, err := FromResult(g, res, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p.Run(frames)
	}()

	handles := make([]*Handle, chains)
	for i := range handles {
		p, err := FromResult(g, res, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := ex.Submit(p, frames)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	// Sample the heap while the fleet is in flight: 1000 chains of 600
	// frames would hold ~7.5 GB if each materialized its stream; the
	// streaming executor must stay orders of magnitude below that.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 512<<20 {
		t.Errorf("heap = %d MB mid-flight; executor memory is not bounded", ms.HeapAlloc>>20)
	}

	for i, h := range handles {
		got := h.Wait()
		if got.FramesOut != want.FramesOut || got.BytesOut != want.BytesOut {
			t.Fatalf("chain %d: %d frames/%d bytes, want %d/%d",
				i, got.FramesOut, got.BytesOut, want.FramesOut, want.BytesOut)
		}
	}
	if ex.Active() != 0 {
		t.Errorf("Active = %d after all chains drained", ex.Active())
	}
	ex.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
}

func TestExecutorCancel(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	ex := NewExecutor(1)
	defer ex.Close()

	p, err := FromResult(g, res, Options{Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ex.Submit(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	stats := h.Wait() // must return promptly despite the million-frame ask
	if !h.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	if stats.FramesOut >= 1_000_000 {
		t.Error("canceled chain claims a full drain")
	}
}

func TestExecutorSubmitAfterClose(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	ex := NewExecutor(1)
	ex.Close()
	p, err := FromResult(g, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Submit(p, 10); err == nil {
		t.Error("Submit after Close must fail")
	}
}

// TestExecutorCloseCancelsPending closes the pool while chains are
// queued and mid-stream; every Wait must still return.
func TestExecutorCloseCancelsPending(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	ex := NewExecutor(1)
	var handles []*Handle
	for i := 0; i < 20; i++ {
		p, err := FromResult(g, res, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := ex.Submit(p, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	ex.Close()
	for i, h := range handles {
		h.Wait()
		if !h.Canceled() && h.stats.FramesOut != 200_000 {
			t.Errorf("chain %d neither drained nor canceled", i)
		}
	}
	if ex.Active() != 0 {
		t.Errorf("Active = %d after Close", ex.Active())
	}
}

// TestExecutorConcurrentStartsAndCancels hammers Submit/Cancel/Wait from
// many goroutines — the -race target for the scheduler's locking.
func TestExecutorConcurrentStartsAndCancels(t *testing.T) {
	g, res := selectChain(t, 3000, 3000)
	ex := NewExecutor(2)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := FromResult(g, res, Options{Batch: 16})
			if err != nil {
				t.Error(err)
				return
			}
			h, err := ex.Submit(p, 2000)
			if err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				h.Cancel()
			}
			h.Wait()
		}(i)
	}
	wg.Wait()
	ex.Close()
	if ex.Active() != 0 {
		t.Errorf("Active = %d", ex.Active())
	}
}

func TestExecutorDefaultsToGOMAXPROCS(t *testing.T) {
	ex := NewExecutor(0)
	defer ex.Close()
	if ex.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers = %d, want GOMAXPROCS %d", ex.Workers(), runtime.GOMAXPROCS(0))
	}
}
