package workload

import (
	"math"
	"math/rand"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
)

// These tests pin the selection algorithm's result invariants on many
// random scenarios: the returned chain must be a real path of the graph,
// repeat no format, respect every edge's bandwidth, stay within budget,
// and deliver parameters no higher than the source offers.

func TestSelectResultInvariants(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := Generate(rng, Spec{Services: 20})
		cfg := sc.Config
		cfg.Budget = float64(5 + rng.Intn(10))
		res, err := core.Select(sc.Graph, cfg)
		if err != nil {
			// Budget may make every chain infeasible; that is a legal
			// outcome, not an invariant violation.
			continue
		}
		assertResultInvariants(t, seed, sc.Graph, cfg, res)
	}
}

func assertResultInvariants(t *testing.T, seed int64, g *graph.Graph, cfg core.Config, res *core.Result) {
	t.Helper()
	if len(res.Path) < 2 || res.Path[0] != graph.SenderID || res.Path[len(res.Path)-1] != graph.ReceiverID {
		t.Fatalf("seed %d: malformed path %v", seed, res.Path)
	}
	if len(res.Formats) != len(res.Path)-1 {
		t.Fatalf("seed %d: formats/path mismatch", seed)
	}
	// Every step must be a real edge, formats must be distinct, and the
	// delivered stream must fit every edge's bandwidth.
	seen := make(map[media.Format]bool)
	model := cfg.Bitrate
	if model == nil {
		model = media.DefaultBitrate
	}
	need := model.RequiredKbps(res.Params)
	for i := 1; i < len(res.Path); i++ {
		format := res.Formats[i-1]
		if seen[format] {
			t.Fatalf("seed %d: format %s repeats along the path", seed, format)
		}
		seen[format] = true
		var edge *graph.Edge
		for _, e := range g.Out(res.Path[i-1]) {
			if e.To == res.Path[i] && e.Format == format {
				edge = e
				break
			}
		}
		if edge == nil {
			t.Fatalf("seed %d: step %s-[%s]->%s is not a graph edge", seed, res.Path[i-1], format, res.Path[i])
		}
		if !math.IsInf(edge.BandwidthKbps, 1) && need > edge.BandwidthKbps+1e-6 {
			t.Fatalf("seed %d: delivered stream (%.2f kbps) exceeds edge %s->%s (%.2f kbps)",
				seed, need, edge.From, edge.To, edge.BandwidthKbps)
		}
	}
	// Budget and satisfaction bounds.
	if cfg.Budget > 0 && res.Cost > cfg.Budget+1e-9 {
		t.Fatalf("seed %d: cost %v exceeds budget %v", seed, res.Cost, cfg.Budget)
	}
	if res.Satisfaction < 0 || res.Satisfaction > 1 {
		t.Fatalf("seed %d: satisfaction %v outside [0,1]", seed, res.Satisfaction)
	}
	// Delivered parameters can never exceed what the source variant
	// offers on the first edge.
	var first *graph.Edge
	for _, e := range g.Out(graph.SenderID) {
		if e.To == res.Path[1] && e.Format == res.Formats[0] {
			first = e
			break
		}
	}
	if first == nil {
		t.Fatalf("seed %d: first edge missing", seed)
	}
	if !first.SourceParams.Dominates(res.Params) {
		t.Fatalf("seed %d: delivered %s exceeds source %s", seed, res.Params, first.SourceParams)
	}
}

// TestSelectHeapMatchesScanOnRandomScenarios extends the heap/scan
// equivalence to many random graphs.
func TestSelectHeapMatchesScanOnRandomScenarios(t *testing.T) {
	for seed := int64(200); seed < 240; seed++ {
		sc := Generate(rand.New(rand.NewSource(seed)), Spec{Services: 25})
		scanCfg := sc.Config
		scanCfg.Scan = true
		scanRes, err1 := core.Select(sc.Graph, scanCfg)
		heapRes, err2 := core.Select(sc.Graph, sc.Config)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: error mismatch %v vs %v", seed, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(scanRes.Satisfaction-heapRes.Satisfaction) > 1e-12 {
			t.Fatalf("seed %d: scan %v != heap %v", seed, scanRes.Satisfaction, heapRes.Satisfaction)
		}
		if core.PathString(scanRes.Path) != core.PathString(heapRes.Path) {
			t.Fatalf("seed %d: paths differ: %s vs %s", seed,
				core.PathString(scanRes.Path), core.PathString(heapRes.Path))
		}
	}
}
