// Package workload generates synthetic adaptation scenarios — random
// service graphs, device populations and content catalogs — for the
// scalability and optimality experiments. Every generator is
// deterministic given the same *rand.Rand seed.
package workload

import (
	"fmt"
	"math/rand"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/satisfaction"
	"qoschain/internal/service"
)

// Spec parameterizes random scenario generation.
type Spec struct {
	// Services is the total number of trans-coding services. At least
	// Backbone of them form a guaranteed sender→receiver chain.
	Services int
	// Backbone is the length of the guaranteed chain (default 3,
	// clamped to Services).
	Backbone int
	// ExtraEdgeFactor controls how many additional format matches the
	// random services create: each extra service consumes and produces
	// formats drawn from a pool of roughly Services*PoolFactor formats.
	// Smaller pools yield denser graphs. Default 1.5.
	PoolFactor float64
	// MinKbps/MaxKbps bound the uniform per-edge bandwidth draw.
	MinKbps, MaxKbps float64
	// MaxFPS is the content's source frame rate (default 30).
	MaxFPS float64
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Services <= 0 {
		s.Services = 10
	}
	if s.Backbone <= 0 {
		s.Backbone = 3
	}
	if s.Backbone > s.Services {
		s.Backbone = s.Services
	}
	if s.PoolFactor <= 0 {
		s.PoolFactor = 1.5
	}
	if s.MinKbps <= 0 {
		s.MinKbps = 500
	}
	if s.MaxKbps <= s.MinKbps {
		s.MaxKbps = s.MinKbps + 3000
	}
	if s.MaxFPS <= 0 {
		s.MaxFPS = 30
	}
	return s
}

// Scenario is one generated problem instance.
type Scenario struct {
	Graph  *graph.Graph
	Config core.Config
}

// Generate builds a random adaptation scenario: a guaranteed backbone
// chain sender→s1→…→sB→receiver plus Services-B random services wired
// over a shared format pool, with uniform random edge bandwidths. The
// user's satisfaction is linear in frame rate with ideal MaxFPS.
func Generate(rng *rand.Rand, spec Spec) Scenario {
	spec = spec.withDefaults()

	// Format universe. Format 0 is the source; the last is the only
	// format the receiver decodes.
	poolSize := int(float64(spec.Services)*spec.PoolFactor) + 2
	fmtAt := func(i int) media.Format { return media.Opaque(i) }
	sourceFormat := fmtAt(0)
	sinkFormat := fmtAt(poolSize + 1)

	services := make([]*service.Service, 0, spec.Services)
	newService := func(i int, inputs, outputs []media.Format) *service.Service {
		return &service.Service{
			ID:      service.ID(fmt.Sprintf("s%d", i)),
			Inputs:  inputs,
			Outputs: outputs,
			Cost:    float64(rng.Intn(5)),
			Host:    fmt.Sprintf("h%d", i),
		}
	}

	// Backbone chain over fresh formats woven through the pool.
	prevFormat := sourceFormat
	for i := 0; i < spec.Backbone; i++ {
		var out media.Format
		if i == spec.Backbone-1 {
			out = sinkFormat
		} else {
			out = fmtAt(poolSize + 2 + i) // fresh, outside the pool
		}
		services = append(services, newService(i, []media.Format{prevFormat}, []media.Format{out}))
		prevFormat = out
	}

	// Random services over the shared pool (plus occasional taps into
	// the source and sink formats to create alternative chains).
	for i := spec.Backbone; i < spec.Services; i++ {
		nin := 1 + rng.Intn(2)
		nout := 1 + rng.Intn(3)
		inputs := make([]media.Format, 0, nin)
		for j := 0; j < nin; j++ {
			if rng.Float64() < 0.15 {
				inputs = append(inputs, sourceFormat)
			} else {
				inputs = append(inputs, fmtAt(1+rng.Intn(poolSize)))
			}
		}
		outputs := make([]media.Format, 0, nout)
		for j := 0; j < nout; j++ {
			if rng.Float64() < 0.15 {
				outputs = append(outputs, sinkFormat)
			} else {
				outputs = append(outputs, fmtAt(1+rng.Intn(poolSize)))
			}
		}
		s := newService(i, dedupFormats(inputs), dedupFormats(outputs))
		// Occasional quality caps make some services lossy.
		if rng.Float64() < 0.3 {
			s.Caps = media.Params{media.ParamFrameRate: spec.MaxFPS * (0.3 + 0.7*rng.Float64())}
		}
		services = append(services, s)
	}

	content := &profile.Content{
		ID: "workload-content",
		Variants: []media.Descriptor{
			{Format: sourceFormat, Params: media.Params{media.ParamFrameRate: spec.MaxFPS}},
		},
	}
	device := &profile.Device{
		ID:       "workload-device",
		Software: profile.Software{Decoders: []media.Format{sinkFormat}},
	}
	g, err := graph.Build(graph.Input{
		Content:  content,
		Device:   device,
		Services: services,
	})
	if err != nil {
		// Generation is closed over valid inputs; a failure here is a
		// programming error worth failing loudly on.
		panic(fmt.Sprintf("workload: generated invalid scenario: %v", err))
	}

	// Assign random bandwidths to all edges.
	for _, id := range g.NodeIDs() {
		for _, e := range g.Out(id) {
			e.BandwidthKbps = spec.MinKbps + rng.Float64()*(spec.MaxKbps-spec.MinKbps)
		}
	}

	cfg := core.Config{
		Profile: satisfaction.NewProfile(map[media.Param]satisfaction.Function{
			media.ParamFrameRate: satisfaction.Linear{M: 0, I: spec.MaxFPS},
		}),
	}
	return Scenario{Graph: g, Config: cfg}
}

func dedupFormats(in []media.Format) []media.Format {
	seen := make(map[media.Format]bool, len(in))
	out := in[:0]
	for _, f := range in {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}
