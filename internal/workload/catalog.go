package workload

import (
	"fmt"
	"math/rand"

	"qoschain/internal/media"
	"qoschain/internal/profile"
)

// Content catalog generation: the "vast amount of multimedia content"
// Section 1 describes, with each object stored in one or more variants —
// the static-adaptation inventory dynamic composition starts from.

// catalogTemplate describes one content archetype.
type catalogTemplate struct {
	kind     string
	variants []media.Format
	params   media.Params
}

var catalogTemplates = []catalogTemplate{
	{"newscast", []media.Format{media.VideoMPEG1, media.VideoH261},
		media.Params{media.ParamFrameRate: 30, media.ParamResolution: 300}},
	{"sportscast", []media.Format{media.VideoMPEG2, media.VideoMPEG1},
		media.Params{media.ParamFrameRate: 30, media.ParamResolution: 400}},
	{"lecture", []media.Format{media.VideoMPEG1, media.AudioPCM},
		media.Params{media.ParamFrameRate: 25, media.ParamAudioRate: 44.1}},
	{"podcast", []media.Format{media.AudioPCM, media.AudioMP3},
		media.Params{media.ParamAudioRate: 44.1, media.ParamAudioBits: 16}},
	{"photo-story", []media.Format{media.ImageJPEG, media.ImagePNG},
		media.Params{media.ParamResolution: 2000, media.ParamColorDepth: 24}},
	{"article", []media.Format{media.TextHTML, media.TextPlain},
		media.Params{}},
}

// Catalog generates n content profiles drawn from the archetype mix,
// lightly perturbing quality parameters. IDs are deterministic
// ("content-0" …).
func Catalog(rng *rand.Rand, n int) []profile.Content {
	out := make([]profile.Content, n)
	for i := 0; i < n; i++ {
		t := catalogTemplates[rng.Intn(len(catalogTemplates))]
		c := profile.Content{
			ID:          fmt.Sprintf("content-%d", i),
			Title:       fmt.Sprintf("%s #%d", t.kind, i),
			DurationSec: 30 + rng.Float64()*3600,
		}
		for _, f := range t.variants {
			params := make(media.Params, len(t.params))
			for k, v := range t.params {
				params[k] = v * (0.8 + 0.4*rng.Float64())
			}
			c.Variants = append(c.Variants, media.Descriptor{Format: f, Params: params})
		}
		out[i] = c
	}
	return out
}
