package workload

import (
	"errors"
	"math/rand"
	"testing"

	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/profile"
)

func TestGenerateAlwaysHasPath(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		sc := Generate(rand.New(rand.NewSource(seed)), Spec{Services: 15})
		if !sc.Graph.HasPath() {
			t.Fatalf("seed %d: generated graph lacks a sender→receiver path", seed)
		}
		res, err := core.Select(sc.Graph, sc.Config)
		if err != nil && !errors.Is(err, core.ErrNoChain) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The backbone guarantees structural connectivity; selection
		// can only fail if a bandwidth cannot carry even zero fps,
		// which the linear model never does.
		if err != nil {
			t.Fatalf("seed %d: selection failed despite backbone: %v", seed, err)
		}
		if res.Satisfaction < 0 || res.Satisfaction > 1 {
			t.Fatalf("seed %d: satisfaction %v out of range", seed, res.Satisfaction)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), Spec{Services: 12})
	b := Generate(rand.New(rand.NewSource(7)), Spec{Services: 12})
	if a.Graph.String() != b.Graph.String() {
		t.Error("same seed must generate identical graphs")
	}
	ra, err := core.Select(a.Graph, a.Config)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.Select(b.Graph, b.Config)
	if err != nil {
		t.Fatal(err)
	}
	if core.PathString(ra.Path) != core.PathString(rb.Path) || ra.Satisfaction != rb.Satisfaction {
		t.Error("same seed must select identical chains")
	}
}

func TestGenerateSpecDefaults(t *testing.T) {
	sc := Generate(rand.New(rand.NewSource(1)), Spec{})
	if sc.Graph.NodeCount() != 12 { // 10 services + sender + receiver
		t.Errorf("default Services should be 10, got %d nodes", sc.Graph.NodeCount())
	}
}

func TestGenerateBackboneClamped(t *testing.T) {
	sc := Generate(rand.New(rand.NewSource(1)), Spec{Services: 2, Backbone: 10})
	if sc.Graph.NodeCount() != 4 {
		t.Errorf("backbone must clamp to Services: %d nodes", sc.Graph.NodeCount())
	}
	if !sc.Graph.HasPath() {
		t.Error("clamped backbone must still connect")
	}
}

func TestGenerateEdgeBandwidthsInRange(t *testing.T) {
	spec := Spec{Services: 20, MinKbps: 1000, MaxKbps: 2000}
	sc := Generate(rand.New(rand.NewSource(3)), spec)
	for _, id := range sc.Graph.NodeIDs() {
		for _, e := range sc.Graph.Out(id) {
			if e.BandwidthKbps < 1000 || e.BandwidthKbps > 2000 {
				t.Fatalf("edge %s->%s bandwidth %v outside [1000,2000]", e.From, e.To, e.BandwidthKbps)
			}
		}
	}
}

func TestRandomDeviceValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		d := RandomDevice(rng, "d")
		if err := d.Validate(); err != nil {
			t.Fatalf("device %d (%s) invalid: %v", i, d.Class, err)
		}
	}
}

func TestDeviceOfClass(t *testing.T) {
	d := DeviceOfClass(profile.ClassPhone, "nokia")
	if d.Class != profile.ClassPhone || d.ID != "nokia" {
		t.Errorf("DeviceOfClass = %+v", d)
	}
	if d.Hardware.ScreenWidth != 176 {
		t.Errorf("phone screen = %d", d.Hardware.ScreenWidth)
	}
	fallback := DeviceOfClass("hologram", "x")
	if fallback.Class != profile.ClassDesktop {
		t.Error("unknown class should fall back to desktop")
	}
}

func TestClassesCoverTemplates(t *testing.T) {
	classes := Classes()
	if len(classes) != 7 {
		t.Errorf("Classes = %v", classes)
	}
}

func TestRandomUserValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		u := RandomUser(rng, "u")
		if err := u.Validate(); err != nil {
			t.Fatalf("user %d invalid: %v", i, err)
		}
		if u.Budget <= 0 {
			t.Error("generated users should have positive budgets")
		}
	}
}

func TestPopulation(t *testing.T) {
	devices, users := Population(rand.New(rand.NewSource(9)), 10)
	if len(devices) != 10 || len(users) != 10 {
		t.Fatalf("population sizes = %d/%d", len(devices), len(users))
	}
	if devices[0].ID != "dev-0" || users[9].Name != "user-9" {
		t.Error("population IDs should be deterministic")
	}
}

func TestGeneratedScenarioSurvivesPrune(t *testing.T) {
	sc := Generate(rand.New(rand.NewSource(11)), Spec{Services: 30})
	sc.Graph.Prune()
	if !sc.Graph.HasPath() {
		t.Error("pruning must preserve the backbone path")
	}
	if _, err := core.Select(sc.Graph, sc.Config); err != nil {
		t.Errorf("selection after prune failed: %v", err)
	}
	if _, ok := sc.Graph.Node(graph.SenderID); !ok {
		t.Error("sender must survive prune")
	}
}

func TestCatalogGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	catalog := Catalog(rng, 50)
	if len(catalog) != 50 {
		t.Fatalf("catalog size = %d", len(catalog))
	}
	for i, c := range catalog {
		if err := c.Validate(); err != nil {
			t.Fatalf("content %d invalid: %v", i, err)
		}
	}
	if catalog[0].ID != "content-0" || catalog[49].ID != "content-49" {
		t.Error("catalog IDs must be deterministic")
	}
	// Determinism across runs.
	again := Catalog(rand.New(rand.NewSource(21)), 50)
	for i := range catalog {
		if catalog[i].Title != again[i].Title {
			t.Fatalf("same seed must give the same catalog (item %d)", i)
		}
	}
}

func TestCatalogVariantsPerturbedButValid(t *testing.T) {
	catalog := Catalog(rand.New(rand.NewSource(5)), 30)
	sawMultiVariant := false
	for _, c := range catalog {
		if len(c.Variants) > 1 {
			sawMultiVariant = true
		}
		for _, v := range c.Variants {
			for name, val := range v.Params {
				if val < 0 {
					t.Fatalf("content %s variant %s has negative %s", c.ID, v.Format, name)
				}
			}
		}
	}
	if !sawMultiVariant {
		t.Error("the catalog mix should include multi-variant objects")
	}
}
