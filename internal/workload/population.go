package workload

import (
	"fmt"
	"math/rand"

	"qoschain/internal/media"
	"qoschain/internal/profile"
)

// Device population generation: the heterogeneous client mix Section 1
// motivates, from desktop PCs down to audio-only players and text pagers.

// deviceTemplate describes one device class archetype.
type deviceTemplate struct {
	class    profile.DeviceClass
	cpuMips  float64
	memoryMB float64
	screenW  int
	screenH  int
	colorBit int
	speakers int
	decoders []media.Format
}

var deviceTemplates = []deviceTemplate{
	{profile.ClassDesktop, 3000, 1024, 1280, 1024, 32, 2,
		[]media.Format{media.VideoMPEG1, media.VideoMPEG2, media.VideoMPEG4, media.AudioPCM, media.AudioMP3, media.ImageJPEG, media.TextHTML}},
	{profile.ClassLaptop, 2000, 512, 1024, 768, 32, 2,
		[]media.Format{media.VideoMPEG1, media.VideoMPEG4, media.AudioMP3, media.ImageJPEG, media.TextHTML}},
	{profile.ClassSetTop, 800, 128, 720, 576, 24, 2,
		[]media.Format{media.VideoMPEG2, media.AudioPCM}},
	{profile.ClassPDA, 400, 64, 320, 240, 16, 1,
		[]media.Format{media.VideoH263, media.AudioGSM, media.ImageJPEG, media.TextHTML}},
	{profile.ClassPhone, 150, 16, 176, 144, 12, 1,
		[]media.Format{media.VideoH263QCIF, media.AudioGSM, media.ImageGIF, media.TextWML}},
	{profile.ClassAudioOnly, 50, 8, 0, 0, 0, 1,
		[]media.Format{media.AudioMP3, media.AudioPCM8K}},
	{profile.ClassTextPager, 10, 1, 120, 32, 1, 0,
		[]media.Format{media.TextPlain, media.TextSummary}},
}

// RandomDevice draws a device from the class mix, lightly perturbing its
// hardware so populations are not identical.
func RandomDevice(rng *rand.Rand, id string) profile.Device {
	t := deviceTemplates[rng.Intn(len(deviceTemplates))]
	return deviceFrom(t, id, rng)
}

// DeviceOfClass builds a device of the requested class; unknown classes
// fall back to a desktop.
func DeviceOfClass(class profile.DeviceClass, id string) profile.Device {
	for _, t := range deviceTemplates {
		if t.class == class {
			return deviceFrom(t, id, nil)
		}
	}
	return deviceFrom(deviceTemplates[0], id, nil)
}

func deviceFrom(t deviceTemplate, id string, rng *rand.Rand) profile.Device {
	jitter := func(v float64) float64 {
		if rng == nil {
			return v
		}
		return v * (0.85 + 0.3*rng.Float64())
	}
	return profile.Device{
		ID:    id,
		Class: t.class,
		Hardware: profile.Hardware{
			CPUMips:      jitter(t.cpuMips),
			MemoryMB:     jitter(t.memoryMB),
			ScreenWidth:  t.screenW,
			ScreenHeight: t.screenH,
			ColorDepth:   t.colorBit,
			Speakers:     t.speakers,
		},
		Software: profile.Software{
			OS:       string(t.class) + "-os",
			Decoders: append([]media.Format(nil), t.decoders...),
		},
	}
}

// Classes returns the device classes the generator knows, in mix order.
func Classes() []profile.DeviceClass {
	out := make([]profile.DeviceClass, len(deviceTemplates))
	for i, t := range deviceTemplates {
		out[i] = t.class
	}
	return out
}

// RandomUser draws a user whose frame-rate and resolution expectations
// scale with how capable their device class typically is.
func RandomUser(rng *rand.Rand, name string) profile.User {
	idealFPS := 15 + rng.Float64()*15 // 15..30
	return profile.User{
		Name: name,
		Preferences: map[media.Param]profile.FuncSpec{
			media.ParamFrameRate: profile.LinearSpec(0, idealFPS),
		},
		Budget: float64(5 + rng.Intn(50)),
	}
}

// Population builds n devices and users with deterministic IDs
// ("dev-0"/"user-0" …).
func Population(rng *rand.Rand, n int) ([]profile.Device, []profile.User) {
	devices := make([]profile.Device, n)
	users := make([]profile.User, n)
	for i := 0; i < n; i++ {
		devices[i] = RandomDevice(rng, fmt.Sprintf("dev-%d", i))
		users[i] = RandomUser(rng, fmt.Sprintf("user-%d", i))
	}
	return devices, users
}
