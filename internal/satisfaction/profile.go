package satisfaction

import (
	"fmt"
	"sort"

	"qoschain/internal/media"
)

// Profile is a user's satisfaction profile: one satisfaction function per
// application-level QoS parameter, optionally weighted. It is the
// machine-usable form of the "user profile" of Section 3 — the
// preferences the selection algorithm optimizes for.
type Profile struct {
	// Functions maps each scored parameter to its satisfaction function.
	Functions map[media.Param]Function
	// Weights optionally assigns relative importance per parameter for
	// the weighted combination ([29]). A nil map means the unweighted
	// geometric mean of Equation 1.
	Weights map[media.Param]float64
}

// NewProfile builds an unweighted profile from the given functions.
func NewProfile(fns map[media.Param]Function) Profile {
	return Profile{Functions: fns}
}

// Params returns the scored parameter names in sorted order.
func (p Profile) Params() []media.Param {
	out := make([]media.Param, 0, len(p.Functions))
	for k := range p.Functions {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evaluate scores a parameter assignment: each scored parameter is fed to
// its satisfaction function and the individual satisfactions are combined
// per Equation 1 (or its weighted extension when Weights is set).
// Parameters in vals that the profile does not score are ignored.
func (p Profile) Evaluate(vals media.Params) float64 {
	names := p.Params()
	if len(names) == 0 {
		return 1
	}
	s := make([]float64, len(names))
	for i, name := range names {
		s[i] = p.Functions[name].Eval(vals.Get(name))
	}
	if p.Weights == nil {
		return Combine(s)
	}
	w := make([]float64, len(names))
	for i, name := range names {
		w[i] = p.Weights[name]
	}
	return WeightedCombine(s, w)
}

// EvaluateEach returns the per-parameter satisfactions keyed by parameter
// name, useful for reporting and for the user-facing explanation of why a
// chain scored the way it did.
func (p Profile) EvaluateEach(vals media.Params) map[media.Param]float64 {
	out := make(map[media.Param]float64, len(p.Functions))
	for name, fn := range p.Functions {
		out[name] = fn.Eval(vals.Get(name))
	}
	return out
}

// Ideals returns the ideal value of every scored parameter: the
// assignment above which satisfaction cannot improve.
func (p Profile) Ideals() media.Params {
	out := make(media.Params, len(p.Functions))
	for name, fn := range p.Functions {
		out[name] = fn.Ideal()
	}
	return out
}

// Validate checks every satisfaction function against the Function
// contract (monotone, [0,1] range, boundary behaviour) and that weights,
// when present, are non-negative.
func (p Profile) Validate() error {
	if len(p.Functions) == 0 {
		return fmt.Errorf("satisfaction: profile scores no parameters")
	}
	for name, fn := range p.Functions {
		if fn == nil {
			return fmt.Errorf("satisfaction: parameter %s has nil function", name)
		}
		if err := CheckMonotone(fn, 64); err != nil {
			return fmt.Errorf("satisfaction: parameter %s: %w", name, err)
		}
	}
	for name, w := range p.Weights {
		if w < 0 {
			return fmt.Errorf("satisfaction: parameter %s has negative weight %v", name, w)
		}
		if _, ok := p.Functions[name]; !ok {
			return fmt.Errorf("satisfaction: weight for unscored parameter %s", name)
		}
	}
	return nil
}
