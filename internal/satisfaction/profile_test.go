package satisfaction

import (
	"math"
	"testing"

	"qoschain/internal/media"
)

func videoProfile() Profile {
	return NewProfile(map[media.Param]Function{
		media.ParamFrameRate:  Linear{M: 0, I: 30},
		media.ParamResolution: Linear{M: 0, I: 300},
	})
}

func TestProfileParamsSorted(t *testing.T) {
	p := videoProfile()
	names := p.Params()
	if len(names) != 2 || names[0] != media.ParamFrameRate || names[1] != media.ParamResolution {
		t.Fatalf("Params() = %v, want [framerate resolution]", names)
	}
}

func TestProfileEvaluate(t *testing.T) {
	p := videoProfile()
	vals := media.Params{media.ParamFrameRate: 30, media.ParamResolution: 300}
	if got := p.Evaluate(vals); math.Abs(got-1) > 1e-12 {
		t.Errorf("ideal assignment should score 1, got %v", got)
	}
	vals = media.Params{media.ParamFrameRate: 15, media.ParamResolution: 300}
	want := math.Sqrt(0.5)
	if got := p.Evaluate(vals); math.Abs(got-want) > 1e-12 {
		t.Errorf("Evaluate = %v, want %v", got, want)
	}
	// Missing parameter evaluates at 0 → total 0.
	if got := p.Evaluate(media.Params{media.ParamFrameRate: 30}); got != 0 {
		t.Errorf("missing scored parameter should zero the total, got %v", got)
	}
}

func TestProfileEvaluateEmpty(t *testing.T) {
	if got := (Profile{}).Evaluate(nil); got != 1 {
		t.Errorf("empty profile evaluates to 1, got %v", got)
	}
}

func TestProfileEvaluateWeighted(t *testing.T) {
	p := videoProfile()
	p.Weights = map[media.Param]float64{media.ParamFrameRate: 1, media.ParamResolution: 0}
	vals := media.Params{media.ParamFrameRate: 15, media.ParamResolution: 0}
	if got := p.Evaluate(vals); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("weighted Evaluate = %v, want 0.5 (resolution ignored)", got)
	}
}

func TestProfileEvaluateEach(t *testing.T) {
	p := videoProfile()
	each := p.EvaluateEach(media.Params{media.ParamFrameRate: 15, media.ParamResolution: 300})
	if math.Abs(each[media.ParamFrameRate]-0.5) > 1e-12 {
		t.Errorf("framerate satisfaction = %v, want 0.5", each[media.ParamFrameRate])
	}
	if math.Abs(each[media.ParamResolution]-1) > 1e-12 {
		t.Errorf("resolution satisfaction = %v, want 1", each[media.ParamResolution])
	}
}

func TestProfileIdeals(t *testing.T) {
	ideals := videoProfile().Ideals()
	if ideals[media.ParamFrameRate] != 30 || ideals[media.ParamResolution] != 300 {
		t.Errorf("Ideals = %v", ideals)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := videoProfile().Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	if err := (Profile{}).Validate(); err == nil {
		t.Error("empty profile should fail validation")
	}
	bad := Profile{Functions: map[media.Param]Function{media.ParamFrameRate: nil}}
	if err := bad.Validate(); err == nil {
		t.Error("nil function should fail validation")
	}
	bad = Profile{Functions: map[media.Param]Function{media.ParamFrameRate: decreasing{}}}
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone function should fail validation")
	}
	p := videoProfile()
	p.Weights = map[media.Param]float64{media.ParamFrameRate: -1}
	if err := p.Validate(); err == nil {
		t.Error("negative weight should fail validation")
	}
	p = videoProfile()
	p.Weights = map[media.Param]float64{media.ParamAudioRate: 1}
	if err := p.Validate(); err == nil {
		t.Error("weight on unscored parameter should fail validation")
	}
}
