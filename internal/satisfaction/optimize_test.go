package satisfaction

import (
	"math"
	"testing"
	"testing/quick"

	"qoschain/internal/media"
)

func frameRateProfile() Profile {
	return NewProfile(map[media.Param]Function{
		media.ParamFrameRate: Linear{M: 0, I: 30},
	})
}

func TestOptimizeUnconstrainedHitsIdeal(t *testing.T) {
	p := frameRateProfile()
	got, sat, ok := p.Optimize(Request{Caps: media.Params{media.ParamFrameRate: 60}})
	if !ok {
		t.Fatal("unconstrained optimize should succeed")
	}
	if got[media.ParamFrameRate] != 30 {
		t.Errorf("should stop at the ideal (30), got %v", got[media.ParamFrameRate])
	}
	if sat != 1 {
		t.Errorf("sat = %v, want 1", sat)
	}
}

func TestOptimizeRespectsCap(t *testing.T) {
	p := frameRateProfile()
	got, sat, ok := p.Optimize(Request{Caps: media.Params{media.ParamFrameRate: 20}})
	if !ok || got[media.ParamFrameRate] != 20 {
		t.Fatalf("cap should bind: got %v ok=%v", got, ok)
	}
	if math.Abs(sat-20.0/30.0) > 1e-12 {
		t.Errorf("sat = %v, want 2/3", sat)
	}
}

func TestOptimizeSingleParamBandwidthExact(t *testing.T) {
	// Default bitrate model: 100 kbps per fps. 1985 kbps → 19.85 fps.
	p := frameRateProfile()
	got, sat, ok := p.Optimize(Request{
		Caps:      media.Params{media.ParamFrameRate: 30},
		Bandwidth: 1985,
	})
	if !ok {
		t.Fatal("optimize should succeed")
	}
	if math.Abs(got[media.ParamFrameRate]-19.85) > 1e-6 {
		t.Errorf("framerate = %v, want 19.85", got[media.ParamFrameRate])
	}
	if math.Abs(sat-19.85/30.0) > 1e-6 {
		t.Errorf("sat = %v, want %v", sat, 19.85/30.0)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	p := frameRateProfile()
	_, _, ok := p.Optimize(Request{
		Caps:      media.Params{media.ParamFrameRate: 30},
		Bitrate:   media.LinearBitrate{PerUnit: map[media.Param]float64{media.ParamFrameRate: 100}, Overhead: 500},
		Bandwidth: 100, // below even the overhead
	})
	if ok {
		t.Error("overhead above bandwidth must be infeasible")
	}
}

func TestOptimizeDiscreteDomain(t *testing.T) {
	p := frameRateProfile()
	got, _, ok := p.Optimize(Request{
		Caps:      media.Params{media.ParamFrameRate: 30},
		Domains:   map[media.Param]Domain{media.ParamFrameRate: {Values: []float64{5, 10, 15, 25, 30}}},
		Bandwidth: 1700, // affords 17 fps → ladder snaps to 15
	})
	if !ok {
		t.Fatal("optimize should succeed")
	}
	if got[media.ParamFrameRate] != 15 {
		t.Errorf("discrete framerate = %v, want 15", got[media.ParamFrameRate])
	}
}

func TestOptimizeDiscreteCapSnapsDown(t *testing.T) {
	p := frameRateProfile()
	got, _, ok := p.Optimize(Request{
		Caps:    media.Params{media.ParamFrameRate: 24},
		Domains: map[media.Param]Domain{media.ParamFrameRate: {Values: []float64{30, 10, 20}}}, // unsorted on purpose
	})
	if !ok || got[media.ParamFrameRate] != 20 {
		t.Fatalf("cap 24 over ladder {10,20,30} should give 20, got %v", got)
	}
}

func TestOptimizeMultiParamFeasibleSplit(t *testing.T) {
	p := NewProfile(map[media.Param]Function{
		media.ParamFrameRate: Linear{M: 0, I: 30},
		media.ParamAudioRate: Linear{M: 0, I: 44.1},
	})
	bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate: 100,
		media.ParamAudioRate: 10,
	}}
	got, sat, ok := p.Optimize(Request{
		Caps:      media.Params{media.ParamFrameRate: 30, media.ParamAudioRate: 44.1},
		Bitrate:   bitrate,
		Bandwidth: 2000,
	})
	if !ok {
		t.Fatal("optimize should succeed")
	}
	if bitrate.RequiredKbps(got) > 2000+1e-6 {
		t.Errorf("result exceeds bandwidth: %v kbps", bitrate.RequiredKbps(got))
	}
	if sat <= 0 {
		t.Error("a 2 Mbps edge should produce positive satisfaction")
	}
	// The greedy result should be close to the exhaustive optimum.
	_, exSat, exOK := p.OptimizeExhaustive(Request{
		Caps:      media.Params{media.ParamFrameRate: 30, media.ParamAudioRate: 44.1},
		Bitrate:   bitrate,
		Bandwidth: 2000,
	})
	if !exOK {
		t.Fatal("exhaustive optimize should succeed")
	}
	if sat < exSat-0.05 {
		t.Errorf("greedy sat %v too far below exhaustive %v", sat, exSat)
	}
}

func TestOptimizeZeroBandwidthMeansUnlimited(t *testing.T) {
	p := frameRateProfile()
	got, _, ok := p.Optimize(Request{Caps: media.Params{media.ParamFrameRate: 30}, Bandwidth: 0})
	if !ok || got[media.ParamFrameRate] != 30 {
		t.Fatalf("bandwidth<=0 should mean unlimited, got %v ok=%v", got, ok)
	}
}

func TestOptimizeExhaustiveInfeasible(t *testing.T) {
	p := frameRateProfile()
	_, _, ok := p.OptimizeExhaustive(Request{
		Caps:      media.Params{media.ParamFrameRate: 30},
		Bitrate:   media.LinearBitrate{Overhead: 10},
		Bandwidth: 5,
	})
	if ok {
		t.Error("exhaustive should also report infeasibility")
	}
}

// Property: Optimize never violates the bandwidth constraint and never
// exceeds caps or ideals.
func TestOptimizeFeasibilityQuick(t *testing.T) {
	p := NewProfile(map[media.Param]Function{
		media.ParamFrameRate:  Linear{M: 0, I: 30},
		media.ParamResolution: Linear{M: 0, I: 300},
	})
	bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate:  100,
		media.ParamResolution: 5,
	}}
	prop := func(bwRaw, capF, capR uint16) bool {
		req := Request{
			Caps: media.Params{
				media.ParamFrameRate:  float64(capF % 40),
				media.ParamResolution: float64(capR % 400),
			},
			Bitrate:   bitrate,
			Bandwidth: float64(bwRaw%5000) + 1,
		}
		got, sat, ok := p.Optimize(req)
		if !ok {
			// Linear model with zero overhead is always feasible at 0.
			return false
		}
		if bitrate.RequiredKbps(got) > req.Bandwidth+1e-6 {
			return false
		}
		if got[media.ParamFrameRate] > math.Min(30, req.Caps[media.ParamFrameRate])+1e-9 {
			return false
		}
		if got[media.ParamResolution] > math.Min(300, req.Caps[media.ParamResolution])+1e-9 {
			return false
		}
		return sat >= 0 && sat <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the greedy optimizer is never much worse than exhaustive
// enumeration on two-parameter problems.
func TestOptimizeGreedyGapQuick(t *testing.T) {
	p := NewProfile(map[media.Param]Function{
		media.ParamFrameRate:  Linear{M: 0, I: 30},
		media.ParamResolution: SCurve{M: 0, I: 300},
	})
	bitrate := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate:  100,
		media.ParamResolution: 5,
	}}
	prop := func(bwRaw uint16) bool {
		req := Request{
			Caps:      media.Params{media.ParamFrameRate: 30, media.ParamResolution: 300},
			Bitrate:   bitrate,
			Bandwidth: float64(bwRaw%4500) + 50,
		}
		_, greedy, ok1 := p.Optimize(req)
		_, exact, ok2 := p.OptimizeExhaustive(req)
		if ok1 != ok2 {
			return false
		}
		return greedy >= exact-0.08
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: more bandwidth never lowers the achieved satisfaction.
func TestOptimizeMonotoneInBandwidthQuick(t *testing.T) {
	p := frameRateProfile()
	prop := func(a, b uint16) bool {
		lo, hi := float64(a%3000)+1, float64(b%3000)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		_, sLo, _ := p.Optimize(Request{Caps: media.Params{media.ParamFrameRate: 30}, Bandwidth: lo})
		_, sHi, _ := p.Optimize(Request{Caps: media.Params{media.ParamFrameRate: 30}, Bandwidth: hi})
		return sHi >= sLo-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
