package satisfaction

import (
	"math"
	"testing"
	"testing/quick"

	"qoschain/internal/media"
)

func TestInverseLinear(t *testing.T) {
	fn := Linear{M: 0, I: 30}
	x, ok := Inverse(fn, 0.5)
	if !ok || math.Abs(x-15) > 1e-6 {
		t.Errorf("Inverse(0.5) = %v ok=%v, want 15", x, ok)
	}
	if x, ok := Inverse(fn, 0); !ok || x != 0 {
		t.Errorf("Inverse(0) = %v %v", x, ok)
	}
	if x, ok := Inverse(fn, 1); !ok || math.Abs(x-30) > 1e-6 {
		t.Errorf("Inverse(1) = %v %v", x, ok)
	}
}

func TestInverseSCurve(t *testing.T) {
	fn := SCurve{M: 5, I: 20}
	x, ok := Inverse(fn, 0.5)
	if !ok || math.Abs(x-12.5) > 1e-6 {
		t.Errorf("SCurve Inverse(0.5) = %v, want 12.5", x)
	}
}

type brokenFn struct{}

func (brokenFn) Eval(float64) float64 { return 0.3 }
func (brokenFn) Min() float64         { return 0 }
func (brokenFn) Ideal() float64       { return 10 }

func TestInverseUnreachable(t *testing.T) {
	if _, ok := Inverse(brokenFn{}, 0.9); ok {
		t.Error("unreachable target must report ok=false")
	}
	if _, ok := Inverse(brokenFn{}, 1); ok {
		t.Error("unreachable full satisfaction must report ok=false")
	}
}

// Property: Eval(Inverse(target)) >= target for achievable targets.
func TestInverseQuick(t *testing.T) {
	fn := Exponential{M: 2, I: 40, K: 2}
	prop := func(raw uint16) bool {
		target := float64(raw%999) / 1000
		x, ok := Inverse(fn, target)
		if !ok {
			return false
		}
		return fn.Eval(x) >= target-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRequiredBandwidthSingleParam(t *testing.T) {
	p := NewProfile(map[media.Param]Function{
		media.ParamFrameRate: Linear{M: 0, I: 30},
	})
	// 0.66… satisfaction needs 20 fps = 2000 kbps under the default
	// model.
	kbps, ok := RequiredBandwidth(p, nil, 2.0/3.0)
	if !ok || math.Abs(kbps-2000) > 1 {
		t.Errorf("RequiredBandwidth = %v ok=%v, want ~2000", kbps, ok)
	}
	// Full satisfaction needs the ideal 30 fps = 3000 kbps.
	kbps, ok = RequiredBandwidth(p, nil, 1)
	if !ok || math.Abs(kbps-3000) > 1 {
		t.Errorf("RequiredBandwidth(1) = %v, want ~3000", kbps)
	}
}

func TestRequiredBandwidthMonotone(t *testing.T) {
	p := NewProfile(map[media.Param]Function{
		media.ParamFrameRate:  Linear{M: 0, I: 30},
		media.ParamResolution: Linear{M: 0, I: 300},
	})
	model := media.LinearBitrate{PerUnit: map[media.Param]float64{
		media.ParamFrameRate:  100,
		media.ParamResolution: 5,
	}}
	prev := 0.0
	for _, target := range []float64{0.25, 0.5, 0.75, 0.95} {
		kbps, ok := RequiredBandwidth(p, model, target)
		if !ok {
			t.Fatalf("target %v should be reachable", target)
		}
		if kbps < prev-1 {
			t.Errorf("required bandwidth must grow with the target: %v after %v", kbps, prev)
		}
		prev = kbps
	}
}

func TestRequiredBandwidthUnreachable(t *testing.T) {
	p := Profile{Functions: map[media.Param]Function{
		media.ParamFrameRate: brokenFn{},
	}}
	if _, ok := RequiredBandwidth(p, nil, 0.9); ok {
		t.Error("unreachable target must report ok=false")
	}
}
