package satisfaction

import (
	"math"

	"qoschain/internal/media"
)

// Domain restricts the values a QoS parameter may take. A nil or empty
// Values slice means the parameter is continuous over [0, cap]; otherwise
// the parameter must take one of the listed values (a "ladder", e.g. the
// resolution steps a scaler supports). Values need not be sorted.
type Domain struct {
	Values []float64
}

// Continuous reports whether the domain allows any value in [0, cap].
func (d Domain) Continuous() bool { return len(d.Values) == 0 }

// Request describes one constrained parameter-optimization problem: the
// per-candidate subproblem of Step 2/Step 8 in Figure 4. The optimizer
// maximizes Profile.Evaluate subject to
//
//	bitrate(x_1..x_n) <= Bandwidth            (Equation 2)
//	x_i <= Caps[i]  and  x_i ∈ Domains[i]
type Request struct {
	// Caps bounds each parameter from above: the element-wise minimum
	// of what the upstream chain delivers and what the trans-coding
	// service can produce. A parameter scored by the profile but absent
	// from Caps is bounded only by its ideal value.
	Caps media.Params
	// Domains optionally restricts parameters to discrete ladders.
	Domains map[media.Param]Domain
	// Bitrate converts an assignment into required kbit/s. When nil,
	// media.DefaultBitrate is used.
	Bitrate media.BitrateModel
	// Bandwidth is the available kbit/s on the edge; <= 0 means
	// unlimited (e.g. two services co-located on one intermediary).
	Bandwidth float64
}

func (r Request) model() media.BitrateModel {
	if r.Bitrate != nil {
		return r.Bitrate
	}
	return media.DefaultBitrate
}

func (r Request) feasible(p media.Params) bool {
	if r.Bandwidth <= 0 {
		return true
	}
	return r.model().RequiredKbps(p) <= r.Bandwidth+1e-9
}

// gridSteps is the resolution at which continuous parameters are
// discretized during multi-parameter greedy descent. Continuous
// refinement afterwards recovers sub-step precision.
const gridSteps = 32

// Optimize returns the parameter assignment that maximizes the profile's
// total satisfaction under the request's constraints, together with that
// satisfaction. ok is false when even the all-zero assignment exceeds the
// bandwidth (the edge cannot carry the stream at all).
//
// Because every satisfaction function is monotone non-decreasing, the
// unconstrained optimum is each parameter at min(cap, ideal); when that is
// bandwidth-feasible it is returned directly. Otherwise the optimizer runs
// a greedy marginal descent over (possibly discretized) parameter ladders
// followed by continuous coordinate refinement. For a single continuous
// parameter the result is exact (binary search); for multiple parameters
// it is a high-quality heuristic whose gap versus exhaustive enumeration
// is property-tested in this package.
func (p Profile) Optimize(req Request) (best media.Params, sat float64, ok bool) {
	names := p.Params()
	assign := make(media.Params, len(names))

	// Upper bound per parameter: cap ∧ ideal, snapped into the domain.
	upper := make(media.Params, len(names))
	for _, name := range names {
		u := p.Functions[name].Ideal()
		if c, has := req.Caps[name]; has && c < u {
			u = c
		}
		if u < 0 {
			u = 0
		}
		if d, has := req.Domains[name]; has && !d.Continuous() {
			u = snapDown(d.Values, u)
		}
		upper[name] = u
		assign[name] = u
	}

	if req.feasible(assign) {
		return assign, p.Evaluate(assign), true
	}

	// The all-zero assignment is the floor; if even that does not fit,
	// the edge is unusable.
	zero := make(media.Params, len(names))
	for _, name := range names {
		zero[name] = lowestValue(req.Domains[name])
	}
	if !req.feasible(zero) {
		return nil, 0, false
	}

	if len(names) == 1 {
		name := names[0]
		d := req.Domains[name]
		if d.Continuous() {
			v := maxFeasibleValue(req, zero, name, upper[name])
			assign[name] = v
			return assign, p.Evaluate(assign), true
		}
	}

	// Multi-parameter (or discrete) case: greedy marginal descent over
	// ladders, then continuous refinement.
	ladders := make(map[media.Param][]float64, len(names))
	idx := make(map[media.Param]int, len(names))
	for _, name := range names {
		d := req.Domains[name]
		var lad []float64
		if d.Continuous() {
			lad = continuousLadder(upper[name])
		} else {
			lad = ladderUpTo(d.Values, upper[name])
		}
		ladders[name] = lad
		idx[name] = len(lad) - 1
		assign[name] = lad[len(lad)-1]
	}

	model := req.model()
	for !req.feasible(assign) {
		// Pick the parameter whose one-rung reduction loses the least
		// satisfaction per kbit/s saved.
		bestName := media.Param("")
		bestScore := math.Inf(-1)
		curSat := p.Evaluate(assign)
		for _, name := range names {
			i := idx[name]
			if i == 0 {
				continue
			}
			trial := assign.Clone()
			trial[name] = ladders[name][i-1]
			saved := model.RequiredKbps(assign) - model.RequiredKbps(trial)
			if saved <= 0 {
				// Lowering this parameter does not save bandwidth;
				// skip it (it would only hurt satisfaction).
				continue
			}
			lost := curSat - p.Evaluate(trial)
			score := -lost / saved
			if score > bestScore {
				bestScore = score
				bestName = name
			}
		}
		if bestName == "" {
			// No parameter can be reduced further; fall back to the
			// floor, which was verified feasible above.
			for _, name := range names {
				idx[name] = 0
				assign[name] = ladders[name][0]
			}
			break
		}
		idx[bestName]--
		assign[bestName] = ladders[bestName][idx[bestName]]
	}

	// Continuous refinement: raise each continuous parameter as far as
	// the residual bandwidth allows. Two passes are enough in practice
	// because raising one parameter only shrinks the slack for others.
	for pass := 0; pass < 2; pass++ {
		for _, name := range names {
			if !req.Domains[name].Continuous() {
				continue
			}
			assign[name] = maxFeasibleValue(req, assign, name, upper[name])
		}
	}

	return assign, p.Evaluate(assign), true
}

// OptimizeExhaustive enumerates the full cross product of the parameter
// ladders (continuous parameters are discretized at gridSteps) and
// returns the best feasible assignment. It is exponential in the number
// of parameters and exists as the ground-truth oracle for tests and for
// the greedy-gap experiment.
func (p Profile) OptimizeExhaustive(req Request) (best media.Params, sat float64, ok bool) {
	names := p.Params()
	ladders := make([][]float64, len(names))
	for i, name := range names {
		u := p.Functions[name].Ideal()
		if c, has := req.Caps[name]; has && c < u {
			u = c
		}
		if u < 0 {
			u = 0
		}
		d := req.Domains[name]
		if d.Continuous() {
			ladders[i] = continuousLadder(u)
		} else {
			lad := ladderUpTo(d.Values, u)
			ladders[i] = lad
		}
	}
	assign := make(media.Params, len(names))
	bestSat := -1.0
	var rec func(i int)
	rec = func(i int) {
		if i == len(names) {
			if !req.feasible(assign) {
				return
			}
			if s := p.Evaluate(assign); s > bestSat {
				bestSat = s
				best = assign.Clone()
			}
			return
		}
		for _, v := range ladders[i] {
			assign[names[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	if bestSat < 0 {
		return nil, 0, false
	}
	return best, bestSat, true
}

// maxFeasibleValue binary-searches the largest value of name in
// [current floor, hi] that keeps the assignment bandwidth-feasible, with
// all other parameters held at their values in base.
func maxFeasibleValue(req Request, base media.Params, name media.Param, hi float64) float64 {
	trial := base.Clone()
	trial[name] = hi
	if req.feasible(trial) {
		return hi
	}
	lo := 0.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		trial[name] = mid
		if req.feasible(trial) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// continuousLadder discretizes [0, upper] into gridSteps+1 ascending
// values (always including 0 and upper).
func continuousLadder(upper float64) []float64 {
	if upper <= 0 {
		return []float64{0}
	}
	lad := make([]float64, gridSteps+1)
	for i := 0; i <= gridSteps; i++ {
		lad[i] = upper * float64(i) / gridSteps
	}
	return lad
}

// ladderUpTo returns the sorted domain values <= upper (always at least
// the smallest value, so descent has a floor).
func ladderUpTo(values []float64, upper float64) []float64 {
	sorted := append([]float64(nil), values...)
	sortFloats(sorted)
	out := sorted[:0]
	for _, v := range sorted {
		if v <= upper+1e-12 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return sorted[:1]
	}
	return out
}

// snapDown returns the largest domain value <= upper, or the smallest
// domain value when none qualifies.
func snapDown(values []float64, upper float64) float64 {
	sorted := append([]float64(nil), values...)
	sortFloats(sorted)
	best := sorted[0]
	for _, v := range sorted {
		if v <= upper+1e-12 {
			best = v
		}
	}
	return best
}

// lowestValue returns the domain's floor: 0 for continuous domains, the
// smallest ladder value otherwise.
func lowestValue(d Domain) float64 {
	if d.Continuous() {
		return 0
	}
	low := d.Values[0]
	for _, v := range d.Values[1:] {
		if v < low {
			low = v
		}
	}
	return low
}

// sortFloats is an insertion sort: ladders are tiny and this avoids a
// sort.Float64s allocation in the hot per-candidate path.
func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
