// Package satisfaction implements the user-satisfaction model of Section
// 4.1 of the paper (after Richards et al. [28]).
//
// Each application-level QoS parameter x_i is scored by a satisfaction
// function S_i(x_i) with range [0,1], where 0 corresponds to the minimum
// acceptable value M and 1 to the ideal value I, and S_i increases
// monotonically between them. The total satisfaction over n parameters is
// the geometric mean of the individual satisfactions (Equation 1), with a
// weighted extension ([29]).
//
// The package also provides the constrained parameter optimizer the QoS
// selection algorithm calls for every candidate trans-coding service: it
// chooses the parameter values that maximize total satisfaction subject to
// the available bandwidth (Equation 2) and the service's capability caps.
package satisfaction

import (
	"fmt"
	"math"
)

// Function scores a single QoS parameter value in [0,1]. Implementations
// must be monotonically non-decreasing over [Min(), Ideal()], return 0 at
// or below Min() and 1 at or above Ideal(). CheckMonotone verifies these
// contracts by sampling.
type Function interface {
	// Eval returns the satisfaction for value x, clamped to [0,1].
	Eval(x float64) float64
	// Min returns the minimum acceptable value M (satisfaction 0).
	Min() float64
	// Ideal returns the ideal value I (satisfaction 1).
	Ideal() float64
}

// clamp limits v to [0,1].
func clamp(v float64) float64 {
	switch {
	case v < 0 || math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	}
	return v
}

// Linear rises linearly from 0 at M to 1 at I. It is the workhorse
// satisfaction shape; the Table 1 calibration uses Linear{M:0, I:30} for
// the frame rate (satisfaction = fps/30).
type Linear struct {
	M float64 // minimum acceptable value
	I float64 // ideal value
}

// Eval implements Function.
func (f Linear) Eval(x float64) float64 {
	if f.I <= f.M {
		if x >= f.I {
			return 1
		}
		return 0
	}
	return clamp((x - f.M) / (f.I - f.M))
}

// Min implements Function.
func (f Linear) Min() float64 { return f.M }

// Ideal implements Function.
func (f Linear) Ideal() float64 { return f.I }

// SCurve is a smoothstep-shaped satisfaction function: flat near M,
// steepest midway, flattening again near I — the shape Figure 1 sketches
// for the frame-rate satisfaction (M=5 fps, I=20 fps).
type SCurve struct {
	M float64
	I float64
}

// Eval implements Function.
func (f SCurve) Eval(x float64) float64 {
	if f.I <= f.M {
		if x >= f.I {
			return 1
		}
		return 0
	}
	t := clamp((x - f.M) / (f.I - f.M))
	return t * t * (3 - 2*t)
}

// Min implements Function.
func (f SCurve) Min() float64 { return f.M }

// Ideal implements Function.
func (f SCurve) Ideal() float64 { return f.I }

// Exponential saturates quickly above M: S = (1-e^(-k t))/(1-e^(-k)) with
// t the normalized position in [M,I]. K > 0 bends the curve upward
// (diminishing returns); K == 0 degenerates to Linear.
type Exponential struct {
	M float64
	I float64
	K float64
}

// Eval implements Function.
func (f Exponential) Eval(x float64) float64 {
	if f.I <= f.M {
		if x >= f.I {
			return 1
		}
		return 0
	}
	t := clamp((x - f.M) / (f.I - f.M))
	if f.K == 0 {
		return t
	}
	return clamp((1 - math.Exp(-f.K*t)) / (1 - math.Exp(-f.K)))
}

// Min implements Function.
func (f Exponential) Min() float64 { return f.M }

// Ideal implements Function.
func (f Exponential) Ideal() float64 { return f.I }

// Step is a staircase satisfaction: each threshold unlocks the paired
// level. Levels must be non-decreasing in [0,1] and thresholds strictly
// increasing; satisfaction below the first threshold is 0.
type Step struct {
	Thresholds []float64
	Levels     []float64
}

// Eval implements Function.
func (f Step) Eval(x float64) float64 {
	s := 0.0
	for i, th := range f.Thresholds {
		if x >= th && i < len(f.Levels) {
			s = f.Levels[i]
		}
	}
	return clamp(s)
}

// Min implements Function.
func (f Step) Min() float64 {
	if len(f.Thresholds) == 0 {
		return 0
	}
	return f.Thresholds[0]
}

// Ideal implements Function.
func (f Step) Ideal() float64 {
	if len(f.Thresholds) == 0 {
		return 0
	}
	return f.Thresholds[len(f.Thresholds)-1]
}

// Piecewise interpolates linearly between (X[i], Y[i]) control points.
// X must be strictly increasing and Y non-decreasing within [0,1].
type Piecewise struct {
	X []float64
	Y []float64
}

// Eval implements Function.
func (f Piecewise) Eval(x float64) float64 {
	n := len(f.X)
	if n == 0 || n != len(f.Y) {
		return 0
	}
	if x <= f.X[0] {
		return clamp(f.Y[0])
	}
	if x >= f.X[n-1] {
		return clamp(f.Y[n-1])
	}
	for i := 1; i < n; i++ {
		if x <= f.X[i] {
			span := f.X[i] - f.X[i-1]
			if span == 0 {
				return clamp(f.Y[i])
			}
			t := (x - f.X[i-1]) / span
			return clamp(f.Y[i-1] + t*(f.Y[i]-f.Y[i-1]))
		}
	}
	return clamp(f.Y[n-1])
}

// Min implements Function.
func (f Piecewise) Min() float64 {
	if len(f.X) == 0 {
		return 0
	}
	return f.X[0]
}

// Ideal implements Function.
func (f Piecewise) Ideal() float64 {
	if len(f.X) == 0 {
		return 0
	}
	return f.X[len(f.X)-1]
}

// Validate checks the Piecewise control points for the Function contract.
func (f Piecewise) Validate() error {
	if len(f.X) == 0 || len(f.X) != len(f.Y) {
		return fmt.Errorf("satisfaction: piecewise needs equal, non-empty X and Y (got %d, %d)", len(f.X), len(f.Y))
	}
	for i := 1; i < len(f.X); i++ {
		if f.X[i] <= f.X[i-1] {
			return fmt.Errorf("satisfaction: piecewise X must be strictly increasing at index %d", i)
		}
		if f.Y[i] < f.Y[i-1] {
			return fmt.Errorf("satisfaction: piecewise Y must be non-decreasing at index %d", i)
		}
	}
	for i, y := range f.Y {
		if y < 0 || y > 1 {
			return fmt.Errorf("satisfaction: piecewise Y[%d]=%v outside [0,1]", i, y)
		}
	}
	return nil
}

// CheckMonotone samples fn at n+1 evenly spaced points across
// [Min, Ideal] (plus points just outside) and reports the first violation
// of the Function contract: non-monotonicity, values outside [0,1],
// S(<=Min) != 0 or S(>=Ideal) != 1. Step functions legitimately evaluate
// to a nonzero level at Min, so the boundary checks use <= / >= rather
// than strict equality where the contract allows it.
func CheckMonotone(fn Function, n int) error {
	if n < 2 {
		n = 2
	}
	m, ideal := fn.Min(), fn.Ideal()
	if ideal < m {
		return fmt.Errorf("satisfaction: Ideal %v below Min %v", ideal, m)
	}
	span := ideal - m
	prev := math.Inf(-1)
	for i := 0; i <= n; i++ {
		x := m + span*float64(i)/float64(n)
		v := fn.Eval(x)
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("satisfaction: Eval(%v)=%v outside [0,1]", x, v)
		}
		if v < prev-1e-12 {
			return fmt.Errorf("satisfaction: not monotone at x=%v (%v < %v)", x, v, prev)
		}
		prev = v
	}
	if span > 0 {
		if v := fn.Eval(m - span); v > fn.Eval(m)+1e-12 {
			return fmt.Errorf("satisfaction: value below Min exceeds value at Min (%v)", v)
		}
		if v := fn.Eval(ideal + span); v < fn.Eval(ideal)-1e-12 {
			return fmt.Errorf("satisfaction: value above Ideal drops below value at Ideal (%v)", v)
		}
	}
	return nil
}
