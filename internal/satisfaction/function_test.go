package satisfaction

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearEval(t *testing.T) {
	f := Linear{M: 0, I: 30}
	cases := []struct{ x, want float64 }{
		{0, 0}, {15, 0.5}, {30, 1}, {45, 1}, {-5, 0},
		{27, 0.9}, {20, 20.0 / 30.0},
	}
	for _, c := range cases {
		if got := f.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Linear.Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLinearDegenerate(t *testing.T) {
	f := Linear{M: 10, I: 10}
	if f.Eval(9) != 0 {
		t.Error("below degenerate point should be 0")
	}
	if f.Eval(10) != 1 {
		t.Error("at degenerate point should be 1")
	}
	if f.Eval(11) != 1 {
		t.Error("above degenerate point should be 1")
	}
}

func TestSCurveFigure1Shape(t *testing.T) {
	// Figure 1 sketches an S-shaped satisfaction for frame rate with
	// minimum 5 fps and ideal 20 fps.
	f := SCurve{M: 5, I: 20}
	if f.Eval(5) != 0 {
		t.Error("S(M) must be 0")
	}
	if f.Eval(20) != 1 {
		t.Error("S(I) must be 1")
	}
	mid := f.Eval(12.5)
	if math.Abs(mid-0.5) > 1e-12 {
		t.Errorf("S(midpoint) = %v, want 0.5", mid)
	}
	// Steeper in the middle than near the ends.
	dEnd := f.Eval(6) - f.Eval(5)
	dMid := f.Eval(13) - f.Eval(12)
	if dMid <= dEnd {
		t.Error("SCurve should be steeper in the middle than at the ends")
	}
}

func TestExponentialBendsUp(t *testing.T) {
	f := Exponential{M: 0, I: 10, K: 3}
	lin := Linear{M: 0, I: 10}
	if f.Eval(0) != 0 || math.Abs(f.Eval(10)-1) > 1e-12 {
		t.Fatal("Exponential must hit 0 at M and 1 at I")
	}
	if f.Eval(3) <= lin.Eval(3) {
		t.Error("K>0 exponential should exceed linear in the interior")
	}
	lin2 := Exponential{M: 0, I: 10, K: 0}
	if math.Abs(lin2.Eval(4)-0.4) > 1e-12 {
		t.Error("K=0 should degenerate to linear")
	}
}

func TestStepEval(t *testing.T) {
	f := Step{Thresholds: []float64{5, 10, 20}, Levels: []float64{0.3, 0.6, 1}}
	cases := []struct{ x, want float64 }{
		{0, 0}, {4.9, 0}, {5, 0.3}, {9, 0.3}, {10, 0.6}, {19, 0.6}, {20, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := f.Eval(c.x); got != c.want {
			t.Errorf("Step.Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if f.Min() != 5 || f.Ideal() != 20 {
		t.Errorf("Step Min/Ideal = %v/%v, want 5/20", f.Min(), f.Ideal())
	}
	empty := Step{}
	if empty.Eval(3) != 0 || empty.Min() != 0 || empty.Ideal() != 0 {
		t.Error("empty Step should be all zeros")
	}
}

func TestPiecewiseEval(t *testing.T) {
	f := Piecewise{X: []float64{5, 10, 20}, Y: []float64{0, 0.8, 1}}
	cases := []struct{ x, want float64 }{
		{0, 0}, {5, 0}, {7.5, 0.4}, {10, 0.8}, {15, 0.9}, {20, 1}, {25, 1},
	}
	for _, c := range cases {
		if got := f.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Piecewise.Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPiecewiseDegenerate(t *testing.T) {
	if (Piecewise{}).Eval(1) != 0 {
		t.Error("empty piecewise evaluates to 0")
	}
	if (Piecewise{X: []float64{1}, Y: []float64{0.5, 0.6}}).Eval(1) != 0 {
		t.Error("mismatched lengths evaluate to 0")
	}
}

func TestPiecewiseValidate(t *testing.T) {
	good := Piecewise{X: []float64{1, 2}, Y: []float64{0, 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid piecewise rejected: %v", err)
	}
	bad := []Piecewise{
		{},
		{X: []float64{1}, Y: []float64{0, 1}},
		{X: []float64{2, 1}, Y: []float64{0, 1}},
		{X: []float64{1, 2}, Y: []float64{1, 0}},
		{X: []float64{1, 2}, Y: []float64{0, 2}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad piecewise %d should fail validation", i)
		}
	}
}

func TestCheckMonotoneAcceptsContractualFunctions(t *testing.T) {
	fns := []Function{
		Linear{M: 0, I: 30},
		Linear{M: 5, I: 20},
		SCurve{M: 5, I: 20},
		Exponential{M: 0, I: 10, K: 2},
		Step{Thresholds: []float64{5, 10}, Levels: []float64{0.5, 1}},
		Piecewise{X: []float64{5, 10, 20}, Y: []float64{0, 0.8, 1}},
	}
	for i, fn := range fns {
		if err := CheckMonotone(fn, 128); err != nil {
			t.Errorf("function %d should satisfy the contract: %v", i, err)
		}
	}
}

type decreasing struct{}

func (decreasing) Eval(x float64) float64 { return clamp(1 - x) }
func (decreasing) Min() float64           { return 0 }
func (decreasing) Ideal() float64         { return 1 }

type outOfRange struct{}

func (outOfRange) Eval(x float64) float64 { return 2 }
func (outOfRange) Min() float64           { return 0 }
func (outOfRange) Ideal() float64         { return 1 }

type invertedBounds struct{}

func (invertedBounds) Eval(x float64) float64 { return 0 }
func (invertedBounds) Min() float64           { return 5 }
func (invertedBounds) Ideal() float64         { return 1 }

func TestCheckMonotoneRejectsViolations(t *testing.T) {
	for i, fn := range []Function{decreasing{}, outOfRange{}, invertedBounds{}} {
		if err := CheckMonotone(fn, 16); err == nil {
			t.Errorf("violating function %d should be rejected", i)
		}
	}
}

// Property: for random (M, I, x), every provided shape stays in [0,1] and
// is monotone in x.
func TestFunctionShapesQuick(t *testing.T) {
	prop := func(mRaw, spanRaw, aRaw, bRaw uint16) bool {
		m := float64(mRaw % 100)
		span := float64(spanRaw%100) + 1
		fns := []Function{
			Linear{M: m, I: m + span},
			SCurve{M: m, I: m + span},
			Exponential{M: m, I: m + span, K: 2},
		}
		a := m + span*float64(aRaw)/65535
		b := m + span*float64(bRaw)/65535
		if a > b {
			a, b = b, a
		}
		for _, fn := range fns {
			va, vb := fn.Eval(a), fn.Eval(b)
			if va < 0 || vb > 1 || va > vb+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
