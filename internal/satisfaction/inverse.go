package satisfaction

import (
	"math"

	"qoschain/internal/media"
)

// Inverse finds the smallest parameter value x at which fn reaches the
// target satisfaction (binary search over [Min, Ideal], exploiting the
// monotone contract). Targets <= 0 return Min; targets >= 1 return Ideal;
// when even Ideal does not reach the target (a defective function) the
// result is Ideal with ok=false.
func Inverse(fn Function, target float64) (x float64, ok bool) {
	lo, hi := fn.Min(), fn.Ideal()
	if target <= 0 {
		return lo, true
	}
	if target >= 1 {
		if fn.Eval(hi) >= 1-1e-12 {
			return hi, true
		}
		return hi, false
	}
	if fn.Eval(hi) < target {
		return hi, false
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if fn.Eval(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// RequiredBandwidth returns the minimum bandwidth (kbit/s per the model)
// at which the profile can reach the target total satisfaction, assuming
// every scored parameter is available up to its ideal. It returns
// +Inf with ok=false when the target is unreachable even unconstrained.
// This is the capacity-planning inverse of the per-edge optimization: how
// fat must a link be for the user to be this happy?
func RequiredBandwidth(p Profile, model media.BitrateModel, target float64) (kbps float64, ok bool) {
	if model == nil {
		model = media.DefaultBitrate
	}
	caps := p.Ideals()
	// Unconstrained best.
	best, sat, feasible := p.Optimize(Request{Caps: caps, Bitrate: model})
	if !feasible || sat < target-1e-9 {
		return math.Inf(1), false
	}
	hi := model.RequiredKbps(best)
	if hi <= 0 {
		return 0, true
	}
	lo := 0.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		_, s, okMid := p.Optimize(Request{Caps: caps, Bitrate: model, Bandwidth: mid})
		if okMid && s >= target-1e-9 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
