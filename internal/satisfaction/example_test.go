package satisfaction_test

import (
	"fmt"

	"qoschain/internal/media"
	"qoschain/internal/satisfaction"
)

// ExampleCombine demonstrates Equation 1: the total satisfaction is the
// geometric mean of the per-parameter satisfactions, so one unacceptable
// parameter zeroes the session.
func ExampleCombine() {
	fmt.Printf("%.3f\n", satisfaction.Combine([]float64{0.9, 0.9, 0.9}))
	fmt.Printf("%.3f\n", satisfaction.Combine([]float64{1.0, 0.25}))
	fmt.Printf("%.3f\n", satisfaction.Combine([]float64{1.0, 0.0}))
	// Output:
	// 0.900
	// 0.500
	// 0.000
}

// ExampleProfile_Optimize shows the per-candidate optimization of
// Figure 4: pick the frame rate that maximizes satisfaction under an
// edge's bandwidth (Equation 2) — here 1985 kbps at 100 kbps per fps.
func ExampleProfile_Optimize() {
	prof := satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})
	params, sat, ok := prof.Optimize(satisfaction.Request{
		Caps:      media.Params{media.ParamFrameRate: 30},
		Bandwidth: 1985,
	})
	fmt.Println(ok)
	fmt.Printf("fps=%.2f sat=%.3f\n", params.Get(media.ParamFrameRate), sat)
	// Output:
	// true
	// fps=19.85 sat=0.662
}

// ExampleRequiredBandwidth inverts the optimization for capacity
// planning: how fat must a link be for a target satisfaction?
func ExampleRequiredBandwidth() {
	prof := satisfaction.NewProfile(map[media.Param]satisfaction.Function{
		media.ParamFrameRate: satisfaction.Linear{M: 0, I: 30},
	})
	kbps, ok := satisfaction.RequiredBandwidth(prof, nil, 0.9)
	fmt.Println(ok)
	fmt.Printf("%.0f kbps\n", kbps)
	// Output:
	// true
	// 2700 kbps
}
