package satisfaction

import "math"

// Combine computes the total satisfaction from the individual parameter
// satisfactions using Equation 1 of the paper: the geometric mean
//
//	S_tot = (s_1 · s_2 · … · s_n)^(1/n).
//
// The geometric mean is the natural combination here because a single
// unacceptable parameter (s_i = 0) drives the whole session to 0 — a user
// does not enjoy perfect video when the audio is unusable. Combine of an
// empty slice is defined as 1 (no constraints, fully satisfied).
func Combine(s []float64) float64 {
	if len(s) == 0 {
		return 1
	}
	// Sum of logs is more stable than a raw product for many factors,
	// but any zero factor short-circuits to zero.
	sum := 0.0
	for _, v := range s {
		if v <= 0 {
			return 0
		}
		if v > 1 {
			v = 1
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(s)))
}

// WeightedCombine is the extension of Equation 1 referenced by the paper
// ([29]): a weighted geometric mean
//
//	S_tot = (∏ s_i^{w_i})^{1/Σw_i}.
//
// Non-positive weights are treated as 0 (the parameter is ignored). When
// all weights are zero the result is 1.
func WeightedCombine(s, w []float64) float64 {
	n := len(s)
	if len(w) < n {
		n = len(w)
	}
	totalW := 0.0
	sum := 0.0
	for i := 0; i < n; i++ {
		wi := w[i]
		if wi <= 0 {
			continue
		}
		v := s[i]
		if v <= 0 {
			return 0
		}
		if v > 1 {
			v = 1
		}
		sum += wi * math.Log(v)
		totalW += wi
	}
	if totalW == 0 {
		return 1
	}
	return math.Exp(sum / totalW)
}
