package satisfaction

import (
	"math"

	"qoschain/internal/media"
)

// Optimizer runs the per-candidate optimization of Profile.Optimize with
// all scratch state (parameter maps, satisfaction buffers) reused across
// calls. The selection algorithm performs one optimization per edge
// relaxation, and the per-call map allocations of Profile.Optimize
// dominate its allocation profile on large graphs; an Optimizer amortizes
// them to zero.
//
// The arithmetic is identical to Profile.Optimize — same evaluation
// order, same ladders, same binary search — so results are bit-identical
// (the equivalence tests in internal/core assert this end to end).
//
// An Optimizer is not safe for concurrent use; each goroutine needs its
// own.
type Optimizer struct {
	p       Profile
	names   []media.Param
	weights []float64 // aligned with names; nil when the profile is unweighted

	// Scratch, reused across Optimize calls.
	assign media.Params
	upper  media.Params
	zero   media.Params
	trial  media.Params
	sbuf   []float64
}

// NewOptimizer prepares an optimizer for the profile. The profile's
// Functions and Weights maps must not be modified afterwards.
func NewOptimizer(p Profile) *Optimizer {
	names := p.Params()
	o := &Optimizer{
		p:      p,
		names:  names,
		assign: make(media.Params, len(names)),
		upper:  make(media.Params, len(names)),
		zero:   make(media.Params, len(names)),
		trial:  make(media.Params, len(names)),
		sbuf:   make([]float64, len(names)),
	}
	if p.Weights != nil {
		o.weights = make([]float64, len(names))
		for i, name := range names {
			o.weights[i] = p.Weights[name]
		}
	}
	return o
}

// Params returns the profile's scored parameter names in sorted order.
// The caller must not modify the returned slice.
func (o *Optimizer) Params() []media.Param { return o.names }

// Evaluate scores a parameter assignment exactly like Profile.Evaluate,
// without allocating.
func (o *Optimizer) Evaluate(vals media.Params) float64 {
	if len(o.names) == 0 {
		return 1
	}
	s := o.sbuf
	for i, name := range o.names {
		s[i] = o.p.Functions[name].Eval(vals.Get(name))
	}
	if o.weights == nil {
		return Combine(s)
	}
	return WeightedCombine(s, o.weights)
}

// copyInto replaces dst's contents with src's.
func copyInto(dst, src media.Params) {
	clear(dst)
	for k, v := range src {
		dst[k] = v
	}
}

// Optimize is Profile.Optimize with scratch reuse. The returned Params
// aliases the optimizer's internal scratch and is only valid until the
// next call — Clone it to keep it.
func (o *Optimizer) Optimize(req Request) (best media.Params, sat float64, ok bool) {
	names := o.names
	assign := o.assign
	clear(assign)

	// Upper bound per parameter: cap ∧ ideal, snapped into the domain.
	upper := o.upper
	clear(upper)
	for _, name := range names {
		u := o.p.Functions[name].Ideal()
		if c, has := req.Caps[name]; has && c < u {
			u = c
		}
		if u < 0 {
			u = 0
		}
		if d, has := req.Domains[name]; has && !d.Continuous() {
			u = snapDown(d.Values, u)
		}
		upper[name] = u
		assign[name] = u
	}

	if req.feasible(assign) {
		return assign, o.Evaluate(assign), true
	}

	// The all-zero assignment is the floor; if even that does not fit,
	// the edge is unusable.
	zero := o.zero
	clear(zero)
	for _, name := range names {
		zero[name] = lowestValue(req.Domains[name])
	}
	if !req.feasible(zero) {
		return nil, 0, false
	}

	if len(names) == 1 {
		name := names[0]
		d := req.Domains[name]
		if d.Continuous() {
			v := o.maxFeasibleValue(req, zero, name, upper[name])
			assign[name] = v
			return assign, o.Evaluate(assign), true
		}
	}

	// Multi-parameter (or discrete) case: greedy marginal descent over
	// ladders, then continuous refinement. This path is rare (it needs
	// an infeasible multi-parameter ideal), so the ladder slices are
	// allocated per call like Profile.Optimize does.
	ladders := make(map[media.Param][]float64, len(names))
	idx := make(map[media.Param]int, len(names))
	for _, name := range names {
		d := req.Domains[name]
		var lad []float64
		if d.Continuous() {
			lad = continuousLadder(upper[name])
		} else {
			lad = ladderUpTo(d.Values, upper[name])
		}
		ladders[name] = lad
		idx[name] = len(lad) - 1
		assign[name] = lad[len(lad)-1]
	}

	model := req.model()
	for !req.feasible(assign) {
		// Pick the parameter whose one-rung reduction loses the least
		// satisfaction per kbit/s saved.
		bestName := media.Param("")
		bestScore := math.Inf(-1)
		curSat := o.Evaluate(assign)
		for _, name := range names {
			i := idx[name]
			if i == 0 {
				continue
			}
			copyInto(o.trial, assign)
			o.trial[name] = ladders[name][i-1]
			saved := model.RequiredKbps(assign) - model.RequiredKbps(o.trial)
			if saved <= 0 {
				// Lowering this parameter does not save bandwidth;
				// skip it (it would only hurt satisfaction).
				continue
			}
			lost := curSat - o.Evaluate(o.trial)
			score := -lost / saved
			if score > bestScore {
				bestScore = score
				bestName = name
			}
		}
		if bestName == "" {
			// No parameter can be reduced further; fall back to the
			// floor, which was verified feasible above.
			for _, name := range names {
				idx[name] = 0
				assign[name] = ladders[name][0]
			}
			break
		}
		idx[bestName]--
		assign[bestName] = ladders[bestName][idx[bestName]]
	}

	// Continuous refinement: raise each continuous parameter as far as
	// the residual bandwidth allows. Two passes are enough in practice
	// because raising one parameter only shrinks the slack for others.
	for pass := 0; pass < 2; pass++ {
		for _, name := range names {
			if !req.Domains[name].Continuous() {
				continue
			}
			assign[name] = o.maxFeasibleValue(req, assign, name, upper[name])
		}
	}

	return assign, o.Evaluate(assign), true
}

// maxFeasibleValue is the binary search of the package-level
// maxFeasibleValue, using the optimizer's trial scratch instead of
// cloning base.
func (o *Optimizer) maxFeasibleValue(req Request, base media.Params, name media.Param, hi float64) float64 {
	copyInto(o.trial, base)
	trial := o.trial
	trial[name] = hi
	if req.feasible(trial) {
		return hi
	}
	lo := 0.0

	// Fast path for the single-entry LinearBitrate model (the package
	// default): RequiredKbps(trial) is Overhead + PerUnit[k]*trial[k],
	// the exact expression the generic loop evaluates for a one-entry
	// map, so the search below is bit-identical to the generic one while
	// touching no maps in its 64 iterations.
	if lb, isLinear := req.model().(media.LinearBitrate); isLinear && len(lb.PerUnit) == 1 {
		var k media.Param
		var per float64
		for kk, vv := range lb.PerUnit {
			k, per = kk, vv
		}
		if k != name {
			// The required bitrate does not depend on name, and it
			// already exceeded the bandwidth at hi above: every probe is
			// infeasible and the generic search returns the untouched lo.
			return 0
		}
		limit := req.Bandwidth + 1e-9
		for i := 0; i < 64; i++ {
			mid := (lo + hi) / 2
			if lb.Overhead+per*mid <= limit {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}

	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		trial[name] = mid
		if req.feasible(trial) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
