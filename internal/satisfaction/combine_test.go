package satisfaction

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCombineBasics(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{}, 1},
		{[]float64{0.5}, 0.5},
		{[]float64{1, 1, 1}, 1},
		{[]float64{0.25, 1}, 0.5},
		{[]float64{0.9, 0.9, 0.9}, 0.9},
		{[]float64{0, 1, 1}, 0},
	}
	for _, c := range cases {
		if got := Combine(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Combine(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCombineClampsAboveOne(t *testing.T) {
	if got := Combine([]float64{2, 0.5}); math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("values above 1 should be clamped: got %v", got)
	}
}

func TestCombineNegativeIsZero(t *testing.T) {
	if Combine([]float64{-0.5, 1}) != 0 {
		t.Error("negative satisfaction must zero the combination")
	}
}

func TestWeightedCombine(t *testing.T) {
	// Equal weights reduce to the plain geometric mean.
	s := []float64{0.25, 1}
	if got, want := WeightedCombine(s, []float64{1, 1}), Combine(s); math.Abs(got-want) > 1e-12 {
		t.Errorf("equal weights = %v, want plain Combine %v", got, want)
	}
	// A zero weight ignores the parameter entirely.
	if got := WeightedCombine([]float64{0.01, 0.9}, []float64{0, 1}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("zero-weighted parameter should be ignored, got %v", got)
	}
	// All-zero weights mean "no constraints".
	if got := WeightedCombine([]float64{0.1}, []float64{0}); got != 1 {
		t.Errorf("all-zero weights should give 1, got %v", got)
	}
	// Heavier weight pulls the result toward that parameter.
	lop := WeightedCombine([]float64{0.2, 0.9}, []float64{10, 1})
	if lop >= Combine([]float64{0.2, 0.9}) {
		t.Error("weighting the low parameter should lower the combination")
	}
	// A zero satisfaction with positive weight still zeroes everything.
	if WeightedCombine([]float64{0, 0.9}, []float64{1, 1}) != 0 {
		t.Error("zero satisfaction with positive weight must zero the result")
	}
	// Mismatched lengths use the common prefix.
	if got := WeightedCombine([]float64{0.5, 0.9}, []float64{1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("length mismatch should use prefix, got %v", got)
	}
	// Negative weights are treated as zero.
	if got := WeightedCombine([]float64{0.1, 0.8}, []float64{-5, 1}); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("negative weight should be ignored, got %v", got)
	}
}

// Property: Combine lies between min and max of its inputs and is
// monotone in each coordinate.
func TestCombineQuick(t *testing.T) {
	prop := func(a, b, c uint16) bool {
		s := []float64{
			float64(a%1000)/1000 + 0.001,
			float64(b%1000)/1000 + 0.001,
			float64(c%1000)/1000 + 0.001,
		}
		got := Combine(s)
		lo, hi := s[0], s[0]
		for _, v := range s[1:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if got < lo-1e-12 || got > hi+1e-12 {
			return false
		}
		bumped := []float64{s[0], s[1], math.Min(1, s[2]+0.1)}
		return Combine(bumped) >= got-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: WeightedCombine with a uniform positive weight equals the
// unweighted Combine.
func TestWeightedCombineUniformQuick(t *testing.T) {
	prop := func(a, b, w uint16) bool {
		s := []float64{float64(a%999)/1000 + 0.001, float64(b%999)/1000 + 0.001}
		wv := float64(w%10) + 0.5
		return math.Abs(WeightedCombine(s, []float64{wv, wv})-Combine(s)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
