package httpapi

// sessions.go exposes live failover sessions over HTTP. A session is
// created from a profile.Set and holds its own overlay network and
// service pool; faults can then be injected against them and the
// session's failover machinery observed through its status resource.
// Session lifecycle, fault application, and (when the server runs with a
// state directory) durability all live in session.Manager — this file is
// the HTTP veneer.
//
//	POST   /v1/sessions                  profile.Set JSON -> session created
//	GET    /v1/sessions                  list session statuses
//	GET    /v1/sessions/{id}             one session's chain + failover status
//	POST   /v1/sessions/{id}/fault       inject a fault against the session's overlay
//	POST   /v1/sessions/{id}/reevaluate  advance one step and re-evaluate
//	DELETE /v1/sessions/{id}             tear the session down (releases its holds)
//
// /v1/sessions query parameters: floor=<0..1> (minimum acceptable
// satisfaction before graceful degradation, default 0), contact=<class>,
// seed=<int> (failover jitter seed, default 1), reserve=1 (hold the
// chain's bitrate on the session's overlay links; a chain that does not
// fit the free capacity is rejected with 503 before activation). Retry
// backoff never wall-clock sleeps inside a handler; the virtual clock
// advances one step per reevaluate call.
//
// On a persistent manager every state-changing request is journaled
// before the response is written; a journal failure surfaces as 500 and
// the server should be restarted (recovery replays to the last fsynced
// record).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"qoschain/internal/fault"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/session"
)

// SessionManager adapts a SessionBackend (a session.Manager or a
// cluster node) to the HTTP routes.
type SessionManager struct {
	m SessionBackend
}

// NewSessionManager returns a manager over in-memory (non-durable)
// session state.
func NewSessionManager() *SessionManager {
	m, _ := session.NewManager(session.ManagerConfig{}) // in-memory never errors
	return &SessionManager{m: m}
}

// NewSessionManagerWith wraps an existing backend.
func NewSessionManagerWith(m SessionBackend) *SessionManager {
	return &SessionManager{m: m}
}

// register wires the session routes into a mux.
func (sm *SessionManager) register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sessions", sm.handleCreate)
	mux.HandleFunc("GET /v1/sessions", sm.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", sm.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", sm.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/fault", sm.handleFault)
	mux.HandleFunc("POST /v1/sessions/{id}/reevaluate", sm.handleReevaluate)
}

// createError maps a session.Manager.Create failure to its HTTP status:
// malformed specs are the client's fault, capacity exhaustion is an
// overload condition, a journal failure is a server-side durability
// loss, anything else is an unprocessable (chain-less) profile.
func createError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrBadSpec):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, overlay.ErrInsufficientCapacity):
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

func (sm *SessionManager) handleCreate(w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	set, err := profile.DecodeSet(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeError(w, bodyErrorStatus(err), err.Error())
		return
	}
	q := r.URL.Query()
	floor := 0.0
	if v := q.Get("floor"); v != "" {
		floor, err = strconv.ParseFloat(v, 64)
		if err != nil || floor < 0 || floor > 1 {
			writeError(w, http.StatusBadRequest, "floor must be a number in [0,1]")
			return
		}
	}
	var seed int64 = 1
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "seed must be an integer")
			return
		}
	}
	ms, err := sm.m.CreateCtx(r.Context(), session.CreateSpec{
		Set:     *set,
		Floor:   floor,
		Seed:    seed,
		Contact: q.Get("contact"),
		Reserve: q.Get("reserve") == "1",
	})
	if err != nil {
		if ms != nil {
			// The session exists in memory but its creation did not make
			// it to the journal — a durability loss, not a client error.
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		createError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, ms.State())
}

func (sm *SessionManager) handleList(w http.ResponseWriter, r *http.Request) {
	all := sm.m.List()
	out := make([]session.State, len(all))
	for i, ms := range all {
		out[i] = ms.State()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"sessions": out})
}

// lookup fetches a session by path id, writing the 404 itself when absent.
func (sm *SessionManager) lookup(w http.ResponseWriter, r *http.Request) *session.Managed {
	id := r.PathValue("id")
	ms, ok := sm.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return nil
	}
	return ms
}

func (sm *SessionManager) handleGet(w http.ResponseWriter, r *http.Request) {
	ms := sm.lookup(w, r)
	if ms == nil {
		return
	}
	writeJSON(w, http.StatusOK, ms.State())
}

func (sm *SessionManager) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := sm.m.Delete(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// faultRequest is the JSON body of a fault injection. Kind follows
// internal/fault: hostcrash, hostrecover, linkdown, linkup, bandwidth,
// loss, delay, servicedown, serviceup. Bandwidth collapse multiplies the
// link's current capacity by factor; injections are immediate and stay
// until the inverse fault is posted.
type faultRequest struct {
	Kind     string  `json:"kind"`
	Host     string  `json:"host,omitempty"`
	From     string  `json:"from,omitempty"`
	To       string  `json:"to,omitempty"`
	Service  string  `json:"service,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	LossRate float64 `json:"lossRate,omitempty"`
	DelayMs  float64 `json:"delayMs,omitempty"`
}

func (sm *SessionManager) handleFault(w http.ResponseWriter, r *http.Request) {
	ms := sm.lookup(w, r)
	if ms == nil {
		return
	}
	defer r.Body.Close()
	var req faultRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), err.Error())
		return
	}
	f := fault.Fault{
		AtStep:   1, // immediate; validated shape only
		Kind:     fault.Kind(req.Kind),
		Host:     req.Host,
		From:     req.From,
		To:       req.To,
		Service:  service.ID(req.Service),
		Factor:   req.Factor,
		LossRate: req.LossRate,
		DelayMs:  req.DelayMs,
	}
	if err := f.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := ms.ApplyFaultCtx(r.Context(), f); err != nil {
		// The fault either failed to apply (client error) or applied but
		// failed to journal (durability loss).
		if errors.Is(err, session.ErrJournal) {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ms.State())
}

func (sm *SessionManager) handleReevaluate(w http.ResponseWriter, r *http.Request) {
	ms := sm.lookup(w, r)
	if ms == nil {
		return
	}
	// ?reason= attributes the re-evaluation in journal and metrics;
	// unadorned client calls are manual by definition.
	reason := r.URL.Query().Get("reason")
	switch reason {
	case "":
		reason = session.ReevalManual
	case session.ReevalManual, session.ReevalFault, session.ReevalStorm:
	default:
		writeError(w, http.StatusBadRequest, "unknown reevaluate reason "+reason)
		return
	}
	changed, evalErr, logErr := ms.ReevaluateReasonCtx(r.Context(), reason)
	if logErr != nil {
		writeError(w, http.StatusInternalServerError, logErr.Error())
		return
	}
	resp := struct {
		Changed bool   `json:"changed"`
		Error   string `json:"error,omitempty"`
		session.State
	}{Changed: changed, State: ms.State()}
	if evalErr != nil {
		resp.Error = evalErr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}
