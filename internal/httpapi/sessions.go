package httpapi

// sessions.go exposes live failover sessions over HTTP. A session is
// created from a profile.Set and holds its own overlay network and
// service pool; faults can then be injected against them and the
// session's failover machinery observed through its status resource.
//
//	POST   /v1/sessions                  profile.Set JSON -> session created
//	GET    /v1/sessions                  list session statuses
//	GET    /v1/sessions/{id}             one session's chain + failover status
//	POST   /v1/sessions/{id}/fault       inject a fault against the session's overlay
//	POST   /v1/sessions/{id}/reevaluate  advance one step and re-evaluate
//	DELETE /v1/sessions/{id}             tear the session down
//
// /v1/sessions query parameters: floor=<0..1> (minimum acceptable
// satisfaction before graceful degradation, default 0), contact=<class>,
// seed=<int> (failover jitter seed, default 1), reserve=1 (hold the
// chain's bitrate on the session's overlay links; a chain that does not
// fit the free capacity is rejected with 503 before activation). Retry
// backoff never wall-clock sleeps inside a handler; the virtual clock
// advances one step per reevaluate call.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"qoschain/internal/core"
	"qoschain/internal/fault"
	"qoschain/internal/graph"
	"qoschain/internal/metrics"
	"qoschain/internal/overlay"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/session"
)

// SessionManager owns the live sessions created over the API.
type SessionManager struct {
	mu       sync.Mutex
	seq      int
	sessions map[string]*managedSession
}

// managedSession is one API-created session with its private overlay and
// service pool (faults against one session never leak into another).
type managedSession struct {
	mu       sync.Mutex
	id       string
	sess     *session.Session
	net      *overlay.Network
	pool     *fault.ServiceSet
	counters *metrics.Counters
}

// NewSessionManager returns an empty manager.
func NewSessionManager() *SessionManager {
	return &SessionManager{sessions: make(map[string]*managedSession)}
}

// register wires the session routes into a mux.
func (sm *SessionManager) register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sessions", sm.handleCreate)
	mux.HandleFunc("GET /v1/sessions", sm.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", sm.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", sm.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/fault", sm.handleFault)
	mux.HandleFunc("POST /v1/sessions/{id}/reevaluate", sm.handleReevaluate)
}

// sessionStatus is the JSON shape of one session's state.
type sessionStatus struct {
	ID             string                 `json:"id"`
	Path           []string               `json:"path"`
	Formats        []string               `json:"formats"`
	Satisfaction   float64                `json:"satisfaction"`
	Cost           float64                `json:"cost"`
	Step           int                    `json:"step"`
	Recompositions int                    `json:"recompositions"`
	Failover       session.FailoverStatus `json:"failover"`
	DownHosts      []string               `json:"downHosts,omitempty"`
	History        []changeStatus         `json:"history,omitempty"`
	Counters       map[string]int64       `json:"counters,omitempty"`
}

// changeStatus is one recorded re-composition.
type changeStatus struct {
	Reason       string  `json:"reason"`
	From         string  `json:"from"`
	To           string  `json:"to"`
	Satisfaction float64 `json:"satisfaction"`
}

// status snapshots a managed session. Callers hold ms.mu.
func (ms *managedSession) status() sessionStatus {
	res := ms.sess.Result()
	st := sessionStatus{
		ID:             ms.id,
		Path:           nodeStrings(res.Path),
		Formats:        formatStrings(res.Formats),
		Satisfaction:   res.Satisfaction,
		Cost:           res.Cost,
		Step:           ms.sess.CurrentStep(),
		Recompositions: ms.sess.Recompositions(),
		Failover:       ms.sess.FailoverStatus(),
		DownHosts:      ms.net.DownHosts(),
		Counters:       ms.counters.Snapshot(),
	}
	for _, ch := range ms.sess.History() {
		st.History = append(st.History, changeStatus{
			Reason:       ch.Reason,
			From:         ch.From,
			To:           ch.To,
			Satisfaction: ch.Satisfaction,
		})
	}
	return st
}

func (sm *SessionManager) handleCreate(w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	set, err := profile.DecodeSet(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeError(w, bodyErrorStatus(err), err.Error())
		return
	}
	q := r.URL.Query()
	floor := 0.0
	if v := q.Get("floor"); v != "" {
		floor, err = strconv.ParseFloat(v, 64)
		if err != nil || floor < 0 || floor > 1 {
			writeError(w, http.StatusBadRequest, "floor must be a number in [0,1]")
			return
		}
	}
	var seed int64 = 1
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "seed must be an integer")
			return
		}
	}
	satProfile, err := set.User.SatisfactionProfile(profile.ContactClass(q.Get("contact")))
	if err == nil {
		err = satProfile.Validate()
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	net, err := overlay.FromProfile(set.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	svcs := graph.CollectServices(set.Intermediaries)
	pool := fault.NewServiceSet(svcs)
	counters := metrics.NewCounters()
	sess, err := session.New(session.Config{
		Content:          &set.Content,
		Device:           &set.Device,
		Services:         svcs,
		Net:              net,
		SenderHost:       "sender",
		ReceiverHost:     set.Device.ID,
		ReserveBandwidth: q.Get("reserve") == "1",
		Select: core.Config{
			Profile:      satProfile,
			Budget:       set.User.Budget,
			ReceiverCaps: set.Device.RenderCaps(),
		},
		Pool: pool,
		Failover: session.FailoverConfig{
			Enabled:           true,
			SatisfactionFloor: floor,
			JitterSeed:        seed,
			// HTTP handlers must not wall-clock sleep between retries.
			Sleep:   func(time.Duration) {},
			Metrics: counters,
		},
	})
	if err != nil {
		// A chain that does not fit the overlay's free capacity is an
		// overload condition, not a malformed request.
		if errors.Is(err, overlay.ErrInsufficientCapacity) {
			setRetryAfter(w, time.Second)
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	sm.mu.Lock()
	sm.seq++
	ms := &managedSession{
		id:       fmt.Sprintf("s%d", sm.seq),
		sess:     sess,
		net:      net,
		pool:     pool,
		counters: counters,
	}
	sm.sessions[ms.id] = ms
	sm.mu.Unlock()

	ms.mu.Lock()
	st := ms.status()
	ms.mu.Unlock()
	writeJSON(w, http.StatusCreated, st)
}

func (sm *SessionManager) handleList(w http.ResponseWriter, r *http.Request) {
	sm.mu.Lock()
	all := make([]*managedSession, 0, len(sm.sessions))
	for _, ms := range sm.sessions {
		all = append(all, ms)
	}
	sm.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	out := make([]sessionStatus, len(all))
	for i, ms := range all {
		ms.mu.Lock()
		out[i] = ms.status()
		ms.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"sessions": out})
}

// lookup fetches a session by path id, writing the 404 itself when absent.
func (sm *SessionManager) lookup(w http.ResponseWriter, r *http.Request) *managedSession {
	id := r.PathValue("id")
	sm.mu.Lock()
	ms := sm.sessions[id]
	sm.mu.Unlock()
	if ms == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
	}
	return ms
}

func (sm *SessionManager) handleGet(w http.ResponseWriter, r *http.Request) {
	ms := sm.lookup(w, r)
	if ms == nil {
		return
	}
	ms.mu.Lock()
	st := ms.status()
	ms.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (sm *SessionManager) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sm.mu.Lock()
	_, ok := sm.sessions[id]
	delete(sm.sessions, id)
	sm.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// faultRequest is the JSON body of a fault injection. Kind follows
// internal/fault: hostcrash, hostrecover, linkdown, linkup, bandwidth,
// loss, delay, servicedown, serviceup. Bandwidth collapse multiplies the
// link's current capacity by factor; injections are immediate and stay
// until the inverse fault is posted.
type faultRequest struct {
	Kind     string  `json:"kind"`
	Host     string  `json:"host,omitempty"`
	From     string  `json:"from,omitempty"`
	To       string  `json:"to,omitempty"`
	Service  string  `json:"service,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	LossRate float64 `json:"lossRate,omitempty"`
	DelayMs  float64 `json:"delayMs,omitempty"`
}

func (sm *SessionManager) handleFault(w http.ResponseWriter, r *http.Request) {
	ms := sm.lookup(w, r)
	if ms == nil {
		return
	}
	defer r.Body.Close()
	var req faultRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), err.Error())
		return
	}
	f := fault.Fault{
		AtStep:   1, // immediate; validated shape only
		Kind:     fault.Kind(req.Kind),
		Host:     req.Host,
		From:     req.From,
		To:       req.To,
		Service:  service.ID(req.Service),
		Factor:   req.Factor,
		LossRate: req.LossRate,
		DelayMs:  req.DelayMs,
	}
	if err := f.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ms.mu.Lock()
	err := ms.apply(f)
	var st sessionStatus
	if err == nil {
		st = ms.status()
	}
	ms.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// apply injects one fault against the session's private overlay and
// pool. Callers hold ms.mu.
func (ms *managedSession) apply(f fault.Fault) error {
	switch f.Kind {
	case fault.HostCrash:
		if err := ms.net.FailHost(f.Host); err != nil {
			return err
		}
		ms.pool.SetHostDown(f.Host, true)
	case fault.HostRecover:
		if err := ms.net.RecoverHost(f.Host); err != nil {
			return err
		}
		ms.pool.SetHostDown(f.Host, false)
	case fault.LinkDown:
		return ms.net.FailLink(f.From, f.To)
	case fault.LinkUp:
		return ms.net.RecoverLink(f.From, f.To)
	case fault.BandwidthCollapse:
		for _, l := range ms.net.Snapshot().Links {
			if l.From == f.From && l.To == f.To {
				return ms.net.SetBandwidth(f.From, f.To, l.BandwidthKbps*f.Factor)
			}
		}
		return fmt.Errorf("httpapi: no link %s->%s", f.From, f.To)
	case fault.LossSpike:
		return ms.net.SetLoss(f.From, f.To, f.LossRate)
	case fault.DelaySpike:
		return ms.net.SetDelay(f.From, f.To, f.DelayMs)
	case fault.ServiceDown:
		ms.pool.SetServiceDown(f.Service, true)
	case fault.ServiceUp:
		ms.pool.SetServiceDown(f.Service, false)
	default:
		return fmt.Errorf("httpapi: unsupported fault kind %q", f.Kind)
	}
	return nil
}

func (sm *SessionManager) handleReevaluate(w http.ResponseWriter, r *http.Request) {
	ms := sm.lookup(w, r)
	if ms == nil {
		return
	}
	ms.mu.Lock()
	ms.sess.Tick()
	changed, err := ms.sess.Reevaluate()
	st := ms.status()
	ms.mu.Unlock()
	resp := struct {
		Changed bool   `json:"changed"`
		Error   string `json:"error,omitempty"`
		sessionStatus
	}{Changed: changed, sessionStatus: st}
	if err != nil {
		resp.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}
