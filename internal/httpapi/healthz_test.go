package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"qoschain/internal/storm"
)

// healthzDoc is the decoded /healthz body the replication tests assert
// against.
type healthzDoc struct {
	Status      string             `json:"status"`
	Durable     bool               `json:"durable"`
	Replication *ReplicationStatus `json:"replication"`
	Storm       *storm.Status      `json:"storm"`
}

func getHealthz(t *testing.T, base string) healthzDoc {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var doc healthzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestHealthzReplicationStatus: /healthz must report the replication
// role and applied journal offset, not just liveness, so a load
// balancer can distinguish a durable solo node from an in-memory one
// (and, in a cluster, a primary from its lagging follower).
func TestHealthzReplicationStatus(t *testing.T) {
	// In-memory backend: role "memory", nothing durable to report.
	mem := httptest.NewServer(Handler())
	defer mem.Close()
	doc := getHealthz(t, mem.URL)
	if doc.Replication == nil || doc.Replication.Role != "memory" {
		t.Fatalf("in-memory replication = %+v", doc.Replication)
	}

	// Durable solo backend: role "solo" with the live journal offset.
	srv, m := persistentServer(t, t.TempDir())
	defer m.Close()
	createSession(t, srv.URL, testSet())
	doc = getHealthz(t, srv.URL)
	if doc.Replication == nil || doc.Replication.Role != "solo" {
		t.Fatalf("solo replication = %+v", doc.Replication)
	}
	if !doc.Durable {
		t.Fatal("durable flag lost")
	}
	if got, want := doc.Replication.AppliedSeq, m.LastSeq(); got != want || want == 0 {
		t.Fatalf("appliedSeq = %d, want live offset %d (nonzero)", got, want)
	}
}

// TestHealthzStormStatus: when a storm controller is wired in, /healthz
// carries its live view — class and session counts, pending links and
// the in-progress flag — so operators can gate traffic on recovery
// state.
func TestHealthzStormStatus(t *testing.T) {
	// Without a controller the section is absent.
	bare := httptest.NewServer(Handler())
	defer bare.Close()
	if doc := getHealthz(t, bare.URL); doc.Storm != nil {
		t.Fatalf("storm section present without a controller: %+v", doc.Storm)
	}

	ctrl, err := storm.Open(storm.Config{}, nil)
	if err != nil {
		t.Fatalf("storm.Open: %v", err)
	}
	defer ctrl.Close()
	srv := httptest.NewServer(HandlerWithOptions(Options{Storm: ctrl}))
	defer srv.Close()
	doc := getHealthz(t, srv.URL)
	if doc.Storm == nil {
		t.Fatal("healthz missing the storm section")
	}
	if doc.Storm.Classes != 0 || doc.Storm.Active || doc.Storm.Storms != 0 {
		t.Fatalf("fresh controller status = %+v", doc.Storm)
	}
}
