package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"qoschain/internal/store"
)

func storeServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set := testSet()
	if err := st.PutUser(&set.User); err != nil {
		t.Fatal(err)
	}
	if err := st.PutDevice(&set.Device); err != nil {
		t.Fatal(err)
	}
	if err := st.PutContent(&set.Content); err != nil {
		t.Fatal(err)
	}
	if err := st.PutNetwork(&set.Network); err != nil {
		t.Fatal(err)
	}
	for i := range set.Intermediaries {
		if err := st.PutIntermediary(&set.Intermediaries[i]); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(HandlerWithStore(st))
	t.Cleanup(srv.Close)
	return srv
}

func TestProfilesEndpoint(t *testing.T) {
	srv := storeServer(t)
	resp, err := http.Get(srv.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body["users"]) != 1 || body["users"][0] != "alice" {
		t.Errorf("users = %v", body["users"])
	}
	if len(body["contents"]) != 1 || body["contents"][0] != "c" {
		t.Errorf("contents = %v", body["contents"])
	}
}

func TestComposeByRef(t *testing.T) {
	srv := storeServer(t)
	resp, err := http.Post(srv.URL+"/v1/compose/byref?user=alice&content=c&device=d&trace=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body composeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Path) != 3 || body.Path[1] != "conv1" {
		t.Errorf("path = %v", body.Path)
	}
	if len(body.Rounds) == 0 {
		t.Error("trace=1 should include rounds")
	}
}

func TestComposeByRefMissingParams(t *testing.T) {
	srv := storeServer(t)
	resp, err := http.Post(srv.URL+"/v1/compose/byref?user=alice", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestComposeByRefUnknownProfile(t *testing.T) {
	srv := storeServer(t)
	resp, err := http.Post(srv.URL+"/v1/compose/byref?user=ghost&content=c&device=d", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStoreHandlerStillServesBase(t *testing.T) {
	srv := storeServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("base endpoints must remain available, status = %d", resp.StatusCode)
	}
}
