package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/trace"
)

// obsServer builds the production handler stack — API inside
// WithObservability — with a buffer access log, and returns the pieces
// the tests inspect.
func obsServer(t *testing.T) (*httptest.Server, *metrics.Registry, *trace.Tracer, *bytes.Buffer, *sync.Mutex) {
	t.Helper()
	reg := metrics.NewRegistry()
	metrics.RegisterWellKnown(reg)
	tracer := trace.NewTracer(16)
	var buf bytes.Buffer
	var mu sync.Mutex
	log := &lockedWriter{w: &buf, mu: &mu}
	api := HandlerWithOptions(Options{Metrics: reg})
	h := WithObservability(api, ObsConfig{Registry: reg, Tracer: tracer, AccessLog: log})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, reg, tracer, &buf, &mu
}

// lockedWriter lets the test read the access log without racing the
// middleware's writes.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(b)
}

func TestObservabilityZeroConfigIsPassthrough(t *testing.T) {
	h := http.NewServeMux()
	if got := WithObservability(h, ObsConfig{}); got != http.Handler(h) {
		t.Error("zero config must return the handler unchanged")
	}
}

// TestEveryOutcomeSetsTraceIDAndLogsOnce drives each handler outcome —
// success, client errors, no-chain, method-not-allowed — and asserts
// every response carries X-Trace-Id and appends exactly one access-log
// line mentioning that trace and status.
func TestEveryOutcomeSetsTraceIDAndLogsOnce(t *testing.T) {
	srv, _, _, buf, mu := obsServer(t)
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"healthz", func() (*http.Response, error) {
			return http.Get(srv.URL + "/healthz")
		}, 200},
		{"compose ok", func() (*http.Response, error) {
			return http.Post(srv.URL+"/v1/compose", "application/json", setBody(t, testSet()))
		}, 200},
		{"compose bad json", func() (*http.Response, error) {
			return http.Post(srv.URL+"/v1/compose", "application/json", strings.NewReader("{nope"))
		}, 400},
		{"compose no chain", func() (*http.Response, error) {
			set := testSet()
			set.Device.Software.Decoders = []media.Format{media.AudioMP3}
			return http.Post(srv.URL+"/v1/compose", "application/json", setBody(t, set))
		}, 422},
		{"method not allowed", func() (*http.Response, error) {
			return http.Get(srv.URL + "/v1/compose")
		}, 405},
		{"not found", func() (*http.Response, error) {
			return http.Get(srv.URL + "/nope")
		}, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mu.Lock()
			before := bytes.Count(buf.Bytes(), []byte("\n"))
			mu.Unlock()
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			id := resp.Header.Get("X-Trace-Id")
			if id == "" {
				t.Fatal("X-Trace-Id missing")
			}
			mu.Lock()
			lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
			mu.Unlock()
			if got := len(lines) - before; got != 1 {
				t.Fatalf("access log grew by %d lines, want exactly 1", got)
			}
			last := lines[len(lines)-1]
			if !strings.Contains(last, "trace="+id) {
				t.Errorf("log line %q does not carry trace=%s", last, id)
			}
			if !strings.Contains(last, fmt.Sprintf("status=%d", tc.status)) {
				t.Errorf("log line %q does not carry status=%d", last, tc.status)
			}
		})
	}
}

// TestShedAndRateLimitedStillTracedAndLogged layers admission inside
// observability the way adaptd does and asserts a 429 — refused before
// any handler ran — still gets a trace ID and an access-log line.
func TestShedAndRateLimitedStillTracedAndLogged(t *testing.T) {
	reg := metrics.NewRegistry()
	metrics.RegisterWellKnown(reg)
	tracer := trace.NewTracer(16)
	var buf bytes.Buffer
	var mu sync.Mutex
	h := WithAdmission(Handler(), AdmissionConfig{Rate: 1, Burst: 1})
	h = WithObservability(h, ObsConfig{Registry: reg, Tracer: tracer, AccessLog: &lockedWriter{w: &buf, mu: &mu}})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func() *http.Response {
		resp, err := http.Get(srv.URL + "/v1/formats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d", resp.StatusCode)
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket = %d, want 429", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("429 response must still carry X-Trace-Id")
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "status=429") || !strings.Contains(logged, "trace="+id) {
		t.Errorf("access log %q missing the shed request", logged)
	}
	if _, ok := tracer.Get(id); !ok {
		t.Error("shed request's trace should be retained")
	}
	// The 429 counts into http.requests{code="429"}.
	var out bytes.Buffer
	reg.WritePrometheus(&out)
	if !strings.Contains(out.String(), `http_requests{code="429"} 1`) {
		t.Errorf("/metrics missing http_requests{code=\"429\"}:\n%s", out.String())
	}
}

// TestServerErrorTracedAndLogged wraps a failing inner handler and
// checks the 500 path: X-Trace-Id set, one log line, code label
// recorded.
func TestServerErrorTracedAndLogged(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.NewTracer(4)
	var buf bytes.Buffer
	var mu sync.Mutex
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	h := WithObservability(inner, ObsConfig{Registry: reg, Tracer: tracer, AccessLog: &lockedWriter{w: &buf, mu: &mu}})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/compose")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("500 response must still carry X-Trace-Id")
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if n := strings.Count(logged, "\n"); n != 1 {
		t.Errorf("access log has %d lines, want 1:\n%s", n, logged)
	}
	if !strings.Contains(logged, "status=500") {
		t.Errorf("access log %q missing status=500", logged)
	}
	var out bytes.Buffer
	reg.WritePrometheus(&out)
	if !strings.Contains(out.String(), `http_requests{code="500"} 1`) {
		t.Errorf("/metrics missing http_requests{code=\"500\"}:\n%s", out.String())
	}
}

// TestComposeTraceRetrievable completes the trace loop: a compose
// request's X-Trace-Id resolves on GET /debug/traces?id= to a trace
// containing the graph-build and selection spans.
func TestComposeTraceRetrievable(t *testing.T) {
	srv, _, _, _, _ := obsServer(t)
	resp, err := http.Post(srv.URL+"/v1/compose", "application/json", setBody(t, testSet()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id on compose response")
	}

	dresp, err := http.Get(srv.URL + "/debug/traces?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?id= status = %d", dresp.StatusCode)
	}
	var snap trace.TraceSnapshot
	if err := json.NewDecoder(dresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != id {
		t.Fatalf("trace id = %q, want %q", snap.ID, id)
	}
	want := map[string]bool{"graph.build": false, "core.select": false}
	for _, sp := range snap.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace %s missing span %q (have %d spans)", id, name, len(snap.Spans))
		}
	}
}

// TestMetricsNameCoverage pins the acceptance list: a fresh registry
// with RegisterWellKnown already exposes every failover.*, admission.*,
// journal.* series plus the new compose.* and trace.* families.
func TestMetricsNameCoverage(t *testing.T) {
	srv, _, _, _, _ := obsServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, name := range []string{
		metrics.CounterFailovers, metrics.CounterRetries, metrics.CounterRecovered,
		metrics.CounterDegraded, metrics.CounterQuarantined,
		metrics.CounterAdmissionAdmitted, metrics.CounterAdmissionQueued,
		metrics.CounterAdmissionShedQueueFull, metrics.CounterAdmissionShedExpired,
		metrics.CounterAdmissionRateLimited,
		metrics.CounterJournalAppends, metrics.CounterJournalSyncs,
		metrics.CounterJournalSnapshots, metrics.CounterJournalReplayed,
		metrics.CounterHTTPRequests, metrics.CounterTracesCompleted,
		metrics.CounterTraceSpansDropped,
		metrics.HistComposeLatencyMs, metrics.HistHTTPLatencyMs,
		metrics.HistSelectRounds, metrics.HistQueueWaitMs,
		metrics.HistJournalAppendMs, metrics.HistJournalFsyncMs,
	} {
		prom := strings.ReplaceAll(name, ".", "_")
		if !strings.Contains(text, prom) {
			t.Errorf("/metrics missing %s (as %s)", name, prom)
		}
	}
}

// TestComposeOutcomeLabels checks compose.latency_ms aggregates by
// outcome: one ok and one no_chain request produce distinct labeled
// series.
func TestComposeOutcomeLabels(t *testing.T) {
	srv, reg, _, _, _ := obsServer(t)
	post := func(body *bytes.Buffer) {
		resp, err := http.Post(srv.URL+"/v1/compose", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	post(setBody(t, testSet()))
	set := testSet()
	set.Device.Software.Decoders = []media.Format{media.AudioMP3}
	post(setBody(t, set))

	var out bytes.Buffer
	reg.WritePrometheus(&out)
	text := out.String()
	for _, want := range []string{
		`compose_latency_ms_count{outcome="ok"} 1`,
		`compose_latency_ms_count{outcome="no_chain"} 1`,
		`compose_select_rounds_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsAndTracesBypassAdmission pins the layering contract: the
// introspection endpoints answer even when admission refuses all work.
func TestMetricsAndTracesBypassAdmission(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.NewTracer(4)
	h := WithAdmission(Handler(), AdmissionConfig{Rate: 1, Burst: 1})
	h = WithObservability(h, ObsConfig{Registry: reg, Tracer: tracer})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Drain the bucket so the API itself refuses.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/formats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for _, path := range []string{"/metrics", "/debug/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d while rate limited, want 200", path, resp.StatusCode)
		}
	}
}
