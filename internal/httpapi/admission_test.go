package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qoschain/internal/admission"
)

// --- MaxBytesReader / 413 regression ---

func postOversize(t *testing.T, srv *httptest.Server, path string) *http.Response {
	t.Helper()
	// One byte past the 4 MiB body cap, wrapped in syntactically valid
	// JSON so only the size can be the reason for rejection.
	huge := `{"pad":"` + strings.Repeat("x", maxBody+1) + `"}`
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestOversizeBodyReturns413(t *testing.T) {
	srv := server(t)
	for _, path := range []string{"/v1/compose", "/v1/composeBatch", "/v1/graph", "/v1/sessions"} {
		resp := postOversize(t, srv, path)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversize status = %d, want 413", path, resp.StatusCode)
			continue
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Errorf("%s 413 body is not JSON: %v", path, err)
			continue
		}
		if body["error"] == "" {
			t.Errorf("%s 413 body missing error field", path)
		}
	}
}

func TestUndersizeBodyStill400OnBadJSON(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/compose", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", resp.StatusCode)
	}
}

// --- WithAdmission middleware ---

func TestWithAdmissionZeroConfigIsPassthrough(t *testing.T) {
	h := http.NewServeMux()
	if got := WithAdmission(h, AdmissionConfig{}); got != http.Handler(h) {
		t.Error("zero config must return the handler unchanged")
	}
}

func TestRateLimit429WithRetryAfter(t *testing.T) {
	clock := admission.NewVirtualClock(time.Time{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := WithAdmission(inner, AdmissionConfig{Rate: 1, Burst: 1, Clock: clock})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(key string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/formats", nil)
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d", resp.StatusCode)
	}
	resp := get("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Errorf("429 body = %v (%v)", body, err)
	}
	// A different API key has its own bucket.
	if resp := get("bob"); resp.StatusCode != http.StatusOK {
		t.Errorf("unrelated client = %d, want 200", resp.StatusCode)
	}
	// The virtual clock refills the bucket deterministically.
	clock.Advance(time.Second)
	if resp := get("alice"); resp.StatusCode != http.StatusOK {
		t.Errorf("after refill = %d, want 200", resp.StatusCode)
	}
}

func TestSaturatedLimiterSheds503(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
	h := WithAdmission(inner, AdmissionConfig{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 3 * time.Second})
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/formats")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the slot is held

	resp, err := http.Get(srv.URL + "/v1/formats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("overloaded")) {
		t.Errorf("503 body = %s", body)
	}
	close(release)
	wg.Wait()
}

func TestQueuedRequestAdmittedAfterRelease(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 2)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h := WithAdmission(inner, AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	srv := httptest.NewServer(h)
	defer srv.Close()

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/v1/formats")
			if err != nil {
				results <- -1
				return
			}
			defer resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	<-entered      // first holds the slot; second queues
	close(release) // finishing the first promotes the second
	<-entered      // the queued request runs
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("request %d status = %d, want 200 for both", i, code)
		}
	}
}

func TestHealthzBypassesAdmission(t *testing.T) {
	h := WithAdmission(Handler(), AdmissionConfig{Rate: 1, Burst: 1})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz request %d = %d; liveness must bypass every guard", i, resp.StatusCode)
		}
	}
}

func TestRequestTimeoutReachesHandlerContext(t *testing.T) {
	sawDeadline := make(chan bool, 1)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		sawDeadline <- ok
	})
	h := WithAdmission(inner, AdmissionConfig{RequestTimeout: time.Second})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !<-sawDeadline {
		t.Error("RequestTimeout must put a deadline on the handler's context")
	}
}

func TestClientKeyExtraction(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := ClientKey(r); got != "addr:10.1.2.3" {
		t.Errorf("addr key = %q", got)
	}
	r.Header.Set("X-API-Key", "k123")
	if got := ClientKey(r); got != "key:k123" {
		t.Errorf("api-key key = %q", got)
	}
}

// TestAdmissionNoGoroutineLeaks drives a saturating burst through the
// middleware and verifies everything drains.
func TestAdmissionNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(time.Millisecond)
		})
		h := WithAdmission(inner, AdmissionConfig{
			MaxInFlight:    2,
			MaxQueue:       2,
			RequestTimeout: 100 * time.Millisecond,
			Rate:           10000,
		})
		srv := httptest.NewServer(h)
		defer srv.Close()
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Get(srv.URL + "/x")
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()
	}()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
