package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"qoschain/internal/session"
)

// stormServer is the adaptd -storm-attach wiring: the session backend
// is a storm-attached manager and /healthz carries its controller's
// status.
func stormServer(t *testing.T) *httptest.Server {
	t.Helper()
	m, err := session.NewManager(session.ManagerConfig{Storm: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HandlerWithOptions(Options{
		Sessions: m,
		Storm:    m.StormController(),
	}))
	t.Cleanup(func() { srv.Close(); m.Close() })
	return srv
}

// TestStormAttachedSessionsOverHTTP drives the storm-attached daemon
// surface end to end: two identical creates share one equivalence
// class, /healthz reports it, and a fault + reevaluate round-trip
// stays storm-planned.
func TestStormAttachedSessionsOverHTTP(t *testing.T) {
	srv := stormServer(t)

	a := createSession(t, srv.URL, failoverSet())
	b := createSession(t, srv.URL, failoverSet())
	if a.ID == b.ID {
		t.Fatalf("duplicate session IDs %q", a.ID)
	}
	if len(a.Path) == 0 || len(b.Path) == 0 {
		t.Fatalf("storm-attached creates got no chain: %v / %v", a.Path, b.Path)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Storm *struct {
			Classes  int `json:"classes"`
			Sessions int `json:"sessions"`
		} `json:"storm"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Storm == nil {
		t.Fatal("/healthz has no storm section with a storm-attached backend")
	}
	if health.Storm.Classes != 1 || health.Storm.Sessions != 2 {
		t.Errorf("storm status = %d classes / %d sessions, want 1 / 2 (identical creates share a class)",
			health.Storm.Classes, health.Storm.Sessions)
	}

	base := srv.URL + "/v1/sessions/" + a.ID
	if code, _ := postJSON(t, base+"/fault", map[string]string{"kind": "linkdown", "from": "p1", "to": "d"}); code.StatusCode != http.StatusOK {
		t.Fatalf("fault status = %d", code.StatusCode)
	}
	for _, id := range []string{a.ID, b.ID} {
		r, err := http.Get(srv.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st sessionJSON
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		for i := 0; i+1 < len(st.Path); i++ {
			if st.Path[i] == "p1" && st.Path[i+1] == "d" {
				t.Errorf("session %s still routes p1->d after the storm: %v", id, st.Path)
			}
		}
	}
	if code, st := postJSON(t, base+"/reevaluate?reason=manual", nil); code.StatusCode != http.StatusOK {
		t.Fatalf("reevaluate status = %d (%s)", code.StatusCode, st.Error)
	}
}
