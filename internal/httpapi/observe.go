package httpapi

// observe.go is the API's observability layer: one middleware that gives
// every request a trace (X-Trace-Id on every response, including 4xx/5xx
// and admission sheds), records the http.*/compose.* metrics, emits one
// structured access-log line per request, and serves the introspection
// endpoints:
//
//	GET /metrics       Prometheus text exposition of the registry
//	GET /debug/traces  last-N completed traces as JSON (?id= for one)
//
// WithObservability must be the outermost layer — outside WithAdmission —
// so a shed request is still traced and logged, and so /metrics and
// /debug/traces answer even while the API is refusing work.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"qoschain/internal/metrics"
	"qoschain/internal/trace"
)

// ObsConfig wires the observability layer. Any nil field disables that
// aspect; a fully zero config returns the handler unchanged.
type ObsConfig struct {
	// Registry receives http.requests/http.latency_ms/compose.latency_ms
	// and the trace.* counters, and is served on GET /metrics.
	Registry *metrics.Registry
	// Tracer starts one trace per request (propagated via the request
	// context) and is served on GET /debug/traces.
	Tracer *trace.Tracer
	// AccessLog receives one line per request:
	//   ts=<RFC3339> method=<M> path=<P> status=<S> bytes=<N> dur_ms=<D> trace=<ID>
	// Writes are serialized, so a plain bytes.Buffer or os.Stderr works.
	AccessLog io.Writer
	// Now injects time for tests; default time.Now.
	Now func() time.Time
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// composeOutcome maps a compose endpoint's status code to the outcome
// label of compose.latency_ms.
func composeOutcome(status int) string {
	switch {
	case status == http.StatusOK:
		return "ok"
	case status == http.StatusUnprocessableEntity:
		return "no_chain"
	case status == http.StatusTooManyRequests:
		return "rate_limited"
	case status == http.StatusServiceUnavailable:
		return "shed"
	case status >= 500:
		return "error"
	default:
		return "client_error"
	}
}

// isComposePath reports whether a request path is a composition endpoint
// (the ones compose.latency_ms aggregates over).
func isComposePath(p string) bool {
	return p == "/v1/compose" || p == "/v1/composeBatch" || strings.HasPrefix(p, "/v1/compose/")
}

// WithObservability wraps a handler with tracing, metrics and access
// logging, and serves /metrics and /debug/traces itself (before the
// inner handler, so they bypass admission control when layered outside
// WithAdmission). A zero config returns h unchanged.
func WithObservability(h http.Handler, cfg ObsConfig) http.Handler {
	if cfg.Registry == nil && cfg.Tracer == nil && cfg.AccessLog == nil {
		return h
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	var logMu sync.Mutex  // serializes access-log writes
	var lastDropped int64 // last observed tracer drop total (under logMu)
	var metricsH, tracesH http.Handler
	if cfg.Registry != nil {
		metricsH = cfg.Registry.Handler()
	}
	if cfg.Tracer != nil {
		tracesH = cfg.Tracer.Handler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := now()
		var tr *trace.Trace
		if cfg.Tracer != nil {
			// Adopt an inbound trace ID so the hops of one request —
			// router proxy, WAL ship, promote — record under the same ID
			// on every node; StartWith mints a fresh ID otherwise.
			tr = cfg.Tracer.StartWith(r.Method+" "+r.URL.Path,
				r.Header.Get(trace.HeaderTraceID))
			tr.SetParent(r.Header.Get(trace.HeaderSpanParent))
			w.Header().Set(trace.HeaderTraceID, tr.ID())
			r = r.WithContext(trace.NewContext(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w}
		switch {
		case metricsH != nil && r.URL.Path == "/metrics":
			metricsH.ServeHTTP(sw, r)
		case tracesH != nil && r.URL.Path == "/debug/traces":
			tracesH.ServeHTTP(sw, r)
		default:
			h.ServeHTTP(sw, r)
		}
		if sw.status == 0 {
			// Handler wrote nothing; net/http will send 200 on return.
			sw.status = http.StatusOK
		}
		dur := now().Sub(start)
		tr.Finish()

		if reg := cfg.Registry; reg != nil {
			code := strconv.Itoa(sw.status)
			reg.Inc(metrics.CounterHTTPRequests, metrics.L("code", code))
			reg.Observe(metrics.HistHTTPLatencyMs, float64(dur)/float64(time.Millisecond),
				metrics.L("code", code))
			if isComposePath(r.URL.Path) {
				reg.Observe(metrics.HistComposeLatencyMs, float64(dur)/float64(time.Millisecond),
					metrics.L("outcome", composeOutcome(sw.status)))
			}
			if cfg.Tracer != nil {
				reg.Inc(metrics.CounterTracesCompleted)
			}
		}

		if cfg.AccessLog != nil || (cfg.Registry != nil && cfg.Tracer != nil) {
			logMu.Lock()
			if cfg.Registry != nil && cfg.Tracer != nil {
				// trace.spans_dropped is a monotonic counter fed by the
				// tracer's running total; record the delta since the last
				// request under the same lock that orders requests here.
				if d := cfg.Tracer.DroppedSpans(); d > lastDropped {
					cfg.Registry.Add(metrics.CounterTraceSpansDropped, d-lastDropped)
					lastDropped = d
				}
			}
			if cfg.AccessLog != nil {
				id := ""
				if tr != nil {
					id = tr.ID()
				}
				fmt.Fprintf(cfg.AccessLog, "ts=%s method=%s path=%s status=%d bytes=%d dur_ms=%.3f trace=%s\n",
					start.UTC().Format(time.RFC3339Nano), r.Method, r.URL.Path,
					sw.status, sw.bytes, float64(dur)/float64(time.Millisecond), id)
			}
			logMu.Unlock()
		}
	})
}
