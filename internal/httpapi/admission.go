package httpapi

// admission.go wires internal/admission in front of the API: per-client
// token-bucket rate limiting (429 + Retry-After), a deadline-aware
// concurrency limiter with a bounded FIFO queue (503 + Retry-After when
// shed), and a per-request deadline propagated through the request
// context into the planner (qoschain.ComposeCtx observes it per
// selection round). /healthz bypasses every guard — liveness must
// answer precisely when the system is refusing work.

import (
	"context"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"qoschain/internal/admission"
	"qoschain/internal/metrics"
	"qoschain/internal/trace"
)

// AdmissionConfig tunes the API's overload protection. The zero value
// disables every guard (WithAdmission then returns the handler
// unchanged), so embedding stays opt-in.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently served requests; 0 disables the
	// concurrency limiter.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for a slot (default
	// 4×MaxInFlight; -1 for no queue).
	MaxQueue int
	// RequestTimeout is the per-request deadline propagated via the
	// request context — it bounds queue waiting AND planning. 0 leaves
	// requests unbounded.
	RequestTimeout time.Duration
	// Rate/Burst set the per-client token bucket (requests per second
	// and depth); Rate 0 disables rate limiting.
	Rate, Burst float64
	// RetryAfter is the hint attached to 503 responses. Default 1s.
	RetryAfter time.Duration
	// ClientKey extracts the rate-limit key from a request; the
	// default uses the X-API-Key header when present, else the remote
	// address host.
	ClientKey func(*http.Request) string
	// Clock injects time for tests; default wall clock.
	Clock admission.Clock
	// Metrics receives admission.* counters; nil is a no-op sink.
	Metrics *metrics.Counters
}

func (c *AdmissionConfig) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

func (c *AdmissionConfig) maxQueue() int {
	if c.MaxQueue != 0 {
		return c.MaxQueue
	}
	return 4 * c.MaxInFlight
}

// ClientKey returns the admission identity of a request: the X-API-Key
// header when present, else the remote address host. Exposed so tests
// and alternative stacks key their buckets the same way.
func ClientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// WithAdmission layers overload protection in front of a handler:
// rate limit first (cheapest check, 429), then the concurrency limiter
// (queue or 503), then the per-request deadline on the context the
// inner handler sees. A zero config returns h unchanged.
func WithAdmission(h http.Handler, cfg AdmissionConfig) http.Handler {
	var lim *admission.Limiter
	if cfg.MaxInFlight > 0 {
		lim = admission.NewLimiter(admission.LimiterConfig{
			Capacity: cfg.MaxInFlight,
			MaxQueue: cfg.maxQueue(),
			Clock:    cfg.Clock,
			Metrics:  cfg.Metrics,
		})
	}
	var rl *admission.RateLimiter
	if cfg.Rate > 0 {
		rl = admission.NewRateLimiter(admission.RateConfig{
			Rate:    cfg.Rate,
			Burst:   cfg.Burst,
			Clock:   cfg.Clock,
			Metrics: cfg.Metrics,
		})
	}
	if lim == nil && rl == nil && cfg.RequestTimeout <= 0 {
		return h
	}
	key := cfg.ClientKey
	if key == nil {
		key = ClientKey
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			h.ServeHTTP(w, r)
			return
		}
		if rl != nil {
			k := key(r)
			if !rl.Allow(k) {
				setRetryAfter(w, rl.RetryAfter(k))
				writeError(w, http.StatusTooManyRequests, admission.ErrRateLimited.Error())
				return
			}
		}
		ctx := r.Context()
		if cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.RequestTimeout)
			defer cancel()
		}
		if lim != nil {
			sp := trace.FromContext(ctx).StartSpan("admission.acquire")
			release, err := lim.Acquire(ctx)
			if err != nil {
				sp.End(trace.Str("outcome", "shed"))
				setRetryAfter(w, cfg.retryAfter())
				writeError(w, http.StatusServiceUnavailable, err.Error())
				return
			}
			sp.End(trace.Str("outcome", "admitted"))
			defer release()
		}
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// setRetryAfter writes the Retry-After header in whole seconds,
// rounding up so clients never retry early (minimum 1).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
