package httpapi

import (
	"errors"
	"net/http"

	"qoschain"
	"qoschain/internal/core"
	"qoschain/internal/profile"
	"qoschain/internal/store"
)

// HandlerWithStore returns the base API plus store-backed endpoints:
//
//	GET  /v1/profiles                 list stored profile IDs per kind
//	POST /v1/compose/byref            compose from stored profiles:
//	                                  ?user=<name>&content=<id>&device=<id>
//	                                  (same trace/prune/contact parameters
//	                                  as /v1/compose)
func HandlerWithStore(st *store.Store) http.Handler {
	return HandlerWithOptions(Options{Store: st})
}

// registerStore wires the store-backed routes into a mux.
func registerStore(mux *http.ServeMux, st *store.Store) {
	mux.HandleFunc("/v1/profiles", func(w http.ResponseWriter, r *http.Request) {
		handleProfiles(st, w, r)
	})
	mux.HandleFunc("/v1/compose/byref", func(w http.ResponseWriter, r *http.Request) {
		handleComposeByRef(st, w, r)
	})
}

func handleProfiles(st *store.Store, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	users, err := st.Users()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	devices, err := st.Devices()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	contents, err := st.Contents()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	intermediaries, err := st.Intermediaries()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{
		"users":          users,
		"devices":        devices,
		"contents":       contents,
		"intermediaries": intermediaries,
	})
}

func handleComposeByRef(st *store.Store, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	q := r.URL.Query()
	user, content, device := q.Get("user"), q.Get("content"), q.Get("device")
	if user == "" || content == "" || device == "" {
		writeError(w, http.StatusBadRequest, "user, content and device query parameters are required")
		return
	}
	set, err := st.Assemble(user, content, device)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	comp, err := qoschain.ComposeCtx(r.Context(), set, qoschain.Options{
		Trace:   q.Get("trace") == "1",
		Prune:   q.Get("prune") == "1",
		Contact: profile.ContactClass(q.Get("contact")),
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrNoChain) {
			status = http.StatusUnprocessableEntity
		} else if errors.Is(err, core.ErrAborted) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	res := comp.Result
	resp := composeResponse{
		Path:         nodeStrings(res.Path),
		Formats:      formatStrings(res.Formats),
		Params:       paramMap(res.Params),
		Satisfaction: res.Satisfaction,
		Cost:         res.Cost,
		Explain:      comp.Explain(),
	}
	for _, round := range res.Rounds {
		resp.Rounds = append(resp.Rounds, roundResponse{
			Number:       round.Number,
			Considered:   nodeStrings(round.Considered),
			Candidates:   nodeStrings(round.Candidates),
			Selected:     string(round.Selected),
			Path:         nodeStrings(round.Path),
			Satisfaction: round.Satisfaction,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
