// Package httpapi exposes the composition framework over HTTP — the
// programmatic surface a deployment would put in front of the selection
// algorithm so that content servers and proxies can request chains
// without linking the library.
//
// Endpoints:
//
//	GET  /healthz            liveness probe
//	GET  /v1/formats         the well-known media formats
//	POST /v1/compose         profile.Set JSON -> composed chain JSON
//	POST /v1/composeBatch    {set, users[]} JSON -> one chain per user
//	POST /v1/graph           profile.Set JSON -> adaptation graph (DOT)
//	POST /v1/sessions        profile.Set JSON -> live failover session
//	GET  /v1/sessions[/{id}] session failover status (see sessions.go)
//	GET  /debug/storms       storm flight recorder (when a controller is wired)
//
// /v1/compose query parameters: trace=1 (include the per-round trace),
// prune=1 (prune the graph first), contact=<class> (per-contact
// preferences). /v1/composeBatch accepts the same parameters and plans
// every user of the request against one shared adaptation graph
// (core.SelectBatch) served from a per-handler graph cache.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"qoschain"
	"qoschain/internal/core"
	"qoschain/internal/graph"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/session"
	"qoschain/internal/store"
	"qoschain/internal/storm"
)

// maxBody bounds request bodies (profile sets are small).
const maxBody = 4 << 20

// SessionBackend is the session store the API serves. A standalone
// daemon passes its *session.Manager; a cluster replica passes its
// cluster node, which fronts the local primary manager plus any
// promoted replicas — the HTTP veneer cannot tell the difference.
type SessionBackend interface {
	CreateCtx(ctx context.Context, spec session.CreateSpec) (*session.Managed, error)
	Get(id string) (*session.Managed, bool)
	List() []*session.Managed
	Delete(id string) (bool, error)
	Persistent() bool
	Recovery() *session.RecoveryReport
	LastSeq() uint64
}

// ReplicationStatus is the replication half of /healthz — what a load
// balancer gates on before routing sessions to a node.
type ReplicationStatus struct {
	// Role is "primary" (accepts creates; a cluster node), "solo"
	// (durable but unreplicated), or "memory" (no journal at all).
	Role string `json:"role"`
	// NodeID is the cluster node name (empty outside a cluster).
	NodeID string `json:"nodeId,omitempty"`
	// AppliedSeq is the applied journal offset of the node's own
	// primary state machine.
	AppliedSeq uint64 `json:"appliedSeq"`
	// Streams lists per-peer replication state: outbound shipping (this
	// node is the peer's primary) and inbound applies (this node
	// follows the peer).
	Streams []ReplicationStream `json:"streams,omitempty"`
}

// ReplicationStream is one peer's replication state.
type ReplicationStream struct {
	// Peer is the remote node ID.
	Peer string `json:"peer"`
	// Direction is "ship" (we stream our WAL to peer) or "apply" (we
	// hold a replica of peer's sessions).
	Direction string `json:"direction"`
	// AckedSeq is the last offset the follower acked (ship direction).
	AckedSeq uint64 `json:"ackedSeq,omitempty"`
	// AppliedSeq is our replica's applied offset (apply direction).
	AppliedSeq uint64 `json:"appliedSeq,omitempty"`
	// LagRecords is how many records the follower side is behind.
	LagRecords int64 `json:"lagRecords"`
	// Promoted marks an apply stream whose source died and whose
	// sessions this node adopted.
	Promoted bool `json:"promoted,omitempty"`
}

// ReplicationReporter is implemented by backends that replicate (the
// cluster node); /healthz includes its status when present.
type ReplicationReporter interface {
	ReplicationStatus() *ReplicationStatus
}

// StormReporter is implemented by the mass re-composition controller
// (internal/storm); when wired, /healthz carries its live status —
// class and session counts, pending changed links, whether a storm is
// executing, and the last storm's report — so operators can gate
// traffic on recovery state, not just liveness.
type StormReporter interface {
	Status() storm.Status
}

// FlightReporter is the flight-recorder half of the storm surface: a
// reporter that can also replay its recent storm timelines gains a
// GET /debug/storms endpoint serving them as JSON. The controller
// implements it; a bare Status() stub does not, and the endpoint is
// simply absent.
type FlightReporter interface {
	Flights() []storm.Flight
}

// Options configures the API handler.
type Options struct {
	// Sessions, when set, backs /v1/sessions with an existing (possibly
	// persistent) session manager or a cluster node. Nil uses a fresh
	// in-memory manager.
	Sessions SessionBackend
	// Store, when set, additionally serves /v1/profiles and
	// /v1/compose/byref from the profile store.
	Store *store.Store
	// Metrics, when set, receives planner-level observations the
	// observability middleware cannot see (compose.select_rounds). The
	// request-level http.*/compose.latency_ms series are recorded by
	// WithObservability instead. Nil is a valid no-op sink.
	Metrics *metrics.Registry
	// Storm, when set, adds the storm controller's status to /healthz.
	Storm StormReporter
}

// Handler returns the API's http.Handler over in-memory session state.
// Batch compositions share one graph cache for the handler's lifetime.
func Handler() http.Handler {
	return HandlerWithOptions(Options{})
}

// HandlerWithOptions returns the API's http.Handler. With a persistent
// session manager, /healthz reports the startup recovery (sessions
// rebuilt, journal records replayed, torn bytes truncated, reconcile
// outcome).
func HandlerWithOptions(opts Options) http.Handler {
	mux := http.NewServeMux()
	cache := graph.NewCache(0)
	sessions := opts.Sessions
	if sessions == nil {
		// In-memory never errors. Wire the registry through so failover.*
		// counters (entered, recovered, reevaluate.<reason>, ...) reach
		// /metrics even without a caller-supplied manager.
		m, _ := session.NewManager(session.ManagerConfig{
			Counters: metrics.CountersOn(opts.Metrics),
		})
		sessions = m
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		handleHealth(w, r, sessions, opts.Storm)
	})
	if fr, ok := opts.Storm.(FlightReporter); ok {
		mux.HandleFunc("/debug/storms", func(w http.ResponseWriter, r *http.Request) {
			handleStorms(w, r, fr)
		})
	}
	mux.HandleFunc("/v1/formats", handleFormats)
	mux.HandleFunc("/v1/compose", func(w http.ResponseWriter, r *http.Request) {
		handleCompose(w, r, opts.Metrics)
	})
	mux.HandleFunc("/v1/composeBatch", func(w http.ResponseWriter, r *http.Request) {
		handleComposeBatch(w, r, cache, opts.Metrics)
	})
	mux.HandleFunc("/v1/graph", handleGraph)
	NewSessionManagerWith(sessions).register(mux)
	if opts.Store != nil {
		registerStore(mux, opts.Store)
	}
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request, sessions SessionBackend, storms StormReporter) {
	resp := map[string]interface{}{"status": "ok"}
	if storms != nil {
		resp["storm"] = storms.Status()
	}
	if sessions != nil && sessions.Persistent() {
		resp["durable"] = true
		resp["recovery"] = sessions.Recovery()
	}
	// Replication role, applied offset and lag, so load balancers can
	// gate on a node's replication state, not just liveness.
	switch {
	case sessions == nil:
	case sessions.Persistent():
		rs := &ReplicationStatus{Role: "solo", AppliedSeq: sessions.LastSeq()}
		if rr, ok := sessions.(ReplicationReporter); ok {
			rs = rr.ReplicationStatus()
		}
		resp["replication"] = rs
	default:
		resp["replication"] = &ReplicationStatus{Role: "memory"}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStorms serves the storm flight recorder: the retained storm
// timelines, newest first, each with its begin/class/end events and
// per-class latencies. A storm resumed after a primary kill appears as
// ONE flight whose replayed prefix came off the WAL and whose live
// suffix was planned post-promotion.
func handleStorms(w http.ResponseWriter, r *http.Request, fr FlightReporter) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	flights := fr.Flights()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"storms":   flights,
		"retained": len(flights),
	})
}

func handleFormats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	formats := media.WellKnown()
	out := make([]string, len(formats))
	for i, f := range formats {
		out[i] = f.String()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"formats": out})
}

// composeResponse is the JSON shape of a composed chain.
type composeResponse struct {
	Path         []string           `json:"path"`
	Formats      []string           `json:"formats"`
	Params       map[string]float64 `json:"params"`
	Satisfaction float64            `json:"satisfaction"`
	Cost         float64            `json:"cost"`
	Explain      map[string]float64 `json:"explain"`
	Rounds       []roundResponse    `json:"rounds,omitempty"`
}

type roundResponse struct {
	Number       int      `json:"number"`
	Considered   []string `json:"considered"`
	Candidates   []string `json:"candidates"`
	Selected     string   `json:"selected"`
	Path         []string `json:"path"`
	Satisfaction float64  `json:"satisfaction"`
}

func handleCompose(w http.ResponseWriter, r *http.Request, reg *metrics.Registry) {
	comp, status, err := composeFromRequest(w, r)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	res := comp.Result
	reg.Observe(metrics.HistSelectRounds, float64(res.Expanded))
	resp := composeResponse{
		Path:         nodeStrings(res.Path),
		Formats:      formatStrings(res.Formats),
		Params:       paramMap(res.Params),
		Satisfaction: res.Satisfaction,
		Cost:         res.Cost,
		Explain:      comp.Explain(),
	}
	for _, round := range res.Rounds {
		resp.Rounds = append(resp.Rounds, roundResponse{
			Number:       round.Number,
			Considered:   nodeStrings(round.Considered),
			Candidates:   nodeStrings(round.Candidates),
			Selected:     string(round.Selected),
			Path:         nodeStrings(round.Path),
			Satisfaction: round.Satisfaction,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest is the JSON body of /v1/composeBatch: the shared profile
// set plus the user profiles to plan. An empty users list plans the
// set's own user.
type batchRequest struct {
	Set   *profile.Set   `json:"set"`
	Users []profile.User `json:"users"`
}

// batchEntryResponse is one user's outcome in a batch response.
type batchEntryResponse struct {
	User         string             `json:"user"`
	Error        string             `json:"error,omitempty"`
	Path         []string           `json:"path,omitempty"`
	Formats      []string           `json:"formats,omitempty"`
	Params       map[string]float64 `json:"params,omitempty"`
	Satisfaction float64            `json:"satisfaction"`
	Cost         float64            `json:"cost"`
}

func handleComposeBatch(w http.ResponseWriter, r *http.Request, cache *graph.Cache, reg *metrics.Registry) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	defer r.Body.Close()
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), err.Error())
		return
	}
	if req.Set == nil {
		writeError(w, http.StatusBadRequest, "missing set")
		return
	}
	q := r.URL.Query()
	opts := qoschain.Options{
		Trace:   q.Get("trace") == "1",
		Prune:   q.Get("prune") == "1",
		Contact: profile.ContactClass(q.Get("contact")),
		Cache:   cache,
	}
	users := req.Users
	if len(users) == 0 {
		users = []profile.User{req.Set.User}
	}
	results, _, err := qoschain.ComposeBatchCtx(r.Context(), req.Set, users, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	entries := make([]batchEntryResponse, len(results))
	for i, br := range results {
		entry := batchEntryResponse{User: users[i].Name}
		if br.Err != nil {
			entry.Error = br.Err.Error()
		} else {
			reg.Observe(metrics.HistSelectRounds, float64(br.Result.Expanded))
			entry.Path = nodeStrings(br.Result.Path)
			entry.Formats = formatStrings(br.Result.Formats)
			entry.Params = paramMap(br.Result.Params)
			entry.Satisfaction = br.Result.Satisfaction
			entry.Cost = br.Result.Cost
		}
		entries[i] = entry
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"results": entries})
}

func handleGraph(w http.ResponseWriter, r *http.Request) {
	comp, status, err := composeFromRequest(w, r)
	if err != nil && comp == nil {
		writeError(w, status, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	if err := comp.Graph.WriteDOT(w, "adaptation"); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

// composeFromRequest parses the body and runs the composition under
// the request's context (deadline propagation). A no-chain failure
// still returns the composition (for /v1/graph) along with the error.
// The body reader is bound to the real ResponseWriter so oversize
// requests surface as a clean 413 instead of a connection reset.
func composeFromRequest(w http.ResponseWriter, r *http.Request) (*qoschain.Composition, int, error) {
	if r.Method != http.MethodPost {
		return nil, http.StatusMethodNotAllowed, errors.New("POST only")
	}
	defer r.Body.Close()
	set, err := profile.DecodeSet(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, bodyErrorStatus(err), err
	}
	q := r.URL.Query()
	opts := qoschain.Options{
		Trace:   q.Get("trace") == "1",
		Prune:   q.Get("prune") == "1",
		Contact: profile.ContactClass(q.Get("contact")),
	}
	comp, err := qoschain.ComposeCtx(r.Context(), set, opts)
	if err != nil {
		if comp != nil && errors.Is(err, core.ErrNoChain) {
			return comp, http.StatusUnprocessableEntity, fmt.Errorf("no adaptation chain: %w", err)
		}
		if errors.Is(err, core.ErrAborted) {
			return nil, http.StatusServiceUnavailable, err
		}
		return nil, http.StatusBadRequest, err
	}
	return comp, http.StatusOK, nil
}

// bodyErrorStatus maps a request-body decode failure to its status:
// 413 when http.MaxBytesReader cut the body off, 400 otherwise.
func bodyErrorStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func nodeStrings(ids []graph.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func formatStrings(fs []media.Format) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func paramMap(p media.Params) map[string]float64 {
	out := make(map[string]float64, len(p))
	for k, v := range p {
		out[string(k)] = v
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": strings.TrimSpace(msg)})
}
