package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
)

func testSet() *profile.Set {
	return &profile.Set{
		User: profile.User{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		},
		Content: profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: profile.Device{ID: "d", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263},
		}},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "p1", BandwidthKbps: 2400},
			{From: "p1", To: "d", BandwidthKbps: 1800},
		}},
		Intermediaries: []profile.Intermediary{{
			Host: "p1", CPUMips: 1000, MemoryMB: 256,
			Services: []*service.Service{
				service.FormatConverter("conv1", media.VideoMPEG1, media.VideoH263),
			},
		}},
	}
}

func setBody(t *testing.T, set *profile.Set) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := set.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func server(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := server(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestFormats(t *testing.T) {
	srv := server(t)
	resp, err := http.Get(srv.URL + "/v1/formats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Formats []string `json:"formats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Formats) == 0 {
		t.Fatal("formats list should not be empty")
	}
	found := false
	for _, f := range body.Formats {
		if f == "video/mpeg1" {
			found = true
		}
	}
	if !found {
		t.Error("video/mpeg1 should be listed")
	}
}

func TestFormatsMethodNotAllowed(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/formats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestComposeEndpoint(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/compose?trace=1", "application/json", setBody(t, testSet()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body composeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Path) != 3 || body.Path[1] != "conv1" {
		t.Errorf("path = %v", body.Path)
	}
	if body.Satisfaction < 0.59 || body.Satisfaction > 0.61 {
		t.Errorf("satisfaction = %v, want ~0.6 (1800 kbps → 18 fps)", body.Satisfaction)
	}
	if fps := body.Params["framerate"]; fps < 17.99 || fps > 18.01 {
		t.Errorf("params = %v", body.Params)
	}
	if len(body.Rounds) == 0 {
		t.Error("trace=1 should include rounds")
	}
	if body.Explain["framerate"] == 0 {
		t.Error("explain should report per-parameter satisfaction")
	}
}

func TestComposeWithoutTraceOmitsRounds(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/compose", "application/json", setBody(t, testSet()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body composeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Rounds) != 0 {
		t.Error("rounds should be omitted without trace=1")
	}
}

func TestComposeBadJSON(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/compose", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestComposeMethodNotAllowed(t *testing.T) {
	srv := server(t)
	resp, err := http.Get(srv.URL + "/v1/compose")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestComposeNoChain(t *testing.T) {
	srv := server(t)
	set := testSet()
	// Device that decodes nothing reachable.
	set.Device.Software.Decoders = []media.Format{media.AudioMP3}
	resp, err := http.Post(srv.URL+"/v1/compose", "application/json", setBody(t, set))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", resp.StatusCode)
	}
}

func TestGraphEndpoint(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/graph", "application/json", setBody(t, testSet()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph", `"sender" -> "conv1"`, "video/mpeg1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestGraphEndpointNoChainStillRendersGraph(t *testing.T) {
	srv := server(t)
	set := testSet()
	set.Device.Software.Decoders = []media.Format{media.AudioMP3}
	resp, err := http.Post(srv.URL+"/v1/graph", "application/json", setBody(t, set))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Error("graph should render even when no chain exists")
	}
}

func TestComposeContactParameter(t *testing.T) {
	srv := server(t)
	set := testSet()
	set.User.ContactPreferences = map[profile.ContactClass]map[media.Param]profile.FuncSpec{
		profile.ContactClient: {media.ParamFrameRate: profile.LinearSpec(15, 30)},
	}
	resp, err := http.Post(srv.URL+"/v1/compose?contact=client", "application/json", setBody(t, set))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body composeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	// 18 fps against Linear{15,30} = 0.2.
	if body.Satisfaction > 0.25 {
		t.Errorf("contact=client should lower satisfaction, got %v", body.Satisfaction)
	}
}

func TestComposeBatchEndpoint(t *testing.T) {
	srv := server(t)
	set := testSet()
	bob := set.User
	bob.Name = "bob"
	bob.Preferences = map[media.Param]profile.FuncSpec{
		media.ParamFrameRate: profile.LinearSpec(0, 15),
	}
	body, err := json.Marshal(map[string]interface{}{
		"set":   set,
		"users": []profile.User{set.User, bob},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/composeBatch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			User         string   `json:"user"`
			Error        string   `json:"error"`
			Path         []string `json:"path"`
			Satisfaction float64  `json:"satisfaction"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(out.Results))
	}
	for i, want := range []string{"alice", "bob"} {
		r := out.Results[i]
		if r.User != want {
			t.Errorf("result %d user = %q, want %q", i, r.User, want)
		}
		if r.Error != "" {
			t.Errorf("result %d error = %q", i, r.Error)
		}
		if len(r.Path) < 2 || r.Satisfaction <= 0 {
			t.Errorf("result %d path=%v sat=%v", i, r.Path, r.Satisfaction)
		}
	}
}

func TestComposeBatchRejectsMissingSet(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/composeBatch", "application/json",
		strings.NewReader(`{"users": []}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
