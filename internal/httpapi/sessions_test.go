package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/profile"
	"qoschain/internal/service"
	"qoschain/internal/session"
)

// failoverSet extends testSet with a second, worse proxy path so a
// session has somewhere to fail over to: sender→p1→d carries 18 fps
// (satisfaction 0.6), sender→p2→d only 9 fps (satisfaction 0.3).
func failoverSet() *profile.Set {
	set := testSet()
	set.Network.Links = append(set.Network.Links,
		profile.Link{From: "sender", To: "p2", BandwidthKbps: 2400},
		profile.Link{From: "p2", To: "d", BandwidthKbps: 900},
	)
	set.Intermediaries = append(set.Intermediaries, profile.Intermediary{
		Host: "p2", CPUMips: 1000, MemoryMB: 256,
		Services: []*service.Service{
			service.FormatConverter("conv2", media.VideoMPEG1, media.VideoH263),
		},
	})
	return set
}

// sessionJSON mirrors the handler's status response for decoding.
type sessionJSON struct {
	ID           string   `json:"id"`
	Path         []string `json:"path"`
	Satisfaction float64  `json:"satisfaction"`
	Step         int      `json:"step"`
	Changed      bool     `json:"changed"`
	Error        string   `json:"error"`
	DownHosts    []string `json:"downHosts"`
	Failover     struct {
		Enabled     bool     `json:"enabled"`
		Degraded    bool     `json:"degraded"`
		Failovers   int      `json:"failovers"`
		Retries     int      `json:"retries"`
		Quarantined []string `json:"quarantined"`
		LastError   string   `json:"lastError"`
	} `json:"failover"`
	History []struct {
		Reason string `json:"reason"`
		To     string `json:"to"`
	} `json:"history"`
	Counters map[string]int64 `json:"counters"`
}

func createSession(t *testing.T, srv string, set *profile.Set) sessionJSON {
	t.Helper()
	resp, err := http.Post(srv+"/v1/sessions", "application/json", setBody(t, set))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var s sessionJSON
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, sessionJSON) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s sessionJSON
	_ = json.NewDecoder(resp.Body).Decode(&s)
	return resp, s
}

func TestSessionCreateAndGet(t *testing.T) {
	srv := server(t)
	s := createSession(t, srv.URL, failoverSet())
	if s.ID == "" {
		t.Fatal("session must get an id")
	}
	if want := []string{"sender", "conv1", "receiver"}; fmt.Sprint(s.Path) != fmt.Sprint(want) {
		t.Errorf("path = %v, want %v", s.Path, want)
	}
	if !s.Failover.Enabled || s.Failover.Degraded {
		t.Errorf("failover = %+v, want enabled and healthy", s.Failover)
	}

	resp, err := http.Get(srv.URL + "/v1/sessions/" + s.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got sessionJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != s.ID || fmt.Sprint(got.Path) != fmt.Sprint(s.Path) {
		t.Errorf("GET = %+v, want %+v", got, s)
	}

	listResp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Sessions []sessionJSON `json:"sessions"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].ID != s.ID {
		t.Errorf("list = %+v", list.Sessions)
	}
}

func TestSessionFailoverRoundTrip(t *testing.T) {
	srv := server(t)
	s := createSession(t, srv.URL, failoverSet())
	base := srv.URL + "/v1/sessions/" + s.ID

	// Kill the active chain's host: the next reevaluation must fail over
	// to the conv2 path and record the event.
	resp, st := postJSON(t, base+"/fault", map[string]string{"kind": "hostcrash", "host": "p1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault status = %d", resp.StatusCode)
	}
	if fmt.Sprint(st.DownHosts) != "[p1]" {
		t.Errorf("downHosts = %v", st.DownHosts)
	}
	resp, st = postJSON(t, base+"/reevaluate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reevaluate status = %d", resp.StatusCode)
	}
	if !st.Changed {
		t.Fatal("host crash must trigger a chain switch")
	}
	if st.Path[1] != "conv2" {
		t.Errorf("path = %v, want failover to conv2", st.Path)
	}
	if st.Failover.Failovers != 1 || st.Failover.Degraded {
		t.Errorf("failover = %+v, want one recovered failover", st.Failover)
	}
	if st.Counters["failover.entered"] != 1 || st.Counters["failover.recovered"] != 1 {
		t.Errorf("counters = %v", st.Counters)
	}
	if n := len(st.History); n == 0 || st.History[n-1].Reason != "failover" {
		t.Errorf("history = %+v, want a failover entry", st.History)
	}

	// Recover the host: the session climbs back to the better chain.
	resp, _ = postJSON(t, base+"/fault", map[string]string{"kind": "hostrecover", "host": "p1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover status = %d", resp.StatusCode)
	}
	resp, st = postJSON(t, base+"/reevaluate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reevaluate status = %d", resp.StatusCode)
	}
	if !st.Changed || st.Path[1] != "conv1" {
		t.Errorf("path = %v (changed=%v), want return to conv1", st.Path, st.Changed)
	}
	if st.Satisfaction < 0.59 {
		t.Errorf("satisfaction = %v, want ~0.6 back", st.Satisfaction)
	}
}

func TestSessionServiceChurnOverAPI(t *testing.T) {
	srv := server(t)
	s := createSession(t, srv.URL, failoverSet())
	base := srv.URL + "/v1/sessions/" + s.ID

	resp, _ := postJSON(t, base+"/fault", map[string]string{"kind": "servicedown", "service": "conv1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault status = %d", resp.StatusCode)
	}
	_, st := postJSON(t, base+"/reevaluate", nil)
	if !st.Changed || st.Path[1] != "conv2" {
		t.Errorf("path = %v, want conv2 after conv1 deregistered", st.Path)
	}
	postJSON(t, base+"/fault", map[string]string{"kind": "serviceup", "service": "conv1"})
	_, st = postJSON(t, base+"/reevaluate", nil)
	if !st.Changed || st.Path[1] != "conv1" {
		t.Errorf("path = %v, want conv1 after re-registration", st.Path)
	}
}

func TestSessionFaultValidation(t *testing.T) {
	srv := server(t)
	s := createSession(t, srv.URL, failoverSet())
	base := srv.URL + "/v1/sessions/" + s.ID

	resp, _ := postJSON(t, base+"/fault", map[string]string{"kind": "meteor"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, base+"/fault", map[string]string{"kind": "hostcrash"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing host status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/sessions/nope/fault", map[string]string{"kind": "hostcrash", "host": "p1"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", resp.StatusCode)
	}
}

func TestReevaluateReasonValidation(t *testing.T) {
	srv := server(t)
	s := createSession(t, srv.URL, failoverSet())
	base := srv.URL + "/v1/sessions/" + s.ID

	resp, st := postJSON(t, base+"/reevaluate?reason=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reason=bogus status = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(st.Error, "unknown reevaluate reason") {
		t.Errorf("reason=bogus error = %q, want mention of unknown reason", st.Error)
	}
	for _, reason := range []string{"", "manual", "fault", "storm"} {
		url := base + "/reevaluate"
		if reason != "" {
			url += "?reason=" + reason
		}
		resp, st := postJSON(t, url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("reason=%q status = %d (error %q), want 200", reason, resp.StatusCode, st.Error)
		}
	}
}

func TestSessionCreateRejectsBadInput(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/sessions?floor=2", "application/json", setBody(t, failoverSet()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad floor status = %d, want 400", resp.StatusCode)
	}
}

func TestSessionDelete(t *testing.T) {
	srv := server(t)
	s := createSession(t, srv.URL, failoverSet())
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+s.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	getResp, err := http.Get(srv.URL + "/v1/sessions/" + s.ID)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete = %d, want 404", getResp.StatusCode)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("double delete = %d, want 404", resp2.StatusCode)
	}
}

// persistentServer serves the API over a durable session manager rooted
// at dir, returning the server and the manager (for Close).
func persistentServer(t *testing.T, dir string) (*httptest.Server, *session.Manager) {
	t.Helper()
	m, err := session.NewManager(session.ManagerConfig{StateDir: dir})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(HandlerWithOptions(Options{Sessions: m}))
	t.Cleanup(srv.Close)
	return srv, m
}

func getSession(t *testing.T, srv, id string) (int, sessionJSON) {
	t.Helper()
	resp, err := http.Get(srv + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s sessionJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, s
}

// TestSessionsSurviveRestart drives the full durability path over HTTP:
// sessions created and mutated against one server instance are rebuilt
// by the next instance over the same state directory, deletions
// included, and /healthz reports the recovery.
func TestSessionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, m1 := persistentServer(t, dir)

	created := createSession(t, srv1.URL, failoverSet())
	doomed := createSession(t, srv1.URL, testSet())
	resp, _ := postJSON(t, srv1.URL+"/v1/sessions/"+created.ID+"/fault",
		map[string]string{"kind": "hostcrash", "host": "p1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv1.URL+"/v1/sessions/"+created.ID+"/reevaluate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reevaluate status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv1.URL+"/v1/sessions/"+doomed.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v status=%v", err, resp.StatusCode)
	}
	_, want := getSession(t, srv1.URL, created.ID)
	srv1.Close()
	if err := m1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	srv2, m2 := persistentServer(t, dir)
	defer m2.Close()
	status, got := getSession(t, srv2.URL, created.ID)
	if status != http.StatusOK {
		t.Fatalf("recovered session status = %d", status)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("recovered session diverged:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if status, _ := getSession(t, srv2.URL, doomed.ID); status != http.StatusNotFound {
		t.Errorf("deleted session came back: status = %d", status)
	}

	// /healthz reports the recovery.
	hresp, err := http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Durable  bool `json:"durable"`
		Recovery struct {
			Sessions int `json:"sessions"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Durable || health.Recovery.Sessions != 1 {
		t.Errorf("healthz = %+v, want durable with 1 recovered session", health)
	}
}
