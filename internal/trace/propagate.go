package trace

// propagate.go defines the cross-node trace propagation contract: the
// two headers a hop forwards, and the helper that stamps them onto an
// outbound request. The receiving side is httpapi.WithObservability,
// which adopts an inbound X-Trace-Id via Tracer.StartWith so every
// node-local trace of one request shares the ID, and records
// X-Span-Parent so a stitched timeline shows who called whom.

import (
	"context"
	"net/http"
)

// HeaderTraceID carries the request's trace ID across process
// boundaries (and is also set on every HTTP response).
const HeaderTraceID = "X-Trace-Id"

// HeaderSpanParent names the upstream hop that forwarded the request —
// "router /v1/sessions", "ship n1", "promote router" — purely
// descriptive, for ordering and attribution in stitched timelines.
const HeaderSpanParent = "X-Span-Parent"

// Inject stamps the context's trace onto outbound request headers.
// parent names the forwarding hop; empty omits the header. Without a
// trace in the context nothing is written, so uninstrumented callers
// keep their historical wire format.
func Inject(ctx context.Context, h http.Header, parent string) {
	tr := FromContext(ctx)
	if tr == nil {
		return
	}
	h.Set(HeaderTraceID, tr.ID())
	if parent != "" {
		h.Set(HeaderSpanParent, parent)
	}
}
