package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the retained completed traces as JSON; mount it at
// GET /debug/traces. `?id=<trace-id>` returns one trace (404 when it
// has rotated out of the ring), `?n=<k>` limits the list to the k
// newest.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			snap, ok := t.Get(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": "trace not retained: " + id})
				return
			}
			json.NewEncoder(w).Encode(snap)
			return
		}
		snaps := t.Snapshots()
		if nstr := r.URL.Query().Get("n"); nstr != "" {
			if n, err := strconv.Atoi(nstr); err == nil && n >= 0 && n < len(snaps) {
				snaps = snaps[:n]
			}
		}
		if snaps == nil {
			snaps = []TraceSnapshot{}
		}
		json.NewEncoder(w).Encode(struct {
			Total  uint64          `json:"completed_total"`
			Traces []TraceSnapshot `json:"traces"`
		}{Total: t.CompletedTotal(), Traces: snaps})
	})
}
