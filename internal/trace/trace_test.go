package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTraceLifecycle(t *testing.T) {
	tt := NewTracer(4)
	tr := tt.Start("POST /v1/compose")
	if tr.ID() == "" || len(tr.ID()) != 16 {
		t.Fatalf("trace ID = %q, want 16 hex chars", tr.ID())
	}
	sp := tr.StartSpan("graph.build", Str("cache", "miss"))
	time.Sleep(time.Millisecond)
	sp.End(Int("edges", 42))
	tr.StartSpan("core.select").End()
	tr.Finish()

	snaps := tt.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	got := snaps[0]
	if got.ID != tr.ID() || got.Name != "POST /v1/compose" {
		t.Errorf("snapshot = %+v", got)
	}
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Spans))
	}
	if got.Spans[0].Name != "graph.build" || got.Spans[0].DurationMs <= 0 {
		t.Errorf("span[0] = %+v", got.Spans[0])
	}
	if len(got.Spans[0].Attrs) != 2 {
		t.Errorf("attrs = %v", got.Spans[0].Attrs)
	}
	if tt.CompletedTotal() != 1 {
		t.Errorf("completed = %d", tt.CompletedTotal())
	}
}

func TestTracerRingKeepsNewest(t *testing.T) {
	tt := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := tt.Start("r")
		ids = append(ids, tr.ID())
		tr.Finish()
	}
	snaps := tt.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("retained = %d, want 3", len(snaps))
	}
	// Newest first.
	if snaps[0].ID != ids[4] || snaps[2].ID != ids[2] {
		t.Errorf("retained order wrong: %v vs created %v", snaps, ids)
	}
	if _, ok := tt.Get(ids[0]); ok {
		t.Error("rotated-out trace must not be retrievable")
	}
	if _, ok := tt.Get(ids[4]); !ok {
		t.Error("newest trace must be retrievable")
	}
}

func TestNilSafety(t *testing.T) {
	var tt *Tracer
	tr := tt.Start("x")
	if tr != nil {
		t.Fatal("nil tracer must hand out nil traces")
	}
	// All nil-receiver calls must be inert.
	tr.StartSpan("s").End()
	tr.Finish()
	if tr.ID() != "" {
		t.Error("nil trace ID must be empty")
	}
	if tt.Snapshots() != nil || tt.SpanStats() != nil || tt.CompletedTotal() != 0 {
		t.Error("nil tracer reads must be empty")
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Error("nil trace must not be attached")
	}
}

func TestContextPropagation(t *testing.T) {
	tt := NewTracer(2)
	tr := tt.Start("req")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace must round-trip through context")
	}
	if FromContext(context.Background()) != nil {
		t.Error("bare context must have no trace")
	}
}

func TestSpanCap(t *testing.T) {
	tt := NewTracer(1)
	tr := tt.Start("big")
	for i := 0; i < MaxSpans+10; i++ {
		tr.StartSpan("s").End()
	}
	if tt.DroppedSpans() != 10 {
		t.Errorf("dropped = %d, want 10", tt.DroppedSpans())
	}
	tr.Finish()
	if got := len(tt.Snapshots()[0].Spans); got != MaxSpans {
		t.Errorf("spans = %d, want %d", got, MaxSpans)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tt := NewTracer(2)
	tr := tt.Start("batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sp := tr.StartSpan("worker")
				sp.SetAttr(Int("i", i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tt.Snapshots()[0].Spans); got != 160 {
		t.Errorf("spans = %d, want 160", got)
	}
}

func TestDebugHandler(t *testing.T) {
	tt := NewTracer(4)
	tr := tt.Start("req")
	tr.StartSpan("core.select").End()
	tr.Finish()

	rr := httptest.NewRecorder()
	tt.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	var body struct {
		Total  uint64          `json:"completed_total"`
		Traces []TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if body.Total != 1 || len(body.Traces) != 1 || body.Traces[0].ID != tr.ID() {
		t.Errorf("body = %+v", body)
	}

	rr = httptest.NewRecorder()
	tt.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?id="+tr.ID(), nil))
	var one TraceSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &one); err != nil || one.ID != tr.ID() {
		t.Errorf("by-id lookup = %+v err=%v", one, err)
	}

	rr = httptest.NewRecorder()
	tt.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?id=deadbeefdeadbeef", nil))
	if rr.Code != 404 {
		t.Errorf("unknown id status = %d, want 404", rr.Code)
	}
}

func TestSpanStats(t *testing.T) {
	tt := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr := tt.Start("req")
		tr.StartSpan("a").End()
		tr.StartSpan("b").End()
		tr.Finish()
	}
	stats := tt.SpanStats()
	if len(stats) != 2 || stats[0].Name != "a" || stats[0].Count != 3 || stats[1].Name != "b" {
		t.Errorf("stats = %+v", stats)
	}
}
