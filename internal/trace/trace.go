// Package trace is a lightweight, dependency-free request tracer: a
// Tracer hands out Traces (one per request, each with a random ID), a
// Trace collects timed Spans from the layers a request passes through
// (graph build, selection rounds, reservation, failover, journal), and
// the Tracer retains the last N completed traces for inspection over
// GET /debug/traces.
//
// Propagation is by context: the HTTP layer calls NewContext and
// instrumented code calls FromContext. Every API is safe on a nil
// receiver, so code paths without a tracer pay only a nil check.
package trace

import (
	"context"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans caps spans per trace; beyond it StartSpan returns nil and
// the drop is counted, so a pathological request cannot balloon one
// trace's memory.
const MaxSpans = 512

// DefaultKeep is how many completed traces a Tracer retains when
// NewTracer is given a non-positive capacity.
const DefaultKeep = 64

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Str and Int build Attrs.
func Str(k, v string) Attr     { return Attr{Key: k, Value: v} }
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }
func Dur(k string, d time.Duration) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64) + "ms"}
}

// Tracer retains the last N completed traces in a ring.
type Tracer struct {
	mu      sync.Mutex
	ring    []*Trace
	next    int
	total   uint64 // completed traces ever
	dropped atomic.Int64
}

// NewTracer returns a tracer keeping the last keep completed traces
// (DefaultKeep if keep <= 0).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Tracer{ring: make([]*Trace, 0, keep)}
}

// Start begins a new trace with a fresh random ID. A nil tracer
// returns a nil trace, which is itself a valid no-op.
func (t *Tracer) Start(name string) *Trace {
	return t.StartWith(name, "")
}

// StartWith is Start with a caller-supplied trace ID — the cross-node
// propagation entry point: a node receiving X-Trace-Id adopts the
// upstream ID so every hop of one request records under the same ID
// and the hops stitch into one distributed trace. An empty or
// implausible id (too long, non-header-safe) falls back to minting a
// fresh one.
func (t *Tracer) StartWith(name, id string) *Trace {
	if t == nil {
		return nil
	}
	if !validID(id) {
		id = newID()
	}
	return &Trace{
		id:     id,
		name:   name,
		start:  time.Now(),
		tracer: t,
	}
}

// validID accepts inbound trace IDs: non-empty, bounded, printable
// ASCII without spaces — loose enough for foreign formats, tight
// enough that a hostile header cannot smuggle log/JSON garbage.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' {
			return false
		}
	}
	return true
}

func newID() string {
	const hex = "0123456789abcdef"
	var b [16]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = hex[v&0xf]
		v >>= 4
		if i == 7 {
			v = rand.Uint64()
		}
	}
	return string(b[:])
}

// CompletedTotal reports how many traces have finished into this
// tracer (not just the retained window).
func (t *Tracer) CompletedTotal() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// DroppedSpans reports spans discarded across all traces because a
// trace hit MaxSpans.
func (t *Tracer) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

func (t *Tracer) record(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		return
	}
	t.ring[t.next] = tr
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
}

// Trace is one request's span collection. Spans may be started from
// multiple goroutines; callers must end spans (and join any helper
// goroutines) before Finish.
type Trace struct {
	id     string
	name   string
	start  time.Time
	tracer *Tracer

	mu       sync.Mutex
	parent   string
	spans    []*Span
	end      time.Time
	finished bool
}

// SetParent records which upstream hop handed this trace over (the
// X-Span-Parent header value) so a stitched cluster timeline can show
// the caller of each node-local segment. Nil-safe.
func (tr *Trace) SetParent(p string) {
	if tr == nil || p == "" {
		return
	}
	tr.mu.Lock()
	tr.parent = p
	tr.mu.Unlock()
}

// ID returns the trace's hex ID ("" for a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// StartSpan opens a timed span. Nil-safe; returns nil past MaxSpans.
func (tr *Trace) StartSpan(name string, attrs ...Attr) *Span {
	if tr == nil {
		return nil
	}
	sp := &Span{name: name, start: time.Now(), attrs: attrs}
	tr.mu.Lock()
	if len(tr.spans) >= MaxSpans || tr.finished {
		tr.mu.Unlock()
		if tr.tracer != nil {
			tr.tracer.dropped.Add(1)
		}
		return nil
	}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// Finish closes the trace and hands it to the tracer's retained ring.
// Finishing twice is a no-op.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.end = time.Now()
	tr.mu.Unlock()
	if tr.tracer != nil {
		tr.tracer.record(tr)
	}
}

// Span is one timed operation inside a trace. A span belongs to the
// goroutine that started it until End; attrs must not be added after.
type Span struct {
	name  string
	start time.Time
	end   time.Time
	attrs []Attr
	done  atomic.Bool
}

// SetAttr annotates the span. Nil-safe; ignored after End.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || s.done.Load() {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span, optionally attaching final attrs.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	s.end = time.Now()
	s.done.Store(true)
}

// --- context propagation ---

type ctxKey struct{}

// NewContext attaches a trace to a context. A nil trace returns ctx
// unchanged.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// --- snapshots for /debug/traces and summaries ---

// SpanSnapshot is one completed span, offsets relative to the trace
// start.
type SpanSnapshot struct {
	Name       string  `json:"name"`
	OffsetMs   float64 `json:"offset_ms"`
	DurationMs float64 `json:"duration_ms"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

// TraceSnapshot is one completed trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Name       string         `json:"name"`
	Parent     string         `json:"parent,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMs float64        `json:"duration_ms"`
	Spans      []SpanSnapshot `json:"spans"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	snap := TraceSnapshot{
		ID:         tr.id,
		Name:       tr.name,
		Parent:     tr.parent,
		Start:      tr.start,
		DurationMs: ms(tr.end.Sub(tr.start)),
		Spans:      make([]SpanSnapshot, 0, len(tr.spans)),
	}
	for _, sp := range tr.spans {
		end := sp.end
		if !sp.done.Load() {
			end = tr.end // span left open: clamp to trace end
		}
		snap.Spans = append(snap.Spans, SpanSnapshot{
			Name:       sp.name,
			OffsetMs:   ms(sp.start.Sub(tr.start)),
			DurationMs: ms(end.Sub(sp.start)),
			Attrs:      sp.attrs,
		})
	}
	return snap
}

// Snapshots returns the retained completed traces, newest first.
func (t *Tracer) Snapshots() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*Trace, 0, len(t.ring))
	// Ring order: t.next is the oldest entry once wrapped.
	for i := 0; i < len(t.ring); i++ {
		idx := t.next + i
		if idx >= len(t.ring) {
			idx -= len(t.ring)
		}
		traces = append(traces, t.ring[idx])
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for i := len(traces) - 1; i >= 0; i-- {
		out = append(out, traces[i].snapshot())
	}
	return out
}

// Get returns the retained trace with the given ID, if still in the
// ring.
func (t *Tracer) Get(id string) (TraceSnapshot, bool) {
	for _, snap := range t.Snapshots() {
		if snap.ID == id {
			return snap, true
		}
	}
	return TraceSnapshot{}, false
}

// SpanStat aggregates the retained traces' spans by name.
type SpanStat struct {
	Name    string
	Count   int
	TotalMs float64
	MeanMs  float64
	MaxMs   float64
}

// SpanStats summarizes spans across the retained traces, sorted by
// name — the sim binaries print this as the trace summary table.
func (t *Tracer) SpanStats() []SpanStat {
	if t == nil {
		return nil
	}
	agg := map[string]*SpanStat{}
	for _, snap := range t.Snapshots() {
		for _, sp := range snap.Spans {
			s, ok := agg[sp.Name]
			if !ok {
				s = &SpanStat{Name: sp.Name}
				agg[s.Name] = s
			}
			s.Count++
			s.TotalMs += sp.DurationMs
			if sp.DurationMs > s.MaxMs {
				s.MaxMs = sp.DurationMs
			}
		}
	}
	out := make([]SpanStat, 0, len(agg))
	for _, s := range agg {
		s.MeanMs = s.TotalMs / float64(s.Count)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
