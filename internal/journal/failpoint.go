package journal

import (
	"errors"
	"fmt"
	"sync"
)

// Crash injection: the journal's durability claims are only worth what a
// kill at the worst possible instant leaves behind, so every write-path
// step exposes a named FailPoint. A test (or the adaptsim -crash
// harness) arms a point to fire on its Nth hit under a seeded schedule;
// when it fires, the journal stops dead exactly as a SIGKILL would —
// bytes written so far stay on disk, nothing after the point happens,
// and every later operation reports ErrCrashed. Recovery then runs
// against whatever the "kill" left in the state directory.

// FailPoint names one crash site in the write path.
type FailPoint string

const (
	// FPAppend crashes before any byte of the Nth record is written.
	FPAppend FailPoint = "append"
	// FPTornAppend crashes halfway through writing the Nth record,
	// leaving a torn tail for recovery to truncate.
	FPTornAppend FailPoint = "append.torn"
	// FPSync crashes before the Nth fsync returns: appended records may
	// or may not have reached the platter.
	FPSync FailPoint = "sync"
	// FPSnapshotTemp crashes after the snapshot temp file is written and
	// fsynced but before the rename publishes it.
	FPSnapshotTemp FailPoint = "snapshot.temp"
	// FPSnapshotRename crashes after the rename publishes the snapshot
	// but before the old journal generation is rotated out.
	FPSnapshotRename FailPoint = "snapshot.rename"
)

// FailPoints lists every point a schedule may arm.
var AllFailPoints = []FailPoint{FPAppend, FPTornAppend, FPSync, FPSnapshotTemp, FPSnapshotRename}

// ErrCrashed marks every operation attempted after an armed failpoint
// fired — the in-process stand-in for the process being gone.
var ErrCrashed = errors.New("journal: crashed at failpoint")

// CrashError reports which failpoint fired and on which hit. It wraps
// ErrCrashed for errors.Is.
type CrashError struct {
	Point FailPoint
	Hit   int
}

// Error implements error.
func (e *CrashError) Error() string {
	return fmt.Sprintf("journal: crashed at failpoint %s (hit %d)", e.Point, e.Hit)
}

// Unwrap ties the error to ErrCrashed.
func (e *CrashError) Unwrap() error { return ErrCrashed }

// IsCrash reports whether err stems from an armed failpoint firing.
func IsCrash(err error) bool { return errors.Is(err, ErrCrashed) }

// FailPoints is a concurrency-safe registry of armed crash sites shared
// by a journal and its snapshots. The zero value (and a nil receiver)
// never fires.
type FailPoints struct {
	mu   sync.Mutex
	arm  map[FailPoint]int // fire on the Nth hit (1-based)
	hits map[FailPoint]int
}

// NewFailPoints returns an empty registry.
func NewFailPoints() *FailPoints {
	return &FailPoints{arm: make(map[FailPoint]int), hits: make(map[FailPoint]int)}
}

// Arm schedules the point to fire on its nth hit (n <= 0 disarms).
func (fp *FailPoints) Arm(p FailPoint, n int) {
	if fp == nil {
		return
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if n <= 0 {
		delete(fp.arm, p)
		return
	}
	fp.arm[p] = n
}

// Hits returns how often the point has been reached so far.
func (fp *FailPoints) Hits(p FailPoint) int {
	if fp == nil {
		return 0
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.hits[p]
}

// hit counts one arrival at the point and returns the CrashError when
// the armed count is reached.
func (fp *FailPoints) hit(p FailPoint) *CrashError {
	if fp == nil {
		return nil
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.hits[p]++
	if n, armed := fp.arm[p]; armed && fp.hits[p] == n {
		return &CrashError{Point: p, Hit: n}
	}
	return nil
}
