package journal

// ship.go turns the hash-chained journal into a replication substrate.
// A primary reads the suffix after a follower's applied offset as a
// ShipBatch — the records plus the chain positions bracketing them — and
// the follower verifies the whole batch by recomputing the chain from
// its own applied position before appending a single byte. Because the
// chain hash folds every (seq, data) pair since genesis (or the last
// snapshot base), a truncated, reordered, spliced or bit-flipped batch
// cannot verify, and a verified batch appended verbatim leaves the
// follower at the exact chain position the primary reported — replicas
// are byte-identical by construction, not by comparison.
//
// When compaction has already dropped the suffix a lagging follower
// needs, the batch instead carries the newest snapshot (plus whatever
// records follow it); the follower bootstraps a fresh state directory
// from it and resumes incremental shipping.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ErrCompacted reports that the records after the requested offset were
// compacted into a snapshot and can no longer be shipped incrementally.
var ErrCompacted = errors.New("journal: records compacted away")

// ShipBatch is a chain-verified slice of the journal: every record with
// FromSeq < seq <= EndSeq, bracketed by the chain positions before and
// after. A receiver at (FromSeq, FromChain) that verifies the batch and
// appends the records verbatim lands exactly at (EndSeq, EndChain).
type ShipBatch struct {
	// FromSeq/FromChain is the chain position the receiver must already
	// hold — its applied offset.
	FromSeq   uint64
	FromChain Chain
	// Records is the suffix, in strict sequence order.
	Records []Record
	// EndSeq/EndChain is the chain position after the last record (equal
	// to From* for an empty batch).
	EndSeq   uint64
	EndChain Chain
	// Snapshot, when non-nil, replaces incremental catch-up: the
	// receiver's offset predates compaction, so it must bootstrap from
	// this snapshot and then apply Records (which start at Snapshot.Seq).
	Snapshot *Snapshot
}

// VerifyShip recomputes the chain across a received batch. Any gap,
// reorder, truncation or payload damage breaks the recomputed chain and
// surfaces as ErrCorrupt — the receiver rejects the batch without
// touching its journal and re-requests from its applied offset.
func VerifyShip(b *ShipBatch) error {
	seq, chain := b.FromSeq, b.FromChain
	for _, r := range b.Records {
		if r.Seq != seq+1 {
			return fmt.Errorf("%w: ship batch gap: record %d after %d", ErrCorrupt, r.Seq, seq)
		}
		if len(r.Data) > MaxRecord {
			return fmt.Errorf("%w: ship batch record %d of %d bytes exceeds MaxRecord", ErrCorrupt, r.Seq, len(r.Data))
		}
		chain = chain.next(r.Seq, r.Data)
		seq = r.Seq
	}
	if seq != b.EndSeq {
		return fmt.Errorf("%w: ship batch ends at seq %d, header says %d", ErrCorrupt, seq, b.EndSeq)
	}
	if chain != b.EndChain {
		return fmt.Errorf("%w: ship batch chain mismatch at seq %d", ErrCorrupt, seq)
	}
	return nil
}

// ReadSince assembles the ship batch after offset `since`: at most max
// records (0 means a default batch size), with the chain positions
// bracketing them. It returns ErrCompacted when `since` predates the
// oldest journal generation — the caller falls back to snapshot
// shipping. Reading concurrent with appends is safe: ScanFile verifies
// a consistent prefix and anything past the last complete record is
// simply not shipped yet.
func (l *Log) ReadSince(since uint64, max int) (*ShipBatch, error) {
	if max <= 0 {
		max = 1024
	}
	if last := l.j.LastSeq(); since > last {
		return nil, fmt.Errorf("journal: ReadSince(%d) is beyond the log end %d", since, last)
	}

	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	type wal struct {
		base uint64
		name string
	}
	var wals []wal
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if base, ok := parseWalName(e.Name()); ok {
			wals = append(wals, wal{base, e.Name()})
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i].base < wals[j].base })

	batch := &ShipBatch{FromSeq: since}
	located := false // chain position at `since` has been found
	seq, chain := uint64(0), Chain{}
scan:
	for _, w := range wals {
		sr, err := ScanFile(filepath.Join(l.dir, w.name))
		if err != nil {
			continue // headerless stale generation, same policy as OpenLog
		}
		if !located {
			if sr.BaseSeq > since {
				return nil, fmt.Errorf("%w: offset %d predates generation base %d", ErrCompacted, since, sr.BaseSeq)
			}
			if sr.LastSeq < since {
				continue // wholly before the offset
			}
			// This generation covers the offset: fold forward from its base.
			seq, chain = sr.BaseSeq, sr.BaseChain
			located = true
			if seq == since {
				batch.FromChain = chain
			}
		}
		for _, r := range sr.Records {
			if r.Seq <= seq {
				continue // overlap with a prior generation
			}
			if r.Seq != seq+1 {
				// A gap between generations: nothing after it is shippable.
				break scan
			}
			chain = chain.next(r.Seq, r.Data)
			seq = r.Seq
			if seq == since {
				batch.FromChain = chain
				continue
			}
			if seq > since {
				batch.Records = append(batch.Records, r)
				batch.EndSeq, batch.EndChain = seq, chain
				if len(batch.Records) >= max {
					break scan
				}
			}
		}
	}
	if !located {
		return nil, fmt.Errorf("%w: offset %d not covered by any journal generation", ErrCompacted, since)
	}
	if len(batch.Records) == 0 {
		batch.EndSeq, batch.EndChain = batch.FromSeq, batch.FromChain
	}
	return batch, nil
}

// LastChain returns the chain position after the last appended record.
func (l *Log) LastChain() Chain { return l.j.LastChain() }

// Bootstrap initializes a state directory at a shipped snapshot: the
// snapshot file is durably written, and the next OpenLog starts a fresh
// journal generation at its chain position. The directory must not hold
// a live journal — callers wipe a stale replica directory first.
func Bootstrap(dir string, snap *Snapshot) error {
	if snap == nil {
		return errors.New("journal: bootstrap without a snapshot")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	_, err := WriteSnapshot(dir, snap.Seq, snap.Chain, snap.Data, nil)
	return err
}
