package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshots compact the journal: the full state-machine state is written
// once, stamped with the sequence number and chain hash it covers, and
// every record at or below that sequence becomes garbage. Recovery loads
// the newest verifiable snapshot and replays only the journal suffix.
//
// Snapshot file layout:
//
//	magic "QOSSNAP\n" | seq u64 | chain [32]byte | crc32c u32 | len u32 | data
//
// The write is crash-safe the boring, correct way: temp file, fsync,
// rename into place, fsync the directory. A crash at any instant leaves
// either the old snapshot set or the old set plus a complete new one —
// never a half-written file that parses.

const snapMagic = "QOSSNAP\n"
const snapHeader = 8 + 8 + 32 + 4 + 4

// snapshotName renders the canonical file name for a snapshot at seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

// parseSnapshotName extracts the sequence from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
	return seq, err == nil
}

// WriteSnapshot durably publishes a snapshot of the state machine at the
// given chain position and returns its path.
func WriteSnapshot(dir string, seq uint64, chain Chain, data []byte, fp *FailPoints) (string, error) {
	buf := make([]byte, snapHeader+len(data))
	copy(buf, snapMagic)
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[16:48], chain[:])
	binary.LittleEndian.PutUint32(buf[52:56], uint32(len(data)))
	copy(buf[56:], data)
	binary.LittleEndian.PutUint32(buf[48:52], crc32.Checksum(buf[52:], castagnoli))

	path := filepath.Join(dir, snapshotName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("journal: snapshot: %w", err)
	}
	if ce := fp.hit(FPSnapshotTemp); ce != nil {
		return "", ce
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// Snapshot is one recovered snapshot.
type Snapshot struct {
	Seq   uint64
	Chain Chain
	Data  []byte
}

// readSnapshot loads and verifies one snapshot file.
func readSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if len(buf) < snapHeader || string(buf[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot %s: bad header", ErrCorrupt, filepath.Base(path))
	}
	dataLen := binary.LittleEndian.Uint32(buf[52:56])
	if int(dataLen) != len(buf)-snapHeader {
		return nil, fmt.Errorf("%w: snapshot %s: length mismatch", ErrCorrupt, filepath.Base(path))
	}
	if crc32.Checksum(buf[52:], castagnoli) != binary.LittleEndian.Uint32(buf[48:52]) {
		return nil, fmt.Errorf("%w: snapshot %s: checksum mismatch", ErrCorrupt, filepath.Base(path))
	}
	s := &Snapshot{Seq: binary.LittleEndian.Uint64(buf[8:16]), Data: buf[56:]}
	copy(s.Chain[:], buf[16:48])
	return s, nil
}

// LatestSnapshot returns the newest verifiable snapshot in dir (nil when
// none exists) and the names of files it had to skip: corrupt snapshots
// and abandoned temp files. Skipped files are not deleted here — the
// caller decides after recovery succeeds.
func LatestSnapshot(dir string) (*Snapshot, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	type cand struct {
		seq  uint64
		name string
	}
	var cands []cand
	var skipped []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			skipped = append(skipped, e.Name())
			continue
		}
		if seq, ok := parseSnapshotName(e.Name()); ok {
			cands = append(cands, cand{seq, e.Name()})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	for _, c := range cands {
		s, err := readSnapshot(filepath.Join(dir, c.name))
		if err != nil {
			skipped = append(skipped, c.name)
			continue
		}
		return s, skipped, nil
	}
	return nil, skipped, nil
}
