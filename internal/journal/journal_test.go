package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openDir is a test helper opening a Log and failing the test on error.
func openDir(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openDir(t, dir, Options{})
	if rec.SnapshotData != nil || len(rec.Records) != 0 || rec.LastSeq != 0 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	if _, err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", l.LastSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openDir(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Data, want[i]) {
			t.Fatalf("record %d = {%d %q}", i, r.Seq, r.Data)
		}
	}
	// Appends continue the sequence.
	seq, err := l2.Append([]byte("four"))
	if err != nil || seq != 4 {
		t.Fatalf("Append after recovery = (%d, %v)", seq, err)
	}
}

func TestRecoverEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with zero records: recovery is empty, not an error.
	l2, rec := openDir(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 0 || rec.TruncatedBytes != 0 || rec.LastSeq != 0 {
		t.Fatalf("empty journal recovery = %+v", rec)
	}
}

func TestRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	if _, err := l.Append([]byte("committed-1"), []byte("committed-2")); err != nil {
		t.Fatal(err)
	}
	path := l.j.Path()
	l.Close()

	// Append a full record by hand, then chop it mid-payload — the torn
	// final write of a crashed appender.
	sr, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := encodeRecord(sr.LastSeq+1, sr.LastChain.next(sr.LastSeq+1, []byte("torn")), []byte("torn"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:len(rec)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec2 := openDir(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec2.Records))
	}
	if rec2.TruncatedBytes != int64(len(rec)-5) {
		t.Fatalf("TruncatedBytes = %d, want %d", rec2.TruncatedBytes, len(rec)-5)
	}
	// The torn tail was physically truncated: appends continue cleanly
	// and a further recovery sees no damage.
	if seq, err := l2.Append([]byte("after")); err != nil || seq != 3 {
		t.Fatalf("Append after truncation = (%d, %v)", seq, err)
	}
	l2.Close()
	_, rec3 := openDir(t, dir, Options{})
	if rec3.TruncatedBytes != 0 || len(rec3.Records) != 3 {
		t.Fatalf("second recovery = %+v", rec3)
	}
}

func TestRecoverBitFlippedChecksum(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	if _, err := l.Append([]byte("good-1"), []byte("good-2"), []byte("good-3")); err != nil {
		t.Fatal(err)
	}
	path := l.j.Path()
	l.Close()

	// Flip one bit in the last record's payload.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openDir(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records after bit flip, want 2", len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("bit-flipped record not counted as truncated")
	}
	if string(rec.Records[1].Data) != "good-2" {
		t.Fatalf("last trusted record = %q", rec.Records[1].Data)
	}
}

func TestChainHashDetectsSplicedRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	if _, err := l.Append([]byte("aaaa"), []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	path := l.j.Path()
	l.Close()

	// Rewrite record 2 with a valid CRC but a chain hash that skips
	// record 1 — a splice the checksum alone would accept.
	sr, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spliced := encodeRecord(2, sr.BaseChain.next(2, []byte("evil")), []byte("evil"))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := encodeRecord(1, sr.BaseChain.next(1, []byte("aaaa")), []byte("aaaa"))
	buf = append(buf[:headerSize+len(first)], spliced...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openDir(t, dir, Options{})
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "aaaa" {
		t.Fatalf("splice not stopped by chain hash: %+v", rec.Records)
	}
}

func TestSnapshotWithEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	if _, err := l.Append([]byte("s1"), []byte("s2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("state-at-2")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Snapshot present, journal suffix empty: state comes wholly from
	// the snapshot.
	l2, rec := openDir(t, dir, Options{})
	if string(rec.SnapshotData) != "state-at-2" || rec.SnapshotSeq != 2 {
		t.Fatalf("snapshot recovery = seq %d data %q", rec.SnapshotSeq, rec.SnapshotData)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("expected empty journal suffix, got %d records", len(rec.Records))
	}
	if rec.LastSeq != 2 {
		t.Fatalf("LastSeq = %d, want 2", rec.LastSeq)
	}
	// The sequence continues across the snapshot boundary.
	if seq, err := l2.Append([]byte("s3")); err != nil || seq != 3 {
		t.Fatalf("Append after snapshot = (%d, %v)", seq, err)
	}
	l2.Close()

	l3, rec3 := openDir(t, dir, Options{})
	defer l3.Close()
	if rec3.SnapshotSeq != 2 || len(rec3.Records) != 1 || rec3.Records[0].Seq != 3 {
		t.Fatalf("snapshot+suffix recovery = %+v", rec3)
	}
}

func TestDoubleReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	if _, err := l.Append([]byte("r1"), []byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("r3")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recover := func() *Recovery {
		l, rec := openDir(t, dir, Options{})
		l.Close()
		return rec
	}
	a, b := recover(), recover()
	if a.SnapshotSeq != b.SnapshotSeq || string(a.SnapshotData) != string(b.SnapshotData) {
		t.Fatalf("snapshot differs across replays: %d/%q vs %d/%q",
			a.SnapshotSeq, a.SnapshotData, b.SnapshotSeq, b.SnapshotData)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Seq != b.Records[i].Seq || !bytes.Equal(a.Records[i].Data, b.Records[i].Data) {
			t.Fatalf("record %d differs across replays", i)
		}
	}
	if a.LastSeq != b.LastSeq || a.TruncatedBytes != b.TruncatedBytes {
		t.Fatalf("replay metadata differs: %+v vs %+v", a, b)
	}
}

func TestSnapshotCompactsAndRotates(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot([]byte("compacted")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Exactly one snapshot and one journal generation remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, logs int
	for _, e := range entries {
		if _, ok := parseSnapshotName(e.Name()); ok {
			snaps++
		}
		if _, ok := parseWalName(e.Name()); ok {
			logs++
		}
	}
	if snaps != 1 || logs != 1 {
		t.Fatalf("after compaction: %d snapshots, %d journals", snaps, logs)
	}
	_, rec := openDir(t, dir, Options{})
	if rec.SnapshotSeq != 10 || len(rec.Records) != 1 || rec.Records[0].Seq != 11 {
		t.Fatalf("post-compaction recovery = snapshot %d + %d records", rec.SnapshotSeq, len(rec.Records))
	}
}

func TestFailpointTornAppendRecovers(t *testing.T) {
	dir := t.TempDir()
	fp := NewFailPoints()
	fp.Arm(FPTornAppend, 3)
	l, _ := openDir(t, dir, Options{FailPoints: fp})
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	_, err := l.Append([]byte("c"))
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Point != FPTornAppend {
		t.Fatalf("expected torn-append crash, got %v", err)
	}
	// Every later operation reports the crash.
	if _, err := l.Append([]byte("after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append = %v", err)
	}

	// Recovery drops the torn record and keeps the committed prefix.
	l2, rec := openDir(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 2 || rec.TruncatedBytes == 0 {
		t.Fatalf("torn-append recovery = %d records, %d truncated", len(rec.Records), rec.TruncatedBytes)
	}
}

func TestFailpointSnapshotTempLeavesOldState(t *testing.T) {
	dir := t.TempDir()
	fp := NewFailPoints()
	fp.Arm(FPSnapshotTemp, 1)
	l, _ := openDir(t, dir, Options{FailPoints: fp})
	if _, err := l.Append([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("never-published")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("snapshot crash = %v", err)
	}

	// The unpublished temp file is ignored and cleaned; the journal
	// still replays everything.
	l2, rec := openDir(t, dir, Options{})
	defer l2.Close()
	if rec.SnapshotData != nil {
		t.Fatalf("unpublished snapshot surfaced: %q", rec.SnapshotData)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(files) != 0 {
		t.Fatalf("temp files survived recovery: %v", files)
	}
}

func TestFailpointSnapshotRenameKeepsBothPaths(t *testing.T) {
	dir := t.TempDir()
	fp := NewFailPoints()
	fp.Arm(FPSnapshotRename, 1)
	l, _ := openDir(t, dir, Options{FailPoints: fp})
	if _, err := l.Append([]byte("a"), []byte("b"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("published")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("snapshot crash = %v", err)
	}

	// The snapshot is published but the old journal generation was never
	// rotated out: recovery must use the snapshot and replay an empty
	// suffix — not double-apply the journaled records.
	l2, rec := openDir(t, dir, Options{})
	defer l2.Close()
	if string(rec.SnapshotData) != "published" || rec.SnapshotSeq != 3 {
		t.Fatalf("snapshot = seq %d data %q", rec.SnapshotSeq, rec.SnapshotData)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("journal records at or below the snapshot replayed again: %d", len(rec.Records))
	}
	if rec.LastSeq != 3 {
		t.Fatalf("LastSeq = %d, want 3", rec.LastSeq)
	}
}

func TestFailpointSyncPoisons(t *testing.T) {
	dir := t.TempDir()
	fp := NewFailPoints()
	fp.Arm(FPSync, 2)
	l, _ := openDir(t, dir, Options{FailPoints: fp})
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	_, err := l.Append([]byte("b"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync crash = %v", err)
	}
	// Recovery may or may not see the unsynced record (here it does,
	// since the write reached the file); both are within the contract.
	l2, rec := openDir(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) < 1 {
		t.Fatalf("synced record lost: %d records", len(rec.Records))
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	l, _ := openDir(t, dir, Options{})
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Forge a newer snapshot with a corrupt checksum.
	bad := filepath.Join(dir, snapshotName(99))
	if err := os.WriteFile(bad, []byte("QOSSNAP\nxxxxxxxxgarbage-that-wont-verify"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openDir(t, dir, Options{})
	if string(rec.SnapshotData) != "good" || rec.SnapshotSeq != 1 {
		t.Fatalf("fallback snapshot = seq %d data %q", rec.SnapshotSeq, rec.SnapshotData)
	}
	found := false
	for _, s := range rec.Skipped {
		if s == snapshotName(99) {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt snapshot not reported skipped: %v", rec.Skipped)
	}
}
