// Package journal provides the durability layer under the session
// manager: an append-only write-ahead log of opaque records, each
// length-prefixed, CRC32C-checksummed and SHA-256 hash-chained to its
// predecessor, with group fsync, torn-write-tolerant recovery and
// periodic compacting snapshots (snapshot + journal-suffix replay).
//
// On-disk layout of one journal file:
//
//	header (48 bytes): magic "QOSWAL1\n" | baseSeq u64 | baseChain [32]byte
//	record:            length u32 | crc32c u32 | payload
//	payload:           seq u64 | chain [32]byte | data
//
// All integers are little-endian. The chain hash of record i is
// SHA-256(chain_{i-1} || seq_i || data_i), seeded from the file
// header's baseChain, so any bit flip, reorder or splice breaks the
// chain at the first damaged record. Recovery scans forward and
// truncates at the last record whose length, checksum, sequence number
// and chain hash all verify — a torn final write (the only damage a
// crashed appender can cause) is dropped silently, anything earlier is
// surfaced as corruption.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	walMagic   = "QOSWAL1\n"
	headerSize = 8 + 8 + 32
	// recordOverhead is the fixed bytes around a record's data.
	recordOverhead = 4 + 4 + 8 + 32
	// MaxRecord bounds a single record's data so a corrupt length field
	// cannot make recovery allocate gigabytes.
	MaxRecord = 16 << 20
)

// castagnoli is the CRC32C polynomial table (the checksum used by
// ext4/btrfs metadata and iSCSI, with hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks damage recovery cannot attribute to a torn final
// write: a bad file header, or a chain/checksum break before the tail.
var ErrCorrupt = errors.New("journal: corrupt")

// Chain is the running SHA-256 hash chained across records.
type Chain [sha256.Size]byte

// next folds one record into the chain.
func (c Chain) next(seq uint64, data []byte) Chain {
	h := sha256.New()
	h.Write(c[:])
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	h.Write(seqb[:])
	h.Write(data)
	var out Chain
	copy(out[:], h.Sum(nil))
	return out
}

// Record is one recovered journal entry.
type Record struct {
	Seq  uint64
	Data []byte
}

// Journal is a single open write-ahead log file. It is not
// concurrency-safe; the owning Log serializes access.
type Journal struct {
	path  string
	f     *os.File
	seq   uint64 // last appended sequence number
	chain Chain
	dirty bool
	fp    *FailPoints
	dead  error // set once a failpoint fired or the file failed
}

// encodeRecord renders the on-disk bytes of one record.
func encodeRecord(seq uint64, chain Chain, data []byte) []byte {
	payload := len(data) + 8 + 32
	buf := make([]byte, 8+payload)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[16:48], chain[:])
	copy(buf[48:], data)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], castagnoli))
	return buf
}

// Create starts a fresh journal file at the given chain position. The
// header is written and fsynced (and the parent directory synced) before
// Create returns, so a crash immediately after leaves a valid empty
// journal.
func Create(path string, baseSeq uint64, baseChain Chain, fp *FailPoints) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	hdr := make([]byte, headerSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], baseSeq)
	copy(hdr[16:48], baseChain[:])
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{path: path, f: f, seq: baseSeq, chain: baseChain, fp: fp}, nil
}

// ScanResult reports what a forward scan of one journal file found.
type ScanResult struct {
	BaseSeq   uint64
	BaseChain Chain
	Records   []Record
	// Truncated is how many tail bytes failed verification — a torn
	// final append. Zero on a clean file.
	Truncated int64
	// LastSeq/LastChain are the chain position after the last valid
	// record (the base position for an empty journal).
	LastSeq   uint64
	LastChain Chain
	// validEnd is the file offset just past the last valid record.
	validEnd int64
}

// ScanFile reads a journal file without modifying it, verifying length,
// checksum, sequence and chain hash record by record, and stopping at
// the first record that fails — everything after is counted as
// truncated tail. A damaged header is ErrCorrupt: no record can be
// trusted without the base chain position.
func ScanFile(path string) (*ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	size := fi.Size()
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: short header", ErrCorrupt, filepath.Base(path))
	}
	if string(hdr[:8]) != walMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	res := &ScanResult{
		BaseSeq:  binary.LittleEndian.Uint64(hdr[8:16]),
		validEnd: headerSize,
	}
	copy(res.BaseChain[:], hdr[16:48])
	res.LastSeq, res.LastChain = res.BaseSeq, res.BaseChain

	var lenbuf [8]byte
	offset := int64(headerSize)
	for {
		if _, err := io.ReadFull(f, lenbuf[:]); err != nil {
			break // clean EOF or torn length prefix
		}
		payloadLen := binary.LittleEndian.Uint32(lenbuf[0:4])
		crc := binary.LittleEndian.Uint32(lenbuf[4:8])
		if payloadLen < 8+32 || payloadLen > MaxRecord+8+32 {
			break
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		seq := binary.LittleEndian.Uint64(payload[0:8])
		if seq != res.LastSeq+1 {
			break
		}
		var chain Chain
		copy(chain[:], payload[8:40])
		data := payload[40:]
		if chain != res.LastChain.next(seq, data) {
			break
		}
		res.Records = append(res.Records, Record{Seq: seq, Data: data})
		res.LastSeq, res.LastChain = seq, chain
		offset += int64(8 + payloadLen)
		res.validEnd = offset
	}
	res.Truncated = size - res.validEnd
	return res, nil
}

// Open scans an existing journal, truncates any torn tail, and positions
// the file for appending.
func Open(path string, fp *FailPoints) (*Journal, *ScanResult, error) {
	res, err := ScanFile(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if res.Truncated > 0 {
		if err := f.Truncate(res.validEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := f.Seek(res.validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{path: path, f: f, seq: res.LastSeq, chain: res.LastChain, fp: fp}, res, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// LastSeq returns the last appended sequence number.
func (j *Journal) LastSeq() uint64 { return j.seq }

// LastChain returns the chain hash after the last appended record.
func (j *Journal) LastChain() Chain { return j.chain }

// Append writes one record to the OS without forcing it to disk; call
// Sync to make a batch of appends durable with a single fsync (group
// commit). The assigned sequence number is returned.
func (j *Journal) Append(data []byte) (uint64, error) {
	if j.dead != nil {
		return 0, j.dead
	}
	if len(data) > MaxRecord {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds MaxRecord", len(data))
	}
	if ce := j.fp.hit(FPAppend); ce != nil {
		j.dead = ce
		return 0, ce
	}
	seq := j.seq + 1
	chain := j.chain.next(seq, data)
	rec := encodeRecord(seq, chain, data)
	if ce := j.fp.hit(FPTornAppend); ce != nil {
		// Simulate a kill mid-write: half the record reaches the file.
		j.f.Write(rec[:len(rec)/2]) //nolint:errcheck // crashing anyway
		j.dead = ce
		return 0, ce
	}
	if _, err := j.f.Write(rec); err != nil {
		j.dead = fmt.Errorf("journal: append: %w", err)
		return 0, j.dead
	}
	j.seq, j.chain = seq, chain
	j.dirty = true
	return seq, nil
}

// Sync forces every appended record to disk. It is a no-op when nothing
// was appended since the last Sync.
func (j *Journal) Sync() error {
	if j.dead != nil {
		return j.dead
	}
	if !j.dirty {
		return nil
	}
	if ce := j.fp.hit(FPSync); ce != nil {
		j.dead = ce
		return ce
	}
	if err := j.f.Sync(); err != nil {
		j.dead = fmt.Errorf("journal: sync: %w", err)
		return j.dead
	}
	j.dirty = false
	return nil
}

// Close syncs and closes the file. A dead (crashed) journal closes the
// descriptor without syncing, like the kernel would at process exit.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	var err error
	if j.dead == nil {
		err = j.Sync()
	}
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: close: %w", cerr)
	}
	j.f = nil
	if j.dead == nil {
		j.dead = errors.New("journal: closed")
	}
	return err
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", dir, err)
	}
	return nil
}
