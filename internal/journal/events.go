package journal

import (
	"encoding/json"
	"fmt"
)

// Event is the typed envelope for write-ahead logs that multiplex
// several record kinds through one Log — the storm controller's stream
// of class definitions, attachments, network changes and fan-out
// commits, for example. Kind names the payload shape; Data carries the
// payload's own JSON. The envelope is versioned by Kind alone: adding a
// new kind never disturbs replay of the old ones, and an unknown kind
// is the replayer's signal that a newer writer produced the log.
type Event struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// EncodeEvent marshals a payload under its kind, ready for Log.Append.
func EncodeEvent(kind string, payload any) ([]byte, error) {
	if kind == "" {
		return nil, fmt.Errorf("journal: event kind must be non-empty")
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %s event: %w", kind, err)
	}
	return json.Marshal(Event{Kind: kind, Data: data})
}

// DecodeEvent splits a journal record back into its kind and raw
// payload; the caller dispatches on the kind and unmarshals Data into
// the matching payload type.
func DecodeEvent(record []byte) (kind string, data json.RawMessage, err error) {
	var ev Event
	if err := json.Unmarshal(record, &ev); err != nil {
		return "", nil, fmt.Errorf("journal: decode event: %w", err)
	}
	if ev.Kind == "" {
		return "", nil, fmt.Errorf("journal: event record has no kind")
	}
	return ev.Kind, ev.Data, nil
}
