package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"qoschain/internal/metrics"
)

// Log manages one state directory: the newest snapshot plus a write-ahead
// journal of everything after it. Journal files are named by the
// sequence number they start after (wal-<baseSeq>.log), so recovery can
// order generations without trusting timestamps.
//
// Recovery algorithm (OpenLog):
//
//  1. Load the newest verifiable snapshot, skipping corrupt files and
//     abandoned temp files.
//  2. Scan every journal file in base-sequence order, verifying each
//     record's length, CRC32C and chain hash, truncating torn tails.
//  3. Replay only records with seq > snapshot seq, requiring exact
//     sequence continuity; a gap stops replay at the last trusted record.
//  4. Append into the newest journal file; delete stale generations and
//     snapshots only after recovery fully succeeded.
//
// A crash at any failpoint therefore loses at most the records that were
// never fsynced, never a committed one.
type Log struct {
	dir      string
	j        *Journal
	fp       *FailPoints
	counters *metrics.Counters
}

// Options tunes OpenLog.
type Options struct {
	// FailPoints injects deterministic crash sites; nil disables.
	FailPoints *FailPoints
	// Counters receives journal.* metrics; nil is a no-op sink.
	Counters *metrics.Counters
}

// Recovery reports what OpenLog reconstructed.
type Recovery struct {
	// SnapshotSeq is the sequence the loaded snapshot covers (0 without
	// a snapshot); SnapshotData is its payload (nil without one).
	SnapshotSeq  uint64
	SnapshotData []byte
	// Records is the journal suffix after the snapshot, in order.
	Records []Record
	// TruncatedBytes counts torn-tail bytes dropped across journal files.
	TruncatedBytes int64
	// Skipped names corrupt or stale files recovery ignored.
	Skipped []string
	// LastSeq is the sequence number the log resumes from.
	LastSeq uint64
}

// walName renders the canonical journal file name for a base sequence.
func walName(baseSeq uint64) string { return fmt.Sprintf("wal-%016d.log", baseSeq) }

// parseWalName extracts the base sequence from a journal file name.
func parseWalName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	return seq, err == nil
}

// OpenLog opens (or initializes) a state directory and recovers its
// contents. The returned Recovery is complete before any cleanup runs.
func OpenLog(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec := &Recovery{}

	snap, skipped, err := LatestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	rec.Skipped = skipped
	baseSeq, baseChain := uint64(0), Chain{}
	if snap != nil {
		rec.SnapshotSeq, rec.SnapshotData = snap.Seq, snap.Data
		baseSeq, baseChain = snap.Seq, snap.Chain
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	type wal struct {
		base uint64
		name string
	}
	var wals []wal
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if base, ok := parseWalName(e.Name()); ok {
			wals = append(wals, wal{base, e.Name()})
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i].base < wals[j].base })

	// Scan every generation oldest-first, replaying the suffix past the
	// snapshot with strict sequence continuity across files.
	lastSeq := baseSeq
	var lastValid string // newest journal file that scanned cleanly
	var stale []string   // fully consumed or unreadable generations
	for _, w := range wals {
		path := filepath.Join(dir, w.name)
		sr, err := ScanFile(path)
		if err != nil {
			// A file whose header never hit the disk carries no records;
			// recovery notes and discards it.
			rec.Skipped = append(rec.Skipped, w.name)
			stale = append(stale, w.name)
			continue
		}
		rec.TruncatedBytes += sr.Truncated
		for _, r := range sr.Records {
			if r.Seq <= lastSeq {
				continue // already covered by the snapshot or a prior file
			}
			if r.Seq != lastSeq+1 {
				// A gap between generations: nothing after it can be
				// trusted to be complete.
				rec.Skipped = append(rec.Skipped, fmt.Sprintf("%s: gap at seq %d", w.name, r.Seq))
				break
			}
			rec.Records = append(rec.Records, r)
			lastSeq = r.Seq
		}
		if lastValid != "" {
			stale = append(stale, lastValid)
		}
		lastValid = w.name
	}
	rec.LastSeq = lastSeq

	l := &Log{dir: dir, fp: opts.FailPoints, counters: opts.Counters}
	if lastValid != "" {
		j, sr, err := Open(filepath.Join(dir, lastValid), opts.FailPoints)
		if err != nil {
			return nil, nil, err
		}
		// The active file may end beyond the replayed suffix only if a
		// gap stopped replay; refuse to append after untrusted records.
		if sr.LastSeq != lastSeq {
			j.Close()
			return nil, nil, fmt.Errorf("%w: %s ends at seq %d but replay stopped at %d",
				ErrCorrupt, lastValid, sr.LastSeq, lastSeq)
		}
		l.j = j
	} else {
		j, err := Create(filepath.Join(dir, walName(baseSeq)), baseSeq, baseChain, opts.FailPoints)
		if err != nil {
			return nil, nil, err
		}
		l.j = j
	}

	// Cleanup after full recovery: stale generations, superseded
	// snapshots and abandoned temp files.
	for _, name := range stale {
		os.Remove(filepath.Join(dir, name))
	}
	l.removeStaleSnapshots(rec.SnapshotSeq)
	l.counters.Add(metrics.CounterJournalReplayed, int64(len(rec.Records)))
	l.counters.Add(metrics.CounterJournalTruncatedBytes, rec.TruncatedBytes)
	return l, rec, nil
}

// removeStaleSnapshots deletes snapshots older than keepSeq and
// abandoned temp files.
func (l *Log) removeStaleSnapshots(keepSeq uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(l.dir, e.Name()))
			continue
		}
		if seq, ok := parseSnapshotName(e.Name()); ok && seq < keepSeq {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
}

// Dir returns the state directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the last appended (not necessarily synced) sequence.
func (l *Log) LastSeq() uint64 { return l.j.LastSeq() }

// Append writes the given records and makes them durable with a single
// fsync — the group-commit point every caller batches through. It
// returns the sequence number of the last record.
func (l *Log) Append(records ...[]byte) (uint64, error) {
	start := time.Now()
	var last uint64
	for _, data := range records {
		seq, err := l.j.Append(data)
		if err != nil {
			return 0, err
		}
		last = seq
		l.counters.Inc(metrics.CounterJournalAppends)
	}
	syncStart := time.Now()
	if err := l.j.Sync(); err != nil {
		return 0, err
	}
	now := time.Now()
	l.counters.Inc(metrics.CounterJournalSyncs)
	l.counters.Observe(metrics.HistJournalFsyncMs, float64(now.Sub(syncStart))/float64(time.Millisecond))
	l.counters.Observe(metrics.HistJournalAppendMs, float64(now.Sub(start))/float64(time.Millisecond))
	return last, nil
}

// Snapshot durably publishes the state machine's full state at the
// current sequence and rotates the journal: a fresh generation starts at
// the snapshot, and older generations and snapshots are deleted. On a
// crash mid-rotation the old generation is still complete, so recovery
// replays through it without the snapshot's help.
func (l *Log) Snapshot(data []byte) error {
	if err := l.j.Sync(); err != nil {
		return err
	}
	seq, chain := l.j.LastSeq(), l.j.LastChain()
	if _, err := WriteSnapshot(l.dir, seq, chain, data, l.fp); err != nil {
		return err
	}
	if ce := l.fp.hit(FPSnapshotRename); ce != nil {
		// Crash between publishing the snapshot and rotating: poison the
		// journal so the owner stops, like the process dying here.
		l.j.dead = ce
		return ce
	}
	old := l.j.Path()
	fresh, err := Create(filepath.Join(l.dir, walName(seq)), seq, chain, l.fp)
	if err != nil {
		// The rotation target already existing means no records were
		// appended since the last rotation; the snapshot is durable and
		// keeping the current generation is safe.
		if errors.Is(err, os.ErrExist) {
			return nil
		}
		return err
	}
	l.j.Close()
	l.j = fresh
	if old != fresh.Path() {
		os.Remove(old)
	}
	l.removeStaleSnapshots(seq)
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.counters.Inc(metrics.CounterJournalSnapshots)
	return nil
}

// Close syncs and closes the active journal.
func (l *Log) Close() error { return l.j.Close() }
