package journal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// applyShip is the follower side of the shipping protocol, exactly as
// the cluster layer runs it: the batch must start at the follower's
// applied chain position, verify end to end, and only then append.
func applyShip(fl *Log, b *ShipBatch) error {
	if b.FromSeq != fl.LastSeq() || b.FromChain != fl.LastChain() {
		return fmt.Errorf("ship batch from seq %d does not match applied offset %d", b.FromSeq, fl.LastSeq())
	}
	if err := VerifyShip(b); err != nil {
		return err
	}
	datas := make([][]byte, len(b.Records))
	for i, r := range b.Records {
		datas[i] = r.Data
	}
	if len(datas) == 0 {
		return nil
	}
	if _, err := fl.Append(datas...); err != nil {
		return err
	}
	if fl.LastChain() != b.EndChain {
		return fmt.Errorf("applied chain diverged from shipped EndChain")
	}
	return nil
}

// cloneBatch deep-copies a batch so corruption cases cannot leak into
// each other or into the pristine re-request.
func cloneBatch(b *ShipBatch) *ShipBatch {
	c := *b
	c.Records = make([]Record, len(b.Records))
	for i, r := range b.Records {
		c.Records[i] = Record{Seq: r.Seq, Data: bytes.Clone(r.Data)}
	}
	return &c
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	recs := make([][]byte, 0, n)
	for i := start; i < start+n; i++ {
		recs = append(recs, []byte(fmt.Sprintf("cmd-%04d", i)))
	}
	if _, err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
}

func TestShipRoundTrip(t *testing.T) {
	primary, _ := openDir(t, t.TempDir(), Options{})
	defer primary.Close()
	follower, _ := openDir(t, t.TempDir(), Options{})
	defer follower.Close()

	appendN(t, primary, 0, 10)
	b, err := primary.ReadSince(0, 0)
	if err != nil {
		t.Fatalf("ReadSince(0): %v", err)
	}
	if len(b.Records) != 10 || b.FromSeq != 0 || b.EndSeq != 10 {
		t.Fatalf("batch = from %d end %d with %d records", b.FromSeq, b.EndSeq, len(b.Records))
	}
	if err := applyShip(follower, b); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if follower.LastSeq() != primary.LastSeq() || follower.LastChain() != primary.LastChain() {
		t.Fatalf("follower at (%d) after apply, primary at (%d)", follower.LastSeq(), primary.LastSeq())
	}

	// Incremental catch-up continues from the acked offset.
	appendN(t, primary, 10, 5)
	b2, err := primary.ReadSince(follower.LastSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Records) != 5 {
		t.Fatalf("incremental batch has %d records, want 5", len(b2.Records))
	}
	if err := applyShip(follower, b2); err != nil {
		t.Fatalf("incremental apply: %v", err)
	}
	if follower.LastChain() != primary.LastChain() {
		t.Fatal("chains diverged after incremental ship")
	}

	// A caught-up follower gets an empty batch bracketed by its position.
	b3, err := primary.ReadSince(primary.LastSeq(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b3.Records) != 0 || b3.EndSeq != b3.FromSeq || b3.EndChain != b3.FromChain {
		t.Fatalf("caught-up batch = %+v", b3)
	}
}

func TestShipBatchSizeLimit(t *testing.T) {
	primary, _ := openDir(t, t.TempDir(), Options{})
	defer primary.Close()
	appendN(t, primary, 0, 10)

	b, err := primary.ReadSince(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 3 || b.EndSeq != 3 {
		t.Fatalf("limited batch = end %d with %d records", b.EndSeq, len(b.Records))
	}
	if err := VerifyShip(b); err != nil {
		t.Fatalf("limited batch must verify: %v", err)
	}
	// The next window picks up exactly where the limit cut off.
	b2, err := primary.ReadSince(b.EndSeq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b2.FromSeq != 3 || b2.FromChain != b.EndChain || b2.Records[0].Seq != 4 {
		t.Fatalf("windowed continuation = from %d first %d", b2.FromSeq, b2.Records[0].Seq)
	}
}

func TestShipReadSinceMidChain(t *testing.T) {
	primary, _ := openDir(t, t.TempDir(), Options{})
	defer primary.Close()
	appendN(t, primary, 0, 8)

	// Reading from a mid-chain offset reconstructs FromChain by folding
	// the prefix, so a batch from any acked offset verifies.
	b, err := primary.ReadSince(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.FromSeq != 5 || len(b.Records) != 3 || b.Records[0].Seq != 6 {
		t.Fatalf("mid-chain batch = %+v", b)
	}
	if err := VerifyShip(b); err != nil {
		t.Fatalf("mid-chain batch must verify: %v", err)
	}
}

func TestShipCompactedFallsBackToSnapshot(t *testing.T) {
	primary, _ := openDir(t, t.TempDir(), Options{})
	defer primary.Close()
	appendN(t, primary, 0, 10)
	if err := primary.Snapshot([]byte("state@10")); err != nil {
		t.Fatal(err)
	}
	appendN(t, primary, 10, 4)

	// Offsets inside the compacted prefix cannot ship incrementally.
	if _, err := primary.ReadSince(5, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadSince(5) after compaction = %v, want ErrCompacted", err)
	}
	// The snapshot base itself still ships (it is the new generation's base).
	b, err := primary.ReadSince(10, 0)
	if err != nil {
		t.Fatalf("ReadSince(snapshot base): %v", err)
	}
	if len(b.Records) != 4 || b.Records[0].Seq != 11 {
		t.Fatalf("post-snapshot batch = %+v", b)
	}
	if err := VerifyShip(b); err != nil {
		t.Fatal(err)
	}

	// Bootstrap a follower from the snapshot and resume shipping.
	snap, _, err := LatestSnapshot(primary.Dir())
	if err != nil || snap == nil {
		t.Fatalf("LatestSnapshot: %v %v", snap, err)
	}
	fdir := t.TempDir()
	if err := Bootstrap(fdir, snap); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	fl, rec := openDir(t, fdir, Options{})
	defer fl.Close()
	if rec.SnapshotSeq != 10 || string(rec.SnapshotData) != "state@10" {
		t.Fatalf("bootstrapped recovery = %+v", rec)
	}
	if err := applyShip(fl, b); err != nil {
		t.Fatalf("apply after bootstrap: %v", err)
	}
	if fl.LastSeq() != primary.LastSeq() || fl.LastChain() != primary.LastChain() {
		t.Fatal("bootstrapped follower did not converge with primary")
	}
}

// TestShipTornBatchTable mirrors the torn-tail recovery tests at the
// batch level: every way a shipped batch can arrive damaged — truncated,
// reordered, spliced, bit-flipped, or claiming the wrong offsets — must
// be rejected by chain verification without moving the follower, and the
// follower's re-request from its applied offset must then apply cleanly.
func TestShipTornBatchTable(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(b *ShipBatch)
	}{
		{"truncated tail", func(b *ShipBatch) {
			b.Records = b.Records[:len(b.Records)-2]
		}},
		{"truncated tail with forged end seq", func(b *ShipBatch) {
			b.Records = b.Records[:len(b.Records)-2]
			b.EndSeq = b.Records[len(b.Records)-1].Seq
		}},
		{"bit flip in payload", func(b *ShipBatch) {
			b.Records[2].Data[0] ^= 0x40
		}},
		{"reordered records", func(b *ShipBatch) {
			b.Records[1], b.Records[2] = b.Records[2], b.Records[1]
		}},
		{"dropped middle record", func(b *ShipBatch) {
			b.Records = append(b.Records[:2:2], b.Records[3:]...)
		}},
		{"spliced foreign record", func(b *ShipBatch) {
			b.Records[3] = Record{Seq: b.Records[3].Seq, Data: []byte("forged")}
		}},
		{"forged from chain", func(b *ShipBatch) {
			b.FromChain[0] ^= 0x01
		}},
		{"forged end chain", func(b *ShipBatch) {
			b.EndChain[7] ^= 0x80
		}},
		{"offset behind applied", func(b *ShipBatch) {
			b.FromSeq--
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			primary, _ := openDir(t, t.TempDir(), Options{})
			defer primary.Close()
			follower, _ := openDir(t, t.TempDir(), Options{})
			defer follower.Close()

			// Follower is caught up to seq 3; the batch ships 4..9.
			appendN(t, primary, 0, 3)
			sync, err := primary.ReadSince(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := applyShip(follower, sync); err != nil {
				t.Fatal(err)
			}
			appendN(t, primary, 3, 6)
			pristine, err := primary.ReadSince(follower.LastSeq(), 0)
			if err != nil {
				t.Fatal(err)
			}

			damaged := cloneBatch(pristine)
			tc.corrupt(damaged)
			appliedBefore, chainBefore := follower.LastSeq(), follower.LastChain()
			if err := applyShip(follower, damaged); err == nil {
				t.Fatal("damaged batch applied without error")
			}
			if follower.LastSeq() != appliedBefore || follower.LastChain() != chainBefore {
				t.Fatalf("damaged batch moved the follower: seq %d -> %d", appliedBefore, follower.LastSeq())
			}

			// Re-request from the unchanged applied offset heals the stream.
			retry, err := primary.ReadSince(follower.LastSeq(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := applyShip(follower, retry); err != nil {
				t.Fatalf("re-requested batch failed: %v", err)
			}
			if follower.LastSeq() != primary.LastSeq() || follower.LastChain() != primary.LastChain() {
				t.Fatal("follower did not converge after retry")
			}
		})
	}
}
