package journal

import (
	"encoding/json"
	"testing"
)

func TestEventRoundTrip(t *testing.T) {
	type payload struct {
		Key   string  `json:"key"`
		Count int     `json:"count"`
		Kbps  float64 `json:"kbps"`
	}
	in := payload{Key: "r1-abc", Count: 7, Kbps: 3000}
	rec, err := EncodeEvent("attach", in)
	if err != nil {
		t.Fatalf("EncodeEvent: %v", err)
	}
	kind, data, err := DecodeEvent(rec)
	if err != nil {
		t.Fatalf("DecodeEvent: %v", err)
	}
	if kind != "attach" {
		t.Fatalf("kind = %q, want attach", kind)
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal payload: %v", err)
	}
	if out != in {
		t.Fatalf("payload round-trip: got %+v, want %+v", out, in)
	}
}

func TestEventRejectsEmptyKindAndGarbage(t *testing.T) {
	if _, err := EncodeEvent("", 1); err == nil {
		t.Fatal("EncodeEvent accepted an empty kind")
	}
	if _, _, err := DecodeEvent([]byte("not json")); err == nil {
		t.Fatal("DecodeEvent accepted garbage")
	}
	if _, _, err := DecodeEvent([]byte(`{"data":{}}`)); err == nil {
		t.Fatal("DecodeEvent accepted a kindless record")
	}
}

func TestEventUnknownKindSurvivesDecode(t *testing.T) {
	// Forward compatibility: a record written by a newer writer decodes
	// cleanly; the replayer sees the unknown kind and decides.
	rec, err := EncodeEvent("future-kind", map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	kind, data, err := DecodeEvent(rec)
	if err != nil || kind != "future-kind" || len(data) == 0 {
		t.Fatalf("DecodeEvent = (%q, %d bytes, %v)", kind, len(data), err)
	}
}
