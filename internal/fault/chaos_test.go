package fault

// Tests for the correlated backbone event class and the changed-link
// reduction the storm controller consumes.

import (
	"reflect"
	"testing"

	"qoschain/internal/overlay"
)

// backboneNet is two regions: edge hosts e1/e2 and core hosts c1/c2.
func backboneNet() *overlay.Network {
	net := overlay.New()
	net.AddLink("e1", "c1", 1000, 5, 0)
	net.AddLink("e2", "c1", 1000, 5, 0)
	net.AddLink("c1", "c2", 2000, 5, 0)
	return net
}

var backboneRegions = map[string]string{"e1": "edge", "e2": "edge"}

func TestBackboneEventIsCorrelated(t *testing.T) {
	net := backboneNet()
	schedule := RandomSchedule(ChaosSpec{
		Seed: 11, Steps: 1, BackboneRate: 1, Regions: backboneRegions,
	}, net, nil)
	if len(schedule) == 0 {
		t.Fatal("BackboneRate=1 produced no faults")
	}
	group := schedule[0].Group
	if group == "" {
		t.Fatal("backbone fault carries no Group tag")
	}
	region := ""
	for _, f := range schedule {
		if f.Kind != BandwidthCollapse {
			t.Fatalf("backbone event emitted %s, want only bandwidth collapses", f.Kind)
		}
		// Every fault of the event shares factor, group, and recovery —
		// the links brown out and recover together.
		if f.Group != group || f.Factor != schedule[0].Factor || f.RecoverAfter != schedule[0].RecoverAfter {
			t.Fatalf("uncorrelated fault in backbone event: %+v vs %+v", f, schedule[0])
		}
		if f.Factor < 0.35 || f.Factor > 0.65 {
			t.Fatalf("backbone factor %.3f outside the brownout band [0.35, 0.65]", f.Factor)
		}
		_ = region
	}
	// The region draw picked either "edge" (2 links) or "core" (all 3:
	// every link touches a core endpoint); both are correlated events.
	if n := len(schedule); n != 2 && n != 3 {
		t.Fatalf("backbone event hit %d links, want 2 (edge) or 3 (core)", n)
	}
}

func TestBackboneScheduleDeterministic(t *testing.T) {
	spec := ChaosSpec{Seed: 23, Steps: 5, BackboneRate: 0.8, Regions: backboneRegions}
	a := RandomSchedule(spec, backboneNet(), nil)
	b := RandomSchedule(spec, backboneNet(), nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different backbone schedules")
	}
	spec.Seed = 24
	c := RandomSchedule(spec, backboneNet(), nil)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBackboneRecoveryRestoresCapacity(t *testing.T) {
	net := backboneNet()
	schedule := RandomSchedule(ChaosSpec{
		Seed: 11, Steps: 1, BackboneRate: 1, Regions: backboneRegions,
		MinOutage: 1, MaxOutage: 1,
	}, net, nil)
	inj, err := NewInjector(net, nil, schedule)
	if err != nil {
		t.Fatal(err)
	}
	fired := inj.Step() // the collapse
	if len(fired) == 0 {
		t.Fatal("no faults fired at step 1")
	}
	capAfter, _, _ := net.Capacity(fired[0].From, fired[0].To)
	if capAfter >= 1000 {
		t.Fatalf("capacity %0.f not collapsed", capAfter)
	}
	recovered := inj.Step() // the scheduled inverse, one step later
	if len(recovered) != len(fired) {
		t.Fatalf("recovery fired %d faults, collapse fired %d", len(recovered), len(fired))
	}
	for _, f := range fired {
		capKbps, _, ok := net.Capacity(f.From, f.To)
		if !ok || capKbps != 1000 && capKbps != 2000 {
			t.Fatalf("link %s->%s capacity %.0f not restored", f.From, f.To, capKbps)
		}
	}
	// The inverse faults keep the event's group, so observers can
	// correlate recovery with the collapse.
	if recovered[0].Group != fired[0].Group {
		t.Fatalf("recovery group %q != collapse group %q", recovered[0].Group, fired[0].Group)
	}
}

func TestChangedLinksReduction(t *testing.T) {
	net := backboneNet()
	fired := []Fault{
		{Kind: BandwidthCollapse, From: "e1", To: "c1", Factor: 0.5},
		{Kind: BandwidthCollapse, From: "e1", To: "c1", Factor: 0.5}, // duplicate
		{Kind: LossSpike, From: "c1", To: "c2", LossRate: 0.4},
		{Kind: HostCrash, Host: "e2"}, // expands to e2's links
		{Kind: ServiceDown, Service: "t1"},
		{Kind: HostCrash, Host: "ghost"}, // unknown host: contributes nothing
	}
	got := ChangedLinks(fired, net)
	want := []overlay.LinkRef{
		{From: "c1", To: "c2"},
		{From: "e1", To: "c1"},
		{From: "e2", To: "c1"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ChangedLinks = %v, want %v", got, want)
	}
	if len(ChangedLinks(nil, net)) != 0 {
		t.Fatal("ChangedLinks(nil) should be empty")
	}
}
