package fault

import (
	"sort"

	"qoschain/internal/overlay"
)

// ChangedLinks reduces a batch of fired faults to the set of directed
// links whose QoS they changed — the unit the storm controller's
// incremental graph repair consumes. Link-scoped faults contribute their
// one link; host-scoped faults expand to every link touching the host
// (looked up on the network, so links of hosts unknown to it contribute
// nothing); service faults change no link. The result is deduplicated
// and sorted.
func ChangedLinks(fired []Fault, net *overlay.Network) []overlay.LinkRef {
	seen := make(map[overlay.LinkRef]bool)
	for _, f := range fired {
		switch f.Kind {
		case LinkDown, LinkUp, BandwidthCollapse, restoreBandwidth, LossSpike, DelaySpike:
			seen[overlay.LinkRef{From: f.From, To: f.To}] = true
		case HostCrash, HostRecover:
			for _, l := range net.LinksOf(f.Host) {
				seen[l] = true
			}
		}
	}
	refs := make([]overlay.LinkRef, 0, len(seen))
	for l := range seen {
		refs = append(refs, l)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].From != refs[j].From {
			return refs[i].From < refs[j].From
		}
		return refs[i].To < refs[j].To
	})
	return refs
}
