package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"qoschain/internal/overlay"
	"qoschain/internal/service"
)

// ChaosSpec parameterizes RandomSchedule. Zero-valued rates disable that
// fault class; all randomness flows from Seed, so the same spec over the
// same deployment always produces the same schedule.
type ChaosSpec struct {
	// Seed drives every random draw.
	Seed int64
	// Steps is the virtual-time horizon faults are scheduled within.
	Steps int
	// HostCrashRate is the per-step probability of crashing one random
	// eligible host.
	HostCrashRate float64
	// LinkFlapRate is the per-step probability of failing one random link.
	LinkFlapRate float64
	// BandwidthCollapseRate is the per-step probability of collapsing one
	// random link's capacity.
	BandwidthCollapseRate float64
	// ServiceChurnRate is the per-step probability of deregistering one
	// random service.
	ServiceChurnRate float64
	// LossSpikeRate is the per-step probability of spiking one random
	// link's loss rate.
	LossSpikeRate float64
	// BackboneRate is the per-step probability of a correlated backbone
	// event: every link touching one randomly chosen region degrades at
	// once — one BandwidthCollapse per link, all sharing a Group tag, the
	// same collapse factor and the same recovery step. This is the
	// realistic correlated failure a storm controller must absorb, as
	// opposed to the independent single-link faults above.
	BackboneRate float64
	// Regions maps host → region name for backbone events. A link belongs
	// to every region either endpoint is in; hosts absent from the map
	// fall into the region "core". Ignored when BackboneRate is zero.
	Regions map[string]string
	// MinOutage/MaxOutage bound each fault's RecoverAfter (steps).
	// Defaults: 2 and 6.
	MinOutage int
	MaxOutage int
	// Protected hosts are never crashed (typically the sender and
	// receiver endpoints); their links may still fail.
	Protected []string
}

// RandomSchedule derives a deterministic fault schedule from the spec
// against the deployment's current topology and service pool. Every
// fault is a bounded outage (RecoverAfter set), so a long enough run
// always converges back to health.
func RandomSchedule(spec ChaosSpec, net *overlay.Network, svcs []*service.Service) []Fault {
	rng := rand.New(rand.NewSource(spec.Seed))
	minOut, maxOut := spec.MinOutage, spec.MaxOutage
	if minOut <= 0 {
		minOut = 2
	}
	if maxOut < minOut {
		maxOut = minOut + 4
	}
	outage := func() int { return minOut + rng.Intn(maxOut-minOut+1) }

	protected := make(map[string]bool, len(spec.Protected))
	for _, h := range spec.Protected {
		protected[h] = true
	}
	var hosts []string
	for _, h := range net.Nodes() { // Nodes() is sorted: deterministic
		if !protected[h] {
			hosts = append(hosts, h)
		}
	}
	snap := net.Snapshot()
	links := snap.Links // deterministic order from Snapshot

	// Backbone setup: the sorted list of regions that actually own links,
	// so the per-step region draw is deterministic and never a no-op.
	regionOf := func(host string) string {
		if r, ok := spec.Regions[host]; ok {
			return r
		}
		return "core"
	}
	var regions []string
	if spec.BackboneRate > 0 {
		seen := make(map[string]bool)
		for _, l := range links {
			seen[regionOf(l.From)] = true
			seen[regionOf(l.To)] = true
		}
		for r := range seen {
			regions = append(regions, r)
		}
		sort.Strings(regions)
	}

	var schedule []Fault
	for step := 1; step <= spec.Steps; step++ {
		if len(hosts) > 0 && rng.Float64() < spec.HostCrashRate {
			schedule = append(schedule, Fault{
				AtStep: step, Kind: HostCrash,
				Host:         hosts[rng.Intn(len(hosts))],
				RecoverAfter: outage(),
			})
		}
		if len(links) > 0 && rng.Float64() < spec.LinkFlapRate {
			l := links[rng.Intn(len(links))]
			schedule = append(schedule, Fault{
				AtStep: step, Kind: LinkDown,
				From: l.From, To: l.To,
				RecoverAfter: outage(),
			})
		}
		if len(links) > 0 && rng.Float64() < spec.BandwidthCollapseRate {
			l := links[rng.Intn(len(links))]
			schedule = append(schedule, Fault{
				AtStep: step, Kind: BandwidthCollapse,
				From: l.From, To: l.To,
				Factor:       0.05 + 0.20*rng.Float64(), // collapse to 5–25 %
				RecoverAfter: outage(),
			})
		}
		if len(svcs) > 0 && rng.Float64() < spec.ServiceChurnRate {
			schedule = append(schedule, Fault{
				AtStep: step, Kind: ServiceDown,
				Service:      svcs[rng.Intn(len(svcs))].ID,
				RecoverAfter: outage(),
			})
		}
		if len(links) > 0 && rng.Float64() < spec.LossSpikeRate {
			l := links[rng.Intn(len(links))]
			schedule = append(schedule, Fault{
				AtStep: step, Kind: LossSpike,
				From: l.From, To: l.To,
				LossRate:     0.2 + 0.6*rng.Float64(),
				RecoverAfter: outage(),
			})
		}
		if len(regions) > 0 && rng.Float64() < spec.BackboneRate {
			region := regions[rng.Intn(len(regions))]
			// One factor, one outage, one group for the whole event: the
			// links degrade and recover together, the way a shared
			// backbone failing under them would look. The factor is
			// shallower than a single-link collapse (35–65 % instead of
			// 5–25 %) — a backbone brownout, not an outage, so admitted
			// traffic still fits and the event exercises re-planning
			// rather than topology loss.
			factor := 0.35 + 0.30*rng.Float64()
			recover := outage()
			group := fmt.Sprintf("backbone-%s-t%d", region, step)
			for _, l := range links {
				if regionOf(l.From) != region && regionOf(l.To) != region {
					continue
				}
				schedule = append(schedule, Fault{
					AtStep: step, Kind: BandwidthCollapse,
					From: l.From, To: l.To,
					Factor:       factor,
					RecoverAfter: recover,
					Group:        group,
				})
			}
		}
	}
	return schedule
}
