package fault

import (
	"reflect"
	"testing"

	"qoschain/internal/media"
	"qoschain/internal/overlay"
	"qoschain/internal/service"
)

func testNet() *overlay.Network {
	n := overlay.New()
	n.AddDuplexLink("s", "p1", 1000, 10, 0)
	n.AddDuplexLink("s", "p2", 800, 20, 0)
	n.AddDuplexLink("p1", "r", 1000, 10, 0)
	n.AddDuplexLink("p2", "r", 800, 20, 0)
	return n
}

func testSvcs() []*service.Service {
	t1 := service.FormatConverter("t1", media.Opaque(1), media.Opaque(2))
	t1.Host = "p1"
	t2 := service.FormatConverter("t2", media.Opaque(1), media.Opaque(2))
	t2.Host = "p2"
	return []*service.Service{t1, t2}
}

func TestServiceSetAliveTracksDownMarks(t *testing.T) {
	set := NewServiceSet(testSvcs())
	if len(set.Alive()) != 2 {
		t.Fatalf("alive = %d, want 2", len(set.Alive()))
	}
	set.SetHostDown("p1", true)
	alive := set.Alive()
	if len(alive) != 1 || alive[0].ID != "t2" {
		t.Fatalf("alive after host down = %v", alive)
	}
	set.SetServiceDown("t2", true)
	if len(set.Alive()) != 0 {
		t.Fatal("expected empty pool")
	}
	if got := set.Down(); len(got) != 2 || got[0] != "t1" || got[1] != "t2" {
		t.Fatalf("down = %v", got)
	}
	set.SetHostDown("p1", false)
	set.SetServiceDown("t2", false)
	if len(set.Alive()) != 2 {
		t.Fatal("recovery must restore the pool")
	}
}

func TestInjectorHostCrashAndAutoRecover(t *testing.T) {
	net := testNet()
	set := NewServiceSet(testSvcs())
	inj, err := NewInjector(net, set, []Fault{
		{AtStep: 2, Kind: HostCrash, Host: "p1", RecoverAfter: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired := inj.Step(); len(fired) != 0 {
		t.Fatalf("step 1 fired %v", fired)
	}
	fired := inj.Step() // step 2: crash
	if len(fired) != 1 || fired[0].Kind != HostCrash {
		t.Fatalf("step 2 fired %v", fired)
	}
	if !net.HostDown("p1") || len(set.Alive()) != 1 {
		t.Fatal("crash must take down host and its services")
	}
	inj.Step() // 3
	inj.Step() // 4
	if !net.HostDown("p1") {
		t.Fatal("recovered too early")
	}
	fired = inj.Step() // step 5 = 2+3: recover
	if len(fired) != 1 || fired[0].Kind != HostRecover {
		t.Fatalf("step 5 fired %v", fired)
	}
	if net.HostDown("p1") || len(set.Alive()) != 2 {
		t.Fatal("recovery must restore host and services")
	}
	if !inj.Done() {
		t.Fatal("injector must report done")
	}
}

func TestInjectorBandwidthCollapseRestoresOriginal(t *testing.T) {
	net := testNet()
	inj, err := NewInjector(net, nil, []Fault{
		{AtStep: 1, Kind: BandwidthCollapse, From: "s", To: "p1", Factor: 0.1, RecoverAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Step()
	if bw, _, _, _ := net.Link("s", "p1"); bw != 100 {
		t.Fatalf("collapsed bw = %v, want 100", bw)
	}
	inj.Step()
	inj.Step()
	if bw, _, _, _ := net.Link("s", "p1"); bw != 1000 {
		t.Fatalf("restored bw = %v, want 1000", bw)
	}
}

func TestInjectorLossAndDelaySpikesRestore(t *testing.T) {
	net := testNet()
	inj, err := NewInjector(net, nil, []Fault{
		{AtStep: 1, Kind: LossSpike, From: "s", To: "p1", LossRate: 0.5, RecoverAfter: 1},
		{AtStep: 1, Kind: DelaySpike, From: "s", To: "p1", DelayMs: 400, RecoverAfter: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Step()
	if _, delay, loss, _ := net.Link("s", "p1"); loss != 0.5 || delay != 400 {
		t.Fatalf("spiked link = delay %v loss %v", delay, loss)
	}
	inj.Step()
	if _, delay, loss, _ := net.Link("s", "p1"); loss != 0 || delay != 10 {
		t.Fatalf("restored link = delay %v loss %v", delay, loss)
	}
}

func TestInjectorRedundantFaultsAreNoOps(t *testing.T) {
	net := testNet()
	set := NewServiceSet(testSvcs())
	inj, err := NewInjector(net, set, []Fault{
		{AtStep: 1, Kind: HostCrash, Host: "p1"},
		{AtStep: 2, Kind: HostCrash, Host: "p1"},        // already down
		{AtStep: 2, Kind: LinkDown, From: "x", To: "y"}, // unknown link
		{AtStep: 3, Kind: HostRecover, Host: "p2"},      // not down
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Step()
	if fired := inj.Step(); len(fired) != 0 {
		t.Fatalf("redundant faults fired %v", fired)
	}
	if fired := inj.Step(); len(fired) != 0 {
		t.Fatalf("bogus recover fired %v", fired)
	}
	if got := inj.Applied(); len(got) != 1 {
		t.Fatalf("applied = %v", got)
	}
}

func TestInjectorRejectsInvalidSchedule(t *testing.T) {
	for _, f := range []Fault{
		{AtStep: 0, Kind: HostCrash, Host: "p1"},
		{AtStep: 1, Kind: HostCrash},
		{AtStep: 1, Kind: LinkDown, From: "a"},
		{AtStep: 1, Kind: BandwidthCollapse, From: "a", To: "b"},
		{AtStep: 1, Kind: LossSpike, From: "a", To: "b", LossRate: 1.5},
		{AtStep: 1, Kind: ServiceDown},
		{AtStep: 1, Kind: Kind("bogus"), Host: "p1"},
		{AtStep: 1, Kind: HostCrash, Host: "p1", RecoverAfter: -1},
	} {
		if _, err := NewInjector(testNet(), nil, []Fault{f}); err == nil {
			t.Errorf("schedule %+v must be rejected", f)
		}
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	spec := ChaosSpec{
		Seed: 42, Steps: 50,
		HostCrashRate: 0.2, LinkFlapRate: 0.2, BandwidthCollapseRate: 0.2,
		ServiceChurnRate: 0.2, LossSpikeRate: 0.2,
		Protected: []string{"s", "r"},
	}
	a := RandomSchedule(spec, testNet(), testSvcs())
	b := RandomSchedule(spec, testNet(), testSvcs())
	if len(a) == 0 {
		t.Fatal("expected a non-empty schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce identical schedules")
	}
	spec.Seed = 43
	c := RandomSchedule(spec, testNet(), testSvcs())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should diverge")
	}
	for _, f := range a {
		if f.Host == "s" || f.Host == "r" {
			t.Fatalf("protected host crashed: %v", f)
		}
		if f.RecoverAfter <= 0 {
			t.Fatalf("unbounded outage: %v", f)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("generated fault invalid: %v", err)
		}
	}
}

func TestInjectorScheduleRunsToCompletion(t *testing.T) {
	net := testNet()
	set := NewServiceSet(testSvcs())
	spec := ChaosSpec{
		Seed: 7, Steps: 40,
		HostCrashRate: 0.3, LinkFlapRate: 0.3, ServiceChurnRate: 0.3,
		Protected: []string{"s", "r"},
	}
	inj, err := NewInjector(net, set, RandomSchedule(spec, net, set.All()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.Steps+20 && !inj.Done(); i++ {
		inj.Step()
	}
	if !inj.Done() {
		t.Fatal("bounded outages must all recover")
	}
	if len(net.DownHosts()) != 0 || len(set.Down()) != 0 {
		t.Fatalf("residual failures: hosts=%v svcs=%v", net.DownHosts(), set.Down())
	}
}
