// Package fault injects deterministic, scriptable failures into a live
// deployment: host crashes and recoveries, link failures and flaps,
// bandwidth collapses, loss and latency spikes, and service
// deregistrations. It drives the overlay.Network failure states and a
// live ServiceSet over virtual time, the same clock the session layer
// and the simulator step, so every chaos experiment is reproducible from
// a seed.
//
// The injector applies a Schedule — either hand-written (the chaos
// equivalent of an overlay.Trace) or generated from a seed by
// RandomSchedule — and supports bounded outages: a Fault with
// RecoverAfter > 0 automatically enqueues its inverse that many steps
// later.
package fault

import (
	"fmt"
	"sort"
	"sync"

	"qoschain/internal/overlay"
	"qoschain/internal/service"
)

// Kind names a fault variant.
type Kind string

const (
	// HostCrash takes a host down: its links stop carrying traffic and
	// its services leave the live pool.
	HostCrash Kind = "hostcrash"
	// HostRecover reverses a HostCrash.
	HostRecover Kind = "hostrecover"
	// LinkDown fails one directed link, retaining its configuration.
	LinkDown Kind = "linkdown"
	// LinkUp reverses a LinkDown.
	LinkUp Kind = "linkup"
	// BandwidthCollapse multiplies a link's capacity by Factor (< 1 for
	// a collapse; the inverse restores the original capacity).
	BandwidthCollapse Kind = "bandwidth"
	// LossSpike sets a link's loss rate to LossRate (inverse restores
	// the previous rate).
	LossSpike Kind = "loss"
	// DelaySpike sets a link's delay to DelayMs (inverse restores the
	// previous delay).
	DelaySpike Kind = "delay"
	// ServiceDown deregisters a trans-coding service from the live pool.
	ServiceDown Kind = "servicedown"
	// ServiceUp reverses a ServiceDown.
	ServiceUp Kind = "serviceup"
)

// Fault is one scheduled failure (or recovery).
type Fault struct {
	// AtStep is the virtual-time step the fault fires at (1-based).
	AtStep int `json:"atStep"`
	// Kind selects the variant and which of the following fields apply.
	Kind Kind `json:"kind"`
	// Host names the target of HostCrash/HostRecover.
	Host string `json:"host,omitempty"`
	// From/To identify the link for link-scoped faults.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Service names the target of ServiceDown/ServiceUp.
	Service service.ID `json:"service,omitempty"`
	// Factor is BandwidthCollapse's capacity multiplier.
	Factor float64 `json:"factor,omitempty"`
	// LossRate is LossSpike's new loss rate.
	LossRate float64 `json:"lossRate,omitempty"`
	// DelayMs is DelaySpike's new delay.
	DelayMs float64 `json:"delayMs,omitempty"`
	// RecoverAfter > 0 auto-schedules the inverse fault that many steps
	// after this one fires — a bounded outage.
	RecoverAfter int `json:"recoverAfter,omitempty"`
	// Group correlates faults born from one event: a backbone event that
	// degrades every link of a region stamps the same Group on each
	// per-link fault, so consumers (the storm controller, reports) can
	// treat them as one incident. Empty for independent faults.
	Group string `json:"group,omitempty"`
}

// String renders the fault compactly for logs and reports.
func (f Fault) String() string {
	switch f.Kind {
	case HostCrash, HostRecover:
		return fmt.Sprintf("t=%d %s %s", f.AtStep, f.Kind, f.Host)
	case ServiceDown, ServiceUp:
		return fmt.Sprintf("t=%d %s %s", f.AtStep, f.Kind, f.Service)
	case BandwidthCollapse:
		return fmt.Sprintf("t=%d %s %s->%s x%.2f", f.AtStep, f.Kind, f.From, f.To, f.Factor)
	case LossSpike:
		return fmt.Sprintf("t=%d %s %s->%s %.2f", f.AtStep, f.Kind, f.From, f.To, f.LossRate)
	case DelaySpike:
		return fmt.Sprintf("t=%d %s %s->%s %.0fms", f.AtStep, f.Kind, f.From, f.To, f.DelayMs)
	default:
		return fmt.Sprintf("t=%d %s %s->%s", f.AtStep, f.Kind, f.From, f.To)
	}
}

// Validate checks that the fault names the fields its kind needs.
func (f Fault) Validate() error {
	if f.AtStep < 1 {
		return fmt.Errorf("fault: step %d < 1", f.AtStep)
	}
	switch f.Kind {
	case HostCrash, HostRecover:
		if f.Host == "" {
			return fmt.Errorf("fault: %s needs a host", f.Kind)
		}
	case LinkDown, LinkUp, BandwidthCollapse, LossSpike, DelaySpike:
		if f.From == "" || f.To == "" {
			return fmt.Errorf("fault: %s needs from/to", f.Kind)
		}
		if f.Kind == BandwidthCollapse && f.Factor <= 0 {
			return fmt.Errorf("fault: bandwidth collapse needs a positive factor")
		}
		if f.Kind == LossSpike && (f.LossRate < 0 || f.LossRate > 1) {
			return fmt.Errorf("fault: loss rate %v outside [0,1]", f.LossRate)
		}
	case ServiceDown, ServiceUp:
		if f.Service == "" {
			return fmt.Errorf("fault: %s needs a service", f.Kind)
		}
	default:
		return fmt.Errorf("fault: unknown kind %q", f.Kind)
	}
	if f.RecoverAfter < 0 {
		return fmt.Errorf("fault: negative RecoverAfter")
	}
	return nil
}

// ServiceSet is a live, concurrency-safe view over a deployed service
// pool: fault injection marks services (or whole hosts) down and Alive
// serves the surviving subset — what the session layer composes against.
type ServiceSet struct {
	mu       sync.RWMutex
	all      []*service.Service
	svcDown  map[service.ID]bool
	hostDown map[string]bool
}

// NewServiceSet wraps a deployed pool. The slice is not copied; callers
// must not mutate it afterwards.
func NewServiceSet(svcs []*service.Service) *ServiceSet {
	return &ServiceSet{
		all:      svcs,
		svcDown:  make(map[service.ID]bool),
		hostDown: make(map[string]bool),
	}
}

// All returns the full pool, dead or alive — host lookups for chain
// bookkeeping need the complete directory.
func (s *ServiceSet) All() []*service.Service {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.all
}

// Alive returns the services currently registered and hosted on healthy
// hosts, in declaration order.
func (s *ServiceSet) Alive() []*service.Service {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*service.Service, 0, len(s.all))
	for _, svc := range s.all {
		if s.svcDown[svc.ID] || s.hostDown[svc.Host] {
			continue
		}
		out = append(out, svc)
	}
	return out
}

// SetServiceDown (de)registers one service.
func (s *ServiceSet) SetServiceDown(id service.ID, down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if down {
		s.svcDown[id] = true
	} else {
		delete(s.svcDown, id)
	}
}

// SetHostDown marks every service on the host as (un)available.
func (s *ServiceSet) SetHostDown(host string, down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if down {
		s.hostDown[host] = true
	} else {
		delete(s.hostDown, host)
	}
}

// Down returns the IDs of currently unavailable services (deregistered
// or on a crashed host), sorted.
func (s *ServiceSet) Down() []service.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []service.ID
	for _, svc := range s.all {
		if s.svcDown[svc.ID] || s.hostDown[svc.Host] {
			out = append(out, svc.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Injector applies a fault schedule against a network and a service set
// as virtual time advances. It tolerates redundant faults (crashing a
// crashed host, deregistering an unknown service): chaos schedules are
// generated, not curated, and a no-op failure is not an error.
type Injector struct {
	net  *overlay.Network
	svcs *ServiceSet

	schedule []Fault // sorted by AtStep, stable
	step     int
	next     int
	pending  []Fault // auto-recoveries enqueued by RecoverAfter
	applied  []Fault // log of everything that fired

	// saved state for inverse faults, keyed by link
	savedBandwidth map[[2]string]float64
	savedLoss      map[[2]string]float64
	savedDelay     map[[2]string]float64
}

// NewInjector builds an injector over the network and (optionally nil)
// service set. The schedule is validated and sorted by step.
func NewInjector(net *overlay.Network, svcs *ServiceSet, schedule []Fault) (*Injector, error) {
	for i, f := range schedule {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("fault: schedule[%d]: %w", i, err)
		}
	}
	sorted := append([]Fault(nil), schedule...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtStep < sorted[j].AtStep })
	return &Injector{
		net:            net,
		svcs:           svcs,
		schedule:       sorted,
		savedBandwidth: make(map[[2]string]float64),
		savedLoss:      make(map[[2]string]float64),
		savedDelay:     make(map[[2]string]float64),
	}, nil
}

// Step advances virtual time by one step and applies every due fault —
// scheduled ones and auto-recoveries alike. It returns the faults that
// fired this step.
func (inj *Injector) Step() []Fault {
	inj.step++
	var fired []Fault
	for inj.next < len(inj.schedule) && inj.schedule[inj.next].AtStep <= inj.step {
		f := inj.schedule[inj.next]
		inj.next++
		fired = append(fired, inj.apply(f)...)
	}
	// Auto-recoveries due this step (enqueued in firing order).
	var still []Fault
	for _, f := range inj.pending {
		if f.AtStep <= inj.step {
			fired = append(fired, inj.apply(f)...)
		} else {
			still = append(still, f)
		}
	}
	inj.pending = still
	return fired
}

// apply executes one fault, records it, and enqueues its inverse when
// RecoverAfter is set. Unknown targets and redundant transitions are
// silently skipped.
func (inj *Injector) apply(f Fault) []Fault {
	key := [2]string{f.From, f.To}
	switch f.Kind {
	case HostCrash:
		if inj.net.HostDown(f.Host) {
			return nil
		}
		if err := inj.net.FailHost(f.Host); err != nil {
			return nil
		}
		if inj.svcs != nil {
			inj.svcs.SetHostDown(f.Host, true)
		}
	case HostRecover:
		if err := inj.net.RecoverHost(f.Host); err != nil {
			return nil
		}
		if inj.svcs != nil {
			inj.svcs.SetHostDown(f.Host, false)
		}
	case LinkDown:
		if err := inj.net.FailLink(f.From, f.To); err != nil {
			return nil
		}
	case LinkUp:
		if err := inj.net.RecoverLink(f.From, f.To); err != nil {
			return nil
		}
	case BandwidthCollapse:
		capacity, _, ok := inj.net.Capacity(f.From, f.To)
		if !ok {
			return nil
		}
		if _, saved := inj.savedBandwidth[key]; !saved {
			inj.savedBandwidth[key] = capacity
		}
		if err := inj.net.SetBandwidth(f.From, f.To, capacity*f.Factor); err != nil {
			return nil
		}
	case restoreBandwidth:
		// Factor carries the absolute capacity to restore.
		if err := inj.net.SetBandwidth(f.From, f.To, f.Factor); err != nil {
			return nil
		}
	case LossSpike:
		if _, _, loss, ok := inj.net.Link(f.From, f.To); ok {
			if _, saved := inj.savedLoss[key]; !saved {
				inj.savedLoss[key] = loss
			}
		}
		if err := inj.net.SetLoss(f.From, f.To, f.LossRate); err != nil {
			return nil
		}
	case DelaySpike:
		if _, delay, _, ok := inj.net.Link(f.From, f.To); ok {
			if _, saved := inj.savedDelay[key]; !saved {
				inj.savedDelay[key] = delay
			}
		}
		if err := inj.net.SetDelay(f.From, f.To, f.DelayMs); err != nil {
			return nil
		}
	case ServiceDown:
		if inj.svcs == nil {
			return nil
		}
		inj.svcs.SetServiceDown(f.Service, true)
	case ServiceUp:
		if inj.svcs == nil {
			return nil
		}
		inj.svcs.SetServiceDown(f.Service, false)
	}
	inj.applied = append(inj.applied, f)
	fired := []Fault{f}
	if f.RecoverAfter > 0 {
		if inv, ok := inj.inverse(f); ok {
			inj.pending = append(inj.pending, inv)
		}
	}
	return fired
}

// inverse builds the recovery fault for a bounded outage.
func (inj *Injector) inverse(f Fault) (Fault, bool) {
	at := f.AtStep + f.RecoverAfter
	if at <= inj.step {
		at = inj.step + f.RecoverAfter
	}
	key := [2]string{f.From, f.To}
	switch f.Kind {
	case HostCrash:
		return Fault{AtStep: at, Kind: HostRecover, Host: f.Host, Group: f.Group}, true
	case LinkDown:
		return Fault{AtStep: at, Kind: LinkUp, From: f.From, To: f.To, Group: f.Group}, true
	case BandwidthCollapse:
		orig, ok := inj.savedBandwidth[key]
		if !ok {
			return Fault{}, false
		}
		delete(inj.savedBandwidth, key)
		return Fault{AtStep: at, Kind: restoreBandwidth, From: f.From, To: f.To, Factor: orig, Group: f.Group}, true
	case LossSpike:
		orig, ok := inj.savedLoss[key]
		if !ok {
			return Fault{}, false
		}
		delete(inj.savedLoss, key)
		return Fault{AtStep: at, Kind: LossSpike, From: f.From, To: f.To, LossRate: orig, Group: f.Group}, true
	case DelaySpike:
		orig, ok := inj.savedDelay[key]
		if !ok {
			return Fault{}, false
		}
		delete(inj.savedDelay, key)
		return Fault{AtStep: at, Kind: DelaySpike, From: f.From, To: f.To, DelayMs: orig, Group: f.Group}, true
	case ServiceDown:
		return Fault{AtStep: at, Kind: ServiceUp, Service: f.Service, Group: f.Group}, true
	}
	return Fault{}, false
}

// restoreBandwidth is the internal inverse of BandwidthCollapse: Factor
// carries the absolute capacity to restore.
const restoreBandwidth Kind = "restore-bandwidth"

// CurrentStep returns the injector's virtual time.
func (inj *Injector) CurrentStep() int { return inj.step }

// Done reports whether every scheduled fault and pending recovery has
// fired.
func (inj *Injector) Done() bool {
	return inj.next >= len(inj.schedule) && len(inj.pending) == 0
}

// Applied returns the log of every fault that actually fired, in order.
func (inj *Injector) Applied() []Fault {
	return append([]Fault(nil), inj.applied...)
}
