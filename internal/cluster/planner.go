package cluster

// planner.go extracts composition behind a transport-agnostic
// interface. The paper's selection algorithm itself is a pure function
// of the profile set; whether it runs in-process (LocalPlanner) or on a
// remote replica over HTTP (RemotePlanner) is a deployment decision the
// router should not be wired to. The Plan type is the minimal composed
// chain both transports can produce — the fields of the /v1/compose
// response the cluster actually routes on.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"qoschain"
	"qoschain/internal/profile"
)

// Plan is a composed adaptation chain, transport-neutral: the selected
// path, the media format on each hop, the delivered QoS parameters, and
// the satisfaction/cost the selection maximized. Its JSON field names
// match the /v1/compose response so a RemotePlanner decodes the server
// reply directly.
type Plan struct {
	Path         []string           `json:"path"`
	Formats      []string           `json:"formats"`
	Params       map[string]float64 `json:"params"`
	Satisfaction float64            `json:"satisfaction"`
	Cost         float64            `json:"cost"`
}

// Planner composes an adaptation chain for a profile set. contact is
// the user's contact class ("" for the profile defaults).
type Planner interface {
	Plan(ctx context.Context, set *profile.Set, contact string) (*Plan, error)
}

// LocalPlanner runs the selection algorithm in-process.
type LocalPlanner struct {
	// Prune removes useless vertices/edges before selection.
	Prune bool
}

// Plan implements Planner over qoschain.ComposeCtx.
func (p LocalPlanner) Plan(ctx context.Context, set *profile.Set, contact string) (*Plan, error) {
	comp, err := qoschain.ComposeCtx(ctx, set, qoschain.Options{
		Prune:   p.Prune,
		Contact: profile.ContactClass(contact),
	})
	if err != nil {
		return nil, err
	}
	res := comp.Result
	plan := &Plan{
		Path:         make([]string, len(res.Path)),
		Formats:      make([]string, len(res.Formats)),
		Params:       make(map[string]float64, len(res.Params)),
		Satisfaction: res.Satisfaction,
		Cost:         res.Cost,
	}
	for i, n := range res.Path {
		plan.Path[i] = string(n)
	}
	for i, f := range res.Formats {
		plan.Formats[i] = f.String()
	}
	for k, v := range res.Params {
		plan.Params[string(k)] = v
	}
	return plan, nil
}

// RemotePlanner composes by POSTing the profile set to another node's
// /v1/compose endpoint.
type RemotePlanner struct {
	// Base is the node's HTTP host:port (no scheme).
	Base string
	// Client is the HTTP client (nil uses http.DefaultClient).
	Client *http.Client
}

// Plan implements Planner over the /v1/compose wire protocol.
func (p *RemotePlanner) Plan(ctx context.Context, set *profile.Set, contact string) (*Plan, error) {
	var body bytes.Buffer
	if err := set.Encode(&body); err != nil {
		return nil, fmt.Errorf("cluster: encoding profile set: %w", err)
	}
	u := "http://" + p.Base + "/v1/compose"
	if contact != "" {
		u += "?contact=" + url.QueryEscape(contact)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("cluster: compose on %s: %s", p.Base, e.Error)
		}
		return nil, fmt.Errorf("cluster: compose on %s: status %d", p.Base, resp.StatusCode)
	}
	var plan Plan
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		return nil, fmt.Errorf("cluster: decoding compose response: %w", err)
	}
	return &plan, nil
}
