package cluster

// replicate.go is the WAL-shipping wire protocol and the primary-side
// Shipper. A batch carries a journal suffix bracketed by chain hashes
// (journal.ShipBatch) as JSON: record payloads base64-encoded by
// encoding/json, chain positions hex-encoded. The follower verifies the
// chain on receipt and acks with its applied offset; any mismatch —
// wrong offset, torn batch, forged record — is rejected without
// touching the follower's journal, and the shipper re-requests from the
// offset the follower reports. Once a follower has been promoted it
// fences its dead source: a resurrected primary's ships are refused so
// the adopted sessions cannot fork.

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"qoschain/internal/journal"
	"qoschain/internal/metrics"
	"qoschain/internal/registry"
	"qoschain/internal/trace"
)

// ShipPath is the HTTP route a follower accepts journal batches on.
const ShipPath = "/v1/cluster/ship"

// shipRecord is one journal record on the wire ([]byte is base64 in
// JSON).
type shipRecord struct {
	Seq  uint64 `json:"seq"`
	Data []byte `json:"data"`
}

// shipSnapshot bootstraps a follower whose offset predates compaction.
type shipSnapshot struct {
	Seq   uint64 `json:"seq"`
	Chain string `json:"chain"`
	Data  []byte `json:"data"`
}

// shipRequest is a journal.ShipBatch plus the shipping node's identity.
type shipRequest struct {
	Source    string        `json:"source"`
	FromSeq   uint64        `json:"fromSeq"`
	FromChain string        `json:"fromChain"`
	EndSeq    uint64        `json:"endSeq"`
	EndChain  string        `json:"endChain"`
	Records   []shipRecord  `json:"records,omitempty"`
	Snapshot  *shipSnapshot `json:"snapshot,omitempty"`
}

// shipResponse acks or rejects a batch. AppliedSeq is always the
// follower's current applied offset — on rejection the shipper resumes
// from there. Fenced means the follower promoted this source's replica
// and will never accept another batch from it.
type shipResponse struct {
	OK         bool   `json:"ok"`
	Error      string `json:"error,omitempty"`
	Fenced     bool   `json:"fenced,omitempty"`
	AppliedSeq uint64 `json:"appliedSeq"`
	Chain      string `json:"chain,omitempty"`
}

func chainHex(c journal.Chain) string { return hex.EncodeToString(c[:]) }

func parseChain(s string) (journal.Chain, error) {
	var c journal.Chain
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(c) {
		return c, fmt.Errorf("cluster: bad chain hash %q", s)
	}
	copy(c[:], b)
	return c, nil
}

// encodeShip renders a batch for the wire.
func encodeShip(source string, b *journal.ShipBatch) *shipRequest {
	req := &shipRequest{
		Source:    source,
		FromSeq:   b.FromSeq,
		FromChain: chainHex(b.FromChain),
		EndSeq:    b.EndSeq,
		EndChain:  chainHex(b.EndChain),
	}
	for _, r := range b.Records {
		req.Records = append(req.Records, shipRecord{Seq: r.Seq, Data: r.Data})
	}
	if b.Snapshot != nil {
		req.Snapshot = &shipSnapshot{
			Seq:   b.Snapshot.Seq,
			Chain: chainHex(b.Snapshot.Chain),
			Data:  b.Snapshot.Data,
		}
	}
	return req
}

// decodeShip rebuilds the journal batch from the wire form.
func decodeShip(req *shipRequest) (*journal.ShipBatch, error) {
	fromChain, err := parseChain(req.FromChain)
	if err != nil {
		return nil, err
	}
	endChain, err := parseChain(req.EndChain)
	if err != nil {
		return nil, err
	}
	b := &journal.ShipBatch{
		FromSeq:   req.FromSeq,
		FromChain: fromChain,
		EndSeq:    req.EndSeq,
		EndChain:  endChain,
	}
	for _, r := range req.Records {
		b.Records = append(b.Records, journal.Record{Seq: r.Seq, Data: r.Data})
	}
	if req.Snapshot != nil {
		snapChain, err := parseChain(req.Snapshot.Chain)
		if err != nil {
			return nil, err
		}
		b.Snapshot = &journal.Snapshot{
			Seq:   req.Snapshot.Seq,
			Chain: snapChain,
			Data:  req.Snapshot.Data,
		}
	}
	return b, nil
}

// Shipper pushes a node's primary journal to its follower. It tracks
// the follower's acked offset and trusts the follower over its own
// bookkeeping: every rejection carries the follower's applied offset
// and the next round resumes from there, so a follower restart, a lost
// ack, or a fresh follower all converge without a separate handshake.
type Shipper struct {
	node   *Node
	client *http.Client
	batch  int // max records per batch (0 = journal default)

	mu      sync.Mutex
	peer    registry.Member
	hasPeer bool
	acked   uint64
	fenced  bool
	lastErr error
}

// SetPeer points the shipper at a (possibly new) follower. Changing
// peers resets the acked offset to zero; the first ship round learns
// the real offset from the new follower's rejection.
func (s *Shipper) SetPeer(m registry.Member) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasPeer && s.peer.ID == m.ID {
		s.peer = m // refresh address
		return
	}
	s.peer, s.hasPeer, s.acked, s.fenced = m, true, 0, false
}

// Peer reports the current follower and acked offset.
func (s *Shipper) Peer() (peer registry.Member, acked uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer, s.acked, s.hasPeer
}

// Fenced reports whether the follower refused this node as a dead,
// already-failed-over source.
func (s *Shipper) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

// Ship drains the primary journal to the follower: batches are shipped
// until the follower's ack reaches the primary's last sequence. It
// returns the number of records acked this call. A fenced shipper is a
// permanent no-op error — this node lost its sessions to a promotion
// and must not resurrect them.
func (s *Shipper) Ship(ctx context.Context) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasPeer {
		return 0, nil
	}
	if s.fenced {
		return 0, fmt.Errorf("cluster: %s is fenced by follower %s", s.node.cfg.ID, s.peer.ID)
	}
	shipped := 0
	// Each round either advances the ack or adopts the follower's
	// offset; two extra rounds absorb one offset resync plus one
	// snapshot bootstrap before we call the stream stuck.
	for round := 0; round < 16; round++ {
		last := s.node.primary.LastSeq()
		if s.acked >= last && round > 0 {
			break
		}
		// Observed before the batch lands: how many records the
		// follower was behind when this batch was cut.
		s.node.counters().Observe(metrics.SampleReplicationLag, float64(last-s.acked))
		b, err := s.node.primary.ReadShip(s.acked, s.batch)
		if err != nil {
			s.lastErr = err
			return shipped, err
		}
		resp, err := s.post(ctx, encodeShip(s.node.cfg.ID, b))
		if err != nil {
			s.lastErr = err
			return shipped, err
		}
		c := s.node.counters()
		if resp.Fenced {
			s.fenced = true
			return shipped, fmt.Errorf("cluster: %s is fenced by follower %s", s.node.cfg.ID, s.peer.ID)
		}
		if !resp.OK {
			// Offset or chain mismatch: resume from the follower's
			// truth. If that doesn't move us forward, give up this call.
			if resp.AppliedSeq == s.acked {
				err := fmt.Errorf("cluster: follower %s rejected batch at %d: %s", s.peer.ID, s.acked, resp.Error)
				s.lastErr = err
				return shipped, err
			}
			s.acked = resp.AppliedSeq
			continue
		}
		shipped += int(resp.AppliedSeq - s.acked)
		s.acked = resp.AppliedSeq
		s.lastErr = nil
		c.Inc(metrics.CounterReplicationShipBatches)
		c.Add(metrics.CounterReplicationShippedRecords, int64(len(b.Records)))
		if b.Snapshot != nil {
			c.Inc(metrics.CounterReplicationSnapshotShips)
		}
		if s.acked >= last {
			break
		}
	}
	return shipped, nil
}

// post performs one ship round trip.
func (s *Shipper) post(ctx context.Context, req *shipRequest) (*shipResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+s.peer.Addr+ShipPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	// A traced caller (heartbeat loop, harness) threads its trace across
	// the ship hop so the follower's handler records under the same ID.
	trace.Inject(ctx, hr.Header, "ship "+s.node.cfg.ID)
	client := s.client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sr shipResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("cluster: decoding ship response: %w", err)
	}
	return &sr, nil
}
