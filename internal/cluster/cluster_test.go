package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"qoschain/internal/httpapi"
	"qoschain/internal/media"
	"qoschain/internal/metrics"
	"qoschain/internal/profile"
	"qoschain/internal/registry"
	"qoschain/internal/service"
	"qoschain/internal/session"
)

// clusterSet is the two-path profile the failover tests compose over:
// sender→p1→d carries 18 fps, sender→p2→d a degraded 9 fps — so a
// session adopted after p1's host dies has somewhere to fail over to.
func clusterSet() *profile.Set {
	return &profile.Set{
		User: profile.User{
			Name: "alice",
			Preferences: map[media.Param]profile.FuncSpec{
				media.ParamFrameRate: profile.LinearSpec(0, 30),
			},
		},
		Content: profile.Content{ID: "c", Variants: []media.Descriptor{
			{Format: media.VideoMPEG1, Params: media.Params{media.ParamFrameRate: 30}},
		}},
		Device: profile.Device{ID: "d", Software: profile.Software{
			Decoders: []media.Format{media.VideoH263},
		}},
		Network: profile.Network{Links: []profile.Link{
			{From: "sender", To: "p1", BandwidthKbps: 2400},
			{From: "p1", To: "d", BandwidthKbps: 1800},
			{From: "sender", To: "p2", BandwidthKbps: 2400},
			{From: "p2", To: "d", BandwidthKbps: 900},
		}},
		Intermediaries: []profile.Intermediary{
			{
				Host: "p1", CPUMips: 1000, MemoryMB: 256,
				Services: []*service.Service{
					service.FormatConverter("conv1", media.VideoMPEG1, media.VideoH263),
				},
			},
			{
				Host: "p2", CPUMips: 1000, MemoryMB: 256,
				Services: []*service.Service{
					service.FormatConverter("conv2", media.VideoMPEG1, media.VideoH263),
				},
			},
		},
	}
}

// testNode is one in-process cluster member with a real HTTP server.
type testNode struct {
	node   *Node
	srv    *httptest.Server
	member registry.Member
}

// startNode brings up a node whose HTTP surface is the cluster routes
// over the full session API.
func startNode(t *testing.T, id, host string, counters *metrics.Counters, snapshotEvery int) *testNode {
	t.Helper()
	n, err := NewNode(NodeConfig{
		ID:            id,
		StateDir:      filepath.Join(t.TempDir(), id),
		Host:          host,
		SnapshotEvery: snapshotEvery,
		Counters:      counters,
	})
	if err != nil {
		t.Fatalf("node %s: %v", id, err)
	}
	srv := httptest.NewServer(n.Handler(httpapi.HandlerWithOptions(httpapi.Options{Sessions: n})))
	t.Cleanup(func() { srv.Close(); n.Close() })
	return &testNode{
		node:   n,
		srv:    srv,
		member: registry.Member{ID: id, Addr: strings.TrimPrefix(srv.URL, "http://"), Host: host},
	}
}

func createViaRouter(t *testing.T, router http.Handler, set *profile.Set) session.State {
	t.Helper()
	var body bytes.Buffer
	if err := set.Encode(&body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions?reserve=1", &body)
	w := httptest.NewRecorder()
	router.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		t.Fatalf("create via router = %d: %s", w.Code, w.Body.String())
	}
	var st session.State
	if err := json.NewDecoder(w.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func routerGet(t *testing.T, router http.Handler, path string) (int, []byte) {
	t.Helper()
	w := httptest.NewRecorder()
	router.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w.Code, w.Body.Bytes()
}

// shipAll drains every node's journal to its shard-map follower.
func shipAll(t *testing.T, ctx context.Context, nodes map[string]*testNode, live []registry.Member) {
	t.Helper()
	for id, tn := range nodes {
		f, ok := FollowerOf(live, id)
		if !ok {
			continue
		}
		tn.node.Shipper().SetPeer(f)
		if _, err := tn.node.Shipper().Ship(ctx); err != nil {
			t.Fatalf("ship %s -> %s: %v", id, f.ID, err)
		}
		if peer, acked, _ := tn.node.Shipper().Peer(); acked != tn.node.LastSeq() {
			t.Fatalf("ship %s -> %s stalled at %d of %d", id, peer.ID, acked, tn.node.LastSeq())
		}
	}
}

// TestClusterFailover is the end-to-end failover path: sessions created
// through the router, journals shipped to followers, the owning node
// killed, the follower promoted — byte-identical adopted state, the
// dead host's crash injected, and no reservation left on an unusable
// link.
func TestClusterFailover(t *testing.T) {
	ctx := context.Background()
	counters := metrics.NewCounters()
	nodes := map[string]*testNode{}
	var live []registry.Member
	for id, host := range map[string]string{"n1": "p1", "n2": "p2", "n3": "p1"} {
		tn := startNode(t, id, host, counters, 0)
		nodes[id] = tn
		live = append(live, tn.member)
	}

	router := NewRouter(RouterConfig{Planner: LocalPlanner{}, Counters: counters})
	router.UpdateMembers(ctx, live)

	// Three sessions round-robin across the members (sorted: n1,n2,n3).
	var ids []string
	for i := 0; i < 3; i++ {
		st := createViaRouter(t, router, clusterSet())
		ids = append(ids, st.ID)
		if want := fmt.Sprintf("n%d-s1", i+1); st.ID != want {
			t.Fatalf("create %d landed as %q, want %q", i, st.ID, want)
		}
		// Path vertices are service IDs: conv1 runs on host p1.
		if len(st.Path) < 2 || st.Path[1] != "conv1" {
			t.Fatalf("session %s path = %v, want the conv1 (p1) chain", st.ID, st.Path)
		}
	}

	// Replicate, then compare every follower's mirror hash-for-hash.
	shipAll(t, ctx, nodes, live)
	for id, tn := range nodes {
		f, _ := FollowerOf(live, id)
		primaryHashes := hashAll(tn.node.Manager().List())
		var mirror *ReplicaStatus
		for _, rs := range nodes[f.ID].node.Status().Replicas {
			if rs.Source == id {
				rs := rs
				mirror = &rs
			}
		}
		if mirror == nil {
			t.Fatalf("%s holds no replica of %s", f.ID, id)
		}
		if mirror.AppliedSeq != tn.node.LastSeq() {
			t.Fatalf("replica of %s at %d, primary at %d", id, mirror.AppliedSeq, tn.node.LastSeq())
		}
		if len(mirror.StateHashes) != len(primaryHashes) {
			t.Fatalf("replica of %s has %d sessions, primary %d", id, len(mirror.StateHashes), len(primaryHashes))
		}
		for sid, h := range primaryHashes {
			if mirror.StateHashes[sid] != h {
				t.Fatalf("replica state of %s diverged for %s", id, sid)
			}
		}
	}

	// /healthz on a member must expose the primary role and both
	// stream directions.
	resp, err := http.Get(nodes["n1"].srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Replication *httpapi.ReplicationStatus `json:"replication"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || health.Replication == nil {
		t.Fatalf("healthz replication missing: %v", err)
	}
	if health.Replication.Role != "primary" || health.Replication.NodeID != "n1" {
		t.Fatalf("replication status = %+v", health.Replication)
	}
	dirs := map[string]bool{}
	for _, s := range health.Replication.Streams {
		dirs[s.Direction] = true
	}
	if !dirs["ship"] || !dirs["apply"] {
		t.Fatalf("streams missing a direction: %+v", health.Replication.Streams)
	}

	// Kill n1 (fronting overlay host p1). Its sessions must surface on
	// the follower with the exact pre-kill state.
	victim := nodes["n1"]
	preKill := hashAll(victim.node.Manager().List())
	victim.srv.Close()
	adopterID := ""
	if f, ok := FollowerOf(live, "n1"); ok {
		adopterID = f.ID
	}

	var after []registry.Member
	for _, m := range live {
		if m.ID != "n1" {
			after = append(after, m)
		}
	}
	proms := router.UpdateMembers(ctx, after)
	if len(proms) != 1 || proms[0].Err != "" {
		t.Fatalf("promotions = %+v", proms)
	}
	if proms[0].Dead != "n1" || proms[0].Adopter != adopterID {
		t.Fatalf("promotion routed to %s, want follower %s", proms[0].Adopter, adopterID)
	}
	rep := proms[0].Report
	if rep.Adopted != 1 || rep.FailHost != "p1" {
		t.Fatalf("report = %+v", rep)
	}
	// Byte-identity: the adopter's pre-fault hashes equal the dead
	// primary's last state.
	if len(rep.StateHashes) != len(preKill) {
		t.Fatalf("adopted %d sessions, primary had %d", len(rep.StateHashes), len(preKill))
	}
	for sid, h := range preKill {
		if rep.StateHashes[sid] != h {
			t.Fatalf("adopted state of %s is not byte-identical", sid)
		}
	}
	if rep.Reconcile == nil || rep.Reconcile.Recomposed != 1 {
		t.Fatalf("reconcile = %+v", rep.Reconcile)
	}

	// The adopted session routes through the router to the adopter and
	// has failed over off the dead host.
	code, body := routerGet(t, router, "/v1/sessions/"+ids[0])
	if code != http.StatusOK {
		t.Fatalf("get adopted session = %d: %s", code, body)
	}
	var st session.State
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Path) < 2 || st.Path[1] != "conv2" {
		t.Fatalf("adopted session path = %v, want failover through conv2 (p2)", st.Path)
	}
	found := false
	for _, h := range st.DownHosts {
		if h == "p1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("adopted session downHosts = %v, want p1", st.DownHosts)
	}

	// Zero leaked reservations: every hold of every adopted session
	// sits on a usable link.
	adopter := nodes[adopterID]
	for _, ms := range adopter.node.List() {
		for _, r := range ms.Held() {
			if !ms.Net().Usable(r.From, r.To) {
				t.Fatalf("session %s leaks %.0f kbps on dead link %s->%s", ms.ID(), r.Kbps, r.From, r.To)
			}
		}
	}

	// Fencing: the resurrected primary's shipper is refused.
	if _, err := victim.node.Shipper().Ship(ctx); err == nil {
		t.Fatal("zombie primary shipped into its promoted follower")
	}
	if !victim.node.Shipper().Fenced() {
		t.Fatal("shipper not fenced after rejection")
	}
	if counters.Get(metrics.CounterReplicationShipRejected) == 0 {
		t.Fatal("fenced ship not counted as rejected")
	}
	if counters.Get(metrics.CounterClusterPromotions) != 1 {
		t.Fatalf("promotions counter = %d", counters.Get(metrics.CounterClusterPromotions))
	}

	// The surviving members' sessions are untouched and the merged
	// list sees all three sessions.
	code, body = routerGet(t, router, "/v1/sessions")
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	var list struct {
		Sessions []session.State `json:"sessions"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 3 {
		t.Fatalf("merged list has %d sessions, want 3", len(list.Sessions))
	}

	// Deleting the adopted session releases it from the adopter.
	w := httptest.NewRecorder()
	router.ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/v1/sessions/"+ids[0], nil))
	if w.Code != http.StatusOK {
		t.Fatalf("delete adopted = %d: %s", w.Code, w.Body.String())
	}
	if _, ok := adopter.node.Get(ids[0]); ok {
		t.Fatal("adopted session still present after delete")
	}
}

// TestShipSnapshotCatchup: a follower that joins after the primary
// compacted must bootstrap from the shipped snapshot and land on the
// identical state.
func TestShipSnapshotCatchup(t *testing.T) {
	ctx := context.Background()
	counters := metrics.NewCounters()
	// SnapshotEvery 1 compacts after every command, so by the time the
	// follower appears the early records are gone from the journal.
	primary := startNode(t, "n1", "p1", counters, 1)
	follower := startNode(t, "n2", "p2", counters, 0)

	for i := 0; i < 3; i++ {
		if _, err := primary.node.CreateCtx(ctx, session.CreateSpec{Set: *clusterSet(), Reserve: true}); err != nil {
			t.Fatal(err)
		}
	}
	primary.node.Shipper().SetPeer(follower.member)
	if _, err := primary.node.Shipper().Ship(ctx); err != nil {
		t.Fatalf("snapshot catch-up ship: %v", err)
	}
	if counters.Get(metrics.CounterReplicationSnapshotShips) == 0 {
		t.Fatal("catch-up did not ship a snapshot")
	}
	want := hashAll(primary.node.Manager().List())
	var mirror map[string]string
	for _, rs := range follower.node.Status().Replicas {
		if rs.Source == "n1" {
			mirror = rs.StateHashes
		}
	}
	if len(mirror) != len(want) {
		t.Fatalf("follower mirrors %d sessions, want %d", len(mirror), len(want))
	}
	for sid, h := range want {
		if mirror[sid] != h {
			t.Fatalf("snapshot-bootstrapped state of %s diverged", sid)
		}
	}
}

// TestShipRejectsTamper: a batch corrupted in flight must be rejected
// by chain verification without moving the follower, and the next
// honest ship must converge.
func TestShipRejectsTamper(t *testing.T) {
	ctx := context.Background()
	counters := metrics.NewCounters()
	primary := startNode(t, "n1", "p1", counters, 0)
	follower := startNode(t, "n2", "p2", counters, 0)

	if _, err := primary.node.CreateCtx(ctx, session.CreateSpec{Set: *clusterSet()}); err != nil {
		t.Fatal(err)
	}
	b, err := primary.node.Manager().ReadShip(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := encodeShip("n1", b)
	req.Records[0].Data[0] ^= 0x40
	body, _ := json.Marshal(req)
	resp, err := http.Post(follower.srv.URL+ShipPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr shipResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.OK || sr.AppliedSeq != 0 {
		t.Fatalf("tampered batch accepted: %+v", sr)
	}
	if counters.Get(metrics.CounterReplicationShipRejected) == 0 {
		t.Fatal("rejection not counted")
	}

	// Honest retry from the follower-reported offset converges.
	primary.node.Shipper().SetPeer(follower.member)
	if _, err := primary.node.Shipper().Ship(ctx); err != nil {
		t.Fatalf("honest ship after tamper: %v", err)
	}
	for _, rs := range follower.node.Status().Replicas {
		if rs.Source == "n1" && rs.AppliedSeq != primary.node.LastSeq() {
			t.Fatalf("follower at %d after honest ship, primary at %d", rs.AppliedSeq, primary.node.LastSeq())
		}
	}
}

// TestPlannerParity: the local and remote planners are the same
// algorithm behind the same interface — identical plans for an
// identical profile set.
func TestPlannerParity(t *testing.T) {
	srv := httptest.NewServer(httpapi.Handler())
	defer srv.Close()
	ctx := context.Background()

	local, err := LocalPlanner{}.Plan(ctx, clusterSet(), "")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := (&RemotePlanner{Base: strings.TrimPrefix(srv.URL, "http://")}).Plan(ctx, clusterSet(), "")
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(local)
	rj, _ := json.Marshal(remote)
	if !bytes.Equal(lj, rj) {
		t.Fatalf("planner divergence:\nlocal  %s\nremote %s", lj, rj)
	}
	if len(local.Path) == 0 || local.Satisfaction <= 0 {
		t.Fatalf("degenerate plan: %+v", local)
	}
}

// TestNodeRestartKeepsPromotion: an adopting node that restarts must
// come back with the replica still promoted (fenced and serving).
func TestNodeRestartKeepsPromotion(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	primary := startNode(t, "n1", "p1", nil, 0)
	n2, err := NewNode(NodeConfig{ID: "n2", StateDir: filepath.Join(dir, "n2"), Host: "p2"})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(n2.Handler(nil))
	if _, err := primary.node.CreateCtx(ctx, session.CreateSpec{Set: *clusterSet(), Reserve: true}); err != nil {
		t.Fatal(err)
	}
	primary.node.Shipper().SetPeer(registry.Member{ID: "n2", Addr: strings.TrimPrefix(srv2.URL, "http://"), Host: "p2"})
	if _, err := primary.node.Shipper().Ship(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Promote("n1", "p1"); err != nil {
		t.Fatal(err)
	}
	srv2.Close()
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewNode(NodeConfig{ID: "n2", StateDir: filepath.Join(dir, "n2"), Host: "p2"})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if _, ok := reopened.Get("n1-s1"); !ok {
		t.Fatal("adopted session lost across restart")
	}
	st := reopened.Status()
	if len(st.Replicas) != 1 || !st.Replicas[0].Promoted {
		t.Fatalf("promotion lost across restart: %+v", st.Replicas)
	}
}
