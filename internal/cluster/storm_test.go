package cluster

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"qoschain/internal/httpapi"
	"qoschain/internal/registry"
	"qoschain/internal/session"
)

// startStormNode is startNode with the storm-attached manager: live
// sessions fold into equivalence classes and the class state ships in
// the WAL alongside the session commands.
func startStormNode(t *testing.T, id, host string) *testNode {
	t.Helper()
	n, err := NewNode(NodeConfig{
		ID:       id,
		StateDir: filepath.Join(t.TempDir(), id),
		Host:     host,
		Storm:    true,
	})
	if err != nil {
		t.Fatalf("storm node %s: %v", id, err)
	}
	srv := httptest.NewServer(n.Handler(httpapi.HandlerWithOptions(httpapi.Options{Sessions: n})))
	t.Cleanup(func() { srv.Close(); n.Close() })
	return &testNode{
		node:   n,
		srv:    srv,
		member: registry.Member{ID: id, Addr: strings.TrimPrefix(srv.URL, "http://"), Host: host},
	}
}

// TestStormAccessors pins the failure modes of the storm-state
// accessors the EXT-P harness leans on: a non-storm node refuses to
// fingerprint, a missing replica is reported by name, and a shipped
// storm replica's fingerprint matches the primary's byte-for-byte.
func TestStormAccessors(t *testing.T) {
	plain := startNode(t, "plain", "p9", nil, 0)
	if _, err := plain.node.StormFingerprint(""); err == nil ||
		!strings.Contains(err.Error(), "not in storm mode") {
		t.Errorf("plain StormFingerprint() err = %v, want not-in-storm-mode", err)
	}
	if _, err := plain.node.StormFingerprint("ghost"); err == nil ||
		!strings.Contains(err.Error(), "ghost") {
		t.Errorf("missing-replica err = %v, want mention of ghost", err)
	}
	if _, ok := plain.node.ReplicaManager("ghost"); ok {
		t.Error("ReplicaManager(ghost) = ok, want missing")
	}

	n1 := startStormNode(t, "s1", "p8")
	n2 := startStormNode(t, "s2", "p7")
	if _, err := n1.node.CreateCtx(context.Background(), session.CreateSpec{
		Set: *clusterSet(), Floor: 0.3, Seed: 1,
	}); err != nil {
		t.Fatalf("storm create: %v", err)
	}
	fp, err := n1.node.StormFingerprint("")
	if err != nil || fp == "" {
		t.Fatalf("primary fingerprint = %q, %v", fp, err)
	}

	n1.node.Shipper().SetPeer(n2.member)
	if _, err := n1.node.Shipper().Ship(context.Background()); err != nil {
		t.Fatalf("ship: %v", err)
	}
	rfp, err := n2.node.StormFingerprint("s1")
	if err != nil {
		t.Fatalf("replica fingerprint: %v", err)
	}
	if rfp != fp {
		t.Errorf("replica fingerprint diverged:\nprimary %s\nreplica %s", fp, rfp)
	}
	if rm, ok := n2.node.ReplicaManager("s1"); !ok || rm.StormController() == nil {
		t.Errorf("ReplicaManager(s1) = %v, %v; want storm-attached manager", rm, ok)
	}
}
