// Package cluster turns a set of standalone adaptation daemons into a
// replicated composition tier. Each node runs the ordinary durable
// session.Manager as its primary state plus one replica manager per
// remote node it follows; the primary's hash-chained journal is shipped
// over HTTP to its follower (replicate.go, node.go), a rendezvous-hash
// shard map decides which node owns which session (this file), and a
// Router proxies the /v1/sessions API to the owning node, promoting the
// follower when a node's registry lease expires (router.go).
//
// Placement is deterministic and shared-nothing: every router and node
// computes the same owner from the same membership list, so there is no
// coordination service beyond the registry's lease table.
package cluster

import (
	"hash/fnv"

	"qoschain/internal/registry"
)

// score is the rendezvous (highest-random-weight) weight of key on
// node. FNV-1a over nodeID \x00 key keeps the map dependency-free and
// stable across processes and restarts; cryptographic quality is not
// needed — only determinism and spread. Raw FNV of near-identical
// strings is badly correlated across nodes (the shared suffix
// dominates), so the sum goes through a murmur-style finalizer to
// avalanche the node prefix across all 64 bits.
func score(nodeID, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(nodeID)) //nolint:errcheck // hash.Hash never errors
	h.Write([]byte{0})      //nolint:errcheck
	h.Write([]byte(key))    //nolint:errcheck
	return mix64(h.Sum64())
}

// mix64 is the 64-bit murmur3 finalizer: full avalanche, so a one-byte
// difference in the hashed node ID reorders scores independently per
// key.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Primary returns the member that owns key: the highest rendezvous
// score, with the lexically smaller ID breaking exact ties. ok is false
// for an empty membership. Removing one member moves only the keys that
// member owned — the HRW minimal-disruption property the failover
// design leans on.
func Primary(members []registry.Member, key string) (registry.Member, bool) {
	var best registry.Member
	var bestScore uint64
	found := false
	for _, m := range members {
		s := score(m.ID, key)
		if !found || s > bestScore || (s == bestScore && m.ID < best.ID) {
			best, bestScore, found = m, s, true
		}
	}
	return best, found
}

// FollowerOf returns the member that replicates node id's journal: the
// rendezvous winner for key id among the other members. The follower is
// per-node, not per-session — one WAL stream per node pair — and the
// choice does not depend on whether id itself is still in members, so
// a router computing the failover target after id's lease expired picks
// the same node the shipper was already feeding.
func FollowerOf(members []registry.Member, id string) (registry.Member, bool) {
	rest := make([]registry.Member, 0, len(members))
	for _, m := range members {
		if m.ID != id {
			rest = append(rest, m)
		}
	}
	return Primary(rest, id)
}

// Owners resolves key to its primary and the follower holding the
// primary's replica. follower ok only when the membership has at least
// two nodes.
func Owners(members []registry.Member, key string) (primary, follower registry.Member, ok, followerOK bool) {
	primary, ok = Primary(members, key)
	if !ok {
		return primary, follower, false, false
	}
	follower, followerOK = FollowerOf(members, primary.ID)
	return primary, follower, ok, followerOK
}
