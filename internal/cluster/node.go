package cluster

// node.go is one replica of the composition tier. A Node owns a
// primary session.Manager (the sessions this node minted, journaled
// under StateDir/primary with IDs prefixed "<node>-") plus one replica
// manager per remote node it follows (StateDir/replica-<source>), each
// rebuilt purely from the source's shipped journal — byte-identical by
// construction, since ApplyReplicated appends the exact shipped bytes
// and replays them through the same event-sourced state machine the
// source ran.
//
// On a source's death the Router asks its follower to Promote the
// replica: the node fences the source (no further ships accepted, so a
// resurrected primary cannot fork the adopted sessions), captures the
// pre-fault state hashes for identity audits, injects the dead node's
// overlay host crash into every adopted session, and runs the standard
// post-recovery Reconcile so the sessions fail over and no bandwidth
// reservation stays held on links through the dead host. Promotion is
// journaled in the replica's own WAL (the fault/reevaluate commands it
// causes) and recorded in a marker file, so it survives a restart of
// the adopting node too.
//
// Node implements httpapi.SessionBackend — the ordinary /v1/sessions
// routes serve the union of the primary and the adopted sessions — and
// httpapi.ReplicationReporter, so /healthz shows the node's role,
// applied offset, and per-stream lag.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"qoschain/internal/fault"
	"qoschain/internal/httpapi"
	"qoschain/internal/journal"
	"qoschain/internal/metrics"
	"qoschain/internal/session"
	"qoschain/internal/storm"
)

// PromotePath and StatusPath are the cluster control routes a Node
// serves next to ShipPath.
const (
	PromotePath = "/v1/cluster/promote"
	StatusPath  = "/v1/cluster/status"
)

// promotedMarker persists a promotion inside the replica's state dir.
const promotedMarker = "promoted.json"

// maxShipBody bounds a ship request body (a batch of journal records
// plus at most one snapshot).
const maxShipBody = 64 << 20

// NodeConfig assembles a Node.
type NodeConfig struct {
	// ID is the node's cluster-wide identity; it prefixes every session
	// ID the node mints ("n1" mints "n1-s1").
	ID string
	// StateDir roots the node's durable state: primary/ for its own
	// sessions, replica-<source>/ per followed node.
	StateDir string
	// Host is the overlay host this node fronts; when the node dies,
	// its follower injects this host's crash into the adopted sessions.
	Host string
	// SnapshotEvery compacts the primary journal after this many
	// commands (see session.ManagerConfig).
	SnapshotEvery int
	// ShipBatch caps records per ship batch (0 = journal default).
	ShipBatch int
	// Counters receives replication.* and cluster.* metrics (nil is a
	// no-op sink).
	Counters *metrics.Counters
	// Client ships batches (nil uses http.DefaultClient).
	Client *http.Client
	// Storm runs every manager on this node — the primary and each
	// replica — in storm-attached mode (see session.ManagerConfig.Storm):
	// sessions attach to equivalence classes and storm fan-out records
	// ride the shipped WAL, so a promoted follower resumes an open storm.
	Storm bool
	// StormVerify arms the primary's naive-equivalence check (harness
	// use only; replicas replay recorded plans and never Select).
	StormVerify bool
	// StormHaltAfterFanouts arms the primary's deterministic mid-storm
	// crash site (harness use only).
	StormHaltAfterFanouts int
}

// replica is one followed node's mirrored state.
type replica struct {
	source   string
	dir      string
	m        *session.Manager
	promoted bool
	report   *PromoteReport
}

// Node is one member of the replicated composition tier.
type Node struct {
	cfg     NodeConfig
	primary *session.Manager
	shipper *Shipper

	mu       sync.Mutex
	replicas map[string]*replica
}

// NewNode opens (or recovers) a node's durable state: the primary
// manager plus every replica directory a previous process left behind,
// including their promotion markers.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: node ID required")
	}
	if cfg.StateDir == "" {
		return nil, errors.New("cluster: state dir required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	primary, err := session.NewManager(session.ManagerConfig{
		StateDir:              filepath.Join(cfg.StateDir, "primary"),
		IDPrefix:              cfg.ID + "-",
		SnapshotEvery:         cfg.SnapshotEvery,
		Counters:              cfg.Counters,
		Storm:                 cfg.Storm,
		StormVerify:           cfg.StormVerify,
		StormHaltAfterFanouts: cfg.StormHaltAfterFanouts,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: opening primary state: %w", err)
	}
	n := &Node{cfg: cfg, primary: primary, replicas: map[string]*replica{}}
	n.shipper = &Shipper{node: n, client: cfg.Client, batch: cfg.ShipBatch}
	entries, err := os.ReadDir(cfg.StateDir)
	if err != nil {
		primary.Close() //nolint:errcheck
		return nil, fmt.Errorf("cluster: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "replica-") {
			continue
		}
		source := strings.TrimPrefix(e.Name(), "replica-")
		if _, err := n.openReplicaLocked(source); err != nil {
			n.Close() //nolint:errcheck
			return nil, err
		}
	}
	return n, nil
}

// counters returns the node's metric sink (nil-safe by contract).
func (n *Node) counters() *metrics.Counters { return n.cfg.Counters }

// ID returns the node's cluster identity.
func (n *Node) ID() string { return n.cfg.ID }

// Manager exposes the primary session manager (tests and the simulator
// audit reservations through it).
func (n *Node) Manager() *session.Manager { return n.primary }

// Shipper exposes the node's journal shipper so a serving loop can set
// the follower and drive ship rounds.
func (n *Node) Shipper() *Shipper { return n.shipper }

// openReplicaLocked opens (creating if absent) the replica state for
// source. Callers hold n.mu (or are single-threaded construction).
func (n *Node) openReplicaLocked(source string) (*replica, error) {
	if source == "" || source == n.cfg.ID {
		return nil, fmt.Errorf("cluster: invalid replication source %q", source)
	}
	dir := filepath.Join(n.cfg.StateDir, "replica-"+source)
	m, err := session.NewManager(session.ManagerConfig{
		StateDir: dir,
		// Replicated creates must replay under their original IDs.
		IDPrefix: source + "-",
		// The source decides compaction; the replica follows verbatim.
		SnapshotEvery: -1,
		Counters:      n.cfg.Counters,
		// Replicas mirror the source's mode so replicated storm records
		// replay; the halt crash site stays primary-only, and Verify is
		// pointless on a replica (replay applies recorded plans, it
		// never runs Select).
		Storm: n.cfg.Storm,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: opening replica of %s: %w", source, err)
	}
	r := &replica{source: source, dir: dir, m: m}
	if data, err := os.ReadFile(filepath.Join(dir, promotedMarker)); err == nil {
		var rep PromoteReport
		if json.Unmarshal(data, &rep) == nil {
			r.promoted, r.report = true, &rep
		}
	}
	n.replicas[source] = r
	return r, nil
}

// bootstrapReplicaLocked rebuilds the replica of source from a shipped
// snapshot, discarding whatever (stale, pre-compaction) state was held.
func (n *Node) bootstrapReplicaLocked(source string, snap *journal.Snapshot) (*replica, error) {
	if r := n.replicas[source]; r != nil {
		r.m.Close() //nolint:errcheck
		delete(n.replicas, source)
	}
	dir := filepath.Join(n.cfg.StateDir, "replica-"+source)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if err := journal.Bootstrap(dir, snap); err != nil {
		return nil, err
	}
	return n.openReplicaLocked(source)
}

// Close releases the primary and every replica manager.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	err := n.primary.Close()
	for _, r := range n.replicas {
		if cerr := r.m.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ---- httpapi.SessionBackend ------------------------------------------

// CreateCtx mints a session on this node's primary manager.
func (n *Node) CreateCtx(ctx context.Context, spec session.CreateSpec) (*session.Managed, error) {
	return n.primary.CreateCtx(ctx, spec)
}

// Get resolves id against the primary, then against adopted (promoted)
// replicas. Unpromoted replica state is never served — it is a warm
// standby, not a read replica.
func (n *Node) Get(id string) (*session.Managed, bool) {
	if ms, ok := n.primary.Get(id); ok {
		return ms, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, r := range n.replicas {
		if !r.promoted {
			continue
		}
		if ms, ok := r.m.Get(id); ok {
			return ms, true
		}
	}
	return nil, false
}

// List returns the union of primary and adopted sessions, sorted by ID.
func (n *Node) List() []*session.Managed {
	out := n.primary.List()
	n.mu.Lock()
	for _, r := range n.replicas {
		if r.promoted {
			out = append(out, r.m.List()...)
		}
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Delete tears a session down wherever it lives.
func (n *Node) Delete(id string) (bool, error) {
	if ok, err := n.primary.Delete(id); ok {
		return ok, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, r := range n.replicas {
		if !r.promoted {
			continue
		}
		if ok, err := r.m.Delete(id); ok {
			return ok, err
		}
	}
	return false, session.ErrUnknownSession
}

// Persistent reports durability (always true — a cluster node requires
// a state directory).
func (n *Node) Persistent() bool { return n.primary.Persistent() }

// Recovery reports the primary's startup recovery.
func (n *Node) Recovery() *session.RecoveryReport { return n.primary.Recovery() }

// LastSeq is the primary journal's applied offset.
func (n *Node) LastSeq() uint64 { return n.primary.LastSeq() }

// StormFingerprint renders the storm controller state of the primary
// (source == "") or of the replica mirroring source. Byte-equality of
// these strings across nodes is the cluster storm audit: a promoted
// follower must land on the dead primary's exact class chains.
func (n *Node) StormFingerprint(source string) (string, error) {
	if source == "" {
		ctrl := n.primary.StormController()
		if ctrl == nil {
			return "", errors.New("cluster: node is not in storm mode")
		}
		return ctrl.Fingerprint()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.replicas[source]
	if r == nil {
		return "", fmt.Errorf("cluster: %s holds no replica of %s", n.cfg.ID, source)
	}
	ctrl := r.m.StormController()
	if ctrl == nil {
		return "", errors.New("cluster: replica is not in storm mode")
	}
	return ctrl.Fingerprint()
}

// ReplicaManager exposes the manager mirroring source, for audits that
// need more than the fingerprint (e.g. the shared-region reservation
// ledger after a storm-mode promotion).
func (n *Node) ReplicaManager(source string) (*session.Manager, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.replicas[source]
	if r == nil {
		return nil, false
	}
	return r.m, true
}

// ---- httpapi.ReplicationReporter -------------------------------------

// ReplicationStatus reports the node's role and per-stream offsets for
// /healthz: the outbound ship stream (with the primary's view of
// follower lag) and one inbound apply stream per followed node.
func (n *Node) ReplicationStatus() *httpapi.ReplicationStatus {
	rs := &httpapi.ReplicationStatus{
		Role:       "primary",
		NodeID:     n.cfg.ID,
		AppliedSeq: n.primary.LastSeq(),
	}
	if peer, acked, ok := n.shipper.Peer(); ok {
		rs.Streams = append(rs.Streams, httpapi.ReplicationStream{
			Peer:       peer.ID,
			Direction:  "ship",
			AckedSeq:   acked,
			LagRecords: int64(n.primary.LastSeq()) - int64(acked),
		})
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, source := range n.sortedSourcesLocked() {
		r := n.replicas[source]
		rs.Streams = append(rs.Streams, httpapi.ReplicationStream{
			Peer:       source,
			Direction:  "apply",
			AppliedSeq: r.m.LastSeq(),
			Promoted:   r.promoted,
		})
	}
	return rs
}

func (n *Node) sortedSourcesLocked() []string {
	out := make([]string, 0, len(n.replicas))
	for s := range n.replicas {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ---- promotion --------------------------------------------------------

// PromoteReport summarizes a failover adoption.
type PromoteReport struct {
	// Source is the dead node whose replica was promoted.
	Source string `json:"source"`
	// FailHost is the overlay host whose crash was injected.
	FailHost string `json:"failHost,omitempty"`
	// Adopted counts sessions taken over.
	Adopted int `json:"adopted"`
	// AppliedSeq is the replica's journal offset at promotion — the
	// last source command that survived.
	AppliedSeq uint64 `json:"appliedSeq"`
	// StateHashes are the adopted sessions' state hashes BEFORE the
	// host-crash fault, for byte-identity audits against the dead
	// primary's last published hashes.
	StateHashes map[string]string `json:"stateHashes,omitempty"`
	// Reconcile is the post-adoption reservation sweep: every hold on a
	// link through the dead host is released or re-homed here.
	Reconcile *session.ReconcileReport `json:"reconcile,omitempty"`
	// TookMs is the wall-clock promotion latency.
	TookMs float64 `json:"tookMs"`
}

// StateHash condenses a session fingerprint for wire-size identity
// comparison.
func StateHash(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:])
}

// Promote adopts the replica of source: fence the source, hash the
// adopted state, inject the dead node's host crash, and reconcile so
// no reservation stays held on the dead node's links. Idempotent — a
// second promotion returns the original report.
func (n *Node) Promote(source, failHost string) (*PromoteReport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.replicas[source]
	if r == nil {
		return nil, fmt.Errorf("cluster: %s holds no replica of %s", n.cfg.ID, source)
	}
	if r.promoted {
		return r.report, nil
	}
	start := time.Now()
	// Fence first: from this point no ship from the source can land,
	// so a resurrected primary cannot fork the adopted sessions.
	r.promoted = true
	rep := &PromoteReport{
		Source:      source,
		FailHost:    failHost,
		AppliedSeq:  r.m.LastSeq(),
		StateHashes: map[string]string{},
	}
	sessions := r.m.List()
	rep.Adopted = len(sessions)
	for _, ms := range sessions {
		if fp, err := ms.Fingerprint(); err == nil {
			rep.StateHashes[ms.ID()] = StateHash(fp)
		}
	}
	if failHost != "" {
		for _, ms := range sessions {
			// Sessions whose overlay does not know the host (or whose
			// journal write fails) are left for Reconcile to sweep.
			ms.ApplyFault(fault.Fault{AtStep: 1, Kind: fault.HostCrash, Host: failHost}) //nolint:errcheck
		}
	}
	rep.Reconcile = r.m.Reconcile()
	rep.TookMs = float64(time.Since(start)) / float64(time.Millisecond)
	r.report = rep
	if data, err := json.MarshalIndent(rep, "", "  "); err == nil {
		os.WriteFile(filepath.Join(r.dir, promotedMarker), data, 0o644) //nolint:errcheck // marker is best-effort; the journaled faults already persist the adoption
	}
	c := n.counters()
	c.Inc(metrics.CounterClusterPromotions)
	c.Add(metrics.CounterClusterAdopted, int64(rep.Adopted))
	c.Observe(metrics.SampleClusterRecoveryMs, rep.TookMs)
	return rep, nil
}

// ---- HTTP surface -----------------------------------------------------

// NodeStatus is the /v1/cluster/status document: enough for a router
// or auditor to compare replicas without touching their state dirs.
type NodeStatus struct {
	Node        string            `json:"node"`
	Role        string            `json:"role"`
	AppliedSeq  uint64            `json:"appliedSeq"`
	Chain       string            `json:"chain"`
	Sessions    int               `json:"sessions"`
	StateHashes map[string]string `json:"stateHashes,omitempty"`
	ShipPeer    string            `json:"shipPeer,omitempty"`
	ShipAcked   uint64            `json:"shipAcked,omitempty"`
	Replicas    []ReplicaStatus   `json:"replicas,omitempty"`
}

// ReplicaStatus describes one followed node's mirror.
type ReplicaStatus struct {
	Source      string            `json:"source"`
	AppliedSeq  uint64            `json:"appliedSeq"`
	Chain       string            `json:"chain"`
	Sessions    int               `json:"sessions"`
	Promoted    bool              `json:"promoted"`
	StateHashes map[string]string `json:"stateHashes,omitempty"`
}

// hashAll fingerprints every session of a manager.
func hashAll(list []*session.Managed) map[string]string {
	out := make(map[string]string, len(list))
	for _, ms := range list {
		if fp, err := ms.Fingerprint(); err == nil {
			out[ms.ID()] = StateHash(fp)
		}
	}
	return out
}

// Status snapshots the node for /v1/cluster/status.
func (n *Node) Status() *NodeStatus {
	st := &NodeStatus{
		Node:        n.cfg.ID,
		Role:        "primary",
		AppliedSeq:  n.primary.LastSeq(),
		Chain:       chainHex(n.primary.LastChain()),
		StateHashes: hashAll(n.primary.List()),
	}
	st.Sessions = len(st.StateHashes)
	if peer, acked, ok := n.shipper.Peer(); ok {
		st.ShipPeer, st.ShipAcked = peer.ID, acked
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, source := range n.sortedSourcesLocked() {
		r := n.replicas[source]
		rstat := ReplicaStatus{
			Source:      source,
			AppliedSeq:  r.m.LastSeq(),
			Chain:       chainHex(r.m.LastChain()),
			Promoted:    r.promoted,
			StateHashes: hashAll(r.m.List()),
		}
		rstat.Sessions = len(rstat.StateHashes)
		st.Replicas = append(st.Replicas, rstat)
	}
	return st
}

// Handler wraps an httpapi handler with the cluster control routes.
// /debug/storms is served here rather than by the wrapped API so the
// flight recorder covers the whole node: the primary's storms plus
// every replica's mirrored timeline, each annotated with its source.
func (n *Node) Handler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ShipPath, n.handleShip)
	mux.HandleFunc("POST "+PromotePath, n.handlePromote)
	mux.HandleFunc("GET "+StatusPath, n.handleStatus)
	mux.HandleFunc("GET /debug/storms", n.handleStorms)
	if api != nil {
		mux.Handle("/", api)
	}
	return mux
}

// handleStorms serves the node-wide storm flight recorder: the
// primary's flights stamped with this node's ID, plus each replica's
// rebuilt timelines stamped "replica:<source>" (or "promoted:<source>"
// once adopted). A storm that rode the shipped WAL therefore shows up
// twice — once live on its primary, once replayed on the follower —
// under the same storm sequence number.
func (n *Node) handleStorms(w http.ResponseWriter, hr *http.Request) {
	flights := []storm.Flight{}
	if ctrl := n.primary.StormController(); ctrl != nil {
		fs := ctrl.Flights()
		for i := range fs {
			fs[i].Source = n.cfg.ID
		}
		flights = append(flights, fs...)
	}
	n.mu.Lock()
	for _, source := range n.sortedSourcesLocked() {
		r := n.replicas[source]
		ctrl := r.m.StormController()
		if ctrl == nil {
			continue
		}
		src := "replica:" + source
		if r.promoted {
			src = "promoted:" + source
		}
		fs := ctrl.Flights()
		for i := range fs {
			fs[i].Source = src
		}
		flights = append(flights, fs...)
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node":     n.cfg.ID,
		"retained": len(flights),
		"storms":   flights,
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

// handleShip applies one shipped batch to the replica of its source.
// Every rejection carries the replica's applied offset and chain so the
// shipper resumes from the follower's truth.
func (n *Node) handleShip(w http.ResponseWriter, hr *http.Request) {
	defer hr.Body.Close()
	var req shipRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, hr.Body, maxShipBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &shipResponse{Error: err.Error()})
		return
	}
	if req.Source == "" || req.Source == n.cfg.ID {
		writeJSON(w, http.StatusBadRequest, &shipResponse{Error: fmt.Sprintf("invalid ship source %q", req.Source)})
		return
	}
	batch, err := decodeShip(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &shipResponse{Error: err.Error()})
		return
	}
	c := n.counters()
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.replicas[req.Source]
	if r != nil && r.promoted {
		c.Inc(metrics.CounterReplicationShipRejected)
		writeJSON(w, http.StatusConflict, &shipResponse{
			Fenced:     true,
			Error:      fmt.Sprintf("%s was promoted away from %s; ships refused", n.cfg.ID, req.Source),
			AppliedSeq: r.m.LastSeq(),
			Chain:      chainHex(r.m.LastChain()),
		})
		return
	}
	if batch.Snapshot != nil && (r == nil || r.m.LastSeq() < batch.Snapshot.Seq) {
		nr, err := n.bootstrapReplicaLocked(req.Source, batch.Snapshot)
		if err != nil {
			c.Inc(metrics.CounterReplicationShipRejected)
			writeJSON(w, http.StatusInternalServerError, &shipResponse{Error: err.Error()})
			return
		}
		r = nr
	}
	if r == nil {
		if batch.FromSeq != 0 {
			// Nothing held yet; the shipper must restart from zero.
			c.Inc(metrics.CounterReplicationShipRejected)
			writeJSON(w, http.StatusConflict, &shipResponse{Error: "no replica state", AppliedSeq: 0})
			return
		}
		if r, err = n.openReplicaLocked(req.Source); err != nil {
			writeJSON(w, http.StatusInternalServerError, &shipResponse{Error: err.Error()})
			return
		}
	}
	applied, chain := r.m.LastSeq(), r.m.LastChain()
	if batch.FromSeq != applied || batch.FromChain != chain {
		c.Inc(metrics.CounterReplicationShipRejected)
		writeJSON(w, http.StatusConflict, &shipResponse{
			Error:      fmt.Sprintf("offset mismatch: batch from %d, applied %d", batch.FromSeq, applied),
			AppliedSeq: applied,
			Chain:      chainHex(chain),
		})
		return
	}
	if err := journal.VerifyShip(batch); err != nil {
		// Torn or forged batch: reject without touching the journal.
		c.Inc(metrics.CounterReplicationShipRejected)
		writeJSON(w, http.StatusBadRequest, &shipResponse{
			Error:      err.Error(),
			AppliedSeq: applied,
			Chain:      chainHex(chain),
		})
		return
	}
	if len(batch.Records) > 0 {
		if _, err := r.m.ApplyReplicated(batch.Records); err != nil {
			c.Inc(metrics.CounterReplicationShipRejected)
			writeJSON(w, http.StatusInternalServerError, &shipResponse{
				Error:      err.Error(),
				AppliedSeq: r.m.LastSeq(),
				Chain:      chainHex(r.m.LastChain()),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, &shipResponse{
		OK:         true,
		AppliedSeq: r.m.LastSeq(),
		Chain:      chainHex(r.m.LastChain()),
	})
}

// promoteRequest is the POST /v1/cluster/promote body.
type promoteRequest struct {
	Source   string `json:"source"`
	FailHost string `json:"failHost,omitempty"`
}

func (n *Node) handlePromote(w http.ResponseWriter, hr *http.Request) {
	defer hr.Body.Close()
	var req promoteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, hr.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	rep, err := n.Promote(req.Source, req.FailHost)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (n *Node) handleStatus(w http.ResponseWriter, hr *http.Request) {
	writeJSON(w, http.StatusOK, n.Status())
}
