package cluster

// observe.go is the router's cluster-wide observability surface:
//
//	GET /cluster/metrics        every live member's registry snapshot
//	                            federated into one Prometheus exposition
//	                            (per-node series labeled node="<id>",
//	                            plus summed storm.*/qos.* aggregates and
//	                            derived cluster gauges)
//	GET /debug/traces/cluster   ?id=<trace> fanned out to every member's
//	                            /debug/traces, node-local segments
//	                            stitched into one ordered timeline
//
// Both endpoints scrape members over the same HTTP surface operators
// use, so what the router aggregates is exactly what each node serves.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"qoschain/internal/metrics"
	"qoschain/internal/registry"
	"qoschain/internal/trace"
)

// handleClusterMetrics scrapes every live member's /metrics?format=json
// and emits the federated exposition. The router's own registry, when
// configured, joins under node="router".
func (r *Router) handleClusterMetrics(w http.ResponseWriter, req *http.Request) {
	var nodes []metrics.NodeSnapshot
	if r.metricsReg != nil {
		nodes = append(nodes, metrics.NodeSnapshot{Node: "router", Snap: r.metricsReg.Snapshot()})
	}
	for _, m := range r.Members() {
		snap, err := r.scrapeMember(req, m)
		if err != nil {
			continue // a dying member drops out of the federated view
		}
		nodes = append(nodes, metrics.NodeSnapshot{Node: m.ID, Snap: snap})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteFederated(w, nodes)
}

func (r *Router) scrapeMember(req *http.Request, m registry.Member) (metrics.RegistrySnapshot, error) {
	u := "http://" + m.Addr + "/metrics?format=json"
	sr, err := http.NewRequestWithContext(req.Context(), http.MethodGet, u, nil)
	if err != nil {
		return metrics.RegistrySnapshot{}, err
	}
	resp, err := r.client.Do(sr)
	if err != nil {
		return metrics.RegistrySnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return metrics.RegistrySnapshot{}, fmt.Errorf("scrape %s: status %d", m.ID, resp.StatusCode)
	}
	var snap metrics.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return metrics.RegistrySnapshot{}, err
	}
	return snap, nil
}

// ClusterSpan is one span of a stitched distributed trace: a node-local
// span re-based onto the cluster timeline (offset from the earliest
// node segment's start).
type ClusterSpan struct {
	Node       string       `json:"node"`
	Name       string       `json:"name"`
	OffsetMs   float64      `json:"offset_ms"`
	DurationMs float64      `json:"duration_ms"`
	Attrs      []trace.Attr `json:"attrs,omitempty"`
}

// ClusterTrace is the stitched view of one trace ID across the cluster.
type ClusterTrace struct {
	ID    string        `json:"id"`
	Nodes []string      `json:"nodes"`
	Spans []ClusterSpan `json:"spans"`
}

// nodeSegment is one node's retained trace for the requested ID.
type nodeSegment struct {
	node   string
	parent string
	snap   trace.TraceSnapshot
}

// handleClusterTraces fans ?id= out to every live member's
// /debug/traces, adds the router's own retained trace when present, and
// stitches the node-local segments into one ordered timeline.
func (r *Router) handleClusterTraces(w http.ResponseWriter, req *http.Request) {
	id := req.URL.Query().Get("id")
	if id == "" {
		routerError(w, http.StatusBadRequest, fmt.Errorf("missing ?id= trace ID"))
		return
	}
	var segs []nodeSegment
	if snap, ok := r.tracer.Get(id); ok {
		segs = append(segs, nodeSegment{node: "router", parent: snap.Parent, snap: snap})
	}
	for _, m := range r.Members() {
		u := "http://" + m.Addr + "/debug/traces?id=" + id
		tr, err := http.NewRequestWithContext(req.Context(), http.MethodGet, u, nil)
		if err != nil {
			continue
		}
		resp, err := r.client.Do(tr)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue // member never saw this trace (or dropped it)
		}
		var snap trace.TraceSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil || snap.ID != id {
			continue
		}
		segs = append(segs, nodeSegment{node: m.ID, parent: snap.Parent, snap: snap})
	}
	if len(segs) == 0 {
		routerError(w, http.StatusNotFound, fmt.Errorf("trace %s not retained on any node", id))
		return
	}
	writeJSON(w, http.StatusOK, stitch(id, segs))
}

// stitch re-bases every node segment onto a shared cluster timeline:
// the earliest segment start is the epoch, each span's cluster offset
// is its node-local offset plus the node segment's start delta. Each
// segment also contributes a root span named after the node-local
// trace (annotated with its X-Span-Parent caller) so the timeline shows
// who called whom even when a hop recorded no inner spans.
func stitch(id string, segs []nodeSegment) ClusterTrace {
	epoch := segs[0].snap.Start
	for _, s := range segs[1:] {
		if s.snap.Start.Before(epoch) {
			epoch = s.snap.Start
		}
	}
	out := ClusterTrace{ID: id}
	for _, s := range segs {
		base := float64(s.snap.Start.Sub(epoch)) / float64(time.Millisecond)
		root := ClusterSpan{
			Node:       s.node,
			Name:       s.snap.Name,
			OffsetMs:   base,
			DurationMs: s.snap.DurationMs,
		}
		if s.parent != "" {
			root.Attrs = []trace.Attr{trace.Str("parent", s.parent)}
		}
		out.Spans = append(out.Spans, root)
		for _, sp := range s.snap.Spans {
			out.Spans = append(out.Spans, ClusterSpan{
				Node:       s.node,
				Name:       sp.Name,
				OffsetMs:   base + sp.OffsetMs,
				DurationMs: sp.DurationMs,
				Attrs:      sp.Attrs,
			})
		}
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		if out.Spans[i].OffsetMs != out.Spans[j].OffsetMs {
			return out.Spans[i].OffsetMs < out.Spans[j].OffsetMs
		}
		if out.Spans[i].Node != out.Spans[j].Node {
			return out.Spans[i].Node < out.Spans[j].Node
		}
		return out.Spans[i].Name < out.Spans[j].Name
	})
	seen := map[string]bool{}
	for _, s := range segs {
		if !seen[s.node] {
			seen[s.node] = true
			out.Nodes = append(out.Nodes, s.node)
		}
	}
	sort.Strings(out.Nodes)
	return out
}
