package cluster

import (
	"fmt"
	"testing"

	"qoschain/internal/registry"
)

func members(ids ...string) []registry.Member {
	out := make([]registry.Member, len(ids))
	for i, id := range ids {
		out[i] = registry.Member{ID: id, Addr: "127.0.0.1:0", Host: "p" + id}
	}
	return out
}

// TestRendezvousDeterminism: the shard map must give every router and
// node the same answer from the same membership, regardless of list
// order, and removing a member must move only that member's keys.
func TestRendezvousDeterminism(t *testing.T) {
	ms := members("n1", "n2", "n3", "n4")
	perm := []registry.Member{ms[2], ms[0], ms[3], ms[1]}
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		a, ok := Primary(ms, key)
		b, ok2 := Primary(perm, key)
		if !ok || !ok2 || a.ID != b.ID {
			t.Fatalf("key %s: order-dependent owner %q vs %q", key, a.ID, b.ID)
		}
		// Minimal disruption: dropping n4 only moves n4's keys.
		c, _ := Primary(ms[:3], key)
		if a.ID != "n4" && c.ID != a.ID {
			t.Fatalf("key %s moved from %s to %s though %s stayed", key, a.ID, c.ID, a.ID)
		}
		if a.ID == "n4" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys landed on n4 — degenerate distribution")
	}
}

// TestFollowerOf: the follower must exclude the node itself and must
// not depend on whether the node is still in the list — the property
// that lets a router elect the same adopter the dead node shipped to.
func TestFollowerOf(t *testing.T) {
	ms := members("n1", "n2", "n3")
	for _, id := range []string{"n1", "n2", "n3"} {
		f, ok := FollowerOf(ms, id)
		if !ok {
			t.Fatalf("no follower for %s", id)
		}
		if f.ID == id {
			t.Fatalf("%s follows itself", id)
		}
		// Same answer when the node has already dropped off the list.
		var rest []registry.Member
		for _, m := range ms {
			if m.ID != id {
				rest = append(rest, m)
			}
		}
		g, ok := FollowerOf(rest, id)
		if !ok || g.ID != f.ID {
			t.Fatalf("follower of %s changed after its death: %s vs %s", id, f.ID, g.ID)
		}
	}
	if _, ok := FollowerOf(members("n1"), "n1"); ok {
		t.Fatal("single-node cluster invented a follower")
	}

	// Owners wires the two together.
	p, f, ok, fok := Owners(ms, "some-session-key")
	if !ok || !fok || p.ID == f.ID {
		t.Fatalf("Owners = %s/%s (%v,%v)", p.ID, f.ID, ok, fok)
	}
	wantF, _ := FollowerOf(ms, p.ID)
	if f.ID != wantF.ID {
		t.Fatalf("Owners follower %s != FollowerOf %s", f.ID, wantF.ID)
	}
}
